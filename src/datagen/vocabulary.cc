#include "datagen/vocabulary.h"

#include <unordered_set>

#include "util/check.h"

namespace adalsh {
namespace {

/// Alternating consonant/vowel syllables: readable in example output and
/// cheap to generate without collisions.
std::string MakeWord(Rng* rng) {
  static constexpr char kConsonants[] = "bcdfghklmnprstvz";
  static constexpr char kVowels[] = "aeiou";
  size_t syllables = 2 + rng->NextBelow(3);
  std::string word;
  for (size_t s = 0; s < syllables; ++s) {
    word.push_back(kConsonants[rng->NextBelow(sizeof(kConsonants) - 1)]);
    word.push_back(kVowels[rng->NextBelow(sizeof(kVowels) - 1)]);
  }
  if (rng->NextBernoulli(0.3)) {
    word.push_back(kConsonants[rng->NextBelow(sizeof(kConsonants) - 1)]);
  }
  return word;
}

}  // namespace

Vocabulary::Vocabulary(size_t num_words, uint64_t seed) {
  ADALSH_CHECK_GE(num_words, 1u);
  Rng rng(DeriveSeed(seed, 0x70cab));
  std::unordered_set<std::string> seen;
  words_.reserve(num_words);
  while (words_.size() < num_words) {
    std::string word = MakeWord(&rng);
    if (seen.insert(word).second) words_.push_back(std::move(word));
  }
}

const std::string& Vocabulary::word(size_t index) const {
  ADALSH_CHECK_LT(index, words_.size());
  return words_[index];
}

const std::string& Vocabulary::Sample(Rng* rng) const {
  return words_[rng->NextBelow(words_.size())];
}

std::string Vocabulary::SamplePhrase(Rng* rng, size_t count) const {
  std::string phrase;
  for (size_t i = 0; i < count; ++i) {
    if (i > 0) phrase.push_back(' ');
    phrase += Sample(rng);
  }
  return phrase;
}

void ApplyTypo(std::string* word, Rng* rng) {
  if (word->empty()) return;
  static constexpr char kLetters[] = "abcdefghijklmnopqrstuvwxyz";
  size_t position = rng->NextBelow(word->size());
  (*word)[position] = kLetters[rng->NextBelow(sizeof(kLetters) - 1)];
}

}  // namespace adalsh
