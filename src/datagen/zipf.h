#ifndef ADALSH_DATAGEN_ZIPF_H_
#define ADALSH_DATAGEN_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adalsh {

/// Entity sizes for the paper's workloads: "in most of these applications
/// ... entity sizes follow a Zipfian distribution" (Section 1) and the
/// PopularImages datasets use exponents 1.05 / 1.1 / 1.2 (Section 7.4.2).
///
/// Returns `num_entities` sizes, descending, with size_i proportional to
/// (i + 1 + offset)^-exponent (Zipf-Mandelbrot; offset 0 is plain Zipf),
/// scaled to sum to exactly total_records and floored at 1. The offset
/// dampens the head: the paper's PopularImages datasets report top-1 sizes
/// (~500 / ~1000 / ~1700 of 10000 for exponents 1.05 / 1.1 / 1.2) that a
/// plain Zipf cannot produce simultaneously; see
/// PopularImagesConfig::OffsetForExponent.
std::vector<size_t> ZipfClusterSizes(size_t num_entities, size_t total_records,
                                     double exponent, double offset = 0.0);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_ZIPF_H_
