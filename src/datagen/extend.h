#ifndef ADALSH_DATAGEN_EXTEND_H_
#define ADALSH_DATAGEN_EXTEND_H_

#include <cstdint>

#include "record/dataset.h"

namespace adalsh {

/// The paper's dataset-extension procedure (Section 6.3, used for the 2x/4x/
/// 8x versions of Cora and SpotSigs): "we uniformly at random select an
/// entity a and uniformly at random pick a record ra referring to the
/// selected entity a, for each record added to the dataset".
///
/// Returns a dataset with factor * |base| records: the base records followed
/// by (factor - 1) * |base| resampled copies. factor == 1 returns a plain
/// copy. Note the procedure flattens the entity-size skew (every entity is
/// picked uniformly), exactly as in the paper.
Dataset ExtendByResampling(const Dataset& base, size_t factor, uint64_t seed);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_EXTEND_H_
