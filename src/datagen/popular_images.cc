#include "datagen/popular_images.h"

#include <string>
#include <vector>

#include "datagen/zipf.h"
#include "distance/cosine.h"
#include "image/histogram.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

RandomTransformConfig PopularImagesConfig::DefaultTransform() {
  RandomTransformConfig transform;
  transform.min_keep_fraction = 0.975;
  transform.min_scale = 0.95;
  transform.max_scale = 1.05;
  transform.max_shift_fraction = 0.012;
  return transform;
}

double PopularImagesConfig::OffsetForExponent(double exponent) {
  // Anchors: (1.05, 5.0) -> top1 ~450, (1.1, 2.0) -> ~800, (1.2, 0.5) ->
  // ~1700 for 10000 records over 500 entities. Piecewise-linear between.
  if (exponent <= 1.05) return 5.0;
  if (exponent <= 1.1) return 5.0 + (exponent - 1.05) / 0.05 * (2.0 - 5.0);
  if (exponent <= 1.2) return 2.0 + (exponent - 1.1) / 0.1 * (0.5 - 2.0);
  return 0.5;
}

GeneratedDataset GeneratePopularImages(const PopularImagesConfig& config) {
  Rng rng(DeriveSeed(config.seed, 0x1fa6e));
  double offset = config.zipf_offset >= 0.0
                      ? config.zipf_offset
                      : PopularImagesConfig::OffsetForExponent(
                            config.zipf_exponent);
  std::vector<size_t> sizes =
      ZipfClusterSizes(config.num_entities, config.num_records,
                       config.zipf_exponent, offset);

  Dataset dataset("PopularImages");
  for (size_t e = 0; e < sizes.size(); ++e) {
    Image original = GenerateRandomImage(config.pattern, &rng);
    for (size_t r = 0; r < sizes[e]; ++r) {
      // The first record is the original; the rest are transformed shares.
      Image version = r == 0
                          ? original
                          : RandomTransform(original, config.transform, &rng);
      std::vector<Field> fields;
      fields.push_back(Field::DenseVector(
          RgbHistogram(version, config.histogram_bins_per_channel)));
      std::string label =
          "image" + std::to_string(e) + "/share" + std::to_string(r);
      dataset.AddRecord(Record(std::move(fields), label),
                        static_cast<EntityId>(e));
    }
  }

  MatchRule rule = MatchRule::Leaf(
      0, DegreesToNormalizedAngle(config.angle_threshold_degrees));
  return GeneratedDataset(std::move(dataset), std::move(rule));
}

}  // namespace adalsh
