#include "datagen/zipf.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/check.h"

namespace adalsh {

std::vector<size_t> ZipfClusterSizes(size_t num_entities, size_t total_records,
                                     double exponent, double offset) {
  ADALSH_CHECK_GE(num_entities, 1u);
  ADALSH_CHECK_GE(total_records, num_entities);
  ADALSH_CHECK_GT(exponent, 0.0);
  ADALSH_CHECK_GE(offset, 0.0);

  std::vector<double> weights(num_entities);
  double weight_sum = 0.0;
  for (size_t i = 0; i < num_entities; ++i) {
    weights[i] = std::pow(static_cast<double>(i + 1) + offset, -exponent);
    weight_sum += weights[i];
  }

  // Largest-remainder apportionment: floor every quota (min 1), then hand the
  // leftover records to the largest fractional parts. This keeps the realized
  // sizes within one record of the ideal power law instead of piling all
  // rounding drift onto one entity.
  std::vector<size_t> sizes(num_entities);
  std::vector<std::pair<double, size_t>> remainders(num_entities);
  size_t assigned = 0;
  for (size_t i = 0; i < num_entities; ++i) {
    double quota =
        weights[i] / weight_sum * static_cast<double>(total_records);
    size_t size = static_cast<size_t>(std::floor(quota));
    if (size < 1) size = 1;
    sizes[i] = size;
    remainders[i] = {quota - std::floor(quota), i};
    assigned += size;
  }
  if (assigned < total_records) {
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;  // deterministic ties: head first
              });
    size_t leftover = total_records - assigned;
    for (size_t j = 0; leftover > 0; j = (j + 1) % num_entities) {
      ++sizes[remainders[j].second];
      --leftover;
    }
  } else if (assigned > total_records) {
    // Flooring at 1 over-assigned (tiny tail quotas): trim from the head,
    // which has records to spare.
    size_t excess = assigned - total_records;
    for (size_t i = 0; excess > 0; i = (i + 1) % num_entities) {
      if (sizes[i] > 1) {
        --sizes[i];
        --excess;
      }
    }
  }

  // Keep the descending invariant despite the drift adjustment.
  for (size_t i = 1; i < num_entities; ++i) {
    ADALSH_CHECK_GE(sizes[i - 1] + 1, sizes[i]);  // allow equality
  }
  return sizes;
}

}  // namespace adalsh
