#ifndef ADALSH_DATAGEN_GENERATED_DATASET_H_
#define ADALSH_DATAGEN_GENERATED_DATASET_H_

#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// A generated workload: records with ground truth plus the match rule the
/// paper pairs with that dataset (a dataset without its rule is not a
/// runnable experiment).
struct GeneratedDataset {
  Dataset dataset;
  MatchRule rule;

  GeneratedDataset(Dataset dataset_in, MatchRule rule_in)
      : dataset(std::move(dataset_in)), rule(std::move(rule_in)) {}
};

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_GENERATED_DATASET_H_
