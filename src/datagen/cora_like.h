#ifndef ADALSH_DATAGEN_CORA_LIKE_H_
#define ADALSH_DATAGEN_CORA_LIKE_H_

#include <cstdint>

#include "datagen/generated_dataset.h"

namespace adalsh {

/// Synthetic stand-in for the Cora citation dataset (Section 6.3): ~2000
/// multi-field scientific-publication records whose entities are papers and
/// whose records are noisy citation strings of those papers.
///
/// Each record has three token-set fields, mirroring the paper's "three sets
/// of shingles for each record":
///   field 0: title shingles, field 1: author shingles, field 2: the rest
///   (venue / year / volume / pages).
/// The rule() is the paper's exact Cora rule: two records match when
/// (i) the average Jaccard similarity of title and author sets is >= 0.7 AND
/// (ii) the Jaccard similarity of the rest is >= 0.2 — i.e.
/// And(WeightedAverage({0,1}, {.5,.5}, 0.3), Leaf(2, 0.8)).
struct CoraLikeConfig {
  size_t num_entities = 250;
  size_t num_records = 2000;
  /// Entity-size skew; ~0.75 reproduces Cora's "top entity is a few percent
  /// of the records" regime the Section 7.2 experiments rely on.
  double zipf_exponent = 0.75;

  /// Canonical-record shape.
  int title_words_min = 7;
  int title_words_max = 12;
  int authors_min = 2;
  int authors_max = 4;
  int venue_words_min = 2;
  int venue_words_max = 4;
  size_t vocabulary_size = 6000;
  size_t venue_count = 40;

  /// Citation-string corruption rates.
  double title_word_drop_prob = 0.05;
  double title_typo_prob = 0.03;
  double author_abbreviate_prob = 0.15;
  double author_typo_prob = 0.02;
  double venue_word_drop_prob = 0.10;
  double venue_abbreviate_prob = 0.20;
  double pages_jitter_prob = 0.05;

  uint64_t seed = 42;
};

/// Generates the dataset; deterministic in config.seed.
GeneratedDataset GenerateCoraLike(const CoraLikeConfig& config);

/// The Cora match rule for the three-field schema above (exposed so callers
/// can build threshold variants).
MatchRule CoraRule(double title_author_avg_sim = 0.7, double rest_sim = 0.2);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_CORA_LIKE_H_
