#ifndef ADALSH_DATAGEN_VOCABULARY_H_
#define ADALSH_DATAGEN_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace adalsh {

/// A deterministic synthetic vocabulary: pronounceable lowercase words used
/// by the text data generators (titles, author names, article bodies). Words
/// are pairwise distinct.
class Vocabulary {
 public:
  Vocabulary(size_t num_words, uint64_t seed);

  size_t size() const { return words_.size(); }
  const std::string& word(size_t index) const;

  /// Uniformly random word.
  const std::string& Sample(Rng* rng) const;

  /// `count` uniformly random words joined by spaces.
  std::string SamplePhrase(Rng* rng, size_t count) const;

 private:
  std::vector<std::string> words_;
};

/// Mutates one random character of `word` (a "typo"); no-op on empty input.
void ApplyTypo(std::string* word, Rng* rng);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_VOCABULARY_H_
