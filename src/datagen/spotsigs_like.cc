#include "datagen/spotsigs_like.h"

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/vocabulary.h"
#include "datagen/zipf.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {
namespace {

/// An article is a list of sentences; a sentence is a list of tokens.
using Sentence = std::vector<std::string>;
using Article = std::vector<Sentence>;

std::vector<std::string> AntecedentList(const SpotSigConfig& spotsig) {
  return std::vector<std::string>(spotsig.antecedents.begin(),
                                  spotsig.antecedents.end());
}

Sentence MakeSentence(const SpotSigsLikeConfig& config, const Vocabulary& vocab,
                      const std::vector<std::string>& antecedents, Rng* rng) {
  Sentence sentence;
  int length = static_cast<int>(
      rng->NextInRange(config.sentence_words_min, config.sentence_words_max));
  for (int i = 0; i < length; ++i) {
    if (rng->NextBernoulli(config.antecedent_prob)) {
      sentence.push_back(antecedents[rng->NextBelow(antecedents.size())]);
    } else {
      sentence.push_back(vocab.Sample(rng));
    }
  }
  return sentence;
}

/// Per-site boilerplate pools (see header comment).
std::vector<std::vector<Sentence>> MakeSitePools(
    const SpotSigsLikeConfig& config, const Vocabulary& vocab,
    const std::vector<std::string>& antecedents, Rng* rng) {
  std::vector<std::vector<Sentence>> pools(config.num_sites);
  for (std::vector<Sentence>& pool : pools) {
    pool.reserve(config.site_stock_sentences);
    for (size_t s = 0; s < config.site_stock_sentences; ++s) {
      pool.push_back(MakeSentence(config, vocab, antecedents, rng));
    }
  }
  return pools;
}

/// An article body (no boilerplate yet).
Article MakeArticle(const SpotSigsLikeConfig& config, const Vocabulary& vocab,
                    const std::vector<std::string>& antecedents, Rng* rng) {
  Article article;
  int sentences = static_cast<int>(
      rng->NextInRange(config.sentences_min, config.sentences_max));
  for (int s = 0; s < sentences; ++s) {
    article.push_back(MakeSentence(config, vocab, antecedents, rng));
  }
  return article;
}

/// Appends the publishing site's boilerplate to an article body:
/// stock_fraction of the body length, drawn from the site's pool.
Article PublishOnSite(const SpotSigsLikeConfig& config, const Article& body,
                      const std::vector<Sentence>& site_pool, Rng* rng) {
  Article published = body;
  size_t stock_count = std::max<size_t>(
      1, static_cast<size_t>(body.size() * config.stock_fraction));
  for (size_t s = 0; s < stock_count; ++s) {
    published.push_back(site_pool[rng->NextBelow(site_pool.size())]);
  }
  return published;
}

/// A near-duplicate copy of an article body: drop some sentences, replace
/// some tokens — the paper's "slight adjustments"; the publishing site's
/// boilerplate is added separately by PublishOnSite.
Article MakeNearDuplicate(const SpotSigsLikeConfig& config,
                          const Article& original, const Vocabulary& vocab,
                          Rng* rng) {
  Article copy;
  for (const Sentence& sentence : original) {
    if (rng->NextBernoulli(config.sentence_drop_prob)) continue;
    Sentence s = sentence;
    for (std::string& token : s) {
      if (rng->NextBernoulli(config.token_replace_prob)) {
        token = vocab.Sample(rng);
      }
    }
    copy.push_back(std::move(s));
  }
  if (copy.empty()) copy.push_back(original.front());
  return copy;
}

std::string RenderArticle(const Article& article) {
  std::string text;
  for (const Sentence& sentence : article) {
    for (const std::string& token : sentence) {
      if (!text.empty()) text.push_back(' ');
      text += token;
    }
    text.push_back('.');
  }
  return text;
}

Record MakeRecord(const SpotSigsLikeConfig& config, const Article& article,
                  const std::string& label) {
  std::vector<uint64_t> signatures =
      SpotSignatures(RenderArticle(article), config.spotsig);
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(signatures)));
  return Record(std::move(fields), label);
}

}  // namespace

GeneratedDataset GenerateSpotSigsLike(const SpotSigsLikeConfig& config) {
  ADALSH_CHECK_GE(config.num_story_entities, 1u);
  Rng rng(DeriveSeed(config.seed, 0x5707));
  Vocabulary vocab(config.vocabulary_size, DeriveSeed(config.seed, 3));
  std::vector<std::string> antecedents = AntecedentList(config.spotsig);
  ADALSH_CHECK(!antecedents.empty());

  Dataset dataset("SpotSigsLike");
  EntityId next_entity = 0;
  std::vector<std::vector<Sentence>> site_pools =
      MakeSitePools(config, vocab, antecedents, &rng);
  auto random_site = [&]() -> const std::vector<Sentence>& {
    return site_pools[rng.NextBelow(site_pools.size())];
  };

  // Duplicated stories with Zipf-distributed copy counts; every copy is
  // published on a (random) site and picks up that site's boilerplate.
  std::vector<size_t> sizes =
      ZipfClusterSizes(config.num_story_entities, config.records_in_stories,
                       config.zipf_exponent);
  for (size_t e = 0; e < sizes.size(); ++e) {
    Article original = MakeArticle(config, vocab, antecedents, &rng);
    // An optional major rewrite of the story (see header): same entity in
    // ground truth, but below the match threshold against the original.
    bool has_rewrite = rng.NextBernoulli(config.second_revision_prob);
    Article rewrite;
    if (has_rewrite) {
      rewrite = original;
      for (Sentence& sentence : rewrite) {
        if (rng.NextBernoulli(config.revision_rewrite_fraction)) {
          sentence = MakeSentence(config, vocab, antecedents, &rng);
        }
      }
    }
    for (size_t r = 0; r < sizes[e]; ++r) {
      bool from_rewrite =
          has_rewrite && r > 0 &&
          rng.NextBernoulli(config.second_revision_share);
      const Article& base = from_rewrite ? rewrite : original;
      // The first copy is the original body; the rest are perturbed.
      Article body =
          r == 0 ? original : MakeNearDuplicate(config, base, vocab, &rng);
      Article published = PublishOnSite(config, body, random_site(), &rng);
      std::string label = "story" + std::to_string(e) +
                          (from_rewrite ? "rev2" : "") + "/site" +
                          std::to_string(r);
      dataset.AddRecord(MakeRecord(config, published, label), next_entity);
    }
    ++next_entity;
  }

  // Unrelated singleton articles, also published on the shared sites.
  for (size_t s = 0; s < config.num_singletons; ++s) {
    Article article = PublishOnSite(
        config, MakeArticle(config, vocab, antecedents, &rng), random_site(),
        &rng);
    dataset.AddRecord(
        MakeRecord(config, article, "single" + std::to_string(s)),
        next_entity);
    ++next_entity;
  }

  MatchRule rule = MatchRule::Leaf(0, 1.0 - config.jaccard_sim_threshold);
  return GeneratedDataset(std::move(dataset), std::move(rule));
}

}  // namespace adalsh
