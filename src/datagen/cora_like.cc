#include "datagen/cora_like.h"

#include <string>
#include <vector>

#include "datagen/vocabulary.h"
#include "datagen/zipf.h"
#include "text/shingle.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {
namespace {

/// A canonical publication from which citation-string records are derived.
struct Publication {
  std::vector<std::string> title_words;
  std::vector<std::pair<std::string, std::string>> authors;  // first, last
  std::vector<std::string> venue_words;
  int year = 0;
  int volume = 0;
  int first_page = 0;
};

Publication MakePublication(const CoraLikeConfig& config,
                            const Vocabulary& vocab,
                            const std::vector<std::string>& venues, Rng* rng) {
  Publication pub;
  int title_len =
      static_cast<int>(rng->NextInRange(config.title_words_min,
                                        config.title_words_max));
  for (int i = 0; i < title_len; ++i) pub.title_words.push_back(vocab.Sample(rng));
  int author_count =
      static_cast<int>(rng->NextInRange(config.authors_min, config.authors_max));
  for (int i = 0; i < author_count; ++i) {
    pub.authors.emplace_back(vocab.Sample(rng), vocab.Sample(rng));
  }
  // Venue phrase: a shared venue prefix plus qualifier words.
  pub.venue_words.push_back(venues[rng->NextBelow(venues.size())]);
  int venue_len = static_cast<int>(
      rng->NextInRange(config.venue_words_min, config.venue_words_max));
  for (int i = 1; i < venue_len; ++i) pub.venue_words.push_back(vocab.Sample(rng));
  pub.year = static_cast<int>(rng->NextInRange(1985, 2016));
  pub.volume = static_cast<int>(rng->NextInRange(1, 40));
  pub.first_page = static_cast<int>(rng->NextInRange(1, 900));
  return pub;
}

/// Renders one noisy citation string's three fields from the canonical
/// publication (the corruption model: word drops, typos, abbreviations).
Record MakeCitationRecord(const CoraLikeConfig& config, const Publication& pub,
                          Rng* rng, const std::string& label) {
  // --- Title: drop/typo words; tokens are word unigrams. ---
  std::string title;
  for (const std::string& word : pub.title_words) {
    if (rng->NextBernoulli(config.title_word_drop_prob)) continue;
    std::string w = word;
    if (rng->NextBernoulli(config.title_typo_prob)) ApplyTypo(&w, rng);
    if (!title.empty()) title.push_back(' ');
    title += w;
  }

  // --- Authors: optional first-name abbreviation, rare typos. ---
  std::string authors;
  for (const auto& [first, last] : pub.authors) {
    std::string f = first;
    if (rng->NextBernoulli(config.author_abbreviate_prob)) {
      f = f.substr(0, 1);
    }
    std::string l = last;
    if (rng->NextBernoulli(config.author_typo_prob)) ApplyTypo(&l, rng);
    if (!authors.empty()) authors.push_back(' ');
    authors += f;
    authors.push_back(' ');
    authors += l;
  }

  // --- Rest: venue words (droppable/abbreviable) + numeric facts. ---
  std::string rest;
  for (const std::string& word : pub.venue_words) {
    if (rng->NextBernoulli(config.venue_word_drop_prob)) continue;
    std::string w = word;
    if (w.size() > 3 && rng->NextBernoulli(config.venue_abbreviate_prob)) {
      w = w.substr(0, 3);
    }
    if (!rest.empty()) rest.push_back(' ');
    rest += w;
  }
  int first_page = pub.first_page;
  if (rng->NextBernoulli(config.pages_jitter_prob)) {
    first_page += static_cast<int>(rng->NextInRange(-2, 2));
  }
  rest += " y" + std::to_string(pub.year);
  rest += " v" + std::to_string(pub.volume);
  rest += " p" + std::to_string(first_page);

  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(WordShingles(title, 1)));
  fields.push_back(Field::TokenSet(WordShingles(authors, 1)));
  fields.push_back(Field::TokenSet(WordShingles(rest, 1)));
  return Record(std::move(fields), label);
}

}  // namespace

MatchRule CoraRule(double title_author_avg_sim, double rest_sim) {
  return MatchRule::And(
      {MatchRule::WeightedAverage({0, 1}, {0.5, 0.5},
                                  1.0 - title_author_avg_sim),
       MatchRule::Leaf(2, 1.0 - rest_sim)});
}

GeneratedDataset GenerateCoraLike(const CoraLikeConfig& config) {
  Rng rng(DeriveSeed(config.seed, 0xc04a));
  Vocabulary vocab(config.vocabulary_size, DeriveSeed(config.seed, 1));
  Vocabulary venue_vocab(config.venue_count, DeriveSeed(config.seed, 2));
  std::vector<std::string> venues;
  for (size_t v = 0; v < venue_vocab.size(); ++v) {
    venues.push_back(venue_vocab.word(v));
  }

  std::vector<size_t> sizes = ZipfClusterSizes(
      config.num_entities, config.num_records, config.zipf_exponent);

  Dataset dataset("CoraLike");
  for (size_t e = 0; e < sizes.size(); ++e) {
    Publication pub = MakePublication(config, vocab, venues, &rng);
    for (size_t r = 0; r < sizes[e]; ++r) {
      std::string label =
          "pub" + std::to_string(e) + "/cite" + std::to_string(r);
      dataset.AddRecord(MakeCitationRecord(config, pub, &rng, label),
                        static_cast<EntityId>(e));
    }
  }
  return GeneratedDataset(std::move(dataset), CoraRule());
}

}  // namespace adalsh
