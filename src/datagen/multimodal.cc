#include "datagen/multimodal.h"

#include <string>
#include <vector>

#include "datagen/popular_images.h"
#include "datagen/zipf.h"
#include "distance/cosine.h"
#include "image/histogram.h"
#include "image/transforms.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {
namespace {

constexpr int kHistogramBins = 4;  // 64-dimensional photo feature

std::vector<uint64_t> SampleFingerprint(const std::vector<uint64_t>& minutiae,
                                        double keep_fraction, Rng* rng) {
  std::vector<uint64_t> capture;
  for (uint64_t m : minutiae) {
    if (rng->NextBernoulli(keep_fraction)) capture.push_back(m);
  }
  if (capture.empty()) capture.push_back(minutiae.front());
  // A couple of spurious minutiae from sensor noise.
  capture.push_back(rng->Next());
  capture.push_back(rng->Next());
  return capture;
}

}  // namespace

GeneratedDataset GenerateMultiModal(const MultiModalConfig& config) {
  Rng rng(DeriveSeed(config.seed, 0x3417));
  ImagePatternConfig pattern;
  RandomTransformConfig transform = PopularImagesConfig::DefaultTransform();

  std::vector<size_t> sizes = ZipfClusterSizes(
      config.num_entities, config.num_records, config.zipf_exponent);

  Dataset dataset("MultiModal");
  for (size_t e = 0; e < sizes.size(); ++e) {
    Image base = GenerateRandomImage(pattern, &rng);
    std::vector<uint64_t> minutiae;
    for (size_t m = 0; m < config.minutiae_per_person; ++m) {
      minutiae.push_back(rng.Next());
    }
    for (size_t r = 0; r < sizes[e]; ++r) {
      bool bad_photo = rng.NextBernoulli(config.bad_photo_prob);
      // Never degrade both modalities of one record: the OR rule could not
      // recover it and the ground truth would be unreachable by design.
      bool bad_fingerprint =
          !bad_photo && rng.NextBernoulli(config.bad_fingerprint_prob);

      Image photo_source =
          bad_photo ? GenerateRandomImage(pattern, &rng) : base;
      Image photo = r == 0 && !bad_photo
                        ? photo_source
                        : RandomTransform(photo_source, transform, &rng);

      std::vector<uint64_t> fingerprint;
      if (bad_fingerprint) {
        for (int m = 0; m < 8; ++m) fingerprint.push_back(rng.Next());
      } else {
        fingerprint =
            SampleFingerprint(minutiae, config.minutiae_keep_fraction, &rng);
      }

      std::vector<Field> fields;
      fields.push_back(
          Field::DenseVector(RgbHistogram(photo, kHistogramBins)));
      fields.push_back(Field::TokenSet(std::move(fingerprint)));
      std::string label = "person" + std::to_string(e) + "/capture" +
                          std::to_string(r) + (bad_photo ? "(photo-)" : "") +
                          (bad_fingerprint ? "(fp-)" : "");
      dataset.AddRecord(Record(std::move(fields), label),
                        static_cast<EntityId>(e));
    }
  }

  MatchRule rule = MatchRule::Or(
      {MatchRule::Leaf(
           0, DegreesToNormalizedAngle(config.photo_threshold_degrees)),
       MatchRule::Leaf(1, 1.0 - config.fingerprint_sim_threshold)});
  return GeneratedDataset(std::move(dataset), std::move(rule));
}

}  // namespace adalsh
