#ifndef ADALSH_DATAGEN_POPULAR_IMAGES_H_
#define ADALSH_DATAGEN_POPULAR_IMAGES_H_

#include <cstdint>

#include "datagen/generated_dataset.h"
#include "image/image.h"
#include "image/transforms.h"

namespace adalsh {

/// Synthetic stand-in for the PopularImages datasets (Section 6.3 / 7.4.2):
/// 500 original images; records are transformed copies (random cropping,
/// scaling, re-centering); records per entity follow a Zipf distribution
/// whose exponent (1.05 / 1.1 / 1.2 in the paper) controls how dominant the
/// top entities are. Each record is one dense field: the image's RGB
/// histogram, matched under cosine distance with a small angle threshold
/// (2 / 3 / 5 degrees in the paper).
struct PopularImagesConfig {
  size_t num_entities = 500;
  size_t num_records = 10000;
  double zipf_exponent = 1.05;

  /// Zipf-Mandelbrot head offset; negative means "auto": use
  /// OffsetForExponent(zipf_exponent).
  double zipf_offset = -1.0;

  ImagePatternConfig pattern;
  RandomTransformConfig transform = DefaultTransform();

  /// Histogram resolution: bins_per_channel^3 buckets (4 -> 64 dimensions).
  int histogram_bins_per_channel = 4;

  /// Cosine threshold in degrees for the generated rule.
  double angle_threshold_degrees = 3.0;

  uint64_t seed = 42;

  /// Mild transforms keep within-entity histogram distances spread around
  /// 1-4 degrees — the regime where the paper's 2/3/5-degree thresholds
  /// trade accuracy for speed (Fig. 17).
  static RandomTransformConfig DefaultTransform();

  /// Head offsets calibrated so the 10000-record / 500-entity datasets hit
  /// the paper's reported top-1 sizes: ~500 at exponent 1.05, ~1000 at 1.1,
  /// ~1700 at 1.2 (Section 7.4.2). Interpolates between those anchors.
  static double OffsetForExponent(double exponent);
};

/// Generates the dataset; deterministic in config.seed.
GeneratedDataset GeneratePopularImages(const PopularImagesConfig& config);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_POPULAR_IMAGES_H_
