#ifndef ADALSH_DATAGEN_SPOTSIGS_LIKE_H_
#define ADALSH_DATAGEN_SPOTSIGS_LIKE_H_

#include <cstdint>

#include "datagen/generated_dataset.h"
#include "text/spot_signatures.h"

namespace adalsh {

/// Synthetic stand-in for the SpotSigs near-duplicate web-article dataset
/// (Section 6.3): entities are original stories; records are near-duplicate
/// copies ("the same story with slight adjustments for different web sites")
/// plus unrelated singleton articles. Each record is a single token-set
/// field: the article body's spot signatures (Theobald et al.), which makes
/// this the paper's "higher-dimensional" workload — per-record sets are an
/// order of magnitude larger than Cora's, so each hash function costs more.
///
/// The rule is Jaccard similarity >= jaccard_sim_threshold (default 0.4,
/// the paper also tries 0.3 and 0.5): Leaf(0, 1 - threshold).
struct SpotSigsLikeConfig {
  /// Stories that have near-duplicate copies; their sizes are Zipf.
  size_t num_story_entities = 60;
  size_t records_in_stories = 1400;
  double zipf_exponent = 1.0;
  /// Unrelated one-record articles (the "sparse areas" of Fig. 2).
  size_t num_singletons = 800;

  /// Article shape.
  int sentences_min = 25;
  int sentences_max = 55;
  int sentence_words_min = 8;
  int sentence_words_max = 16;
  /// Probability a token is drawn from the antecedent (stop-word) list,
  /// anchoring a spot signature.
  double antecedent_prob = 0.30;
  size_t vocabulary_size = 8000;

  /// Site boilerplate: each article is published on one of num_sites sites,
  /// and every site reuses its own small pool of stock sentences
  /// (navigation, agency credits, legal text). Two *unrelated* articles from
  /// the same site therefore share a sparse tail of spot signatures
  /// (Jaccard ~0.05) while cross-site pairs share none — the "dense vs
  /// sparse area" geometry of Fig. 2 that makes tiny LSH budgets glue
  /// same-site articles into blobs (the paper's Fig. 15/20 regime) without
  /// defeating well-budgeted schemes. stock_fraction of each article's
  /// sentences come from its site's pool of site_stock_sentences.
  size_t num_sites = 25;
  size_t site_stock_sentences = 10;
  double stock_fraction = 0.10;

  /// Near-duplicate perturbation.
  double sentence_drop_prob = 0.07;
  double token_replace_prob = 0.015;

  /// Story revisions: with second_revision_prob a story is rewritten once
  /// (revision_rewrite_fraction of its sentences replaced) and
  /// second_revision_share of its copies derive from the rewrite. Cross-
  /// revision similarity lands *below* the 0.4 match threshold, so the
  /// simple rule splits such stories — the reason the paper's SpotSigs
  /// F1 Gold sits near 0.8 for small k (Fig. 10b) and recall climbs with bk
  /// (Fig. 11): ground truth says one entity, the rule finds two clusters,
  /// and only returning more clusters (or recovery) retrieves the rest.
  double second_revision_prob = 0.7;
  double revision_rewrite_fraction = 0.5;
  double second_revision_share = 0.4;

  double jaccard_sim_threshold = 0.4;

  SpotSigConfig spotsig;

  uint64_t seed = 42;
};

/// Generates the dataset; deterministic in config.seed.
GeneratedDataset GenerateSpotSigsLike(const SpotSigsLikeConfig& config);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_SPOTSIGS_LIKE_H_
