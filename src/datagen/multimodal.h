#ifndef ADALSH_DATAGEN_MULTIMODAL_H_
#define ADALSH_DATAGEN_MULTIMODAL_H_

#include <cstdint>

#include "datagen/generated_dataset.h"

namespace adalsh {

/// A biometric-style workload exercising OR rules (Appendix C.2) end to end
/// — the paper's example: "each record consists of a person photo and
/// fingerprints ... two records would be considered a match if the photos'
/// distance was lower than the first threshold, OR if the fingerprints'
/// distance was lower than the second threshold".
///
/// Each record has two fields:
///   field 0: a "photo" — RGB histogram of a transformed copy of the
///            person's base image (dense, cosine distance);
///   field 1: a "fingerprint" — a noisy subset of the person's minutiae
///            token set (Jaccard distance).
/// A fraction of records has an unusable photo (someone else's image — e.g.
/// an occluded capture) and a fraction has a degraded fingerprint; the OR
/// rule still matches them through the other modality, so *neither* field
/// alone resolves the entities. Rule:
///   Or(Leaf(photo, angle_thr), Leaf(fingerprint, jaccard_thr)).
struct MultiModalConfig {
  size_t num_entities = 80;
  size_t num_records = 800;
  double zipf_exponent = 0.9;

  /// Photo channel.
  double photo_threshold_degrees = 4.0;
  /// Probability a record's photo is unusable (random other image).
  double bad_photo_prob = 0.15;

  /// Fingerprint channel.
  size_t minutiae_per_person = 60;
  /// Fraction of the person's minutiae present in a good capture.
  double minutiae_keep_fraction = 0.85;
  /// Probability a record's fingerprint is degraded (tiny random subset).
  double bad_fingerprint_prob = 0.15;
  double fingerprint_sim_threshold = 0.5;

  uint64_t seed = 42;
};

/// Generates the dataset; deterministic in config.seed.
GeneratedDataset GenerateMultiModal(const MultiModalConfig& config);

}  // namespace adalsh

#endif  // ADALSH_DATAGEN_MULTIMODAL_H_
