#include "datagen/extend.h"

#include <vector>

#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

Dataset ExtendByResampling(const Dataset& base, size_t factor, uint64_t seed) {
  ADALSH_CHECK_GE(factor, 1u);
  ADALSH_CHECK_GT(base.num_records(), 0u);
  Dataset extended(base.name() + (factor > 1
                                      ? std::to_string(factor) + "x"
                                      : ""));
  for (RecordId r = 0; r < base.num_records(); ++r) {
    extended.AddRecord(base.record(r), base.entity_assignment()[r]);
  }

  // Index records by entity for uniform-entity / uniform-record sampling.
  GroundTruth truth = base.BuildGroundTruth();
  Rng rng(DeriveSeed(seed, 0xe47e4d));
  size_t to_add = (factor - 1) * base.num_records();
  for (size_t i = 0; i < to_add; ++i) {
    size_t entity_rank = rng.NextBelow(truth.num_entities());
    const std::vector<RecordId>& cluster = truth.cluster(entity_rank);
    RecordId sample = cluster[rng.NextBelow(cluster.size())];
    extended.AddRecord(base.record(sample), base.entity_assignment()[sample]);
  }
  return extended;
}

}  // namespace adalsh
