#include "io/csv.h"

namespace adalsh {

StatusOr<bool> CsvReader::ReadRow(std::vector<std::string>* fields) {
  fields->clear();
  int c = in_->get();
  if (c == EOF) return false;
  ++line_;
  const size_t row_start_line = line_;
  std::string current;
  bool in_quotes = false;
  bool row_done = false;
  while (!row_done) {
    if (c == EOF) {
      if (in_quotes) {
        std::string message =
            "unterminated quote at line " + std::to_string(line_);
        if (row_start_line != line_) {
          // The quoted field swallowed newlines; point back at the row that
          // opened it, which is where the missing quote usually is.
          message += " (row started at line " +
                     std::to_string(row_start_line) + ")";
        }
        return Status::InvalidArgument(message);
      }
      break;
    }
    char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in_->peek() == '"') {
          current.push_back('"');
          in_->get();
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(ch);
        if (ch == '\n') ++line_;
      }
    } else if (ch == '"' && current.empty()) {
      in_quotes = true;
    } else if (ch == delimiter_) {
      fields->push_back(std::move(current));
      current.clear();
    } else if (ch == '\n') {
      row_done = true;
      break;
    } else if (ch == '\r') {
      // Swallow; the following \n (if any) ends the row.
    } else {
      current.push_back(ch);
    }
    c = in_->get();
  }
  fields->push_back(std::move(current));
  return true;
}

void WriteCsvRow(std::ostream* out, const std::vector<std::string>& fields,
                 char delimiter) {
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out->put(delimiter);
    const std::string& field = fields[i];
    bool needs_quotes =
        field.find(delimiter) != std::string::npos ||
        field.find('"') != std::string::npos ||
        field.find('\n') != std::string::npos ||
        field.find('\r') != std::string::npos;
    if (!needs_quotes) {
      *out << field;
      continue;
    }
    out->put('"');
    for (char ch : field) {
      if (ch == '"') out->put('"');
      out->put(ch);
    }
    out->put('"');
  }
  out->put('\n');
}

}  // namespace adalsh
