#ifndef ADALSH_IO_CSV_H_
#define ADALSH_IO_CSV_H_

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace adalsh {

/// Minimal CSV support for the CLI and dataset loaders: RFC-4180-style
/// quoting (fields containing the delimiter, quotes or newlines are wrapped
/// in double quotes; embedded quotes are doubled).

/// Parses one CSV record from `in` into `fields` (cleared first). Handles
/// quoted fields spanning newlines. Returns false at end of input; aborts
/// never; malformed quoting is reported via the status output.
struct CsvReader {
  explicit CsvReader(std::istream* in, char delimiter = ',')
      : in_(in), delimiter_(delimiter) {}

  /// Reads the next row. Returns Ok(true) with fields filled, Ok(false) at
  /// EOF, or InvalidArgument on malformed quoting.
  StatusOr<bool> ReadRow(std::vector<std::string>* fields);

  /// 1-based line number of the last row read (for error messages).
  size_t line() const { return line_; }

 private:
  std::istream* in_;
  char delimiter_;
  size_t line_ = 0;
};

/// Writes one CSV row with proper quoting.
void WriteCsvRow(std::ostream* out, const std::vector<std::string>& fields,
                 char delimiter = ',');

}  // namespace adalsh

#endif  // ADALSH_IO_CSV_H_
