#include "io/dataset_loader.h"

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "io/csv.h"
#include "text/shingle.h"
#include "text/spot_signatures.h"

namespace adalsh {
namespace {

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(s);
  while (std::getline(in, part, ',')) parts.push_back(part);
  return parts;
}

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t");
  if (begin == std::string::npos) return "";
  size_t end = s.find_last_not_of(" \t");
  return s.substr(begin, end - begin + 1);
}

// Clips the tail of a parse error's context so one corrupt megabyte-long
// field cannot flood the error message.
std::string ErrorSnippet(const char* cursor) {
  constexpr size_t kMaxSnippet = 24;
  std::string snippet(cursor);
  if (snippet.size() > kMaxSnippet) {
    snippet.resize(kMaxSnippet);
    snippet += "...";
  }
  return snippet;
}

StatusOr<std::vector<float>> ParseDenseVector(const std::string& text,
                                              size_t line, size_t column) {
  const std::string where =
      "line " + std::to_string(line) + ", column " + std::to_string(column + 1);
  std::vector<float> values;
  const char* cursor = text.c_str();
  while (*cursor != '\0') {
    if (*cursor == ' ' || *cursor == ';' || *cursor == '\t') {
      ++cursor;
      continue;
    }
    char* end = nullptr;
    float value = std::strtof(cursor, &end);
    if (end == cursor) {
      return Status::InvalidArgument(where +
                                     ": vector column is not numeric near '" +
                                     ErrorSnippet(cursor) + "'");
    }
    if (!std::isfinite(value)) {
      return Status::InvalidArgument(
          where + ": vector column has a non-finite value near '" +
          ErrorSnippet(cursor) + "' (overflow, inf, or nan)");
    }
    values.push_back(value);
    cursor = end;
  }
  if (values.empty()) {
    return Status::InvalidArgument(where + ": empty vector column");
  }
  return values;
}

}  // namespace

StatusOr<std::vector<ColumnSpec>> ParseColumnSpecs(const std::string& spec) {
  std::vector<ColumnSpec> specs;
  for (const std::string& raw : SplitCommas(spec)) {
    std::string token = Trim(raw);
    ColumnSpec column;
    if (token == "label") {
      column.kind = ColumnSpec::Kind::kLabel;
    } else if (token == "entity") {
      column.kind = ColumnSpec::Kind::kEntity;
    } else if (token == "spotsigs") {
      column.kind = ColumnSpec::Kind::kTextSpotSigs;
    } else if (token == "vector") {
      column.kind = ColumnSpec::Kind::kDenseVector;
    } else if (token == "ignore") {
      column.kind = ColumnSpec::Kind::kIgnore;
    } else if (token.rfind("text", 0) == 0) {
      column.kind = ColumnSpec::Kind::kTextShingles;
      std::string suffix = token.substr(4);
      if (!suffix.empty()) {
        char* end = nullptr;
        long n = std::strtol(suffix.c_str(), &end, 10);
        if (end == nullptr || *end != '\0' || n < 1 || n > 16) {
          return Status::InvalidArgument("bad column spec token '" + token +
                                         "'");
        }
        column.shingle_size = static_cast<int>(n);
      }
    } else {
      return Status::InvalidArgument("bad column spec token '" + token + "'");
    }
    specs.push_back(column);
  }
  if (specs.empty()) {
    return Status::InvalidArgument("empty column spec");
  }
  return specs;
}

StatusOr<ParsedCsvRecord> ParseCsvRecord(const std::vector<std::string>& row,
                                         const std::vector<ColumnSpec>& specs,
                                         size_t line) {
  if (row.size() != specs.size()) {
    return Status::InvalidArgument(
        "line " + std::to_string(line) + ": expected " +
        std::to_string(specs.size()) + " columns, got " +
        std::to_string(row.size()));
  }
  SpotSigConfig spotsig_config;
  std::vector<Field> fields;
  std::vector<size_t> field_columns;
  std::string label;
  std::string entity_key;
  bool has_entity = false;
  for (size_t c = 0; c < specs.size(); ++c) {
    switch (specs[c].kind) {
      case ColumnSpec::Kind::kLabel:
        label = row[c];
        break;
      case ColumnSpec::Kind::kEntity:
        entity_key = row[c];
        has_entity = true;
        break;
      case ColumnSpec::Kind::kTextShingles:
        fields.push_back(
            Field::TokenSet(WordShingles(row[c], specs[c].shingle_size)));
        field_columns.push_back(c);
        break;
      case ColumnSpec::Kind::kTextSpotSigs:
        fields.push_back(
            Field::TokenSet(SpotSignatures(row[c], spotsig_config)));
        field_columns.push_back(c);
        break;
      case ColumnSpec::Kind::kDenseVector: {
        StatusOr<std::vector<float>> values =
            ParseDenseVector(row[c], line, c);
        if (!values.ok()) return values.status();
        fields.push_back(Field::DenseVector(std::move(values).value()));
        field_columns.push_back(c);
        break;
      }
      case ColumnSpec::Kind::kIgnore:
        break;
    }
  }
  ParsedCsvRecord parsed{Record(std::move(fields), std::move(label)),
                         std::move(entity_key), has_entity};
  parsed.field_columns = std::move(field_columns);
  return parsed;
}

StatusOr<Dataset> LoadCsvDataset(std::istream* in,
                                 const std::vector<ColumnSpec>& specs,
                                 bool has_header, const std::string& name) {
  // Reject a featureless spec before touching the stream: every record needs
  // at least one feature column, so no row could ever load under this spec.
  bool any_feature = false;
  for (const ColumnSpec& spec : specs) {
    any_feature |= spec.kind == ColumnSpec::Kind::kTextShingles ||
                   spec.kind == ColumnSpec::Kind::kTextSpotSigs ||
                   spec.kind == ColumnSpec::Kind::kDenseVector;
  }
  if (!any_feature) {
    return Status::InvalidArgument(
        "column spec declares no feature columns (need at least one of "
        "text/textN/spotsigs/vector)");
  }

  Dataset dataset(name);
  CsvReader reader(in);
  std::vector<std::string> row;
  std::unordered_map<std::string, EntityId> entity_ids;

  bool first = true;
  for (;;) {
    StatusOr<bool> more = reader.ReadRow(&row);
    if (!more.ok()) return more.status();
    if (!*more) break;
    if (first && has_header) {
      first = false;
      continue;
    }
    first = false;
    StatusOr<ParsedCsvRecord> parsed =
        ParseCsvRecord(row, specs, reader.line());
    if (!parsed.ok()) return parsed.status();
    // Dense fields must be uniform-dimensional across the file.
    if (dataset.num_records() > 0) {
      const Record& prototype = dataset.record(0);
      for (FieldId f = 0; f < parsed->record.num_fields(); ++f) {
        const Field& field = parsed->record.field(f);
        if (field.is_dense() && field.size() != prototype.field(f).size()) {
          return Status::InvalidArgument(
              "line " + std::to_string(reader.line()) + ", column " +
              std::to_string(parsed->field_columns[f] + 1) +
              ": vector has dimension " + std::to_string(field.size()) +
              " but earlier rows had " +
              std::to_string(prototype.field(f).size()));
        }
      }
    }
    EntityId entity;
    if (parsed->has_entity) {
      auto [it, inserted] = entity_ids.try_emplace(
          parsed->entity_key, static_cast<EntityId>(entity_ids.size()));
      entity = it->second;
    } else {
      entity = static_cast<EntityId>(dataset.num_records());
    }
    dataset.AddRecord(std::move(parsed->record), entity);
  }
  if (dataset.num_records() == 0) {
    return Status::InvalidArgument(
        has_header ? "input contains no records after the header row"
                   : "input contains no records");
  }
  return dataset;
}

}  // namespace adalsh
