#ifndef ADALSH_IO_BINARY_CODEC_H_
#define ADALSH_IO_BINARY_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "record/record.h"
#include "util/status.h"

namespace adalsh {

/// Shared little-endian binary encoding for the durability plane (WAL frames
/// and checkpoints). Fixed-width integers are stored byte-by-byte so the
/// on-disk format is identical across hosts; floats are stored via their
/// IEEE-754 bit patterns. Internal to src/io.

class BinaryWriter {
 public:
  void PutU8(uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void PutU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void PutF32(float v) {
    uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU32(bits);
  }

  void PutF64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(bits);
  }

  void PutString(const std::string& s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_.append(s);
  }

  const std::string& bytes() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked reader over a byte range. Every getter returns OutOfRange
/// past the end instead of reading garbage — a truncated payload must decode
/// as an error, not as a shorter value.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}

  StatusOr<uint8_t> GetU8() {
    if (pos_ + 1 > size_) return Truncated();
    return static_cast<uint8_t>(data_[pos_++]);
  }

  StatusOr<uint32_t> GetU32() {
    if (pos_ + 4 > size_) return Truncated();
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  StatusOr<uint64_t> GetU64() {
    if (pos_ + 8 > size_) return Truncated();
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  StatusOr<float> GetF32() {
    auto bits = GetU32();
    if (!bits.ok()) return bits.status();
    float v;
    uint32_t b = *bits;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  StatusOr<double> GetF64() {
    auto bits = GetU64();
    if (!bits.ok()) return bits.status();
    double v;
    uint64_t b = *bits;
    std::memcpy(&v, &b, sizeof(v));
    return v;
  }

  StatusOr<std::string> GetString() {
    auto n = GetU32();
    if (!n.ok()) return n.status();
    if (pos_ + *n > size_) return Truncated();
    std::string s(data_ + pos_, *n);
    pos_ += *n;
    return s;
  }

  size_t position() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ == size_; }

 private:
  Status Truncated() const {
    return Status::OutOfRange("binary payload truncated at byte " +
                              std::to_string(pos_));
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Record codec: u32 num_fields | fields | label. Each field is
/// u8 kind | u32 size | payload (f32s for dense vectors, u64s for token
/// sets, which Field re-canonicalizes on construction).
void EncodeRecord(const Record& record, BinaryWriter* writer);
StatusOr<Record> DecodeRecord(BinaryReader* reader);

}  // namespace adalsh

#endif  // ADALSH_IO_BINARY_CODEC_H_
