#include "io/wal.h"

#include <errno.h>
#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "io/binary_codec.h"
#include "util/fault_injection.h"

namespace adalsh {

namespace {

// Frame header: u32 payload length + u32 crc.
constexpr size_t kFrameHeaderBytes = 8;

// Sanity cap on a single frame's payload. A length field larger than this is
// treated as corruption (a bit flip in the length must not make the reader
// skip gigabytes into the file looking for the next frame).
constexpr uint32_t kMaxFramePayloadBytes = 1u << 30;

// Transient-failure policy for physical write/fsync attempts: a bounded
// number of tries with linear backoff (docs/durability.md). Kept short —
// a genuinely dead disk should reach the read-only degradation path in
// milliseconds, not hang the mutation.
constexpr int kMaxIoAttempts = 4;
constexpr int kBackoffMicrosPerAttempt = 200;

void Backoff(int attempt) {
  std::this_thread::sleep_for(
      std::chrono::microseconds(kBackoffMicrosPerAttempt * attempt));
}

const uint32_t* Crc32cTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    // Reflected Castagnoli polynomial.
    constexpr uint32_t kPoly = 0x82F63B78u;
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size) {
  const uint32_t* table = Crc32cTable();
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  }
  return ~crc;
}

uint32_t Crc32c(const void* data, size_t size) {
  return Crc32cExtend(0, data, size);
}

const char* WalSyncPolicyName(WalSyncPolicy policy) {
  switch (policy) {
    case WalSyncPolicy::kNone:
      return "none";
    case WalSyncPolicy::kBatch:
      return "batch";
    case WalSyncPolicy::kAlways:
      return "always";
  }
  return "unknown";
}

StatusOr<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name) {
  if (name == "none") return WalSyncPolicy::kNone;
  if (name == "batch") return WalSyncPolicy::kBatch;
  if (name == "always") return WalSyncPolicy::kAlways;
  return Status::InvalidArgument("unknown sync policy: " + name +
                                 " (want none|batch|always)");
}

std::string EncodeWalFrame(const WalFrame& frame) {
  BinaryWriter payload;
  payload.PutU8(static_cast<uint8_t>(frame.type));
  payload.PutU64(frame.seq);
  payload.PutU64(frame.generation);
  switch (frame.type) {
    case WalFrameType::kIngest:
      payload.PutU32(frame.parts);
      payload.PutU32(static_cast<uint32_t>(frame.records.size()));
      for (size_t i = 0; i < frame.records.size(); ++i) {
        payload.PutU64(frame.ids[i]);
        EncodeRecord(frame.records[i], &payload);
      }
      break;
    case WalFrameType::kRemove:
      payload.PutU32(frame.parts);
      payload.PutU32(static_cast<uint32_t>(frame.ids.size()));
      for (uint64_t id : frame.ids) payload.PutU64(id);
      break;
    case WalFrameType::kUpdate:
      payload.PutU64(frame.ids[0]);
      EncodeRecord(frame.records[0], &payload);
      break;
    case WalFrameType::kFlush:
      payload.PutU32(frame.parts);
      break;
    case WalFrameType::kCostModel:
      payload.PutU32(frame.parts);
      payload.PutF64(frame.cost_per_hash);
      payload.PutF64(frame.cost_per_pair);
      break;
  }
  const std::string& body = payload.bytes();
  BinaryWriter out;
  out.PutU32(static_cast<uint32_t>(body.size()));
  out.PutU32(Crc32c(body.data(), body.size()));
  std::string bytes = out.Take();
  bytes.append(body);
  return bytes;
}

Status DecodeWalFrame(const std::string& data, size_t offset, WalFrame* frame,
                      size_t* consumed) {
  if (offset + kFrameHeaderBytes > data.size()) {
    return Status::OutOfRange("incomplete frame header");
  }
  BinaryReader header(data.data() + offset, kFrameHeaderBytes);
  uint32_t length = *header.GetU32();
  uint32_t crc = *header.GetU32();
  if (length > kMaxFramePayloadBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " exceeds sanity cap");
  }
  if (offset + kFrameHeaderBytes + length > data.size()) {
    return Status::OutOfRange("incomplete frame payload");
  }
  const char* payload = data.data() + offset + kFrameHeaderBytes;
  uint32_t actual = Crc32c(payload, length);
  if (actual != crc) {
    return Status::InvalidArgument("frame CRC mismatch");
  }

  BinaryReader reader(payload, length);
  auto type = reader.GetU8();
  if (!type.ok()) return type.status();
  auto seq = reader.GetU64();
  if (!seq.ok()) return seq.status();
  auto generation = reader.GetU64();
  if (!generation.ok()) return generation.status();

  WalFrame out;
  out.seq = *seq;
  out.generation = *generation;
  switch (static_cast<WalFrameType>(*type)) {
    case WalFrameType::kIngest: {
      out.type = WalFrameType::kIngest;
      auto parts = reader.GetU32();
      if (!parts.ok()) return parts.status();
      out.parts = *parts;
      auto n = reader.GetU32();
      if (!n.ok()) return n.status();
      for (uint32_t i = 0; i < *n; ++i) {
        auto id = reader.GetU64();
        if (!id.ok()) return id.status();
        auto record = DecodeRecord(&reader);
        if (!record.ok()) return record.status();
        out.ids.push_back(*id);
        out.records.push_back(*std::move(record));
      }
      break;
    }
    case WalFrameType::kRemove: {
      out.type = WalFrameType::kRemove;
      auto parts = reader.GetU32();
      if (!parts.ok()) return parts.status();
      out.parts = *parts;
      auto n = reader.GetU32();
      if (!n.ok()) return n.status();
      if (reader.remaining() < static_cast<size_t>(*n) * 8) {
        return Status::OutOfRange("remove frame overruns payload");
      }
      for (uint32_t i = 0; i < *n; ++i) {
        out.ids.push_back(*reader.GetU64());
      }
      break;
    }
    case WalFrameType::kUpdate: {
      out.type = WalFrameType::kUpdate;
      auto id = reader.GetU64();
      if (!id.ok()) return id.status();
      auto record = DecodeRecord(&reader);
      if (!record.ok()) return record.status();
      out.ids.push_back(*id);
      out.records.push_back(*std::move(record));
      break;
    }
    case WalFrameType::kFlush: {
      out.type = WalFrameType::kFlush;
      auto parts = reader.GetU32();
      if (!parts.ok()) return parts.status();
      out.parts = *parts;
      break;
    }
    case WalFrameType::kCostModel: {
      out.type = WalFrameType::kCostModel;
      auto parts = reader.GetU32();
      if (!parts.ok()) return parts.status();
      out.parts = *parts;
      auto hash_cost = reader.GetF64();
      if (!hash_cost.ok()) return hash_cost.status();
      auto pair_cost = reader.GetF64();
      if (!pair_cost.ok()) return pair_cost.status();
      out.cost_per_hash = *hash_cost;
      out.cost_per_pair = *pair_cost;
      break;
    }
    default:
      return Status::InvalidArgument("unknown frame type " +
                                     std::to_string(*type));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("frame payload has trailing bytes");
  }
  *frame = std::move(out);
  *consumed = kFrameHeaderBytes + length;
  return Status::Ok();
}

StatusOr<std::unique_ptr<MutationLog>> MutationLog::Open(
    const std::string& path, WalSyncPolicy policy, uint64_t committed_bytes) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::FailedPrecondition("open " + path + ": " +
                                      ::strerror(errno));
  }
  // Physically drop anything past the committed prefix (a torn tail, or
  // frames recovery discarded after a seq gap) so stale bytes can never be
  // misread as frames once fresh appends land in front of them.
  if (::ftruncate(fd, static_cast<off_t>(committed_bytes)) != 0) {
    Status status = Status::FailedPrecondition("ftruncate " + path + ": " +
                                               ::strerror(errno));
    ::close(fd);
    return status;
  }
  return std::unique_ptr<MutationLog>(
      new MutationLog(path, policy, fd, committed_bytes));
}

MutationLog::~MutationLog() {
  if (fd_ >= 0) ::close(fd_);
}

Status MutationLog::WriteAttempt(const std::string& bytes) {
  if (auto injected = FaultStatusPoint(FaultSite::kWalAppend)) {
    return *injected;
  }
  size_t limit = bytes.size();
  bool torn = false;
  if (auto cap = FaultShortWritePoint(FaultSite::kWalAppend)) {
    limit = std::min(limit, *cap);
    torn = true;
  }
  size_t written = 0;
  while (written < limit) {
    ssize_t n = ::pwrite(fd_, bytes.data() + written, limit - written,
                         static_cast<off_t>(committed_bytes_ + written));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::FailedPrecondition("pwrite " + path_ + ": " +
                                        ::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  if (torn) {
    // The injected cap persisted a partial frame (exactly what a crash
    // mid-write leaves behind); report the attempt as failed so the caller
    // retries or degrades, and never advance the committed offset over it.
    return Status::FailedPrecondition("injected short write after " +
                                      std::to_string(limit) + " bytes");
  }
  return Status::Ok();
}

Status MutationLog::Append(const WalFrame& frame) {
  std::string bytes = EncodeWalFrame(frame);
  Status last;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.append_retries;
      Backoff(attempt);
    }
    last = WriteAttempt(bytes);
    if (last.ok()) break;
  }
  if (!last.ok()) return last;
  committed_bytes_ += bytes.size();
  ++stats_.frames_appended;
  stats_.bytes_appended += bytes.size();
  if (policy_ == WalSyncPolicy::kAlways) return Sync();
  return Status::Ok();
}

Status MutationLog::Sync() {
  Status last;
  for (int attempt = 1; attempt <= kMaxIoAttempts; ++attempt) {
    if (attempt > 1) {
      ++stats_.sync_retries;
      Backoff(attempt);
    }
    if (auto injected = FaultStatusPoint(FaultSite::kWalSync)) {
      last = *injected;
      continue;
    }
    if (::fsync(fd_) != 0) {
      last = Status::FailedPrecondition("fsync " + path_ + ": " +
                                        ::strerror(errno));
      continue;
    }
    last = Status::Ok();
    break;
  }
  if (last.ok()) ++stats_.syncs;
  return last;
}

Status MutationLog::Truncate() {
  if (::ftruncate(fd_, 0) != 0) {
    return Status::FailedPrecondition("ftruncate " + path_ + ": " +
                                      ::strerror(errno));
  }
  committed_bytes_ = 0;
  if (::fsync(fd_) != 0) {
    return Status::FailedPrecondition("fsync " + path_ + ": " +
                                      ::strerror(errno));
  }
  return Status::Ok();
}

StatusOr<WalReadResult> ReadMutationLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("no log at " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string data = buffer.str();

  WalReadResult result;
  size_t offset = 0;
  while (offset < data.size()) {
    WalFrame frame;
    size_t consumed = 0;
    Status status = DecodeWalFrame(data, offset, &frame, &consumed);
    if (!status.ok()) {
      result.truncated = true;
      result.warning = path + ": invalid frame at byte " +
                       std::to_string(offset) + " (" + status.message() +
                       "); truncating " + std::to_string(data.size() - offset) +
                       " trailing bytes";
      break;
    }
    result.frames.push_back(std::move(frame));
    offset += consumed;
  }
  result.valid_bytes = offset;
  return result;
}

}  // namespace adalsh
