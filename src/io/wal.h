#ifndef ADALSH_IO_WAL_H_
#define ADALSH_IO_WAL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "record/record.h"
#include "util/status.h"

namespace adalsh {

/// Write-ahead mutation log for the resident/sharded engine
/// (docs/durability.md). One file per shard engine, append-only, replayed on
/// startup to reconstruct the mutations that post-date the newest checkpoint.
///
/// On-disk frame format (all integers little-endian):
///
///   u32 payload_length | u32 crc32c(payload) | payload
///
///   payload = u8 frame_type | u64 seq | u64 generation | body
///
/// `seq` is the globally monotonic mutation sequence number — one counter
/// across all shard logs, so recovery can merge per-shard logs back into the
/// original mutation order. `generation` is the engine's published snapshot
/// generation at append time: purely diagnostic (generation counts
/// publications, which a replayed history redoes from scratch), never
/// restored. A mutation that spans multiple shards writes one sub-frame with
/// the same seq to each involved shard's log; each sub-frame carries the
/// total sub-frame count (`parts`) so recovery can tell a complete mutation
/// from one whose remaining sub-frames were lost with an unsynced tail —
/// an incomplete seq ends the replayable prefix (docs/durability.md).

/// CRC32C (Castagnoli). Standard check value: Crc32c("123456789", 9) ==
/// 0xE3069283.
uint32_t Crc32c(const void* data, size_t size);

/// Incremental form for split buffers: Crc32cExtend(Crc32c(a), b) ==
/// Crc32c(a ++ b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t size);

enum class WalFrameType : uint8_t {
  kIngest = 1,     // body: u32 parts | u32 n | n * (u64 external_id | record)
  kRemove = 2,     // body: u32 parts | u32 n | n * u64 external_id
  kUpdate = 3,     // body: u64 external_id | record (always single-shard)
  kFlush = 4,      // body: u32 parts
  kCostModel = 5,  // body: u32 parts | f64 cost_per_hash | f64 cost_per_pair
};

/// A decoded frame. Which fields are meaningful depends on `type`:
/// ids+records for kIngest (parallel), ids for kRemove, ids[0]+records[0]
/// for kUpdate, the two costs for kCostModel, none for kFlush. `parts` is
/// the number of sub-frames (across all shard logs) sharing this frame's
/// seq; 1 for everything single-shard.
struct WalFrame {
  WalFrameType type = WalFrameType::kFlush;
  uint64_t seq = 0;
  uint64_t generation = 0;
  uint32_t parts = 1;
  std::vector<uint64_t> ids;
  std::vector<Record> records;
  double cost_per_hash = 0;
  double cost_per_pair = 0;
};

/// Serializes a frame to its complete on-disk byte string (header included).
std::string EncodeWalFrame(const WalFrame& frame);

/// Decodes one frame from `data` (which must start at a frame boundary).
/// On success fills `frame` and `consumed` (total on-disk bytes, header
/// included). Fails — without distinguishing "torn" from "corrupt", the
/// reader treats both as end-of-valid-log — when the header or payload is
/// incomplete, the CRC mismatches, or the payload does not parse.
Status DecodeWalFrame(const std::string& data, size_t offset, WalFrame* frame,
                      size_t* consumed);

/// When to fsync the log (the durability/throughput dial, docs/durability.md):
///   kNone   — never; the OS flushes eventually. A crash can lose any tail.
///   kBatch  — at the barriers the caller marks via Sync(): the durable
///             engine syncs at Flush, Checkpoint and clean shutdown, so a
///             crash loses at most the unsynced tail since the last barrier.
///   kAlways — after every Append; every acked frame is durable.
enum class WalSyncPolicy { kNone = 0, kBatch, kAlways };

const char* WalSyncPolicyName(WalSyncPolicy policy);

/// Parses "none" / "batch" / "always" (InvalidArgument otherwise).
StatusOr<WalSyncPolicy> ParseWalSyncPolicy(const std::string& name);

/// Append/sync/retry accounting, surfaced as wal_* metrics by the durable
/// engine (docs/observability.md).
struct WalWriterStats {
  uint64_t frames_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  uint64_t append_retries = 0;
  uint64_t sync_retries = 0;
};

/// One append-only log file. Not thread-safe; the durable engine serializes
/// appends per log.
///
/// Failure handling: every physical write()/fsync() attempt passes through
/// the kWalAppend/kWalSync fault sites, and transient failures (injected or
/// real EINTR/EAGAIN-class errors) are retried with bounded backoff
/// (docs/durability.md). A failed append never advances the committed
/// offset: the retry rewrites the frame from its start, so a once-reported-ok
/// frame is always wholly present and any torn bytes sit strictly after the
/// last acked frame — the tail the reader truncates.
class MutationLog {
 public:
  /// Opens (creating or appending to) the log at `path`. `committed_bytes`
  /// tells the writer where the valid prefix ends (from a prior
  /// ReadMutationLog, possibly shortened further by recovery's seq-gap
  /// rule); the file is truncated to it, so a torn or discarded tail is
  /// physically removed before new frames append.
  static StatusOr<std::unique_ptr<MutationLog>> Open(const std::string& path,
                                                     WalSyncPolicy policy,
                                                     uint64_t committed_bytes);

  ~MutationLog();

  MutationLog(const MutationLog&) = delete;
  MutationLog& operator=(const MutationLog&) = delete;

  /// Appends one frame (and fsyncs it under kAlways). On error the log file
  /// is unchanged up to the committed offset; the caller decides between
  /// retrying the whole mutation and degrading to read-only.
  Status Append(const WalFrame& frame);

  /// Forces an fsync (a kBatch batch boundary; no-op data-wise under kNone,
  /// which still performs the sync when called explicitly — the final sync
  /// before a checkpoint wants real durability regardless of policy).
  Status Sync();

  /// Truncates the log to empty — a checkpoint superseded every frame. Also
  /// resets the committed offset; the file stays open for further appends.
  Status Truncate();

  const std::string& path() const { return path_; }
  uint64_t committed_bytes() const { return committed_bytes_; }
  const WalWriterStats& stats() const { return stats_; }

 private:
  MutationLog(std::string path, WalSyncPolicy policy, int fd,
              uint64_t committed_bytes)
      : path_(std::move(path)),
        policy_(policy),
        fd_(fd),
        committed_bytes_(committed_bytes) {}

  /// One write-it-all attempt at the committed offset; does not retry.
  Status WriteAttempt(const std::string& bytes);

  std::string path_;
  WalSyncPolicy policy_;
  int fd_;
  uint64_t committed_bytes_;
  WalWriterStats stats_;
};

/// What ReadMutationLog found. `frames` is the valid prefix; `valid_bytes`
/// is its on-disk length (the committed offset to hand back to
/// MutationLog::Open). When the file ends in a torn or corrupt frame,
/// `truncated` is set and `warning` says why — the caller logs it and
/// recovers from the valid prefix (docs/durability.md).
struct WalReadResult {
  std::vector<WalFrame> frames;
  uint64_t valid_bytes = 0;
  bool truncated = false;
  std::string warning;
};

/// Reads all valid frames of the log at `path`. NotFound when the file does
/// not exist (a fresh data dir); any readable file yields Ok — corruption is
/// reported via `truncated`, never as an error, because a torn tail is the
/// expected post-crash state.
StatusOr<WalReadResult> ReadMutationLog(const std::string& path);

}  // namespace adalsh

#endif  // ADALSH_IO_WAL_H_
