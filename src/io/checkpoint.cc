#include "io/checkpoint.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <cinttypes>
#include <fstream>
#include <sstream>
#include <utility>

#include "io/binary_codec.h"
#include "io/wal.h"
#include "util/fault_injection.h"

namespace adalsh {

namespace {

constexpr char kMagic[] = "ADLSHCP1";
constexpr size_t kMagicBytes = 8;

// checkpoint-<seq> with the seq zero-padded to 20 digits so lexicographic
// and numeric order agree.
std::string CheckpointFileName(uint64_t seq) {
  char buf[64];
  snprintf(buf, sizeof(buf), "checkpoint-%020" PRIu64, seq);
  return buf;
}

// Parses "checkpoint-<digits>" (no .tmp suffix); returns false otherwise.
bool ParseCheckpointFileName(const std::string& name, uint64_t* seq) {
  constexpr char kPrefix[] = "checkpoint-";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (name.size() <= kPrefixLen || name.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefixLen; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  *seq = value;
  return true;
}

Status SyncDirectory(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::FailedPrecondition("open dir " + dir + ": " +
                                      ::strerror(errno));
  }
  int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::FailedPrecondition("fsync dir " + dir + ": " +
                                      ::strerror(errno));
  }
  return Status::Ok();
}

std::string EncodeCheckpointBody(const CheckpointData& data) {
  BinaryWriter body;
  body.PutU64(data.last_seq);
  body.PutU64(data.next_external_id);
  body.PutU64(data.generation);
  body.PutU32(data.shards);
  body.PutU8(data.has_cost_model ? 1 : 0);
  body.PutF64(data.cost_per_hash);
  body.PutF64(data.cost_per_pair);
  body.PutU64(data.ids.size());
  for (size_t i = 0; i < data.ids.size(); ++i) {
    body.PutU64(data.ids[i]);
    EncodeRecord(data.records[i], &body);
  }
  return body.Take();
}

StatusOr<CheckpointData> DecodeCheckpoint(const std::string& bytes) {
  if (bytes.size() < kMagicBytes + 4 ||
      bytes.compare(0, kMagicBytes, kMagic) != 0) {
    return Status::InvalidArgument("bad checkpoint magic");
  }
  size_t body_size = bytes.size() - kMagicBytes - 4;
  const char* body = bytes.data() + kMagicBytes;
  BinaryReader crc_reader(bytes.data() + kMagicBytes + body_size, 4);
  uint32_t stored_crc = *crc_reader.GetU32();
  if (Crc32c(body, body_size) != stored_crc) {
    return Status::InvalidArgument("checkpoint CRC mismatch");
  }

  BinaryReader reader(body, body_size);
  CheckpointData data;
  auto last_seq = reader.GetU64();
  if (!last_seq.ok()) return last_seq.status();
  data.last_seq = *last_seq;
  auto next_id = reader.GetU64();
  if (!next_id.ok()) return next_id.status();
  data.next_external_id = *next_id;
  auto generation = reader.GetU64();
  if (!generation.ok()) return generation.status();
  data.generation = *generation;
  auto shards = reader.GetU32();
  if (!shards.ok()) return shards.status();
  data.shards = *shards;
  auto has_model = reader.GetU8();
  if (!has_model.ok()) return has_model.status();
  data.has_cost_model = *has_model != 0;
  auto hash_cost = reader.GetF64();
  if (!hash_cost.ok()) return hash_cost.status();
  data.cost_per_hash = *hash_cost;
  auto pair_cost = reader.GetF64();
  if (!pair_cost.ok()) return pair_cost.status();
  data.cost_per_pair = *pair_cost;
  auto n = reader.GetU64();
  if (!n.ok()) return n.status();
  for (uint64_t i = 0; i < *n; ++i) {
    auto id = reader.GetU64();
    if (!id.ok()) return id.status();
    auto record = DecodeRecord(&reader);
    if (!record.ok()) return record.status();
    data.ids.push_back(*id);
    data.records.push_back(*std::move(record));
  }
  if (!reader.exhausted()) {
    return Status::InvalidArgument("checkpoint body has trailing bytes");
  }
  return data;
}

// Names of directory entries, or FailedPrecondition when unreadable.
StatusOr<std::vector<std::string>> ListDirectory(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::FailedPrecondition("opendir " + dir + ": " +
                                      ::strerror(errno));
  }
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(d)) {
    names.emplace_back(entry->d_name);
  }
  ::closedir(d);
  return names;
}

}  // namespace

StatusOr<std::string> WriteCheckpoint(const std::string& dir,
                                      const CheckpointData& data) {
  // Hit 1: before any bytes are written — a crash here leaves no trace.
  if (auto injected = FaultStatusPoint(FaultSite::kCheckpointWrite)) {
    return *injected;
  }

  std::string body = EncodeCheckpointBody(data);
  std::string final_path = dir + "/" + CheckpointFileName(data.last_seq);
  std::string tmp_path = final_path + ".tmp";

  int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::FailedPrecondition("open " + tmp_path + ": " +
                                      ::strerror(errno));
  }
  BinaryWriter trailer;
  trailer.PutU32(Crc32c(body.data(), body.size()));
  std::string bytes = std::string(kMagic, kMagicBytes) + body + trailer.Take();
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status status = Status::FailedPrecondition("write " + tmp_path + ": " +
                                                 ::strerror(errno));
      ::close(fd);
      ::unlink(tmp_path.c_str());
      return status;
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status status = Status::FailedPrecondition("fsync " + tmp_path + ": " +
                                               ::strerror(errno));
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return status;
  }
  ::close(fd);

  // Hit 2: the temp file is complete and durable but not yet visible under
  // its final name — a crash here strands an orphaned .tmp that recovery
  // must ignore and prune.
  if (auto injected = FaultStatusPoint(FaultSite::kCheckpointWrite)) {
    ::unlink(tmp_path.c_str());
    return *injected;
  }

  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    Status status = Status::FailedPrecondition(
        "rename " + tmp_path + ": " + ::strerror(errno));
    ::unlink(tmp_path.c_str());
    return status;
  }
  Status dir_sync = SyncDirectory(dir);
  if (!dir_sync.ok()) return dir_sync;
  return final_path;
}

StatusOr<CheckpointData> LoadNewestCheckpoint(
    const std::string& dir, std::vector<std::string>* warnings) {
  auto names = ListDirectory(dir);
  if (!names.ok()) return names.status();

  std::vector<std::pair<uint64_t, std::string>> candidates;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    if (ParseCheckpointFileName(name, &seq)) candidates.emplace_back(seq, name);
  }
  // Newest first; fall back to older checkpoints when validation fails.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [seq, name] : candidates) {
    std::string path = dir + "/" + name;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      if (warnings) warnings->push_back(path + ": unreadable; skipping");
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    auto data = DecodeCheckpoint(buffer.str());
    if (!data.ok()) {
      if (warnings) {
        warnings->push_back(path + ": " + data.status().message() +
                            "; skipping");
      }
      continue;
    }
    return data;
  }
  return Status::NotFound("no valid checkpoint in " + dir);
}

int PruneCheckpoints(const std::string& dir, uint64_t keep_seq) {
  auto names = ListDirectory(dir);
  if (!names.ok()) return 0;
  int removed = 0;
  for (const std::string& name : *names) {
    std::string path = dir + "/" + name;
    bool prune = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      prune = true;  // orphaned temp from an interrupted checkpoint
    } else {
      uint64_t seq = 0;
      if (ParseCheckpointFileName(name, &seq) && seq < keep_seq) prune = true;
    }
    if (prune && ::unlink(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace adalsh
