#include "io/binary_codec.h"

#include <utility>

namespace adalsh {

void EncodeRecord(const Record& record, BinaryWriter* writer) {
  writer->PutU32(static_cast<uint32_t>(record.num_fields()));
  for (FieldId f = 0; f < record.num_fields(); ++f) {
    const Field& field = record.field(f);
    writer->PutU8(static_cast<uint8_t>(field.kind()));
    writer->PutU32(static_cast<uint32_t>(field.size()));
    if (field.is_dense()) {
      for (float v : field.dense()) writer->PutF32(v);
    } else {
      for (uint64_t t : field.tokens()) writer->PutU64(t);
    }
  }
  writer->PutString(record.label());
}

StatusOr<Record> DecodeRecord(BinaryReader* reader) {
  auto num_fields = reader->GetU32();
  if (!num_fields.ok()) return num_fields.status();
  std::vector<Field> fields;
  fields.reserve(*num_fields);
  for (uint32_t f = 0; f < *num_fields; ++f) {
    auto kind = reader->GetU8();
    if (!kind.ok()) return kind.status();
    auto size = reader->GetU32();
    if (!size.ok()) return size.status();
    // A declared size that exceeds the remaining bytes is corruption; check
    // up front so a bit flip in the size field can't trigger a huge reserve.
    if (*kind == static_cast<uint8_t>(Field::Kind::kDenseVector)) {
      if (reader->remaining() < static_cast<size_t>(*size) * 4) {
        return Status::OutOfRange("dense field overruns payload");
      }
      std::vector<float> values;
      values.reserve(*size);
      for (uint32_t i = 0; i < *size; ++i) {
        auto v = reader->GetF32();
        if (!v.ok()) return v.status();
        values.push_back(*v);
      }
      fields.push_back(Field::DenseVector(std::move(values)));
    } else if (*kind == static_cast<uint8_t>(Field::Kind::kTokenSet)) {
      if (reader->remaining() < static_cast<size_t>(*size) * 8) {
        return Status::OutOfRange("token field overruns payload");
      }
      std::vector<uint64_t> tokens;
      tokens.reserve(*size);
      for (uint32_t i = 0; i < *size; ++i) {
        auto t = reader->GetU64();
        if (!t.ok()) return t.status();
        tokens.push_back(*t);
      }
      fields.push_back(Field::TokenSet(std::move(tokens)));
    } else {
      return Status::InvalidArgument("unknown field kind " +
                                     std::to_string(*kind));
    }
  }
  auto label = reader->GetString();
  if (!label.ok()) return label.status();
  return Record(std::move(fields), *std::move(label));
}

}  // namespace adalsh
