#ifndef ADALSH_IO_CHECKPOINT_H_
#define ADALSH_IO_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "record/record.h"
#include "util/status.h"

namespace adalsh {

/// Engine checkpoints (docs/durability.md): a point-in-time serialization of
/// everything recovery needs to rebuild the engine without the log —
/// the live records with their external ids, the id counter, and the pinned
/// cost model. Forests, hash caches and adopted hashes are deliberately NOT
/// stored: the engine's confluence contract makes a fresh ingest of the live
/// set byte-identical to the incremental history, so re-deriving them on
/// load is both simpler and self-verifying (the differential tests compare
/// exactly this).
///
/// File format: magic "ADLSHCP1" | body | u32 crc32c(body), where body is
///   u64 last_seq | u64 next_external_id | u64 generation | u32 shards |
///   u8 has_cost_model | f64 cost_per_hash | f64 cost_per_pair |
///   u64 n | n * (u64 external_id | record)
///
/// Atomicity: written to `<dir>/checkpoint-<seq>.tmp`, fsynced, renamed to
/// `<dir>/checkpoint-<seq>`, directory fsynced. A crash leaves either the
/// old set of checkpoints or the old set plus a complete new one — never a
/// half-written file under the final name. Loaders pick the newest (highest
/// seq) file whose CRC validates, skipping damaged ones with a warning.
struct CheckpointData {
  /// The WAL sequence number of the last mutation folded into this
  /// checkpoint; replay applies only frames with seq > last_seq.
  uint64_t last_seq = 0;

  uint64_t next_external_id = 0;

  /// Snapshot generation at write time. Diagnostic only — recovery rebuilds
  /// publications from scratch, so generations restart (docs/durability.md).
  uint64_t generation = 0;

  /// Shard count of the engine that wrote the checkpoint; a mismatch with
  /// the recovering configuration is a stale-layout error (the id->shard
  /// routing changed, so per-shard logs no longer line up).
  uint32_t shards = 0;

  bool has_cost_model = false;
  double cost_per_hash = 0;
  double cost_per_pair = 0;

  /// Live records and their external ids, parallel, sorted by id ascending.
  std::vector<uint64_t> ids;
  std::vector<Record> records;
};

/// Writes `data` atomically into `dir` (which must exist) and returns the
/// final path. Passes through the kCheckpointWrite fault site twice: before
/// the temp-file write and again between fsync and rename, so crash tests
/// can strand either a missing checkpoint or an orphaned .tmp.
StatusOr<std::string> WriteCheckpoint(const std::string& dir,
                                      const CheckpointData& data);

/// Loads the newest valid checkpoint in `dir`. NotFound when none exists
/// (fresh data dir, or every candidate failed validation). Damaged
/// candidates are skipped and reported via `warnings` (when non-null), not
/// as errors — recovery falls back to older checkpoints and the log.
StatusOr<CheckpointData> LoadNewestCheckpoint(
    const std::string& dir, std::vector<std::string>* warnings);

/// Deletes every `checkpoint-*` file in `dir` whose seq is older than
/// `keep_seq`, plus any orphaned `.tmp`. Best-effort; returns the number of
/// files removed.
int PruneCheckpoints(const std::string& dir, uint64_t keep_seq);

}  // namespace adalsh

#endif  // ADALSH_IO_CHECKPOINT_H_
