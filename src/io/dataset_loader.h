#ifndef ADALSH_IO_DATASET_LOADER_H_
#define ADALSH_IO_DATASET_LOADER_H_

#include <istream>
#include <string>
#include <vector>

#include "record/dataset.h"
#include "util/status.h"

namespace adalsh {

/// How one CSV column maps into the record model.
struct ColumnSpec {
  enum class Kind {
    kLabel,         // record display label (not a feature)
    kEntity,        // ground-truth entity key (string; mapped to dense ids)
    kTextShingles,  // token-set field: word n-shingles of the text
    kTextSpotSigs,  // token-set field: spot signatures of the text
    kDenseVector,   // dense field: ';'- or space-separated floats
    kIgnore,        // skipped
  };
  Kind kind = Kind::kIgnore;
  int shingle_size = 1;  // for kTextShingles
};

/// Parses a comma-separated column-spec string, one token per CSV column:
///   label | entity | text | textN (N-word shingles, e.g. text2) |
///   spotsigs | vector | ignore
/// Example for a citation file: "entity,text,text,text".
StatusOr<std::vector<ColumnSpec>> ParseColumnSpecs(const std::string& spec);

/// One CSV row parsed under a column spec: the record (feature fields +
/// label) plus the ground-truth entity key when the spec has an entity
/// column. Row-level counterpart of LoadCsvDataset, shared with the resident
/// serve mode (tools/adalsh_cli.cc), which feeds rows one at a time.
struct ParsedCsvRecord {
  Record record;
  std::string entity_key;
  bool has_entity = false;
  /// FieldId -> originating CSV column (for cross-row error messages).
  std::vector<size_t> field_columns;
};

/// Parses one already-split CSV row under `specs`. `line` is the 1-based
/// input line, used only for error messages. Fails with InvalidArgument on a
/// column-count mismatch or a malformed vector column. Cross-row invariants
/// (uniform dense dimensions) are the caller's to enforce.
StatusOr<ParsedCsvRecord> ParseCsvRecord(const std::vector<std::string>& row,
                                         const std::vector<ColumnSpec>& specs,
                                         size_t line);

/// Loads a CSV stream into a Dataset under `specs` (one spec per column;
/// rows with a different column count are an error). With a kEntity column,
/// ground truth comes from the file; otherwise every record becomes its own
/// entity (filtering still works; gold metrics become meaningless).
/// `has_header` skips the first row.
StatusOr<Dataset> LoadCsvDataset(std::istream* in,
                                 const std::vector<ColumnSpec>& specs,
                                 bool has_header, const std::string& name);

}  // namespace adalsh

#endif  // ADALSH_IO_DATASET_LOADER_H_
