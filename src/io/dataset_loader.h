#ifndef ADALSH_IO_DATASET_LOADER_H_
#define ADALSH_IO_DATASET_LOADER_H_

#include <istream>
#include <string>
#include <vector>

#include "record/dataset.h"
#include "util/status.h"

namespace adalsh {

/// How one CSV column maps into the record model.
struct ColumnSpec {
  enum class Kind {
    kLabel,         // record display label (not a feature)
    kEntity,        // ground-truth entity key (string; mapped to dense ids)
    kTextShingles,  // token-set field: word n-shingles of the text
    kTextSpotSigs,  // token-set field: spot signatures of the text
    kDenseVector,   // dense field: ';'- or space-separated floats
    kIgnore,        // skipped
  };
  Kind kind = Kind::kIgnore;
  int shingle_size = 1;  // for kTextShingles
};

/// Parses a comma-separated column-spec string, one token per CSV column:
///   label | entity | text | textN (N-word shingles, e.g. text2) |
///   spotsigs | vector | ignore
/// Example for a citation file: "entity,text,text,text".
StatusOr<std::vector<ColumnSpec>> ParseColumnSpecs(const std::string& spec);

/// Loads a CSV stream into a Dataset under `specs` (one spec per column;
/// rows with a different column count are an error). With a kEntity column,
/// ground truth comes from the file; otherwise every record becomes its own
/// entity (filtering still works; gold metrics become meaningless).
/// `has_header` skips the first row.
StatusOr<Dataset> LoadCsvDataset(std::istream* in,
                                 const std::vector<ColumnSpec>& specs,
                                 bool has_header, const std::string& name);

}  // namespace adalsh

#endif  // ADALSH_IO_DATASET_LOADER_H_
