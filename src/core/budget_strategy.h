#ifndef ADALSH_CORE_BUDGET_STRATEGY_H_
#define ADALSH_CORE_BUDGET_STRATEGY_H_

#include <string>
#include <vector>

namespace adalsh {

/// How the hash-function budget grows along the sequence H_1 ... H_L
/// (Section 5.2).
struct BudgetStrategy {
  enum class Mode {
    /// budget_i = start * multiplier^(i-1). The paper's default: start at 20
    /// and double ("the first function applies 20 hash functions, the second
    /// 40, the third 80, and so on").
    kExponential,
    /// budget_i = step * i (lin320: 320, 640, 960, ...).
    kLinear,
  };

  Mode mode = Mode::kExponential;
  int start = 20;        // exponential: budget of H_1
  double multiplier = 2; // exponential: growth factor
  int step = 320;        // linear: increment (and budget of H_1)

  /// The paper's default Exponential(20, 2).
  static BudgetStrategy Exponential(int start = 20, double multiplier = 2.0);
  static BudgetStrategy Linear(int step);

  /// Budget of the i-th function (0-based).
  int BudgetAt(int i) const;

  /// Budgets of the full sequence: strictly increasing values up to the first
  /// one >= max_budget (clamped to max_budget), which becomes H_L.
  std::vector<int> SequenceBudgets(int max_budget) const;

  std::string ToString() const;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_BUDGET_STRATEGY_H_
