#include "core/streaming_adaptive_lsh.h"

#include <optional>
#include <string>
#include <unordered_set>
#include <utility>

#include "clustering/bin_index.h"
#include "clustering/clustering.h"
#include "core/termination.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/timer.h"

namespace adalsh {

StreamingAdaptiveLsh::StreamingAdaptiveLsh(const Dataset& dataset,
                                           const MatchRule& rule,
                                           const AdaptiveLshConfig& config)
    : dataset_(&dataset),
      rule_(rule),
      config_(config),
      pool_(config.threads),
      sequence_([&] {
        Status valid = config.Validate();
        ADALSH_CHECK(valid.ok()) << valid.ToString();
        StatusOr<FunctionSequence> built =
            FunctionSequence::Build(rule, dataset.record(0), config.sequence);
        ADALSH_CHECK(built.ok()) << built.status().ToString();
        return std::move(built).value();
      }()),
      cost_model_(CostModel::Calibrate(dataset, rule,
                                       config.calibration_samples,
                                       config.seed, pool_.get(),
                                       config.instrumentation)),
      engine_(dataset, sequence_.structure(), config.seed),
      hasher_(&engine_, &forest_, dataset.num_records(), pool_.get(),
              config.instrumentation),
      pairwise_(dataset, rule, pool_.get(), config.instrumentation) {
  cost_model_.set_pairwise_noise_factor(config.pairwise_noise_factor);
  level1_tables_.resize(sequence_.plan(0).tables.size());
  leaf_of_.assign(dataset.num_records(), kInvalidNode);
  last_fn_.assign(dataset.num_records(), 0);
}

void StreamingAdaptiveLsh::ReindexLeaves(NodeId root) {
  forest_.ForEachLeafNode(
      root, [this](RecordId r, NodeId leaf) { leaf_of_[r] = leaf; });
}

void StreamingAdaptiveLsh::Add(RecordId r) {
  ADALSH_CHECK_LT(r, dataset_->num_records());
  ADALSH_CHECK_EQ(leaf_of_[r], kInvalidNode) << "record added twice";
  const SchemePlan& plan = sequence_.plan(0);
  engine_.EnsureHashes(r, plan);
  last_fn_[r] = 0;  // arrival evidence is level-1 only
  ++num_added_;

  bool merged_any = false;
  for (size_t t = 0; t < plan.tables.size(); ++t) {
    uint64_t key = engine_.TableKey(r, plan.tables[t]);
    auto [it, inserted] = level1_tables_[t].try_emplace(key, r);
    if (inserted) {
      if (leaf_of_[r] == kInvalidNode) {
        forest_.MakeTree(r, /*producer=*/0, &leaf_of_[r]);
      }
      continue;
    }
    RecordId other = it->second;
    NodeId other_root = forest_.FindRoot(leaf_of_[other]);
    if (leaf_of_[r] == kInvalidNode) {
      leaf_of_[r] = forest_.AddLeaf(other_root, r);
      // New member joined on level-1 evidence: the cluster must be
      // re-verified by a later TopK().
      forest_.SetProducer(other_root, 0);
      merged_any = true;
    } else {
      NodeId my_root = forest_.FindRoot(leaf_of_[r]);
      if (my_root != other_root) {
        NodeId survivor = forest_.Merge(my_root, other_root);
        forest_.SetProducer(survivor, 0);
        merged_any = true;
      }
    }
    it->second = r;
  }
  if (plan.tables.empty() && leaf_of_[r] == kInvalidNode) {
    forest_.MakeTree(r, 0, &leaf_of_[r]);
  }
  arrivals_merged_ += merged_any ? 1 : 0;
}

Status StreamingAdaptiveLsh::Extend(std::span<const RecordId> records) {
  if (config_.controller != nullptr &&
      config_.controller->cancel_requested()) {
    return Status::FailedPrecondition(
        "Extend after Cancel(): the attached controller is sticky-cancelled; "
        "attach a fresh controller to keep ingesting");
  }
  // Validate the full batch before touching any state (all-or-nothing).
  std::unordered_set<RecordId> batch;
  batch.reserve(records.size());
  for (RecordId r : records) {
    if (r >= dataset_->num_records()) {
      return Status::OutOfRange("Extend: record id " + std::to_string(r) +
                                " >= dataset size " +
                                std::to_string(dataset_->num_records()));
    }
    if (r < leaf_of_.size() && leaf_of_[r] != kInvalidNode) {
      return Status::InvalidArgument("Extend: record " + std::to_string(r) +
                                     " was already ingested");
    }
    if (!batch.insert(r).second) {
      return Status::InvalidArgument("Extend: record " + std::to_string(r) +
                                     " appears twice in the batch");
    }
  }
  // The dataset may have grown since construction (resident-engine append);
  // extend every per-record structure before ingesting.
  const size_t n = dataset_->num_records();
  if (n > leaf_of_.size()) {
    leaf_of_.resize(n, kInvalidNode);
    last_fn_.resize(n, 0);
    engine_.GrowTo(n);
    hasher_.GrowTo(n);
    pairwise_.NotifyDatasetGrown();
  }
  for (RecordId r : records) Add(r);
  return Status::Ok();
}

FilterOutput StreamingAdaptiveLsh::TopK(int k) {
  ADALSH_CHECK_GE(k, 1);
  ADALSH_CHECK_GT(num_added_, 0u) << "TopK before any Add";
  Timer timer;
  const int last_function = static_cast<int>(sequence_.size()) - 1;

  // Current clusters: distinct roots over all added records.
  BinIndex bins(dataset_->num_records());
  {
    std::unordered_set<NodeId> seen;
    for (RecordId r = 0; r < leaf_of_.size(); ++r) {
      if (leaf_of_[r] == kInvalidNode) continue;
      NodeId root = forest_.FindRoot(leaf_of_[r]);
      if (seen.insert(root).second) {
        bins.Insert(root, forest_.LeafCount(root));
      }
    }
  }

  const Instrumentation instr = config_.instrumentation;
  FilterStats stats;
  uint64_t sims_before = pairwise_.total_similarities();
  uint64_t hashes_before = engine_.total_hashes_computed();

  // Anytime execution (docs/robustness.md). The engine and the pairwise
  // computer are long-lived and their counters are cumulative across the
  // stream, so the controller is armed with the current totals as the zero
  // points of this call's budgets; the persistent hasher/pairwise borrow the
  // controller only for the duration of this call.
  std::optional<RunController> local_controller;
  RunController* controller =
      ResolveController(config_.controller, config_.budget, &local_controller,
                        hashes_before, sims_before);
  hasher_.set_controller(controller);
  pairwise_.set_controller(controller);
  auto stop_now = [&] {
    if (controller == nullptr) return false;
    controller->ReportHashes(engine_.total_hashes_computed());
    controller->ReportPairwise(pairwise_.total_similarities());
    return controller->ShouldStop();
  };

  std::vector<NodeId> finals;
  while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
    if (stop_now()) break;  // round boundary (anytime exit)
    NodeId root = bins.PopLargest();
    int producer = forest_.Producer(root);
    if (producer == kProducerPairwise || producer == last_function) {
      finals.push_back(root);
      continue;
    }
    std::vector<RecordId> records = forest_.Leaves(root);
    int next = producer + 1;

    RoundRecord round;
    round.round = stats.rounds + 1;
    round.cluster_size = records.size();
    const uint64_t round_hashes_before = engine_.total_hashes_computed();
    const uint64_t round_sims_before = pairwise_.total_similarities();
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = round.round;
      start.cluster_size = records.size();
      start.producer = producer;
      instr.observer->OnRoundStart(start);
    }

    // Interruption handling, as in AdaptiveLsh::Run: an interrupted sweep's
    // partial trees are orphaned, the original tree (and leaf_of_, which
    // still points into it) is untouched, and the cluster keeps its previous
    // verification level.
    bool interrupted = false;
    std::vector<NodeId> new_roots;
    if (cost_model_.ShouldJumpToPairwise(sequence_.budget(producer),
                                         sequence_.budget(next),
                                         records.size())) {
      round.action = RoundAction::kPairwise;
      round.modeled_cost = cost_model_.PairwiseCost(records.size());
      new_roots = pairwise_.Apply(records, &forest_);
      round.pairwise_seconds = round_timer.ElapsedSeconds();
      interrupted = pairwise_.last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn_[r] = kLastFunctionPairwise;
      }
    } else {
      round.action = RoundAction::kHash;
      round.function_index = next;
      round.modeled_cost =
          cost_model_.HashUpgradeCost(sequence_.budget(producer),
                                      sequence_.budget(next)) *
          static_cast<double>(records.size());
      new_roots = hasher_.Apply(records, sequence_.plan(next), next);
      round.hash_seconds = round_timer.ElapsedSeconds();
      interrupted = hasher_.last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn_[r] = next;
      }
    }
    round.interrupted = interrupted;
    round.hashes_computed =
        engine_.total_hashes_computed() - round_hashes_before;
    round.pairwise_similarities =
        pairwise_.total_similarities() - round_sims_before;
    round.wall_seconds = round_timer.ElapsedSeconds();
    ++stats.rounds;
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("rounds", 1);
      instr.metrics->RecordValue("round_cluster_size",
                                 static_cast<double>(round.cluster_size));
      instr.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
    }
    stats.round_records.push_back(round);
    if (instr.observer != nullptr) {
      instr.observer->OnRoundEnd(stats.round_records.back());
    }

    if (interrupted) {
      // Discard the round: do NOT reindex (leaf_of_ must keep pointing into
      // the original tree). The stuck controller ends the loop at its next
      // check; the fill below may still return this cluster.
      bins.Insert(root, forest_.LeafCount(root));
      continue;
    }
    for (NodeId new_root : new_roots) {
      // Track the new leaves so future arrivals and TopK calls resolve the
      // current cluster of every record.
      ReindexLeaves(new_root);
      bins.Insert(new_root, forest_.LeafCount(new_root));
    }
  }
  if (controller != nullptr && controller->stopped()) {
    // Graceful degradation: the largest pending clusters complete the top-k
    // at their current verification level (pops stay non-increasing, so the
    // ranking is preserved).
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      finals.push_back(bins.PopLargest());
    }
  }
  // Detach before returning: a run-local controller dies with this call, and
  // Add() must never observe a stale pointer.
  hasher_.set_controller(nullptr);
  pairwise_.set_controller(nullptr);

  FilterOutput output;
  output.clusters = MaterializeClusters(forest_, finals);
  FillClusterVerification(forest_, finals, &stats);
  output.clusters.SortBySizeDescending();
  stats.termination_reason = controller != nullptr
                                 ? controller->reason()
                                 : TerminationReason::kCompleted;
  stats.filtering_seconds = timer.ElapsedSeconds();
  stats.pairwise_similarities = pairwise_.total_similarities() - sims_before;
  stats.hashes_computed = engine_.total_hashes_computed() - hashes_before;
  // Definition 3 snapshot over every added record: each is counted exactly
  // once, under the last function applied to it (filter_output.h invariants).
  stats.records_last_hashed_at.assign(sequence_.size(), 0);
  for (RecordId r = 0; r < leaf_of_.size(); ++r) {
    if (leaf_of_[r] == kInvalidNode) continue;
    if (last_fn_[r] == kLastFunctionPairwise) {
      ++stats.records_finished_by_pairwise;
    } else {
      ++stats.records_last_hashed_at[last_fn_[r]];
    }
  }
  stats.modeled_cost =
      cost_model_.cost_per_hash() * static_cast<double>(stats.hashes_computed) +
      cost_model_.cost_per_pair() *
          static_cast<double>(stats.pairwise_similarities);
  ReportTermination(instr, stats, output.clusters.clusters.size());
  output.stats = std::move(stats);
  return output;
}

}  // namespace adalsh
