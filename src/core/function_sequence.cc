#include "core/function_sequence.h"

#include <sstream>

#include "util/check.h"

namespace adalsh {

Status SequenceConfig::Validate() const {
  if (strategy.mode == BudgetStrategy::Mode::kExponential) {
    if (strategy.start < 1) {
      return Status::InvalidArgument("budget strategy start must be >= 1");
    }
    if (!(strategy.multiplier > 1.0)) {
      return Status::InvalidArgument(
          "budget strategy multiplier must be > 1.0");
    }
  } else if (strategy.step < 1) {
    return Status::InvalidArgument("budget strategy step must be >= 1");
  }
  if (max_budget < 1) {
    return Status::InvalidArgument("max_budget must be >= 1");
  }
  return optimizer.Validate();
}

StatusOr<FunctionSequence> FunctionSequence::Build(
    const MatchRule& rule, const Record& prototype,
    const SequenceConfig& config) {
  Status config_valid = config.Validate();
  if (!config_valid.ok()) return config_valid;
  Status valid = rule.Validate(prototype);
  if (!valid.ok()) return valid;
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  if (!structure.ok()) return structure.status();

  FunctionSequence sequence;
  sequence.structure_ = std::move(structure).value();

  std::vector<int> budgets = config.strategy.SequenceBudgets(config.max_budget);
  ADALSH_CHECK(!budgets.empty());
  for (size_t i = 0; i < budgets.size(); ++i) {
    const CompositeScheme* previous =
        i == 0 ? nullptr : &sequence.schemes_[i - 1];
    CompositeScheme scheme = OptimizeComposite(
        sequence.structure_, budgets[i], config.optimizer, previous);
    sequence.plans_.push_back(BuildPlan(sequence.structure_, scheme));
    sequence.schemes_.push_back(std::move(scheme));
  }
  return sequence;
}

const SchemePlan& FunctionSequence::plan(size_t i) const {
  ADALSH_CHECK_LT(i, plans_.size());
  return plans_[i];
}

const CompositeScheme& FunctionSequence::scheme(size_t i) const {
  ADALSH_CHECK_LT(i, schemes_.size());
  return schemes_[i];
}

int FunctionSequence::budget(size_t i) const {
  return scheme(i).budget();
}

std::string FunctionSequence::DebugString() const {
  std::ostringstream out;
  for (size_t i = 0; i < schemes_.size(); ++i) {
    out << "H_" << (i + 1) << ": budget=" << schemes_[i].budget() << " "
        << schemes_[i].ToString() << "\n";
  }
  return out.str();
}

}  // namespace adalsh
