#include "core/transitive_hash_function.h"

#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace adalsh {

TransitiveHasher::TransitiveHasher(HashEngine* engine,
                                   ParentPointerForest* forest,
                                   size_t num_records)
    : engine_(engine), forest_(forest) {
  ADALSH_CHECK(engine != nullptr && forest != nullptr);
  leaf_of_.assign(num_records, kInvalidNode);
  leaf_epoch_.assign(num_records, 0);
}

std::vector<NodeId> TransitiveHasher::Apply(
    const std::vector<RecordId>& records, const SchemePlan& plan,
    int producer) {
  ++epoch_;
  ADALSH_CHECK_NE(epoch_, 0u) << "epoch counter wrapped";

  // Fresh tables for this invocation; buckets remember only the last-added
  // record (Appendix B.2).
  std::vector<std::unordered_map<uint64_t, RecordId>> tables(
      plan.tables.size());
  for (auto& table : tables) table.reserve(records.size() * 2);

  auto has_leaf = [this](RecordId r) { return leaf_epoch_[r] == epoch_; };

  for (RecordId r : records) {
    engine_->EnsureHashes(r, plan);
    for (size_t t = 0; t < plan.tables.size(); ++t) {
      uint64_t key = engine_->TableKey(r, plan.tables[t]);
      auto [it, inserted] = tables[t].try_emplace(key, r);
      if (inserted) {
        // Cases 1/2 (Fig. 19a): empty bucket. Create r's tree if it has none;
        // either way r is now the bucket's last-added record.
        if (!has_leaf(r)) {
          NodeId leaf = kInvalidNode;
          forest_->MakeTree(r, producer, &leaf);
          leaf_of_[r] = leaf;
          leaf_epoch_[r] = epoch_;
        }
        continue;
      }
      RecordId other = it->second;
      ADALSH_CHECK(has_leaf(other));
      NodeId other_root = forest_->FindRoot(leaf_of_[other]);
      if (!has_leaf(r)) {
        // Case 3 (Fig. 19b): join the bucket's tree as a fresh leaf.
        leaf_of_[r] = forest_->AddLeaf(other_root, r);
        leaf_epoch_[r] = epoch_;
      } else {
        // Case 4 (Fig. 19c): merge the two trees if they differ.
        NodeId my_root = forest_->FindRoot(leaf_of_[r]);
        if (my_root != other_root) forest_->Merge(my_root, other_root);
      }
      it->second = r;  // r is now the record last added to this bucket
    }
    if (plan.tables.empty() && !has_leaf(r)) {
      // Degenerate plan with no tables: every record is its own cluster.
      NodeId leaf = kInvalidNode;
      forest_->MakeTree(r, producer, &leaf);
      leaf_of_[r] = leaf;
      leaf_epoch_[r] = epoch_;
    }
  }

  // Collect the distinct roots of the invocation's trees.
  std::vector<NodeId> roots;
  std::unordered_set<NodeId> seen;
  seen.reserve(records.size());
  for (RecordId r : records) {
    ADALSH_CHECK(has_leaf(r));
    NodeId root = forest_->FindRoot(leaf_of_[r]);
    if (seen.insert(root).second) roots.push_back(root);
  }
  return roots;
}

}  // namespace adalsh
