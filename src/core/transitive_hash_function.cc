#include "core/transitive_hash_function.h"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace adalsh {
namespace {

/// Records whose keys are computed per fork/join region. Bounds the key
/// buffer to kKeyBlock * num_tables values no matter how large the dataset
/// is, while keeping each fork large enough to amortize the join.
constexpr size_t kKeyBlock = 8192;

}  // namespace

TransitiveHasher::TransitiveHasher(HashEngine* engine,
                                   ParentPointerForest* forest,
                                   size_t num_records, ThreadPool* pool,
                                   Instrumentation instr,
                                   RunController* controller)
    : engine_(engine),
      forest_(forest),
      pool_(pool),
      instr_(instr),
      controller_(controller) {
  ADALSH_CHECK(engine != nullptr && forest != nullptr);
  leaf_of_.assign(num_records, kInvalidNode);
  leaf_epoch_.assign(num_records, 0);
}

void TransitiveHasher::GrowTo(size_t num_records) {
  if (num_records <= leaf_of_.size()) return;
  leaf_of_.resize(num_records, kInvalidNode);
  leaf_epoch_.resize(num_records, 0);
}

std::vector<NodeId> TransitiveHasher::Apply(
    const std::vector<RecordId>& records, const SchemePlan& plan,
    int producer) {
  ++epoch_;
  ADALSH_CHECK_NE(epoch_, 0u) << "epoch counter wrapped";
  interrupted_ = false;

  const bool observed = instr_.enabled();
  const uint64_t hashes_before = engine_->total_hashes_computed();
  Timer timer;  // read only when observed
  TraceRecorder::Span span(instr_.trace, "hash_pass", "hash");

  // Fresh tables for this invocation; buckets remember only the last-added
  // record (Appendix B.2).
  std::vector<std::unordered_map<uint64_t, RecordId>> tables(
      plan.tables.size());
  for (auto& table : tables) table.reserve(records.size() * 2);

  auto has_leaf = [this](RecordId r) { return leaf_epoch_[r] == epoch_; };

  const size_t num_tables = plan.tables.size();
  engine_->PreparePlan(plan);

  for (size_t base = 0; base < records.size(); base += kKeyBlock) {
    // Block-boundary cooperative check, on the driving thread at
    // input-deterministic boundaries (fault-injection site kHashApply).
    FaultInjectionPoint(FaultSite::kHashApply);
    if (controller_ != nullptr) {
      controller_->ReportHashes(engine_->total_hashes_computed());
      if (controller_->ShouldStop()) {
        interrupted_ = true;
        break;
      }
    }
    const size_t count = std::min(kKeyBlock, records.size() - base);
    std::span<const RecordId> block(records.data() + base, count);

    // Hot path, fanned out over the pool: per-record hash prefixes and all
    // bucket keys of the block. Each record's cache slots are touched by
    // exactly one worker; the fork/join below orders these writes before the
    // merge reads them.
    key_block_.resize(count * num_tables);
    ParallelFor(pool_, count, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        engine_->EnsureHashes(block[i], plan);
        for (size_t t = 0; t < num_tables; ++t) {
          key_block_[i * num_tables + t] =
              engine_->TableKey(block[i], plan.tables[t]);
        }
      }
    });

    // Stateful merge over precomputed keys: strictly serial, in record order,
    // so any thread count reproduces the single-threaded forest exactly.
    FaultInjectionPoint(FaultSite::kMerge);
    TraceRecorder::Span merge_span(instr_.trace, "merge", "hash");
    merge_span.AddArg("records", static_cast<double>(count));
    for (size_t i = 0; i < count; ++i) {
      RecordId r = block[i];
      for (size_t t = 0; t < num_tables; ++t) {
        uint64_t key = key_block_[i * num_tables + t];
        auto [it, inserted] = tables[t].try_emplace(key, r);
        if (inserted) {
          // Cases 1/2 (Fig. 19a): empty bucket. Create r's tree if it has
          // none; either way r is now the bucket's last-added record.
          if (!has_leaf(r)) {
            NodeId leaf = kInvalidNode;
            forest_->MakeTree(r, producer, &leaf);
            leaf_of_[r] = leaf;
            leaf_epoch_[r] = epoch_;
          }
          continue;
        }
        RecordId other = it->second;
        ADALSH_CHECK(has_leaf(other));
        NodeId other_root = forest_->FindRoot(leaf_of_[other]);
        if (!has_leaf(r)) {
          // Case 3 (Fig. 19b): join the bucket's tree as a fresh leaf.
          leaf_of_[r] = forest_->AddLeaf(other_root, r);
          leaf_epoch_[r] = epoch_;
        } else {
          // Case 4 (Fig. 19c): merge the two trees if they differ.
          NodeId my_root = forest_->FindRoot(leaf_of_[r]);
          if (my_root != other_root) forest_->Merge(my_root, other_root);
        }
        it->second = r;  // r is now the record last added to this bucket
      }
      if (plan.tables.empty() && !has_leaf(r)) {
        // Degenerate plan with no tables: every record is its own cluster.
        NodeId leaf = kInvalidNode;
        forest_->MakeTree(r, producer, &leaf);
        leaf_of_[r] = leaf;
        leaf_epoch_[r] = epoch_;
      }
    }
  }

  // Collect the distinct roots of the invocation's trees. Skipped on an
  // interrupted pass: records in unprocessed blocks have no leaf, and the
  // empty root set tells callers the round must be discarded.
  std::vector<NodeId> roots;
  if (!interrupted_) {
    std::unordered_set<NodeId> seen;
    seen.reserve(records.size());
    for (RecordId r : records) {
      ADALSH_CHECK(has_leaf(r));
      NodeId root = forest_->FindRoot(leaf_of_[r]);
      if (seen.insert(root).second) roots.push_back(root);
    }
  }

  if (observed) {
    const uint64_t hashes = engine_->total_hashes_computed() - hashes_before;
    span.AddArg("function_index", static_cast<double>(producer));
    span.AddArg("records", static_cast<double>(records.size()));
    span.AddArg("hashes", static_cast<double>(hashes));
    span.AddArg("clusters_out", static_cast<double>(roots.size()));
    if (instr_.metrics != nullptr) {
      instr_.metrics->AddCounter("hashes_computed", hashes);
      instr_.metrics->AddCounter("hash_passes", 1);
      instr_.metrics->RecordValue("hash_pass_records",
                                  static_cast<double>(records.size()));
    }
    if (instr_.observer != nullptr) {
      FunctionApplyInfo info;
      info.function_index = producer;
      info.records = records.size();
      info.hashes_computed = hashes;
      info.clusters_out = roots.size();
      info.seconds = timer.ElapsedSeconds();
      instr_.observer->OnFunctionApplied(info);
    }
  }
  return roots;
}

}  // namespace adalsh
