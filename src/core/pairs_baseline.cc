#include "core/pairs_baseline.h"

#include <optional>
#include <utility>

#include "clustering/bin_index.h"
#include "core/pairwise.h"
#include "core/termination.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

PairsBaseline::PairsBaseline(const Dataset& dataset, const MatchRule& rule,
                             int threads, Instrumentation instr,
                             RunBudget budget, RunController* controller)
    : dataset_(&dataset),
      rule_(rule),
      threads_(threads),
      instr_(instr),
      budget_(budget),
      controller_(controller) {
  Status budget_valid = budget.Validate();
  ADALSH_CHECK(budget_valid.ok()) << budget_valid.ToString();
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
}

FilterOutput PairsBaseline::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  Timer timer;
  std::optional<RunController> local_controller;
  RunController* controller =
      ResolveController(controller_, budget_, &local_controller);
  ScopedThreadPool pool(threads_);
  ParentPointerForest forest;
  PairwiseComputer pairwise(*dataset_, rule_, pool.get(), instr_, controller);

  // The single round: P over the whole dataset. Skipped on a pre-round-1
  // stop; an interrupted sweep keeps the partial components found so far
  // (every applied merge is an exact certified match — see the constructor
  // comment), recorded as an interrupted round.
  RoundRecord round;
  round.round = 1;
  round.action = RoundAction::kPairwise;
  round.cluster_size = dataset_->num_records();
  std::vector<NodeId> roots;
  bool ran_round = false;
  if (!StopRequested(controller)) {
    ran_round = true;
    Timer round_timer;
    {
      TraceRecorder::Span round_span(instr_.trace, "round", "round");
      if (instr_.observer != nullptr) {
        RoundStartInfo start;
        start.round = 1;
        start.cluster_size = dataset_->num_records();
        start.producer = -1;
        instr_.observer->OnRoundStart(start);
      }
      roots = pairwise.Apply(dataset_->AllRecordIds(), &forest);
    }
    round.pairwise_similarities = pairwise.total_similarities();
    round.wall_seconds = round_timer.ElapsedSeconds();
    round.pairwise_seconds = round.wall_seconds;
    round.interrupted = pairwise.last_apply_interrupted();
  }

  BinIndex bins(dataset_->num_records());
  for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
  std::vector<NodeId> finals;
  while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
    finals.push_back(bins.PopLargest());
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  FillClusterVerification(forest, finals, &output.stats);
  output.clusters.SortBySizeDescending();
  output.stats.termination_reason = controller != nullptr
                                        ? controller->reason()
                                        : TerminationReason::kCompleted;
  output.stats.filtering_seconds = timer.ElapsedSeconds();
  output.stats.rounds = ran_round ? 1 : 0;
  output.stats.pairwise_similarities = pairwise.total_similarities();
  // Pairs has no hashing functions: records_last_hashed_at stays empty and
  // every record treated by the sweep finishes under P (invariants in
  // filter_output.h). A pre-round-1 stop treated nothing.
  output.stats.records_finished_by_pairwise =
      ran_round ? dataset_->num_records() : 0;
  if (ran_round) {
    output.stats.round_records.push_back(round);
    if (instr_.observer != nullptr) {
      instr_.observer->OnRoundEnd(output.stats.round_records.back());
    }
    if (instr_.metrics != nullptr) {
      instr_.metrics->AddCounter("rounds", 1);
      instr_.metrics->RecordValue("round_cluster_size",
                                  static_cast<double>(round.cluster_size));
      instr_.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
    }
  }
  ReportTermination(instr_, output.stats, output.clusters.clusters.size());
  return output;
}

}  // namespace adalsh
