#include "core/pairs_baseline.h"

#include <utility>

#include "clustering/bin_index.h"
#include "core/pairwise.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

PairsBaseline::PairsBaseline(const Dataset& dataset, const MatchRule& rule,
                             int threads, Instrumentation instr)
    : dataset_(&dataset), rule_(rule), threads_(threads), instr_(instr) {
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
}

FilterOutput PairsBaseline::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  Timer timer;
  ScopedThreadPool pool(threads_);
  ParentPointerForest forest;
  PairwiseComputer pairwise(*dataset_, rule_, pool.get(), instr_);

  // The single round: P over the whole dataset.
  RoundRecord round;
  round.round = 1;
  round.action = RoundAction::kPairwise;
  round.cluster_size = dataset_->num_records();
  Timer round_timer;
  std::vector<NodeId> roots;
  {
    TraceRecorder::Span round_span(instr_.trace, "round", "round");
    if (instr_.observer != nullptr) {
      RoundStartInfo start;
      start.round = 1;
      start.cluster_size = dataset_->num_records();
      start.producer = -1;
      instr_.observer->OnRoundStart(start);
    }
    roots = pairwise.Apply(dataset_->AllRecordIds(), &forest);
  }
  round.pairwise_similarities = pairwise.total_similarities();
  round.wall_seconds = round_timer.ElapsedSeconds();
  round.pairwise_seconds = round.wall_seconds;

  BinIndex bins(dataset_->num_records());
  for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
  std::vector<NodeId> finals;
  while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
    finals.push_back(bins.PopLargest());
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  output.clusters.SortBySizeDescending();
  output.stats.filtering_seconds = timer.ElapsedSeconds();
  output.stats.rounds = 1;
  output.stats.pairwise_similarities = pairwise.total_similarities();
  // Pairs has no hashing functions: records_last_hashed_at stays empty and
  // every record finishes under P (invariants in filter_output.h).
  output.stats.records_finished_by_pairwise = dataset_->num_records();
  output.stats.round_records.push_back(round);
  if (instr_.observer != nullptr) {
    instr_.observer->OnRoundEnd(output.stats.round_records.back());
  }
  if (instr_.metrics != nullptr) {
    instr_.metrics->AddCounter("rounds", 1);
    instr_.metrics->RecordValue("round_cluster_size",
                                static_cast<double>(round.cluster_size));
    instr_.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
  }
  return output;
}

}  // namespace adalsh
