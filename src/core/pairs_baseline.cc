#include "core/pairs_baseline.h"

#include <utility>

#include "clustering/bin_index.h"
#include "core/pairwise.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

PairsBaseline::PairsBaseline(const Dataset& dataset, const MatchRule& rule,
                             int threads)
    : dataset_(&dataset), rule_(rule), threads_(threads) {
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
}

FilterOutput PairsBaseline::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  Timer timer;
  ScopedThreadPool pool(threads_);
  ParentPointerForest forest;
  PairwiseComputer pairwise(*dataset_, rule_, pool.get());
  std::vector<NodeId> roots =
      pairwise.Apply(dataset_->AllRecordIds(), &forest);

  BinIndex bins(dataset_->num_records());
  for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
  std::vector<NodeId> finals;
  while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
    finals.push_back(bins.PopLargest());
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  output.clusters.SortBySizeDescending();
  output.stats.filtering_seconds = timer.ElapsedSeconds();
  output.stats.rounds = 1;
  output.stats.pairwise_similarities = pairwise.total_similarities();
  output.stats.records_finished_by_pairwise = dataset_->num_records();
  return output;
}

}  // namespace adalsh
