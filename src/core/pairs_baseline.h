#ifndef ADALSH_CORE_PAIRS_BASELINE_H_
#define ADALSH_CORE_PAIRS_BASELINE_H_

#include "core/filter_output.h"
#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The Pairs baseline (Section 6.1.1): the pairwise computation function P
/// applied to the whole dataset — the traditional transitive-closure
/// algorithm — with the transitive-closure skipping optimization and the
/// shared data structures. Quadratic in |R|; the yardstick the filtering
/// methods are measured against.
class PairsBaseline {
 public:
  PairsBaseline(const Dataset& dataset, const MatchRule& rule);

  PairsBaseline(const PairsBaseline&) = delete;
  PairsBaseline& operator=(const PairsBaseline&) = delete;

  /// Resolves the whole dataset exactly and returns the k largest clusters.
  FilterOutput Run(int k);

 private:
  const Dataset* dataset_;
  MatchRule rule_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_PAIRS_BASELINE_H_
