#ifndef ADALSH_CORE_PAIRS_BASELINE_H_
#define ADALSH_CORE_PAIRS_BASELINE_H_

#include "core/filter_output.h"
#include "distance/rule.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/run_controller.h"

namespace adalsh {

/// The Pairs baseline (Section 6.1.1): the pairwise computation function P
/// applied to the whole dataset — the traditional transitive-closure
/// algorithm — with the transitive-closure skipping optimization and the
/// shared data structures. Quadratic in |R|; the yardstick the filtering
/// methods are measured against.
class PairsBaseline {
 public:
  /// `threads` sizes the pairwise sweep's worker pool with the usual
  /// convention (docs/threading.md): 1 = strictly serial (the default,
  /// matching the baseline's traditional single-threaded formulation),
  /// 0 = the global pool, N > 1 = a private pool of N workers. Output is
  /// byte-identical at any setting.
  /// `budget` / `controller` attach anytime-execution limits with the same
  /// contract as the AdaptiveLshConfig fields (docs/robustness.md). Unlike
  /// the hashing methods, a mid-sweep stop keeps the partial components
  /// found so far: every merge P has applied is an exact certified match, so
  /// the partial clustering is a valid under-merged answer (some records
  /// that belong together are still apart — never the reverse).
  PairsBaseline(const Dataset& dataset, const MatchRule& rule,
                int threads = 1, Instrumentation instr = {},
                RunBudget budget = {}, RunController* controller = nullptr);

  PairsBaseline(const PairsBaseline&) = delete;
  PairsBaseline& operator=(const PairsBaseline&) = delete;

  /// Resolves the whole dataset exactly and returns the k largest clusters.
  FilterOutput Run(int k);

 private:
  const Dataset* dataset_;
  MatchRule rule_;
  int threads_;
  Instrumentation instr_;
  RunBudget budget_;
  RunController* controller_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_PAIRS_BASELINE_H_
