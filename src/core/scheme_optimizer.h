#ifndef ADALSH_CORE_SCHEME_OPTIMIZER_H_
#define ADALSH_CORE_SCHEME_OPTIMIZER_H_

#include <vector>

#include "distance/collision_model.h"
#include "lsh/composite_scheme.h"
#include "lsh/scheme.h"
#include "util/status.h"

namespace adalsh {

/// Tuning knobs for the scheme-selection programs of Section 5.1 and
/// Appendix C. Defaults follow the paper (epsilon = 0.001, Example 5).
struct OptimizerConfig {
  /// Parameter eps of the distance-threshold constraint (Eq. 3):
  /// collision probability at the threshold must be at least 1 - epsilon.
  double epsilon = 0.001;

  /// Simpson subintervals (per axis) for objective evaluation during search.
  int search_intervals = 24;

  /// Simpson subintervals for the reported objective of the chosen scheme.
  int final_intervals = 128;

  /// Cap on any single w during search (guards degenerate scans).
  int max_w = 4096;

  /// How many of the largest feasible w values get an exact objective
  /// evaluation in the single-unit program. The objective is monotone
  /// decreasing in w for exact divisors; the remainder correction perturbs
  /// that only locally, so evaluating the largest feasible candidates finds
  /// the optimum (see DESIGN.md).
  int objective_candidates = 64;

  /// Number of budget-split candidates per group pair in the OR program.
  int or_split_steps = 32;

  /// InvalidArgument with a field-specific message on the first out-of-range
  /// knob; called from the config Validate() of every method that embeds an
  /// OptimizerConfig.
  Status Validate() const;
};

/// One hashable unit as the optimizer sees it: its collision model p(x)
/// (assumed monotone non-increasing), its distance threshold, and a lower
/// bound on w carried over from the previous function in the sequence
/// (Appendix C.1's w >= w' constraint, which maximizes hash reuse).
struct OptimizerUnit {
  CollisionModel p;
  double threshold = 0.0;
  int min_w = 1;
};

/// Program (1)-(3): selects the (w, z)-scheme for a single unit under
/// `budget` total hash functions, including the paper's non-integer budget/w
/// remainder handling. If no feasible w exists the most conservative scheme
/// (w = min_w) is returned with constraint_met = false.
WzScheme OptimizeSingleScheme(const OptimizerUnit& unit, int budget,
                              const OptimizerConfig& config);

/// Programs (4)-(6) generalized to n units (Appendix C.1 / C.4): selects the
/// per-unit hash counts w[u] and the table count z for one AND group. Exact
/// exhaustive search for 1-2 units; coordinate descent for more. Single-unit
/// groups use the remainder table; multi-unit groups use z = budget /
/// sum(w) and may leave < sum(w) budget unused.
GroupScheme OptimizeAndGroup(const std::vector<OptimizerUnit>& units,
                             int budget, const OptimizerConfig& config);

/// Full composite optimization: per-group AND programs plus the OR budget
/// split of Programs (7)-(10) (the OR objective factorizes across groups, so
/// each split candidate reduces to independent group programs — see
/// DESIGN.md). `previous` (nullable) supplies per-unit minimum w values from
/// the previous function in the sequence.
CompositeScheme OptimizeComposite(const RuleHashStructure& structure,
                                  int budget, const OptimizerConfig& config,
                                  const CompositeScheme* previous);

/// The collision curve of a whole composite scheme at per-unit distances
/// `x` (one entry per unit): probability that two records at those distances
/// share at least one bucket. Exposed for tests and the Fig. 5/7 bench.
double CompositeCollisionProbability(const RuleHashStructure& structure,
                                     const CompositeScheme& scheme,
                                     const std::vector<double>& x);

}  // namespace adalsh

#endif  // ADALSH_CORE_SCHEME_OPTIMIZER_H_
