#ifndef ADALSH_CORE_COST_MODEL_H_
#define ADALSH_CORE_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "distance/rule.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adalsh {

/// How Line 5 of Algorithm 1 estimates the cost of applying P to a cluster.
enum class JumpModel {
  /// The paper's model (Definition 3): cost_P * C(|C|, 2). Deliberately
  /// conservative — it ignores the transitive-closure skipping of Appendix
  /// B.3, under which P on an (almost) pure cluster costs ~|C| evaluations,
  /// not C(|C|, 2).
  kConservative,

  /// The Appendix D.2 direction ("an algorithm could benefit ... when it
  /// keeps estimates of the sizes of sub-clusters inside each cluster"):
  /// sample a few random pairs inside the cluster, estimate the match
  /// fraction m, and model P's closure-skipped cost as
  ///   cost_P * (C(round(|C|*(1-m)), 2) + |C|) —
  /// the residual non-matching core plus one linear pass. The sampling cost
  /// (a handful of rule evaluations) is charged to the run. Large pure
  /// clusters — the paper's image scenario, where "applying P on the top-1
  /// entity often takes more than 50% of the execution time" — jump to P
  /// much earlier under this model.
  kSampledPurity,
};

/// The cost model of Definition 3, with unit costs calibrated by sampling:
///   * applying function H_i (budget_i hash functions) to a set S costs
///     cost_i * |S|, where cost_i = cost_per_hash * budget_i;
///   * upgrading a record from H_j to H_i costs cost_i - cost_j (incremental
///     computation);
///   * applying the pairwise function P to S costs cost_P * C(|S|, 2).
///
/// `pairwise_noise_factor` scales the P estimate to reproduce the
/// noise-sensitivity study of Appendix E.2 (Fig. 21): a factor below 1
/// under-estimates P (applied sooner, on larger clusters) and above 1
/// over-estimates it (deferred to smaller clusters).
class CostModel {
 public:
  CostModel(double cost_per_hash, double cost_per_pair)
      : cost_per_hash_(cost_per_hash), cost_per_pair_(cost_per_pair) {}

  /// Estimates unit costs by timing `samples` rule evaluations on random
  /// record pairs and `samples` batched hash computations on random records
  /// (the paper calibrates with 100 samples of each). The probe hashes are
  /// computed on throwaway families so the caller's caches are untouched.
  /// When `pool` is non-null both probe loops run on it, so the estimated
  /// unit costs reflect the per-thread throughput the parallel hot path will
  /// actually see (both costs scale by the same concurrency, preserving the
  /// hash/pairwise ratio Line 5 compares). The sampled records are identical
  /// at any thread count. `instr` makes the calibration observable: a
  /// `calibration` trace span, probe-count counters and the resulting unit
  /// costs as gauges.
  static CostModel Calibrate(const Dataset& dataset, const MatchRule& rule,
                             int samples, uint64_t seed,
                             ThreadPool* pool = nullptr,
                             Instrumentation instr = {});

  /// Cost of applying a budget-b function to one record from scratch.
  double HashCost(int budget) const { return cost_per_hash_ * budget; }

  /// Incremental cost of moving one record from a budget-a to a budget-b
  /// function (b >= a).
  double HashUpgradeCost(int budget_from, int budget_to) const {
    return cost_per_hash_ * (budget_to - budget_from);
  }

  /// Modeled cost of P on a set of n records (with the noise factor).
  double PairwiseCost(uint64_t n) const;

  /// Line 5 of Algorithm 1 under the conservative model: true when upgrading
  /// the cluster to the next function costs at least as much as running P on
  /// it, i.e. (cost_{t+1} - cost_t) * |C| >= cost_P * C(|C|, 2).
  bool ShouldJumpToPairwise(int budget_from, int budget_to,
                            uint64_t cluster_size) const;

  /// Line 5 under JumpModel::kSampledPurity: estimates the cluster's match
  /// fraction from `sample_pairs` random in-cluster rule evaluations and
  /// compares the upgrade cost against the closure-skipped P estimate (see
  /// JumpModel). `rng` drives the sampling; `*sample_evals_out` (optional)
  /// receives the number of rule evaluations spent, which the caller should
  /// charge to the run's pairwise count. Falls back to the conservative rule
  /// for clusters too small to sample meaningfully.
  bool ShouldJumpToPairwiseSampled(const Dataset& dataset,
                                   const MatchRule& rule,
                                   const std::vector<RecordId>& cluster,
                                   int budget_from, int budget_to, Rng* rng,
                                   int sample_pairs = 20,
                                   uint64_t* sample_evals_out = nullptr) const;

  double cost_per_hash() const { return cost_per_hash_; }
  double cost_per_pair() const { return cost_per_pair_; }

  void set_pairwise_noise_factor(double factor) {
    pairwise_noise_factor_ = factor;
  }
  double pairwise_noise_factor() const { return pairwise_noise_factor_; }

 private:
  double cost_per_hash_;
  double cost_per_pair_;
  double pairwise_noise_factor_ = 1.0;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_COST_MODEL_H_
