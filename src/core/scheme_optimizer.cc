#include "core/scheme_optimizer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/numeric.h"

namespace adalsh {

Status OptimizerConfig::Validate() const {
  if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
    return Status::InvalidArgument(
        "optimizer epsilon must be in the open interval (0, 1)");
  }
  if (search_intervals < 1 || final_intervals < 1) {
    return Status::InvalidArgument(
        "optimizer Simpson interval counts must be >= 1");
  }
  if (max_w < 1) {
    return Status::InvalidArgument("optimizer max_w must be >= 1");
  }
  if (objective_candidates < 1) {
    return Status::InvalidArgument(
        "optimizer objective_candidates must be >= 1");
  }
  if (or_split_steps < 1) {
    return Status::InvalidArgument("optimizer or_split_steps must be >= 1");
  }
  return Status::Ok();
}

namespace {

/// Collision probability of one AND group at per-unit distances x:
/// 1 - (1 - prod_u p_u(x_u)^{w_u})^z * [single-unit remainder correction].
double GroupProbability(const std::vector<OptimizerUnit>& units,
                        const std::vector<int>& w, int z, int w_rem,
                        const std::vector<double>& x) {
  double product = 1.0;
  for (size_t u = 0; u < units.size(); ++u) {
    product *= PowInt(units[u].p(x[u]), static_cast<uint64_t>(w[u]));
  }
  double miss = PowInt(1.0 - product, static_cast<uint64_t>(z));
  if (w_rem > 0) {
    ADALSH_CHECK_EQ(units.size(), 1u);
    miss *= 1.0 - PowInt(units[0].p(x[0]), static_cast<uint64_t>(w_rem));
  }
  return 1.0 - miss;
}

/// True when the group satisfies the distance-threshold constraint (Eq. 3 /
/// Eq. 6): collision probability at the per-unit thresholds >= 1 - epsilon.
/// p(x) monotone non-increasing makes the thresholds the binding point.
bool GroupFeasible(const std::vector<OptimizerUnit>& units,
                   const std::vector<int>& w, int z, int w_rem,
                   double epsilon) {
  std::vector<double> at_thresholds(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    at_thresholds[u] = units[u].threshold;
  }
  return GroupProbability(units, w, z, w_rem, at_thresholds) >= 1.0 - epsilon;
}

/// Group objective (Eq. 1 / Eq. 4): integral of the collision probability
/// over the unit hypercube of distances, by nested Simpson integration.
double GroupObjective(const std::vector<OptimizerUnit>& units,
                      const std::vector<int>& w, int z, int w_rem,
                      int intervals) {
  size_t n = units.size();
  if (n == 1) {
    return SimpsonIntegrate(
        [&](double x) { return GroupProbability(units, w, z, w_rem, {x}); },
        0.0, 1.0, intervals);
  }
  if (n == 2) {
    return SimpsonIntegrate2D(
        [&](double x0, double x1) {
          return GroupProbability(units, w, z, w_rem, {x0, x1});
        },
        0.0, 1.0, 0.0, 1.0, intervals);
  }
  // n >= 3: recursive nested Simpson with a reduced per-axis resolution.
  int per_axis = std::max(4, intervals / static_cast<int>(n));
  std::vector<double> x(n, 0.0);
  std::function<double(size_t)> integrate_axis = [&](size_t axis) -> double {
    return SimpsonIntegrate(
        [&](double value) {
          x[axis] = value;
          if (axis + 1 == n) return GroupProbability(units, w, z, w_rem, x);
          return integrate_axis(axis + 1);
        },
        0.0, 1.0, per_axis);
  };
  return integrate_axis(0);
}

/// Smallest viable budget for a group: one table of min_w hashes per unit.
int MinimalGroupBudget(const std::vector<OptimizerUnit>& units) {
  int total = 0;
  for (const OptimizerUnit& unit : units) total += std::max(1, unit.min_w);
  return total;
}

/// Multi-unit AND search by coordinate descent over the per-unit counts, with
/// two starts (most-conservative corner and balanced point). Exhaustive in
/// each coordinate; the budget fixes z = budget / sum(w).
GroupScheme OptimizeMultiUnitGroup(const std::vector<OptimizerUnit>& units,
                                   int budget, const OptimizerConfig& config) {
  size_t n = units.size();
  std::vector<int> min_w(n);
  int min_total = 0;
  for (size_t u = 0; u < n; ++u) {
    min_w[u] = std::max(1, units[u].min_w);
    min_total += min_w[u];
  }

  GroupScheme fallback;
  fallback.w = min_w;
  fallback.z = std::max(1, budget / min_total);
  fallback.w_rem = 0;
  fallback.constraint_met =
      GroupFeasible(units, fallback.w, fallback.z, 0, config.epsilon);
  fallback.objective =
      GroupObjective(units, fallback.w, fallback.z, 0, config.final_intervals);
  if (budget < min_total) {
    // Not enough budget for even one full table: run the single conservative
    // table anyway (slightly over budget); typical only for tiny early
    // functions in a sequence.
    fallback.z = 1;
    fallback.constraint_met =
        GroupFeasible(units, fallback.w, 1, 0, config.epsilon);
    fallback.objective =
        GroupObjective(units, fallback.w, 1, 0, config.final_intervals);
    return fallback;
  }

  int cap = std::min(config.max_w, budget);
  auto evaluate = [&](const std::vector<int>& w, int intervals,
                      bool* feasible) -> double {
    int total = 0;
    for (int wu : w) total += wu;
    if (total > budget) {
      *feasible = false;
      return std::numeric_limits<double>::infinity();
    }
    int z = budget / total;
    *feasible = GroupFeasible(units, w, z, 0, config.epsilon);
    if (!*feasible) return std::numeric_limits<double>::infinity();
    return GroupObjective(units, w, z, 0, intervals);
  };

  // Two starting points.
  std::vector<std::vector<int>> starts;
  starts.push_back(min_w);
  std::vector<int> balanced(n);
  for (size_t u = 0; u < n; ++u) {
    balanced[u] = std::max(min_w[u],
                           std::min(cap, budget / (4 * static_cast<int>(n))));
  }
  starts.push_back(balanced);

  std::vector<int> best_w = min_w;
  bool best_feasible = false;
  double best_objective = std::numeric_limits<double>::infinity();

  for (std::vector<int>& w : starts) {
    bool feasible = false;
    double objective = evaluate(w, config.search_intervals, &feasible);
    for (int sweep = 0; sweep < 4; ++sweep) {
      bool improved = false;
      for (size_t u = 0; u < n; ++u) {
        int original = w[u];
        int local_best = original;
        for (int candidate = min_w[u]; candidate <= cap; ++candidate) {
          if (candidate == original) continue;
          w[u] = candidate;
          bool cand_feasible = false;
          double cand_objective =
              evaluate(w, config.search_intervals, &cand_feasible);
          // Feasible beats infeasible; among feasible, lower objective wins.
          if (cand_feasible &&
              (!feasible || cand_objective < objective - 1e-15)) {
            feasible = true;
            objective = cand_objective;
            local_best = candidate;
            improved = true;
          }
        }
        w[u] = local_best;
      }
      if (!improved) break;
    }
    if (feasible && (!best_feasible || objective < best_objective)) {
      best_feasible = true;
      best_objective = objective;
      best_w = w;
    }
  }

  if (!best_feasible) {
    fallback.constraint_met = false;
    return fallback;
  }
  GroupScheme result;
  result.w = best_w;
  int total = 0;
  for (int wu : best_w) total += wu;
  result.z = budget / total;
  result.w_rem = 0;
  result.constraint_met = true;
  result.objective =
      GroupObjective(units, best_w, result.z, 0, config.final_intervals);
  return result;
}

}  // namespace

WzScheme OptimizeSingleScheme(const OptimizerUnit& unit, int budget,
                              const OptimizerConfig& config) {
  ADALSH_CHECK_GE(budget, 1);
  std::vector<OptimizerUnit> units = {unit};
  int min_w = std::max(1, std::min(unit.min_w, budget));
  int cap = std::min(config.max_w, budget);

  // Feasibility scan: the constraint check is O(1), so scan every w.
  std::vector<int> feasible;
  for (int w = min_w; w <= cap; ++w) {
    int z = budget / w;
    int w_rem = budget - w * z;
    if (GroupFeasible(units, {w}, z, w_rem, config.epsilon)) {
      feasible.push_back(w);
    }
  }

  WzScheme result;
  if (feasible.empty()) {
    result.w = min_w;
    result.z = budget / min_w;
    result.w_rem = budget - result.w * result.z;
    result.constraint_met = false;
    result.objective = GroupObjective(units, {result.w}, result.z,
                                      result.w_rem, config.final_intervals);
    return result;
  }

  // Objective evaluation for the largest feasible candidates (see header).
  size_t first = feasible.size() > static_cast<size_t>(config.objective_candidates)
                     ? feasible.size() - config.objective_candidates
                     : 0;
  int best_w = feasible.back();
  double best_objective = std::numeric_limits<double>::infinity();
  for (size_t i = first; i < feasible.size(); ++i) {
    int w = feasible[i];
    int z = budget / w;
    int w_rem = budget - w * z;
    double objective =
        GroupObjective(units, {w}, z, w_rem, config.search_intervals);
    if (objective < best_objective) {
      best_objective = objective;
      best_w = w;
    }
  }
  result.w = best_w;
  result.z = budget / best_w;
  result.w_rem = budget - result.w * result.z;
  result.constraint_met = true;
  result.objective = GroupObjective(units, {result.w}, result.z, result.w_rem,
                                    config.final_intervals);
  return result;
}

GroupScheme OptimizeAndGroup(const std::vector<OptimizerUnit>& units,
                             int budget, const OptimizerConfig& config) {
  ADALSH_CHECK(!units.empty());
  if (units.size() == 1) {
    WzScheme single = OptimizeSingleScheme(units[0], budget, config);
    GroupScheme group;
    group.w = {single.w};
    group.z = single.z;
    group.w_rem = single.w_rem;
    group.constraint_met = single.constraint_met;
    group.objective = single.objective;
    return group;
  }
  return OptimizeMultiUnitGroup(units, budget, config);
}

CompositeScheme OptimizeComposite(const RuleHashStructure& structure,
                                  int budget, const OptimizerConfig& config,
                                  const CompositeScheme* previous) {
  ADALSH_CHECK(!structure.groups.empty());
  if (previous != nullptr) {
    ADALSH_CHECK_EQ(previous->groups.size(), structure.groups.size());
  }

  // Materialize optimizer units per group, carrying min_w from `previous`.
  std::vector<std::vector<OptimizerUnit>> group_units(structure.groups.size());
  for (size_t g = 0; g < structure.groups.size(); ++g) {
    for (size_t u = 0; u < structure.groups[g].size(); ++u) {
      const HashUnitSpec& spec = structure.units[structure.groups[g][u]];
      OptimizerUnit unit;
      // All shipped families are linear; a custom-family hook would key off
      // field kinds here (CollisionModelForFieldKind).
      unit.p = LinearCollisionModel();
      unit.threshold = spec.threshold;
      unit.min_w = previous != nullptr ? previous->groups[g].w[u] : 1;
      group_units[g].push_back(std::move(unit));
    }
  }

  CompositeScheme scheme;
  scheme.groups.resize(structure.groups.size());

  if (structure.groups.size() == 1) {
    scheme.groups[0] = OptimizeAndGroup(group_units[0], budget, config);
    return scheme;
  }

  if (structure.groups.size() == 2) {
    // Programs (7)-(10): the OR objective factorizes across groups, so each
    // budget split reduces to two independent group programs; scan splits.
    double best_score = std::numeric_limits<double>::infinity();
    bool best_met = false;
    bool have_best = false;
    int min0 = MinimalGroupBudget(group_units[0]);
    int min1 = MinimalGroupBudget(group_units[1]);
    for (int step = 1; step < config.or_split_steps; ++step) {
      int b0 = budget * step / config.or_split_steps;
      b0 = std::clamp(b0, std::min(min0, budget - min1), budget - min1);
      int b1 = budget - b0;
      if (b0 < 1 || b1 < 1) continue;
      GroupScheme g0 = OptimizeAndGroup(group_units[0], b0, config);
      GroupScheme g1 = OptimizeAndGroup(group_units[1], b1, config);
      bool met = g0.constraint_met && g1.constraint_met;
      // Combined objective: 1 - (1 - obj0)(1 - obj1).
      double score = 1.0 - (1.0 - g0.objective) * (1.0 - g1.objective);
      if (!have_best || (met && !best_met) ||
          (met == best_met && score < best_score)) {
        have_best = true;
        best_met = met;
        best_score = score;
        scheme.groups[0] = std::move(g0);
        scheme.groups[1] = std::move(g1);
      }
    }
    ADALSH_CHECK(have_best) << "OR budget split found no viable allocation";
    return scheme;
  }

  // 3+ groups: equal split (rare; see DESIGN.md).
  int share = std::max(1, budget / static_cast<int>(structure.groups.size()));
  for (size_t g = 0; g < structure.groups.size(); ++g) {
    scheme.groups[g] = OptimizeAndGroup(group_units[g], share, config);
  }
  return scheme;
}

double CompositeCollisionProbability(const RuleHashStructure& structure,
                                     const CompositeScheme& scheme,
                                     const std::vector<double>& x) {
  ADALSH_CHECK_EQ(x.size(), structure.units.size());
  ADALSH_CHECK_EQ(scheme.groups.size(), structure.groups.size());
  double miss_all = 1.0;
  for (size_t g = 0; g < structure.groups.size(); ++g) {
    const GroupScheme& group = scheme.groups[g];
    std::vector<OptimizerUnit> units;
    std::vector<double> xs;
    for (int unit_index : structure.groups[g]) {
      OptimizerUnit unit;
      unit.p = LinearCollisionModel();
      unit.threshold = structure.units[unit_index].threshold;
      units.push_back(std::move(unit));
      xs.push_back(x[unit_index]);
    }
    double prob = GroupProbability(units, group.w, group.z, group.w_rem, xs);
    miss_all *= 1.0 - prob;
  }
  return 1.0 - miss_all;
}

}  // namespace adalsh
