#include "core/cost_model.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <vector>

#include "distance/feature_cache.h"
#include "distance/rule_evaluator.h"
#include "lsh/composite_scheme.h"
#include "lsh/hash_family.h"
#include "lsh/weighted_field_family.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {

double CostModel::PairwiseCost(uint64_t n) const {
  return pairwise_noise_factor_ * cost_per_pair_ *
         static_cast<double>(PairCount(n));
}

bool CostModel::ShouldJumpToPairwise(int budget_from, int budget_to,
                                     uint64_t cluster_size) const {
  double upgrade = HashUpgradeCost(budget_from, budget_to) *
                   static_cast<double>(cluster_size);
  return upgrade >= PairwiseCost(cluster_size);
}

bool CostModel::ShouldJumpToPairwiseSampled(
    const Dataset& dataset, const MatchRule& rule,
    const std::vector<RecordId>& cluster, int budget_from, int budget_to,
    Rng* rng, int sample_pairs, uint64_t* sample_evals_out) const {
  ADALSH_CHECK(rng != nullptr);
  if (sample_evals_out != nullptr) *sample_evals_out = 0;
  size_t n = cluster.size();
  // Small clusters: sampling costs as much as it saves.
  if (n < 10 || sample_pairs < 1) {
    return ShouldJumpToPairwise(budget_from, budget_to, n);
  }
  int matches = 0;
  for (int s = 0; s < sample_pairs; ++s) {
    size_t i = rng->NextBelow(n);
    size_t j = rng->NextBelow(n - 1);
    if (j >= i) ++j;
    matches += rule.Matches(dataset.record(cluster[i]),
                            dataset.record(cluster[j])) ? 1 : 0;
  }
  if (sample_evals_out != nullptr) {
    *sample_evals_out = static_cast<uint64_t>(sample_pairs);
  }
  double match_fraction =
      static_cast<double>(matches) / static_cast<double>(sample_pairs);
  // Transitive closure collapses the matching mass after ~one linear pass;
  // the residual non-matching core still pays its quadratic share.
  uint64_t residual = static_cast<uint64_t>(
      std::llround(static_cast<double>(n) * (1.0 - match_fraction)));
  double estimated_p = pairwise_noise_factor_ * cost_per_pair_ *
                       static_cast<double>(PairCount(residual) + n);
  double upgrade =
      HashUpgradeCost(budget_from, budget_to) * static_cast<double>(n);
  return upgrade >= estimated_p;
}

CostModel CostModel::Calibrate(const Dataset& dataset, const MatchRule& rule,
                               int samples, uint64_t seed, ThreadPool* pool,
                               Instrumentation instr) {
  ADALSH_CHECK_GT(samples, 0);
  ADALSH_CHECK_GE(dataset.num_records(), 2u);
  TraceRecorder::Span span(instr.trace, "calibration", "calibration");
  Rng rng(DeriveSeed(seed, 0x0c057));

  // --- Pairwise cost: all pairs within a random pool of `samples` records.
  // P runs over the records of one cluster, revisiting the same features
  // many times (hot caches); timing isolated random pairs instead would
  // over-estimate cost_P by the cold-access penalty and defer P far past its
  // actual break-even point (Line 5 of Algorithm 1).
  //
  // The probe runs the kernels P actually runs — the compiled RuleEvaluator
  // over the dataset's FeatureCache — so cost_per_pair tracks the cached
  // threshold-aware kernels, not the slower MatchRule::Matches path. The
  // cache/evaluator build is outside the timed region, mirroring P's own
  // amortization (built once per PairwiseComputer, used across all pairs).
  std::vector<RecordId> record_pool;
  record_pool.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    record_pool.push_back(
        static_cast<RecordId>(rng.NextBelow(dataset.num_records())));
  }
  FeatureCache feature_cache(dataset);
  RuleEvaluator evaluator(rule, feature_cache);
  // Atomic sink so the evaluations are not optimized away (and so worker
  // chunks can accumulate without a race).
  std::atomic<int> match_count{0};
  const size_t pool_size = record_pool.size();
  const uint64_t pair_evals = PairCount(pool_size);
  Timer pair_timer;
  ParallelFor(pool, pool_size, [&](size_t begin, size_t end) {
    int local_matches = 0;
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = i + 1; j < pool_size; ++j) {
        local_matches +=
            evaluator.Matches(record_pool[i], record_pool[j]) ? 1 : 0;
      }
    }
    match_count.fetch_add(local_matches, std::memory_order_relaxed);
  });
  double cost_per_pair =
      pair_timer.ElapsedSeconds() / static_cast<double>(pair_evals);

  // --- Hash cost: time batches of raw hashes on throwaway families. ---
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ADALSH_CHECK(structure.ok()) << structure.status().ToString();
  constexpr int kHashesPerProbe = 32;

  std::vector<RecordId> probe_records;
  probe_records.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    probe_records.push_back(
        static_cast<RecordId>(rng.NextBelow(dataset.num_records())));
  }

  // One family set per worker slice (families lazily materialize parameters,
  // so they must not be shared across threads), each warmed up before the
  // timer starts so one-time materialization does not inflate the estimate.
  const size_t num_slices =
      pool == nullptr
          ? 1
          : std::min<size_t>(pool->num_threads(), probe_records.size());
  std::vector<std::vector<std::unique_ptr<HashFamily>>> family_sets(
      num_slices);
  for (auto& families : family_sets) {
    std::vector<uint64_t> sink(kHashesPerProbe);
    for (const HashUnitSpec& unit : structure->units) {
      families.push_back(MakeFamilyForFields(unit.fields, unit.weights,
                                             dataset.record(0),
                                             DeriveSeed(seed, 0xfa111)));
      families.back()->HashRange(dataset.record(0), 0, kHashesPerProbe,
                                 sink.data());
    }
  }

  const uint64_t total_hashes = static_cast<uint64_t>(probe_records.size()) *
                                structure->units.size() * kHashesPerProbe;
  Timer hash_timer;
  ParallelFor(pool, num_slices, [&](size_t slice_begin, size_t slice_end) {
    std::vector<uint64_t> sink(kHashesPerProbe);
    for (size_t s = slice_begin; s < slice_end; ++s) {
      // Slice s probes records [s*n/S, (s+1)*n/S) with its own families.
      size_t lo = probe_records.size() * s / num_slices;
      size_t hi = probe_records.size() * (s + 1) / num_slices;
      for (size_t i = lo; i < hi; ++i) {
        for (auto& family : family_sets[s]) {
          family->HashRange(dataset.record(probe_records[i]), 0,
                            kHashesPerProbe, sink.data());
        }
      }
    }
  });
  double cost_per_hash = hash_timer.ElapsedSeconds() /
                         static_cast<double>(total_hashes);

  if (instr.enabled()) {
    span.AddArg("samples", static_cast<double>(samples));
    span.AddArg("pair_evals", static_cast<double>(pair_evals));
    span.AddArg("hash_evals", static_cast<double>(total_hashes));
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("calibration_pair_evals", pair_evals);
      instr.metrics->AddCounter("calibration_hash_evals", total_hashes);
      instr.metrics->SetGauge("cost_per_hash", cost_per_hash);
      instr.metrics->SetGauge("cost_per_pair", cost_per_pair);
    }
  }
  return CostModel(cost_per_hash, cost_per_pair);
}

}  // namespace adalsh
