#ifndef ADALSH_CORE_STREAMING_ADAPTIVE_LSH_H_
#define ADALSH_CORE_STREAMING_ADAPTIVE_LSH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/adaptive_lsh.h"
#include "core/cost_model.h"
#include "core/filter_output.h"
#include "core/function_sequence.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/transitive_hash_function.h"
#include "distance/rule.h"
#include "record/dataset.h"
#include "util/thread_pool.h"

namespace adalsh {

/// Online Adaptive LSH — the paper's first future-work direction (Section 9):
/// "adaLSH can offer large performance gains in online settings, where we do
/// not have a fixed dataset and input records arrive dynamically".
///
/// Records are ingested one at a time with Add(); TopK(k) can be asked at any
/// point and runs the Algorithm 1 refinement loop on the *current* cluster
/// state. The design follows the paper's sketch ("decide, for a new record,
/// between applying hashing or comparing with existing clusters"):
///
///   * One set of H_1 tables is kept alive across the whole stream; a new
///     record is hashed with the cheapest function only and merged into the
///     clusters it collides with. Cost per arrival: budget_1 hash functions.
///   * A cluster that absorbs new records has its verification level reset
///     to H_1 (the new membership evidence is only level-1), so a later
///     TopK() re-verifies it — conservative, never silently wrong.
///   * TopK() runs exactly the batch refinement loop (Largest-First, cost
///     model, jump-to-P), reusing every hash value computed by previous
///     calls: a TopK() after a few arrivals costs little more than the
///     arrivals themselves.
///
/// The dataset acts as the record store; Add() takes ids of records already
/// present in it (each id at most once).
class StreamingAdaptiveLsh {
 public:
  StreamingAdaptiveLsh(const Dataset& dataset, const MatchRule& rule,
                       const AdaptiveLshConfig& config);

  StreamingAdaptiveLsh(const StreamingAdaptiveLsh&) = delete;
  StreamingAdaptiveLsh& operator=(const StreamingAdaptiveLsh&) = delete;

  /// Ingests record r: applies H_1's hash functions and merges r into the
  /// clusters sharing a bucket. O(budget_1) hashes plus table operations.
  void Add(RecordId r);

  /// Batch-ingest hook for long-lived owners (the resident engine): validates
  /// the whole batch up front, then ingests every record via Add() in the
  /// given order. Transparently grows the per-record state when the dataset
  /// gained records since construction. All-or-nothing: a validation failure
  /// returns before any record is ingested.
  ///   * FailedPrecondition — the attached controller holds a sticky
  ///     Cancel(); an extend must not race a pending cancellation.
  ///   * OutOfRange — an id is >= dataset.num_records().
  ///   * InvalidArgument — an id appears twice in the batch or was already
  ///     ingested.
  Status Extend(std::span<const RecordId> records);

  /// Runs the adaptive refinement loop over the current clusters and returns
  /// the k largest (all verified by H_L or P as in Algorithm 1). Idempotent:
  /// calling again without new arrivals reuses all verification work.
  FilterOutput TopK(int k);

  /// Number of records ingested so far.
  size_t num_added() const { return num_added_; }

  /// Cumulative hash evaluations across all arrivals and TopK calls.
  uint64_t total_hashes_computed() const {
    return engine_.total_hashes_computed();
  }

  /// Cumulative rule evaluations across all TopK calls.
  uint64_t total_similarities() const {
    return pairwise_.total_similarities();
  }

  const FunctionSequence& sequence() const { return sequence_; }
  const CostModel& cost_model() const { return cost_model_; }

 private:
  /// Refreshes leaf_of_ for every record under `root`.
  void ReindexLeaves(NodeId root);

  const Dataset* dataset_;
  MatchRule rule_;
  AdaptiveLshConfig config_;
  /// Resolved from config_.threads; outlives hasher_, which borrows it for
  /// the TopK() refinement loop's hash hot path.
  ScopedThreadPool pool_;
  FunctionSequence sequence_;
  CostModel cost_model_;

  HashEngine engine_;
  ParentPointerForest forest_;
  TransitiveHasher hasher_;
  PairwiseComputer pairwise_;

  /// Persistent H_1 tables: bucket key -> record last added (Appendix B.2's
  /// bucket representation, kept alive across the stream).
  std::vector<std::unordered_map<uint64_t, RecordId>> level1_tables_;

  /// Record -> its current leaf node (kInvalidNode until added).
  std::vector<NodeId> leaf_of_;

  /// Record -> sequence index of the last function applied to it (0 on Add,
  /// updated by TopK refinement rounds, kLastFunctionPairwise once P treated
  /// it). Only meaningful for added records; feeds the Definition 3
  /// records_last_hashed_at accounting of every TopK call.
  std::vector<int> last_fn_;
  size_t num_added_ = 0;

  /// Cumulative stream statistics (hashes are tracked by the engine).
  uint64_t arrivals_merged_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_STREAMING_ADAPTIVE_LSH_H_
