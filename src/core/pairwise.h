#ifndef ADALSH_CORE_PAIRWISE_H_
#define ADALSH_CORE_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The pairwise computation function P (Definition 2) with the
/// transitive-closure optimization of Appendix B.3: records already in the
/// same tree skip their distance computation. Output trees are tagged with
/// kProducerPairwise, which Algorithm 1's termination rule treats as final.
class PairwiseComputer {
 public:
  PairwiseComputer(const Dataset& dataset, const MatchRule& rule);

  PairwiseComputer(const PairwiseComputer&) = delete;
  PairwiseComputer& operator=(const PairwiseComputer&) = delete;

  /// Splits `records` into the connected components of the exact match graph,
  /// building trees in `forest`. Returns the component roots.
  std::vector<NodeId> Apply(const std::vector<RecordId>& records,
                            ParentPointerForest* forest);

  /// Rule evaluations actually performed (pairs skipped via transitive
  /// closure are not counted) — the n_P of the Definition 3 cost accounting.
  uint64_t total_similarities() const { return total_similarities_; }

 private:
  const Dataset* dataset_;
  const MatchRule* rule_;
  uint64_t total_similarities_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_PAIRWISE_H_
