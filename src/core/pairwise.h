#ifndef ADALSH_CORE_PAIRWISE_H_
#define ADALSH_CORE_PAIRWISE_H_

#include <cstdint>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "distance/feature_cache.h"
#include "distance/rule.h"
#include "distance/rule_evaluator.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/run_controller.h"
#include "util/thread_pool.h"

namespace adalsh {

/// The pairwise computation function P (Definition 2) with the
/// transitive-closure optimization of Appendix B.3: records already in the
/// same tree skip their distance computation. Output trees are tagged with
/// kProducerPairwise, which Algorithm 1's termination rule treats as final.
///
/// Engine design (docs/threading.md, "Parallel pairwise"): the i<j triangle
/// is swept in row stripes. Per stripe, the current roots are snapshotted,
/// the stripe's pairs are split into fixed column tiles evaluated on the
/// worker pool (rule evaluations are pure: compiled RuleEvaluator over the
/// per-dataset FeatureCache), and the recorded decisions are replayed
/// serially in canonical (i, j) order, re-checking live roots before each
/// merge. Tile boundaries depend only on the input size — never on the
/// thread count — so forests, clusters and similarity counts are
/// byte-identical from 1 thread to any N.
///
/// Closure skipping survives tiling at two levels: the stripe snapshot skips
/// pairs connected by earlier stripes, and a tile-local union-find over
/// snapshot roots skips pairs connected by matches found earlier (in
/// canonical order) within the same tile. Inputs that fit a single tile
/// therefore perform exactly the evaluations of the strictly serial sweep.
///
/// Because both paths are byte-identical, the choice between them is purely
/// a performance decision: sweeps below a minimum size run serially even
/// when a pool is attached (the fork/join and snapshot overhead exceeds the
/// kernel work and made small benches slower at 2-4 threads than at 1 —
/// see kParallelMinRecords in pairwise.cc and docs/threading.md).
class PairwiseComputer {
 public:
  /// `pool` (borrowed, may be null) runs the tile evaluations; null means
  /// strictly serial. The dataset must outlive the computer and be fully
  /// built (the FeatureCache holds pointers into its records). `instr`
  /// attaches observability sinks: each Apply emits a `pairwise_sweep` trace
  /// span, an Observer::OnPairwiseBatch event and metric counters. With the
  /// default (empty) instrumentation the only cost is one boolean test per
  /// Apply — nothing per pair.
  PairwiseComputer(const Dataset& dataset, const MatchRule& rule,
                   ThreadPool* pool = nullptr, Instrumentation instr = {},
                   RunController* controller = nullptr);

  PairwiseComputer(const PairwiseComputer&) = delete;
  PairwiseComputer& operator=(const PairwiseComputer&) = delete;

  /// Attaches/detaches the cooperative-cancellation controller (borrowed,
  /// may be null). Long-lived computers (streaming) point this at the
  /// controller of the current TopK call; per-run computers pass it at
  /// construction.
  void set_controller(RunController* controller) { controller_ = controller; }

  /// Re-syncs the FeatureCache after records were appended to the dataset
  /// (resident-engine ingest). Call from the ingesting thread, outside any
  /// concurrent Apply.
  void NotifyDatasetGrown() { cache_.GrowTo(*dataset_); }

  /// Splits `records` into the connected components of the exact match graph,
  /// building trees in `forest`. Returns the component roots.
  ///
  /// Anytime behavior: the sweep checks the attached RunController once per
  /// kRowBlock row stripe — the same record-index boundaries on the serial
  /// and the tiled path, so a stop lands after an identical completed prefix
  /// of canonical-order merges at any thread count. When stopped,
  /// last_apply_interrupted() turns true and the returned roots describe the
  /// partially merged components (every applied merge is a P-certified
  /// match; callers treating interruption as "round discarded" simply ignore
  /// the returned roots — the input records' previous trees are untouched).
  std::vector<NodeId> Apply(const std::vector<RecordId>& records,
                            ParentPointerForest* forest);

  /// True when the last Apply was stopped mid-sweep by the controller.
  bool last_apply_interrupted() const { return interrupted_; }

  /// Overrides the minimum sweep size at which Apply dispatches the tiled
  /// parallel path (0 restores the built-in threshold; the override never
  /// drops below the single-stripe cutoff). Returns the previous override.
  /// Process-global, for tests only: the equivalence suites use it to force
  /// the tiled path on few-hundred-record inputs that real runs sweep
  /// serially — which is safe precisely because both paths produce
  /// byte-identical output.
  static size_t OverrideParallelCutoffForTest(size_t cutoff);

  /// Rule evaluations actually performed (pairs skipped via transitive
  /// closure are not counted) — the n_P of the Definition 3 cost accounting.
  /// Deterministic for a given input at any thread count.
  uint64_t total_similarities() const { return total_similarities_; }

 private:
  /// The seed's strictly serial sweep (closure check, evaluate, merge per
  /// pair) — the semantic reference the tiled path must reproduce.
  void SweepSerial(const std::vector<RecordId>& records,
                   const std::vector<NodeId>& leaf_of,
                   ParentPointerForest* forest);

  /// Stripe / tile / replay pipeline; see the class comment.
  void SweepTiled(const std::vector<RecordId>& records,
                  const std::vector<NodeId>& leaf_of,
                  ParentPointerForest* forest);

  /// Evaluates one tile's pairs against the stripe snapshot, recording a
  /// per-pair decision for the serial replay. Pure with respect to the
  /// forest; safe to run concurrently with other tiles.
  void EvaluateTile(const std::vector<RecordId>& records,
                    const std::vector<NodeId>& snapshot, size_t row_begin,
                    size_t row_end, size_t col_tile_begin, size_t col_tile_end,
                    size_t col_begin, uint8_t* decisions) const;

  /// Stripe-boundary cooperative check (fault-injection site
  /// kPairwiseTile): reports progress and returns true when the sweep must
  /// stop. Hit once per kRowBlock rows on both sweep paths.
  bool StripeCheck();

  const Dataset* dataset_;
  const MatchRule* rule_;
  FeatureCache cache_;
  RuleEvaluator evaluator_;
  ThreadPool* pool_;
  Instrumentation instr_;
  RunController* controller_;
  bool interrupted_ = false;
  uint64_t total_similarities_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_PAIRWISE_H_
