#ifndef ADALSH_CORE_HASH_ENGINE_H_
#define ADALSH_CORE_HASH_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "lsh/composite_scheme.h"
#include "lsh/hash_cache.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/thread_pool.h"

namespace adalsh {

/// Owns one HashCache per hash unit of a compiled rule and turns cached raw
/// hashes into table bucket keys. A single engine is shared by every
/// transitive hashing function in a run, which is what makes the sequence
/// incremental: H_{i+1}'s plan asks for a longer prefix of the same per-unit
/// streams H_i already computed.
class HashEngine {
 public:
  /// `structure` must come from CompileRuleForHashing on the rule used by
  /// the run; `seed` determines all hash functions.
  HashEngine(const Dataset& dataset, RuleHashStructure structure,
             uint64_t seed);

  HashEngine(const HashEngine&) = delete;
  HashEngine& operator=(const HashEngine&) = delete;

  /// Ensures record r's caches cover every prefix `plan` needs.
  void EnsureHashes(RecordId r, const SchemePlan& plan);

  /// Batch form: ensures every record in `records` covers `plan`,
  /// partitioning the records across `pool`'s workers (serial when `pool` is
  /// null). Safe because each record owns independent cache slots; family
  /// parameters are Prepare()d before forking. The total hash count is
  /// identical to calling EnsureHashes serially — per-record prefix
  /// extensions are order-independent.
  void EnsureHashesParallel(std::span<const RecordId> records,
                            const SchemePlan& plan, ThreadPool* pool);

  /// Serially materializes every unit's family parameters up to the prefix
  /// `plan` needs. After this, EnsureHashes calls covered by `plan` may run
  /// concurrently for distinct records (EnsureHashesParallel does both steps;
  /// this is for callers that fold hashing into their own ParallelFor).
  void PreparePlan(const SchemePlan& plan);

  /// Extends every unit's cache to cover records [old, num_records) appended
  /// to the dataset since construction (no-op when nothing was appended).
  /// Existing cached prefixes are untouched — see HashCache::GrowTo. Call
  /// from the ingesting thread, outside any concurrent hash pass.
  void GrowTo(size_t num_records);

  /// Bucket key of record r for one table of `plan`. EnsureHashes must have
  /// covered the plan for r.
  uint64_t TableKey(RecordId r, const TablePlan& table) const;

  /// Adopts record `src_r`'s computed hash prefixes from `src` — an engine
  /// built over the same rule structure and seed whose record `src_r` has
  /// the same content as this engine's record `dst_r` — into this engine's
  /// slots for `dst_r` (see HashCache::AdoptPrefix). The cross-shard merge
  /// uses this to assemble a global engine from shard engines with zero
  /// recomputation; adopted hashes never count toward
  /// total_hashes_computed(). Single-threaded, outside any hash pass.
  void AdoptRecordHashes(const HashEngine& src, RecordId src_r,
                         RecordId dst_r);

  /// Total raw hash evaluations across all units (cost accounting).
  uint64_t total_hashes_computed() const;

  /// Attaches observability sinks: EnsureHashesParallel emits a `hash_pass`
  /// trace span and a `hashes_computed` counter delta. Callers that drive
  /// EnsureHashes through their own loops (TransitiveHasher) report at their
  /// level instead, so counters are never double-counted.
  void set_instrumentation(Instrumentation instr) { instr_ = instr; }

  const RuleHashStructure& structure() const { return structure_; }
  const Dataset& dataset() const { return *dataset_; }

 private:
  const Dataset* dataset_;
  RuleHashStructure structure_;
  std::vector<HashCache> caches_;  // one per unit
  Instrumentation instr_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_HASH_ENGINE_H_
