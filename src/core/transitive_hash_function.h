#ifndef ADALSH_CORE_TRANSITIVE_HASH_FUNCTION_H_
#define ADALSH_CORE_TRANSITIVE_HASH_FUNCTION_H_

#include <cstdint>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "core/hash_engine.h"
#include "lsh/composite_scheme.h"
#include "obs/observer.h"
#include "util/run_controller.h"

namespace adalsh {

/// Applies transitive hashing functions (Definition 1) with the efficient
/// implementation of Appendix B.2:
///   * each invocation uses fresh hash tables (so clusters from different
///     invocations never merge);
///   * every bucket stores only the record last added to it;
///   * record/tree bookkeeping follows the four cases of Fig. 19, building
///     parent-pointer trees in the shared forest.
///
/// One TransitiveHasher is reused for all invocations in a run; it keeps the
/// epoch-stamped record->leaf scratch map so per-invocation setup is O(1).
///
/// Parallel execution (docs/threading.md): hash evaluation and bucket-key
/// construction — the run's hot path — are farmed out to `pool` in blocks of
/// records, while the bucket/forest merge consumes the precomputed keys
/// serially in record order. The merge is the only stateful step ("bucket
/// remembers the last-added record", Fig. 19's four cases), so keeping it
/// serial makes the output byte-identical to a single-threaded run at any
/// thread count.
class TransitiveHasher {
 public:
  /// `pool` may be null for strictly serial execution. `instr` attaches
  /// observability sinks: each Apply emits a `hash_pass` trace span (plus a
  /// `merge` span per serial merge block), an Observer::OnFunctionApplied
  /// event and metric counters; empty instrumentation costs one boolean test
  /// per Apply.
  TransitiveHasher(HashEngine* engine, ParentPointerForest* forest,
                   size_t num_records, ThreadPool* pool = nullptr,
                   Instrumentation instr = {},
                   RunController* controller = nullptr);

  TransitiveHasher(const TransitiveHasher&) = delete;
  TransitiveHasher& operator=(const TransitiveHasher&) = delete;

  /// Attaches/detaches the cooperative-cancellation controller (borrowed,
  /// may be null). Long-lived hashers (streaming) point this at the
  /// controller of the current TopK call.
  void set_controller(RunController* controller) { controller_ = controller; }

  /// Extends the per-record scratch maps after records were appended to the
  /// dataset (resident-engine ingest). New entries start unstamped, so they
  /// are invisible until an Apply touches them. Ingesting thread only.
  void GrowTo(size_t num_records);

  /// Applies the function described by `plan` to `records`, producing one new
  /// tree per output cluster, each tagged with `producer` (the function's
  /// 0-based sequence index). Returns the new roots. Hash computation goes
  /// through the engine's caches, so values computed by earlier functions are
  /// reused (incremental computation, Appendix B.2).
  ///
  /// Anytime behavior: the attached RunController is checked once per
  /// kKeyBlock record block, on the driving thread, at input-deterministic
  /// boundaries. A stopped Apply sets last_apply_interrupted() and returns
  /// an empty root set: records in unprocessed blocks were never hashed, so
  /// the invocation's partial trees are incomplete and callers must discard
  /// the round (the input records' previous trees are untouched — see
  /// docs/robustness.md).
  std::vector<NodeId> Apply(const std::vector<RecordId>& records,
                            const SchemePlan& plan, int producer);

  /// True when the last Apply was stopped mid-pass by the controller.
  bool last_apply_interrupted() const { return interrupted_; }

 private:
  HashEngine* engine_;
  ParentPointerForest* forest_;
  ThreadPool* pool_;
  Instrumentation instr_;
  RunController* controller_;
  bool interrupted_ = false;
  std::vector<NodeId> leaf_of_;      // valid when leaf_epoch_[r] == epoch_
  std::vector<uint32_t> leaf_epoch_;
  std::vector<uint64_t> key_block_;  // reused per-block key buffer
  uint32_t epoch_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_TRANSITIVE_HASH_FUNCTION_H_
