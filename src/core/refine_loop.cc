#include "core/refine_loop.h"

#include <limits>
#include <optional>
#include <set>
#include <unordered_set>
#include <utility>

#include "core/termination.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/timer.h"

namespace adalsh {
namespace {

/// Smallest order key among the leaves of `root` (canonical tie-break).
uint64_t MinOrderKey(const ParentPointerForest& forest,
                     const std::vector<uint64_t>& order_key, NodeId root) {
  uint64_t min_key = std::numeric_limits<uint64_t>::max();
  forest.ForEachLeaf(root, [&](RecordId r) {
    min_key = std::min(min_key, order_key[r]);
  });
  return min_key;
}

}  // namespace

TerminationReason RunRefineLoop(const RefineLoopDeps& deps, int k,
                                const std::vector<NodeId>& initial_roots,
                                RunController* external,
                                const RunBudget& budget,
                                std::vector<NodeId>* finals,
                                FilterStats* stats) {
  ADALSH_CHECK(deps.sequence != nullptr && deps.cost_model != nullptr &&
               deps.engine != nullptr && deps.hasher != nullptr &&
               deps.pairwise != nullptr && deps.forest != nullptr &&
               deps.last_fn != nullptr && deps.order_key != nullptr);
  Timer timer;
  const Instrumentation& instr = deps.instrumentation;
  TraceRecorder::Span refine_span(instr.trace, "engine_refine", "engine");
  ParentPointerForest& forest = *deps.forest;
  const FunctionSequence& sequence = *deps.sequence;
  std::vector<int>& last_fn = *deps.last_fn;
  const int last_function = static_cast<int>(sequence.size()) - 1;

  // Canonical Largest-First selection: size descending, ties by ascending
  // smallest order key (unique per cluster, so the order is total and
  // engine-history-independent — the root id never actually decides).
  struct Candidate {
    uint32_t size;
    uint64_t min_key;
    NodeId root;
  };
  struct CandidateLess {
    bool operator()(const Candidate& a, const Candidate& b) const {
      if (a.size != b.size) return a.size > b.size;
      if (a.min_key != b.min_key) return a.min_key < b.min_key;
      return a.root < b.root;
    }
  };
  std::set<Candidate, CandidateLess> pending;
  auto insert_root = [&](NodeId root) {
    pending.insert({forest.LeafCount(root),
                    MinOrderKey(forest, *deps.order_key, root), root});
  };
  for (NodeId root : initial_roots) insert_root(root);

  const uint64_t sims_before = deps.pairwise->total_similarities();
  const uint64_t hashes_before = deps.engine->total_hashes_computed();
  // Per-request SLO (docs/engine.md): the effective controller is armed with
  // the cumulative counters as this pass's zero points; the long-lived
  // hasher/pairwise borrow it for the duration of the pass.
  std::optional<RunController> local_controller;
  RunController* controller = ResolveController(
      external, budget, &local_controller, hashes_before, sims_before);
  deps.hasher->set_controller(controller);
  deps.pairwise->set_controller(controller);
  auto stop_now = [&] {
    if (controller == nullptr) return false;
    controller->ReportHashes(deps.engine->total_hashes_computed());
    controller->ReportPairwise(deps.pairwise->total_similarities());
    return controller->ShouldStop();
  };

  finals->clear();
  while (finals->size() < static_cast<size_t>(k) && !pending.empty()) {
    if (stop_now()) break;  // round boundary (anytime exit)
    const Candidate top = *pending.begin();
    pending.erase(pending.begin());
    const NodeId root = top.root;
    const int producer = forest.Producer(root);
    if (producer == kProducerPairwise || producer == last_function) {
      finals->push_back(root);
      continue;
    }
    std::vector<RecordId> records = forest.Leaves(root);
    const int next = producer + 1;

    RoundRecord round;
    round.round = stats->rounds + 1;
    round.cluster_size = records.size();
    const uint64_t round_hashes_before = deps.engine->total_hashes_computed();
    const uint64_t round_sims_before = deps.pairwise->total_similarities();
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = round.round;
      start.cluster_size = records.size();
      start.producer = producer;
      instr.observer->OnRoundStart(start);
    }

    // Interruption handling as in the streaming mode: an interrupted sweep's
    // partial trees are orphaned, the original tree (and leaf_of, which
    // still points into it) is untouched, and the cluster keeps its previous
    // verification level.
    bool interrupted = false;
    std::vector<NodeId> new_roots;
    if (deps.cost_model->ShouldJumpToPairwise(sequence.budget(producer),
                                              sequence.budget(next),
                                              records.size())) {
      round.action = RoundAction::kPairwise;
      round.modeled_cost = deps.cost_model->PairwiseCost(records.size());
      new_roots = deps.pairwise->Apply(records, &forest);
      round.pairwise_seconds = round_timer.ElapsedSeconds();
      interrupted = deps.pairwise->last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn[r] = kLastFunctionPairwise;
      }
    } else {
      round.action = RoundAction::kHash;
      round.function_index = next;
      round.modeled_cost =
          deps.cost_model->HashUpgradeCost(sequence.budget(producer),
                                           sequence.budget(next)) *
          static_cast<double>(records.size());
      new_roots = deps.hasher->Apply(records, sequence.plan(next), next);
      round.hash_seconds = round_timer.ElapsedSeconds();
      interrupted = deps.hasher->last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn[r] = next;
      }
    }
    round.interrupted = interrupted;
    round.hashes_computed =
        deps.engine->total_hashes_computed() - round_hashes_before;
    round.pairwise_similarities =
        deps.pairwise->total_similarities() - round_sims_before;
    round.wall_seconds = round_timer.ElapsedSeconds();
    ++stats->rounds;
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("rounds", 1);
      instr.metrics->RecordValue("round_cluster_size",
                                 static_cast<double>(round.cluster_size));
      instr.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
      // Exact-tail view of the same data: `round_seconds` (histogram) next
      // to `round_wall_seconds` (mean/stddev), split by the action taken.
      instr.metrics->RecordLatency("round_seconds", round.wall_seconds);
      if (round.action == RoundAction::kPairwise) {
        instr.metrics->RecordLatency("round_pairwise_seconds",
                                     round.pairwise_seconds);
      } else {
        instr.metrics->RecordLatency("round_hash_seconds",
                                     round.hash_seconds);
      }
    }
    stats->round_records.push_back(round);
    if (instr.observer != nullptr) {
      instr.observer->OnRoundEnd(stats->round_records.back());
    }

    if (interrupted) {
      // Discard the round: leaf_of must keep pointing into the original
      // tree. The stuck controller ends the loop at its next check.
      insert_root(root);
      continue;
    }
    for (NodeId new_root : new_roots) {
      if (deps.leaf_of != nullptr) {
        forest.ForEachLeafNode(new_root, [&](RecordId r, NodeId leaf) {
          (*deps.leaf_of)[r] = leaf;
        });
      }
      insert_root(new_root);
    }
  }
  // Detach before returning: a request-local controller dies with this pass.
  deps.hasher->set_controller(nullptr);
  deps.pairwise->set_controller(nullptr);

  stats->termination_reason = controller != nullptr
                                  ? controller->reason()
                                  : TerminationReason::kCompleted;
  stats->filtering_seconds = timer.ElapsedSeconds();
  stats->pairwise_similarities =
      deps.pairwise->total_similarities() - sims_before;
  stats->hashes_computed =
      deps.engine->total_hashes_computed() - hashes_before;
  stats->modeled_cost =
      deps.cost_model->cost_per_hash() *
          static_cast<double>(stats->hashes_computed) +
      deps.cost_model->cost_per_pair() *
          static_cast<double>(stats->pairwise_similarities);
  FillClusterVerification(forest, *finals, stats);
  return stats->termination_reason;
}

}  // namespace adalsh
