#include "core/hash_engine.h"

#include "lsh/weighted_field_family.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

HashEngine::HashEngine(const Dataset& dataset, RuleHashStructure structure,
                       uint64_t seed)
    : dataset_(&dataset), structure_(std::move(structure)) {
  ADALSH_CHECK_GT(dataset.num_records(), 0u);
  caches_.reserve(structure_.units.size());
  for (size_t u = 0; u < structure_.units.size(); ++u) {
    const HashUnitSpec& unit = structure_.units[u];
    caches_.emplace_back(
        MakeFamilyForFields(unit.fields, unit.weights, dataset.record(0),
                            DeriveSeed(seed, 0xa110c + u)),
        dataset.num_records());
  }
}

void HashEngine::GrowTo(size_t num_records) {
  ADALSH_CHECK_LE(num_records, dataset_->num_records());
  for (HashCache& cache : caches_) cache.GrowTo(num_records);
}

void HashEngine::EnsureHashes(RecordId r, const SchemePlan& plan) {
  ADALSH_CHECK_EQ(plan.hashes_per_unit.size(), caches_.size());
  const Record& record = dataset_->record(r);
  for (size_t u = 0; u < caches_.size(); ++u) {
    if (plan.hashes_per_unit[u] > 0) {
      caches_[u].Ensure(record, r, plan.hashes_per_unit[u]);
    }
  }
}

void HashEngine::PreparePlan(const SchemePlan& plan) {
  ADALSH_CHECK_EQ(plan.hashes_per_unit.size(), caches_.size());
  for (size_t u = 0; u < caches_.size(); ++u) {
    if (plan.hashes_per_unit[u] > 0) {
      caches_[u].Prepare(plan.hashes_per_unit[u]);
    }
  }
}

void HashEngine::EnsureHashesParallel(std::span<const RecordId> records,
                                      const SchemePlan& plan,
                                      ThreadPool* pool) {
  const bool observed = instr_.enabled();
  const uint64_t hashes_before = observed ? total_hashes_computed() : 0;
  TraceRecorder::Span span(instr_.trace, "hash_pass", "hash");
  PreparePlan(plan);
  ParallelFor(pool, records.size(), [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) EnsureHashes(records[i], plan);
  });
  if (observed) {
    const uint64_t hashes = total_hashes_computed() - hashes_before;
    span.AddArg("records", static_cast<double>(records.size()));
    span.AddArg("hashes", static_cast<double>(hashes));
    if (instr_.metrics != nullptr) {
      instr_.metrics->AddCounter("hashes_computed", hashes);
      instr_.metrics->AddCounter("hash_passes", 1);
    }
  }
}

void HashEngine::AdoptRecordHashes(const HashEngine& src, RecordId src_r,
                                   RecordId dst_r) {
  ADALSH_CHECK_EQ(src.caches_.size(), caches_.size());
  for (size_t u = 0; u < caches_.size(); ++u) {
    caches_[u].AdoptPrefix(src.caches_[u], src_r, dst_r);
  }
}

uint64_t HashEngine::TableKey(RecordId r, const TablePlan& table) const {
  uint64_t key = 0x5ca1ab1e0adab1e5ULL;
  for (const TablePart& part : table.parts) {
    key = caches_[part.unit].CombineRange(r, part.begin, part.end, key);
  }
  return key;
}

uint64_t HashEngine::total_hashes_computed() const {
  uint64_t total = 0;
  for (const HashCache& cache : caches_) {
    total += cache.total_hashes_computed();
  }
  return total;
}

}  // namespace adalsh
