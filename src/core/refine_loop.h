#ifndef ADALSH_CORE_REFINE_LOOP_H_
#define ADALSH_CORE_REFINE_LOOP_H_

#include <cstdint>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "core/cost_model.h"
#include "core/filter_output.h"
#include "core/function_sequence.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/transitive_hash_function.h"
#include "obs/observer.h"
#include "util/run_controller.h"

namespace adalsh {

/// The Algorithm 1 refinement round loop with canonical Largest-First
/// selection, extracted from the resident engine so every execution context
/// that must agree byte-for-byte — the resident engine's per-mutation
/// refinement, each shard's local run, and the cross-shard merge pass
/// (docs/sharding.md) — drives the identical code.
///
/// Selection is a total, history-independent order: cluster size descending,
/// ties by ascending smallest per-record order key (the resident engine and
/// the sharded merge use external ids, which are unique per cluster, so the
/// root id never actually decides). Selection order cannot change final
/// cluster membership — refinement of a (member set, level) cluster is
/// deterministic in isolation — but a canonical order makes the emitted
/// finals, round schedule and anytime prefixes reproducible.
struct RefineLoopDeps {
  const FunctionSequence* sequence = nullptr;
  const CostModel* cost_model = nullptr;
  HashEngine* engine = nullptr;
  TransitiveHasher* hasher = nullptr;
  PairwiseComputer* pairwise = nullptr;
  ParentPointerForest* forest = nullptr;

  /// Per internal record: last function applied (kLastFunctionPairwise for
  /// P). Updated as rounds complete.
  std::vector<int>* last_fn = nullptr;

  /// Per internal record: the canonical tie-break key (the resident engine's
  /// external id; the batch executor's global record id). Must be unique per
  /// record so the selection order is total.
  const std::vector<uint64_t>* order_key = nullptr;

  /// Optional per-record record->leaf map, refreshed for every tree a
  /// completed round produces (resident engine bookkeeping). May be null.
  std::vector<NodeId>* leaf_of = nullptr;

  Instrumentation instrumentation;
};

/// Runs the loop from `initial_roots` (deduplicated current tree roots, any
/// mix of verification levels) until k finals are certified or the candidate
/// set drains, honoring `controller`/`budget` at round boundaries exactly
/// like ResidentEngine::RefineLocked always has. On kCompleted, `finals`
/// holds the certified roots in canonical (pop) order.
///
/// Fills the loop's share of `stats`: rounds, round_records, hash/pairwise
/// totals, filtering_seconds, modeled_cost, termination_reason and
/// cluster_verification. The caller owns the per-record Definition 3
/// snapshot (records_last_hashed_at) and the ReportTermination epilogue,
/// which need the caller's live-record iteration.
TerminationReason RunRefineLoop(const RefineLoopDeps& deps, int k,
                                const std::vector<NodeId>& initial_roots,
                                RunController* external,
                                const RunBudget& budget,
                                std::vector<NodeId>* finals,
                                FilterStats* stats);

}  // namespace adalsh

#endif  // ADALSH_CORE_REFINE_LOOP_H_
