#include "core/lsh_blocking.h"

#include <optional>
#include <utility>

#include "clustering/bin_index.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/termination.h"
#include "core/transitive_hash_function.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

Status LshBlockingConfig::Validate() const {
  if (num_hashes < 1) {
    return Status::InvalidArgument("num_hashes must be >= 1");
  }
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  Status optimizer_valid = optimizer.Validate();
  if (!optimizer_valid.ok()) return optimizer_valid;
  return budget.Validate();
}

LshBlocking::LshBlocking(const Dataset& dataset, const MatchRule& rule,
                         const LshBlockingConfig& config)
    : dataset_(&dataset), rule_(rule), config_(config) {
  Status config_valid = config.Validate();
  ADALSH_CHECK(config_valid.ok()) << config_valid.ToString();
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ADALSH_CHECK(structure.ok()) << structure.status().ToString();
  structure_ = std::move(structure).value();
  scheme_ = OptimizeComposite(structure_, config.num_hashes, config.optimizer,
                              /*previous=*/nullptr);
  plan_ = BuildPlan(structure_, scheme_);
}

FilterOutput LshBlocking::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  const size_t num_records = dataset_->num_records();
  const Instrumentation instr = config_.instrumentation;

  Timer timer;
  // Anytime execution (docs/robustness.md); null controller = pre-existing
  // run-to-completion behavior, bit for bit.
  std::optional<RunController> local_controller;
  RunController* controller =
      ResolveController(config_.controller, config_.budget, &local_controller);
  ParentPointerForest forest;
  ScopedThreadPool pool(config_.threads);
  HashEngine engine(*dataset_, structure_, config_.seed);
  TransitiveHasher hasher(&engine, &forest, num_records, pool.get(), instr,
                          controller);
  PairwiseComputer pairwise(*dataset_, rule_, pool.get(), instr, controller);

  FilterStats stats;
  // Conservative accounting: every record starts (and, if never verified,
  // stays) in the stage-1 H bucket.
  stats.records_last_hashed_at.assign(1, num_records);

  auto stop_now = [&] {
    if (controller == nullptr) return false;
    controller->ReportHashes(engine.total_hashes_computed());
    controller->ReportPairwise(pairwise.total_similarities());
    return controller->ShouldStop();
  };

  // Closes out a round against the exact counter sources (see the
  // round_records invariants in filter_output.h).
  auto finish_round = [&](RoundRecord round, uint64_t hashes_before,
                          uint64_t sims_before, double wall_seconds) {
    round.hashes_computed = engine.total_hashes_computed() - hashes_before;
    round.pairwise_similarities =
        pairwise.total_similarities() - sims_before;
    round.wall_seconds = wall_seconds;
    ++stats.rounds;
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("rounds", 1);
      instr.metrics->RecordValue("round_cluster_size",
                                 static_cast<double>(round.cluster_size));
      instr.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
    }
    stats.round_records.push_back(round);
    if (instr.observer != nullptr) {
      instr.observer->OnRoundEnd(stats.round_records.back());
    }
  };

  // Stage 1: apply all X hash functions to every record. Skipped entirely on
  // a pre-round-1 stop (empty best-effort output, zero rounds).
  std::vector<NodeId> roots;
  if (!stop_now()) {
    RoundRecord round;
    round.round = 1;
    round.action = RoundAction::kHash;
    round.function_index = 0;
    round.cluster_size = num_records;
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = 1;
      start.cluster_size = num_records;
      start.producer = -1;
      instr.observer->OnRoundStart(start);
    }
    roots = hasher.Apply(dataset_->AllRecordIds(), plan_, 0);
    round.hash_seconds = round_timer.ElapsedSeconds();
    // An interrupted stage 1 leaves `roots` empty: no record has a valid
    // blocking cluster yet, so the run degrades to an empty clustering.
    round.interrupted = hasher.last_apply_interrupted();
    finish_round(std::move(round), /*hashes_before=*/0, /*sims_before=*/0,
                 round_timer.ElapsedSeconds());
  }

  std::vector<NodeId> finals;
  if (!config_.apply_pairwise) {
    // LSH-X-nP: trust the stage-1 clusters; return the k largest.
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      finals.push_back(bins.PopLargest());
    }
  } else {
    // Stage 2: verify clusters with P, largest first, until the k largest
    // verified clusters dominate everything unverified (optimization (1)).
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      if (stop_now()) break;  // round boundary (anytime exit)
      NodeId root = bins.PopLargest();
      if (forest.Producer(root) == kProducerPairwise) {
        finals.push_back(root);
        continue;
      }
      std::vector<RecordId> records = forest.Leaves(root);

      RoundRecord round;
      round.round = stats.rounds + 1;
      round.action = RoundAction::kPairwise;
      round.cluster_size = records.size();
      const uint64_t hashes_before = engine.total_hashes_computed();
      const uint64_t sims_before = pairwise.total_similarities();
      Timer round_timer;
      TraceRecorder::Span round_span(instr.trace, "round", "round");
      if (instr.observer != nullptr) {
        RoundStartInfo start;
        start.round = round.round;
        start.cluster_size = records.size();
        start.producer = 0;
        instr.observer->OnRoundStart(start);
      }
      std::vector<NodeId> verified = pairwise.Apply(records, &forest);
      round.pairwise_seconds = round_timer.ElapsedSeconds();
      const bool interrupted = pairwise.last_apply_interrupted();
      round.interrupted = interrupted;
      if (!interrupted) {
        // Verified records move from the H_1 bucket of Definition 3's
        // accounting to the P bucket — each record is counted exactly once,
        // under the last function applied to it. An interrupted verification
        // is discarded, so its records stay in the H_1 bucket.
        ADALSH_CHECK_GE(stats.records_last_hashed_at[0], records.size());
        stats.records_last_hashed_at[0] -= records.size();
        stats.records_finished_by_pairwise += records.size();
      }
      finish_round(std::move(round), hashes_before, sims_before,
                   round_timer.ElapsedSeconds());
      if (interrupted) {
        // The cluster keeps its stage-1 level; the stuck controller ends the
        // loop at its next check and the fill below may still return it.
        bins.Insert(root, forest.LeafCount(root));
        continue;
      }
      for (NodeId v : verified) bins.Insert(v, forest.LeafCount(v));
    }
    if (controller != nullptr && controller->stopped()) {
      // Graceful degradation: the largest unverified clusters complete the
      // top-k at their stage-1 verification level (pops stay non-increasing,
      // so the ranking is preserved).
      while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
        finals.push_back(bins.PopLargest());
      }
    }
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  FillClusterVerification(forest, finals, &stats);
  output.clusters.SortBySizeDescending();
  stats.termination_reason = controller != nullptr
                                 ? controller->reason()
                                 : TerminationReason::kCompleted;
  stats.filtering_seconds = timer.ElapsedSeconds();
  stats.pairwise_similarities = pairwise.total_similarities();
  stats.hashes_computed = engine.total_hashes_computed();
  ReportTermination(instr, stats, output.clusters.clusters.size());
  output.stats = std::move(stats);
  return output;
}

}  // namespace adalsh
