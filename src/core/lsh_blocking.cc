#include "core/lsh_blocking.h"

#include <utility>

#include "clustering/bin_index.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/transitive_hash_function.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

LshBlocking::LshBlocking(const Dataset& dataset, const MatchRule& rule,
                         const LshBlockingConfig& config)
    : dataset_(&dataset), rule_(rule), config_(config) {
  ADALSH_CHECK_GE(config.num_hashes, 1);
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ADALSH_CHECK(structure.ok()) << structure.status().ToString();
  structure_ = std::move(structure).value();
  scheme_ = OptimizeComposite(structure_, config.num_hashes, config.optimizer,
                              /*previous=*/nullptr);
  plan_ = BuildPlan(structure_, scheme_);
}

FilterOutput LshBlocking::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  const size_t num_records = dataset_->num_records();
  const Instrumentation instr = config_.instrumentation;

  Timer timer;
  ParentPointerForest forest;
  ScopedThreadPool pool(config_.threads);
  HashEngine engine(*dataset_, structure_, config_.seed);
  TransitiveHasher hasher(&engine, &forest, num_records, pool.get(), instr);
  PairwiseComputer pairwise(*dataset_, rule_, pool.get(), instr);

  FilterStats stats;
  stats.records_last_hashed_at.assign(1, num_records);

  // Closes out a round against the exact counter sources (see the
  // round_records invariants in filter_output.h).
  auto finish_round = [&](RoundRecord round, uint64_t hashes_before,
                          uint64_t sims_before, double wall_seconds) {
    round.hashes_computed = engine.total_hashes_computed() - hashes_before;
    round.pairwise_similarities =
        pairwise.total_similarities() - sims_before;
    round.wall_seconds = wall_seconds;
    ++stats.rounds;
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("rounds", 1);
      instr.metrics->RecordValue("round_cluster_size",
                                 static_cast<double>(round.cluster_size));
      instr.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
    }
    stats.round_records.push_back(round);
    if (instr.observer != nullptr) {
      instr.observer->OnRoundEnd(stats.round_records.back());
    }
  };

  // Stage 1: apply all X hash functions to every record.
  std::vector<NodeId> roots;
  {
    RoundRecord round;
    round.round = 1;
    round.action = RoundAction::kHash;
    round.function_index = 0;
    round.cluster_size = num_records;
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = 1;
      start.cluster_size = num_records;
      start.producer = -1;
      instr.observer->OnRoundStart(start);
    }
    roots = hasher.Apply(dataset_->AllRecordIds(), plan_, 0);
    round.hash_seconds = round_timer.ElapsedSeconds();
    finish_round(std::move(round), /*hashes_before=*/0, /*sims_before=*/0,
                 round_timer.ElapsedSeconds());
  }

  std::vector<NodeId> finals;
  if (!config_.apply_pairwise) {
    // LSH-X-nP: trust the stage-1 clusters; return the k largest.
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      finals.push_back(bins.PopLargest());
    }
  } else {
    // Stage 2: verify clusters with P, largest first, until the k largest
    // verified clusters dominate everything unverified (optimization (1)).
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      NodeId root = bins.PopLargest();
      if (forest.Producer(root) == kProducerPairwise) {
        finals.push_back(root);
        continue;
      }
      std::vector<RecordId> records = forest.Leaves(root);
      // Verified records move from the H_1 bucket of Definition 3's
      // accounting to the P bucket — each record is counted exactly once,
      // under the last function applied to it.
      ADALSH_CHECK_GE(stats.records_last_hashed_at[0], records.size());
      stats.records_last_hashed_at[0] -= records.size();
      stats.records_finished_by_pairwise += records.size();

      RoundRecord round;
      round.round = stats.rounds + 1;
      round.action = RoundAction::kPairwise;
      round.cluster_size = records.size();
      const uint64_t hashes_before = engine.total_hashes_computed();
      const uint64_t sims_before = pairwise.total_similarities();
      Timer round_timer;
      TraceRecorder::Span round_span(instr.trace, "round", "round");
      if (instr.observer != nullptr) {
        RoundStartInfo start;
        start.round = round.round;
        start.cluster_size = records.size();
        start.producer = 0;
        instr.observer->OnRoundStart(start);
      }
      std::vector<NodeId> verified = pairwise.Apply(records, &forest);
      round.pairwise_seconds = round_timer.ElapsedSeconds();
      finish_round(std::move(round), hashes_before, sims_before,
                   round_timer.ElapsedSeconds());
      for (NodeId v : verified) bins.Insert(v, forest.LeafCount(v));
    }
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  output.clusters.SortBySizeDescending();
  stats.filtering_seconds = timer.ElapsedSeconds();
  stats.pairwise_similarities = pairwise.total_similarities();
  stats.hashes_computed = engine.total_hashes_computed();
  output.stats = std::move(stats);
  return output;
}

}  // namespace adalsh
