#include "core/lsh_blocking.h"

#include <utility>

#include "clustering/bin_index.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/transitive_hash_function.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

LshBlocking::LshBlocking(const Dataset& dataset, const MatchRule& rule,
                         const LshBlockingConfig& config)
    : dataset_(&dataset), rule_(rule), config_(config) {
  ADALSH_CHECK_GE(config.num_hashes, 1);
  Status valid = rule.Validate(dataset.record(0));
  ADALSH_CHECK(valid.ok()) << valid.ToString();
  StatusOr<RuleHashStructure> structure = CompileRuleForHashing(rule);
  ADALSH_CHECK(structure.ok()) << structure.status().ToString();
  structure_ = std::move(structure).value();
  scheme_ = OptimizeComposite(structure_, config.num_hashes, config.optimizer,
                              /*previous=*/nullptr);
  plan_ = BuildPlan(structure_, scheme_);
}

FilterOutput LshBlocking::Run(int k) {
  ADALSH_CHECK_GE(k, 1);
  const size_t num_records = dataset_->num_records();

  Timer timer;
  ParentPointerForest forest;
  ScopedThreadPool pool(config_.threads);
  HashEngine engine(*dataset_, structure_, config_.seed);
  TransitiveHasher hasher(&engine, &forest, num_records, pool.get());
  PairwiseComputer pairwise(*dataset_, rule_, pool.get());

  FilterStats stats;
  stats.records_last_hashed_at.assign(1, num_records);

  // Stage 1: apply all X hash functions to every record.
  std::vector<NodeId> roots =
      hasher.Apply(dataset_->AllRecordIds(), plan_, 0);
  stats.rounds = 1;

  std::vector<NodeId> finals;
  if (!config_.apply_pairwise) {
    // LSH-X-nP: trust the stage-1 clusters; return the k largest.
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      finals.push_back(bins.PopLargest());
    }
  } else {
    // Stage 2: verify clusters with P, largest first, until the k largest
    // verified clusters dominate everything unverified (optimization (1)).
    BinIndex bins(num_records);
    for (NodeId root : roots) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      NodeId root = bins.PopLargest();
      if (forest.Producer(root) == kProducerPairwise) {
        finals.push_back(root);
        continue;
      }
      std::vector<RecordId> records = forest.Leaves(root);
      stats.records_finished_by_pairwise += records.size();
      std::vector<NodeId> verified = pairwise.Apply(records, &forest);
      ++stats.rounds;
      for (NodeId v : verified) bins.Insert(v, forest.LeafCount(v));
    }
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  output.clusters.SortBySizeDescending();
  stats.filtering_seconds = timer.ElapsedSeconds();
  stats.pairwise_similarities = pairwise.total_similarities();
  stats.hashes_computed = engine.total_hashes_computed();
  output.stats = std::move(stats);
  return output;
}

}  // namespace adalsh
