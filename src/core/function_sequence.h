#ifndef ADALSH_CORE_FUNCTION_SEQUENCE_H_
#define ADALSH_CORE_FUNCTION_SEQUENCE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/budget_strategy.h"
#include "core/scheme_optimizer.h"
#include "distance/rule.h"
#include "lsh/composite_scheme.h"
#include "util/status.h"

namespace adalsh {

/// Configuration of the transitive-hashing-function sequence H_1 ... H_L
/// (Section 5): a budget schedule plus the per-function scheme optimization.
struct SequenceConfig {
  BudgetStrategy strategy = BudgetStrategy::Exponential();

  /// Budget of the final function H_L; the schedule stops at the first value
  /// >= max_budget (clamped). H_L outcomes are terminal for Algorithm 1, so
  /// this should be at least the budget a well-tuned standalone LSH would
  /// use (~1000+ for the paper's settings).
  int max_budget = 5120;

  OptimizerConfig optimizer;

  /// Validates the budget schedule and the optimizer knobs. InvalidArgument
  /// with a field-specific message on the first violation; checked by
  /// FunctionSequence::Build so invalid user configs surface as Status
  /// instead of aborting inside the schedule/optimizer internals.
  Status Validate() const;
};

/// The designed sequence: per-function composite schemes and executable table
/// plans, with Appendix C.1's monotonic w constraints threaded between
/// consecutive functions so every cached hash is reused.
class FunctionSequence {
 public:
  /// Compiles `rule` (validated against `prototype`) and optimizes one scheme
  /// per budget in the schedule. InvalidArgument if the rule cannot be hashed
  /// (see CompileRuleForHashing).
  static StatusOr<FunctionSequence> Build(const MatchRule& rule,
                                          const Record& prototype,
                                          const SequenceConfig& config);

  /// L — number of functions in the sequence.
  size_t size() const { return plans_.size(); }

  const SchemePlan& plan(size_t i) const;
  const CompositeScheme& scheme(size_t i) const;

  /// Actual hash budget of H_i (the optimized scheme's total, which can
  /// deviate from the nominal schedule by rounding).
  int budget(size_t i) const;

  const RuleHashStructure& structure() const { return structure_; }

  /// One line per function: budget and scheme.
  std::string DebugString() const;

 private:
  FunctionSequence() = default;

  RuleHashStructure structure_;
  std::vector<CompositeScheme> schemes_;
  std::vector<SchemePlan> plans_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_FUNCTION_SEQUENCE_H_
