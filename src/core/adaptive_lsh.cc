#include "core/adaptive_lsh.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "clustering/bin_index.h"
#include "core/pairwise.h"
#include "core/termination.h"
#include "core/transitive_hash_function.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {

Status AdaptiveLshConfig::Validate() const {
  Status sequence_valid = sequence.Validate();
  if (!sequence_valid.ok()) return sequence_valid;
  if (calibration_samples < 1) {
    return Status::InvalidArgument("calibration_samples must be >= 1");
  }
  if (!std::isfinite(pairwise_noise_factor) || pairwise_noise_factor <= 0.0) {
    return Status::InvalidArgument(
        "pairwise_noise_factor must be finite and > 0");
  }
  if (threads < 0) {
    return Status::InvalidArgument("threads must be >= 0");
  }
  return budget.Validate();
}

AdaptiveLsh::AdaptiveLsh(const Dataset& dataset, const MatchRule& rule,
                         const AdaptiveLshConfig& config)
    : dataset_(&dataset),
      rule_(rule),
      config_(config),
      sequence_([&] {
        Status valid = config.Validate();
        ADALSH_CHECK(valid.ok()) << valid.ToString();
        StatusOr<FunctionSequence> built =
            FunctionSequence::Build(rule, dataset.record(0), config.sequence);
        ADALSH_CHECK(built.ok()) << built.status().ToString();
        return std::move(built).value();
      }()),
      cost_model_([&] {
        ScopedThreadPool pool(config.threads);
        return CostModel::Calibrate(dataset, rule, config.calibration_samples,
                                    config.seed, pool.get(),
                                    config.instrumentation);
      }()) {
  cost_model_.set_pairwise_noise_factor(config.pairwise_noise_factor);
}

FilterOutput AdaptiveLsh::Run(int k) {
  return Run(k, [](size_t, const std::vector<RecordId>&) {});
}

FilterOutput AdaptiveLsh::Run(
    int k, const std::function<void(size_t rank, const std::vector<RecordId>&)>&
               on_cluster) {
  ADALSH_CHECK_GE(k, 1);
  const size_t num_records = dataset_->num_records();
  const int last_function = static_cast<int>(sequence_.size()) - 1;

  // Sinks are shared with the hasher/pairwise sweeps; TransitiveHasher
  // reports hash passes at its level, so the engine itself stays
  // uninstrumented (no double counting).
  const Instrumentation instr = config_.instrumentation;

  Timer timer;
  // Anytime execution (docs/robustness.md): the effective controller is
  // armed here, so the deadline excludes construction/calibration. Null when
  // neither a budget nor an external controller is configured — that path is
  // bit-identical to the pre-controller behavior.
  std::optional<RunController> local_controller;
  RunController* controller =
      ResolveController(config_.controller, config_.budget, &local_controller);
  ParentPointerForest forest;
  ScopedThreadPool pool(config_.threads);
  HashEngine engine(*dataset_, sequence_.structure(), config_.seed);
  TransitiveHasher hasher(&engine, &forest, num_records, pool.get(), instr,
                          controller);
  PairwiseComputer pairwise(*dataset_, rule_, pool.get(), instr, controller);
  // Hashes computed by discarded throwaway engines (incremental-reuse
  // ablation only).
  uint64_t ablated_hashes = 0;

  // last_fn[r]: sequence index of the last function applied to r, or
  // kLastFunctionPairwise once P has treated it (Definition 3 accounting).
  std::vector<int> last_fn(num_records, 0);

  FilterStats stats;

  auto is_final = [&](NodeId root) {
    int producer = forest.Producer(root);
    return producer == kProducerPairwise || producer == last_function;
  };

  Rng jump_rng(DeriveSeed(config_.seed, 0xd2aa));
  uint64_t jump_sampling_evals = 0;

  // Exact per-round counter sources (the same sources as the run totals, so
  // the round_records invariants of filter_output.h hold by construction).
  auto hash_count = [&] {
    return engine.total_hashes_computed() + ablated_hashes;
  };
  auto sim_count = [&] {
    return pairwise.total_similarities() + jump_sampling_evals;
  };

  // Round-boundary cooperative check (Algorithm 1 loop top). Feeds the
  // driver-level totals — which include jump-sampling evaluations and
  // ablated hashes the sweeps cannot see — before asking; the controller
  // keeps the max of all reports.
  auto stop_now = [&] {
    if (controller == nullptr) return false;
    controller->ReportHashes(hash_count());
    controller->ReportPairwise(sim_count());
    return controller->ShouldStop();
  };

  // Closes out a round: fills the counter deltas, appends the record to the
  // stats and notifies the attached sinks.
  auto finish_round = [&](RoundRecord round, uint64_t hashes_before,
                          uint64_t sims_before, double wall_seconds,
                          TraceRecorder::Span* span) {
    round.hashes_computed = hash_count() - hashes_before;
    round.pairwise_similarities = sim_count() - sims_before;
    round.wall_seconds = wall_seconds;
    ++stats.rounds;
    if (span != nullptr) {
      span->AddArg("round", static_cast<double>(round.round));
      span->AddArg("cluster_size", static_cast<double>(round.cluster_size));
      span->AddArg("hashes", static_cast<double>(round.hashes_computed));
      span->AddArg("pairwise",
                   static_cast<double>(round.pairwise_similarities));
    }
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("rounds", 1);
      instr.metrics->RecordValue("round_cluster_size",
                                 static_cast<double>(round.cluster_size));
      instr.metrics->RecordValue("round_wall_seconds", round.wall_seconds);
    }
    stats.round_records.push_back(round);
    if (instr.observer != nullptr) {
      instr.observer->OnRoundEnd(stats.round_records.back());
    }
  };

  // Lines 4-10 of Algorithm 1: refine one cluster with the next function in
  // the sequence, or with P when the cost model prefers it.
  auto process_cluster = [&](NodeId root) {
    std::vector<RecordId> records = forest.Leaves(root);
    int producer = forest.Producer(root);
    int next = producer + 1;

    RoundRecord round;
    round.round = stats.rounds + 1;
    round.cluster_size = records.size();
    const uint64_t hashes_before = hash_count();
    const uint64_t sims_before = sim_count();
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = round.round;
      start.cluster_size = records.size();
      start.producer = producer;
      instr.observer->OnRoundStart(start);
    }

    std::vector<NodeId> new_roots;
    bool jump;
    if (config_.jump_model == JumpModel::kSampledPurity) {
      uint64_t evals = 0;
      jump = cost_model_.ShouldJumpToPairwiseSampled(
          *dataset_, rule_, records, sequence_.budget(producer),
          sequence_.budget(next), &jump_rng, /*sample_pairs=*/20, &evals);
      jump_sampling_evals += evals;
    } else {
      jump = cost_model_.ShouldJumpToPairwise(sequence_.budget(producer),
                                              sequence_.budget(next),
                                              records.size());
    }
    // Interruption handling ("discard the round", docs/robustness.md): both
    // sweep engines build fresh trees and never touch the treated cluster's
    // own tree, so when a sweep is stopped mid-flight the partial trees are
    // simply orphaned, last_fn keeps its previous buckets, and the original
    // root is handed back to the caller unchanged. The round's counter
    // deltas are real work and are recorded (interrupted = true) so the
    // FilterStats sum invariants keep holding.
    bool interrupted = false;
    if (jump) {
      round.action = RoundAction::kPairwise;
      round.modeled_cost = cost_model_.PairwiseCost(records.size());
      Timer stage_timer;
      new_roots = pairwise.Apply(records, &forest);  // Line 6
      round.pairwise_seconds = stage_timer.ElapsedSeconds();
      interrupted = pairwise.last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn[r] = kLastFunctionPairwise;
      }
    } else if (config_.ablate_incremental_reuse) {
      round.action = RoundAction::kHash;
      round.function_index = next;
      round.modeled_cost =
          cost_model_.HashUpgradeCost(sequence_.budget(producer),
                                      sequence_.budget(next)) *
          static_cast<double>(records.size());
      Timer stage_timer;
      // Ablation: a throwaway engine recomputes every hash from scratch.
      HashEngine fresh_engine(*dataset_, sequence_.structure(), config_.seed);
      TransitiveHasher fresh_hasher(&fresh_engine, &forest, num_records,
                                    pool.get(), instr, controller);
      new_roots = fresh_hasher.Apply(records, sequence_.plan(next), next);
      ablated_hashes += fresh_engine.total_hashes_computed();
      round.hash_seconds = stage_timer.ElapsedSeconds();
      interrupted = fresh_hasher.last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn[r] = next;
      }
    } else {
      round.action = RoundAction::kHash;
      round.function_index = next;
      round.modeled_cost =
          cost_model_.HashUpgradeCost(sequence_.budget(producer),
                                      sequence_.budget(next)) *
          static_cast<double>(records.size());
      Timer stage_timer;
      new_roots = hasher.Apply(records, sequence_.plan(next), next);  // Line 8
      round.hash_seconds = stage_timer.ElapsedSeconds();
      interrupted = hasher.last_apply_interrupted();
      if (!interrupted) {
        for (RecordId r : records) last_fn[r] = next;
      }
    }
    round.interrupted = interrupted;
    finish_round(std::move(round), hashes_before, sims_before,
                 round_timer.ElapsedSeconds(), &round_span);
    if (interrupted) {
      // The cluster stays at its previous verification level; the caller
      // re-files it and the stuck controller ends the loop at its next check.
      new_roots.assign(1, root);
    }
    return new_roots;
  };

  // Line 1: H_1 on the whole dataset. Skipped entirely when the controller
  // already fired (pre-round-1 stop: empty best-effort output, zero rounds).
  std::vector<NodeId> initial;
  if (!stop_now()) {
    RoundRecord round;
    round.round = 1;
    round.action = RoundAction::kHash;
    round.function_index = 0;
    round.cluster_size = num_records;
    round.modeled_cost = cost_model_.HashCost(sequence_.budget(0)) *
                         static_cast<double>(num_records);
    Timer round_timer;
    TraceRecorder::Span round_span(instr.trace, "round", "round");
    if (instr.observer != nullptr) {
      RoundStartInfo start;
      start.round = 1;
      start.cluster_size = num_records;
      start.producer = -1;
      instr.observer->OnRoundStart(start);
    }
    Timer stage_timer;
    initial = hasher.Apply(dataset_->AllRecordIds(), sequence_.plan(0), 0);
    round.hash_seconds = stage_timer.ElapsedSeconds();
    // An interrupted initial pass means no record has a valid H_1 cluster
    // yet: the run degrades to an empty clustering (initial stays empty).
    round.interrupted = hasher.last_apply_interrupted();
    finish_round(std::move(round), /*hashes_before=*/0, /*sims_before=*/0,
                 round_timer.ElapsedSeconds(), &round_span);
  }

  std::vector<NodeId> finals;
  if (config_.selection == SelectionStrategy::kLargestFirst) {
    // Fast path: the bin-based structure of Appendix B.4 pops the largest
    // cluster in O(size of the top bin); pops are non-increasing in size, so
    // finals accumulate already ranked (Appendix B.5).
    BinIndex bins(num_records);
    for (NodeId root : initial) bins.Insert(root, forest.LeafCount(root));
    while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
      if (stop_now()) break;  // round boundary (anytime exit)
      NodeId root = bins.PopLargest();  // Line 3 (Largest-First)
      if (is_final(root)) {
        finals.push_back(root);
        on_cluster(finals.size() - 1, forest.Leaves(root));
        continue;
      }
      for (NodeId new_root : process_cluster(root)) {
        bins.Insert(new_root, forest.LeafCount(new_root));
      }
    }
    if (controller != nullptr && controller->stopped()) {
      // Graceful degradation: complete the top-k with the best pending
      // clusters at whatever verification level they reached. Pops stay
      // non-increasing, so `finals` remains ranked; the incremental
      // callback is not fired for these (they are not verified final).
      while (finals.size() < static_cast<size_t>(k) && !bins.empty()) {
        finals.push_back(bins.PopLargest());
      }
    }
  } else {
    // Ablation path (see SelectionStrategy): arbitrary selection order with
    // the family-of-algorithms termination rule — stop once the k largest
    // clusters overall are final.
    Rng selector(DeriveSeed(config_.seed, 0xab1a7e));
    std::vector<NodeId> pending;
    auto route = [&](NodeId root) {
      if (is_final(root)) {
        finals.push_back(root);
      } else {
        pending.push_back(root);
      }
    };
    for (NodeId root : initial) route(root);
    while (!pending.empty()) {
      if (stop_now()) break;  // round boundary (anytime exit)
      // Termination: the k-th largest final dominates every pending cluster.
      uint32_t max_pending = 0;
      for (NodeId root : pending) {
        max_pending = std::max(max_pending, forest.LeafCount(root));
      }
      if (finals.size() >= static_cast<size_t>(k)) {
        std::vector<uint32_t> final_sizes;
        final_sizes.reserve(finals.size());
        for (NodeId root : finals) final_sizes.push_back(forest.LeafCount(root));
        std::nth_element(final_sizes.begin(), final_sizes.begin() + (k - 1),
                         final_sizes.end(), std::greater<uint32_t>());
        if (final_sizes[k - 1] >= max_pending) break;
      }
      size_t pick = 0;
      switch (config_.selection) {
        case SelectionStrategy::kLargestFirst:
          ADALSH_CHECK(false);
          break;
        case SelectionStrategy::kSmallestFirst: {
          for (size_t i = 1; i < pending.size(); ++i) {
            if (forest.LeafCount(pending[i]) <
                forest.LeafCount(pending[pick])) {
              pick = i;
            }
          }
          break;
        }
        case SelectionStrategy::kFifo:
          pick = 0;
          break;
        case SelectionStrategy::kRandom:
          pick = selector.NextBelow(pending.size());
          break;
      }
      NodeId root = pending[pick];
      pending[pick] = pending.back();
      pending.pop_back();
      for (NodeId new_root : process_cluster(root)) route(new_root);
    }
    if (controller != nullptr && controller->stopped()) {
      // Graceful degradation: the largest pending clusters fill out the
      // top-k at their current verification level; the size sort below
      // ranks them together with the verified finals.
      std::stable_sort(pending.begin(), pending.end(),
                       [&](NodeId a, NodeId b) {
                         return forest.LeafCount(a) > forest.LeafCount(b);
                       });
      for (NodeId root : pending) {
        if (finals.size() >= static_cast<size_t>(k)) break;
        finals.push_back(root);
      }
    }
    // Rank finals and emit incremental callbacks in rank order (skipping
    // unverified fill clusters from an early termination).
    std::sort(finals.begin(), finals.end(), [&](NodeId a, NodeId b) {
      return forest.LeafCount(a) > forest.LeafCount(b);
    });
    if (finals.size() > static_cast<size_t>(k)) finals.resize(k);
    for (size_t rank = 0; rank < finals.size(); ++rank) {
      if (is_final(finals[rank])) on_cluster(rank, forest.Leaves(finals[rank]));
    }
  }

  FilterOutput output;
  output.clusters = MaterializeClusters(forest, finals);
  FillClusterVerification(forest, finals, &stats);
  // Pops are non-increasing in size on the fast path, so finals are already
  // ranked; the sort is a stable no-op kept as a safety net (and keeps
  // cluster_verification aligned, since stable no-ops preserve order).
  output.clusters.SortBySizeDescending();

  stats.termination_reason = controller != nullptr
                                 ? controller->reason()
                                 : TerminationReason::kCompleted;
  stats.filtering_seconds = timer.ElapsedSeconds();
  stats.pairwise_similarities =
      pairwise.total_similarities() + jump_sampling_evals;
  stats.hashes_computed = engine.total_hashes_computed() + ablated_hashes;
  stats.records_last_hashed_at.assign(sequence_.size(), 0);
  for (RecordId r = 0; r < num_records; ++r) {
    if (last_fn[r] == kLastFunctionPairwise) {
      ++stats.records_finished_by_pairwise;
    } else {
      ++stats.records_last_hashed_at[last_fn[r]];
    }
  }
  // Definition 3: sum_i n_i * cost_i + n_P * cost_P, evaluated from the
  // engine's exact hash count plus the exact P similarity count.
  stats.modeled_cost =
      cost_model_.cost_per_hash() * static_cast<double>(stats.hashes_computed) +
      cost_model_.cost_per_pair() *
          static_cast<double>(stats.pairwise_similarities);
  ReportTermination(instr, stats, output.clusters.clusters.size());
  output.stats = std::move(stats);
  return output;
}

}  // namespace adalsh
