#ifndef ADALSH_CORE_FILTER_OUTPUT_H_
#define ADALSH_CORE_FILTER_OUTPUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "clustering/clustering.h"
#include "obs/events.h"
#include "util/run_controller.h"

namespace adalsh {

/// Marker in per-record "last function applied" bookkeeping (AdaptiveLsh,
/// StreamingAdaptiveLsh) for records whose last treatment was the exact
/// pairwise function P — Definition 3's n_P bucket.
inline constexpr int kLastFunctionPairwise = -2;

/// Execution accounting shared by all filtering methods (adaLSH, LSH-X,
/// LSH-X-nP, Pairs, streaming). Times are wall-clock; counters feed the
/// Definition 3 cost expression sum_i n_i * cost_i + n_P * cost_P.
///
/// Field invariants — identical across every method, asserted in
/// tests/filter_stats_test.cc:
///
///   * rounds == round_records.size(). A "round" is one application of a
///     hashing function or of P to one record set: AdaptiveLsh counts the
///     initial H_1 pass plus every Algorithm 1 loop iteration; LSH-X counts
///     its stage-1 hash pass plus one round per P verification; LSH-X-nP and
///     Pairs count exactly 1; a streaming TopK counts only the refinement
///     rounds it ran itself (0 when every cluster was already verified).
///   * sum over round_records of hashes_computed == hashes_computed, and of
///     pairwise_similarities == pairwise_similarities: all work is performed
///     inside some round, and the per-round counters are exact deltas of the
///     same sources as the totals.
///   * records_last_hashed_at.size() == number of hashing functions the
///     method can apply: the sequence length L for adaLSH/streaming, 1 for
///     LSH-X/LSH-X-nP, 0 for Pairs (which has none).
///   * sum(records_last_hashed_at) + records_finished_by_pairwise == number
///     of records treated (the dataset size for batch methods, num_added()
///     for streaming): every treated record is counted exactly once, under
///     the last function applied to it.
struct FilterStats {
  /// Wall-clock seconds of the filtering stage (the paper's Execution Time).
  double filtering_seconds = 0.0;

  /// Rounds executed (see the invariants above).
  size_t rounds = 0;

  /// Rule evaluations performed by P invocations (n_P).
  uint64_t pairwise_similarities = 0;

  /// Raw LSH hash evaluations across all records and units.
  uint64_t hashes_computed = 0;

  /// records_last_hashed_at[i] = number of records whose last applied
  /// sequence function was H_i (the n_i of Definition 3); records whose last
  /// treatment was P are in records_finished_by_pairwise.
  std::vector<size_t> records_last_hashed_at;
  size_t records_finished_by_pairwise = 0;

  /// The Definition 3 cost of the run under the method's cost model
  /// (0 when the method used no model).
  double modeled_cost = 0.0;

  /// Per-round accounting, in execution order (obs/events.h). Always
  /// populated — collection is a handful of counter/clock reads per round —
  /// and the substrate of the obs run report's modeled-vs-measured cost
  /// diagnostics.
  std::vector<RoundRecord> round_records;

  /// How the run ended (docs/robustness.md). kCompleted is the normal
  /// Algorithm 1 termination; anything else marks an anytime partial result
  /// whose clusters reflect the state after the last fully completed round
  /// (an interrupted round is discarded except for its counter deltas, which
  /// stay in round_records so the sum invariants above hold regardless).
  /// On early termination the per-record accounting is conservative:
  /// records a discarded round would have re-treated stay in their previous
  /// bucket, and records never reached by any round are reported under H_1.
  TerminationReason termination_reason = TerminationReason::kCompleted;

  /// Verification level achieved by each returned cluster, parallel to
  /// FilterOutput::clusters.clusters: kLastFunctionPairwise for clusters
  /// certified by the exact pairwise function P, otherwise the 0-based
  /// sequence index of the last hashing function that produced the cluster
  /// (L-1 = fully hash-verified). On a completed run every entry is final by
  /// definition; on early termination the tail entries are the best pending
  /// clusters at whatever level they had reached.
  std::vector<int> cluster_verification;
};

/// Result of a filtering method: the requested clusters, ranked by
/// descending size, plus execution stats. UnionOfTopClusters(k) gives the
/// filtering output set O of Section 2.1.
struct FilterOutput {
  Clustering clusters;
  FilterStats stats;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_FILTER_OUTPUT_H_
