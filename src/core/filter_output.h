#ifndef ADALSH_CORE_FILTER_OUTPUT_H_
#define ADALSH_CORE_FILTER_OUTPUT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "clustering/clustering.h"

namespace adalsh {

/// Execution accounting shared by all filtering methods (adaLSH, LSH-X,
/// LSH-X-nP, Pairs). Times are wall-clock; counters feed the Definition 3
/// cost expression sum_i n_i * cost_i + n_P * cost_P.
struct FilterStats {
  /// Wall-clock seconds of the filtering stage (the paper's Execution Time).
  double filtering_seconds = 0.0;

  /// Rounds of Algorithm 1's main loop (1 for the non-adaptive methods).
  size_t rounds = 0;

  /// Rule evaluations performed by P invocations (n_P).
  uint64_t pairwise_similarities = 0;

  /// Raw LSH hash evaluations across all records and units.
  uint64_t hashes_computed = 0;

  /// records_last_hashed_at[i] = number of records whose last applied
  /// sequence function was H_i (the n_i of Definition 3); records whose last
  /// treatment was P are in records_finished_by_pairwise.
  std::vector<size_t> records_last_hashed_at;
  size_t records_finished_by_pairwise = 0;

  /// The Definition 3 cost of the run under the method's cost model
  /// (0 when the method used no model).
  double modeled_cost = 0.0;
};

/// Result of a filtering method: the requested clusters, ranked by
/// descending size, plus execution stats. UnionOfTopClusters(k) gives the
/// filtering output set O of Section 2.1.
struct FilterOutput {
  Clustering clusters;
  FilterStats stats;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_FILTER_OUTPUT_H_
