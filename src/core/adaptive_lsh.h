#ifndef ADALSH_CORE_ADAPTIVE_LSH_H_
#define ADALSH_CORE_ADAPTIVE_LSH_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "core/cost_model.h"
#include "core/filter_output.h"
#include "core/function_sequence.h"
#include "distance/rule.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/run_controller.h"
#include "util/status.h"

namespace adalsh {

/// Which pending cluster each round expands. kLargestFirst is the paper's
/// rule, proved optimal in Theorems 1-2; the alternatives exist for the
/// ablation benchmark that demonstrates the theorem empirically
/// (bench/ablation_selection). All strategies terminate with the same
/// answer — only the cost differs — because termination requires the k
/// largest clusters to be outcomes of H_L or P regardless of order.
enum class SelectionStrategy {
  kLargestFirst,
  kSmallestFirst,
  kFifo,
  kRandom,
};

/// Configuration of an AdaptiveLsh run.
struct AdaptiveLshConfig {
  /// Design of the function sequence H_1 ... H_L (Section 5).
  SequenceConfig sequence;

  /// Cluster-selection order (see SelectionStrategy).
  SelectionStrategy selection = SelectionStrategy::kLargestFirst;

  /// How Line 5 estimates P's cost (see JumpModel). kConservative is the
  /// paper's Definition 3 model; kSampledPurity implements the Appendix D.2
  /// direction and jumps to P much earlier on large pure clusters.
  JumpModel jump_model = JumpModel::kConservative;

  /// Ablation knob (bench/ablation_incremental): when true, every function
  /// application recomputes its hashes from scratch instead of extending the
  /// per-record caches — disabling the incremental-computation property
  /// (Section 2.2, Property 4) to measure what it is worth.
  bool ablate_incremental_reuse = false;

  /// Samples for cost-model calibration (Appendix E.2 uses 100). Ignored
  /// when an explicit cost model is supplied.
  int calibration_samples = 100;

  /// Noise factor applied to the cost model's P estimate (Fig. 21 study).
  double pairwise_noise_factor = 1.0;

  /// Worker threads for the hash hot path and calibration: 0 uses the global
  /// pool (--threads / hardware concurrency), 1 is strictly serial, N > 1
  /// uses a private pool. Results are byte-identical at any setting
  /// (docs/threading.md).
  int threads = 0;

  /// Seed for all hash functions and calibration sampling.
  uint64_t seed = 1;

  /// Observability sinks (obs/observer.h), borrowed for the lifetime of the
  /// AdaptiveLsh object: trace spans per round/hash pass/P sweep, metric
  /// counters, and Observer callbacks from the thread driving Run(). An
  /// empty Instrumentation (the default) costs one pointer test per round.
  /// Per-round RoundRecords land in FilterStats::round_records regardless.
  Instrumentation instrumentation;

  /// Anytime-execution limits (docs/robustness.md). The default (unlimited)
  /// budget reproduces the run-to-completion behavior bit for bit; any limit
  /// makes Run() return a best-effort partial FilterOutput with
  /// FilterStats::termination_reason set when it fires.
  RunBudget budget;

  /// Optional externally owned controller (borrowed; may be null). When set
  /// it overrides `budget` and lets another thread Cancel() the run; Run()
  /// re-arms it at entry, so its deadline is measured from run start.
  RunController* controller = nullptr;

  /// Validates every field reachable from user input (sequence design,
  /// calibration knobs, budget). InvalidArgument with a field-specific
  /// message on the first violation; OkStatus when a construction from this
  /// config cannot abort on config grounds.
  Status Validate() const;
};

/// Adaptive LSH — Algorithm 1, the paper's primary contribution. Filters a
/// dataset down to the records of its k largest entities by applying a
/// sequence of increasingly accurate (and expensive) transitive hashing
/// functions, always expanding the currently largest cluster (Largest-First,
/// optimal by Theorems 1-2) and jumping to the exact pairwise function P when
/// the cost model says hashing would cost more.
///
/// Typical use:
///
///   AdaptiveLsh adalsh(dataset, rule, config);
///   FilterOutput out = adalsh.Run(/*k=*/10);
///   // out.clusters: the 10 largest clusters, ranked by size.
///
/// To trade precision for recall, pass bk > k to Run() and keep comparing
/// against the top-k ground truth (Section 6.1.2's "return more clusters").
class AdaptiveLsh {
 public:
  /// Builds the function sequence and calibrates the cost model. Aborts on
  /// invalid rule/config (use FunctionSequence::Build directly to probe).
  AdaptiveLsh(const Dataset& dataset, const MatchRule& rule,
              const AdaptiveLshConfig& config);

  AdaptiveLsh(const AdaptiveLsh&) = delete;
  AdaptiveLsh& operator=(const AdaptiveLsh&) = delete;

  /// Runs the filtering stage for the k largest clusters. Each call is an
  /// independent run (fresh forest, tables and hash caches).
  FilterOutput Run(int k);

  /// Incremental mode (Section 4.2): `on_cluster(rank, records)` fires as
  /// soon as each final cluster is known — rank 0 is the largest cluster,
  /// which Theorem 2 guarantees is found at minimum cost — and the full
  /// result is still returned at the end.
  FilterOutput Run(int k,
                   const std::function<void(size_t rank,
                                            const std::vector<RecordId>&)>&
                       on_cluster);

  /// Replaces the calibrated cost model (tests and the Fig. 21 noise study).
  void set_cost_model(const CostModel& model) { cost_model_ = model; }
  const CostModel& cost_model() const { return cost_model_; }

  const FunctionSequence& sequence() const { return sequence_; }

 private:
  const Dataset* dataset_;
  MatchRule rule_;
  AdaptiveLshConfig config_;
  FunctionSequence sequence_;
  CostModel cost_model_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_ADAPTIVE_LSH_H_
