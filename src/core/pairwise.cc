#include "core/pairwise.h"

#include <unordered_set>

#include "util/check.h"

namespace adalsh {

PairwiseComputer::PairwiseComputer(const Dataset& dataset,
                                   const MatchRule& rule)
    : dataset_(&dataset), rule_(&rule) {}

std::vector<NodeId> PairwiseComputer::Apply(
    const std::vector<RecordId>& records, ParentPointerForest* forest) {
  ADALSH_CHECK(forest != nullptr);
  // Every record starts in its own tree.
  std::vector<NodeId> leaf_of(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    forest->MakeTree(records[i], kProducerPairwise, &leaf_of[i]);
  }
  for (size_t i = 0; i < records.size(); ++i) {
    const Record& record_i = dataset_->record(records[i]);
    for (size_t j = i + 1; j < records.size(); ++j) {
      NodeId root_i = forest->FindRoot(leaf_of[i]);
      NodeId root_j = forest->FindRoot(leaf_of[j]);
      if (root_i == root_j) continue;  // transitively closed already
      ++total_similarities_;
      if (rule_->Matches(record_i, dataset_->record(records[j]))) {
        forest->Merge(root_i, root_j);
      }
    }
  }
  std::vector<NodeId> roots;
  std::unordered_set<NodeId> seen;
  for (NodeId leaf : leaf_of) {
    NodeId root = forest->FindRoot(leaf);
    if (seen.insert(root).second) roots.push_back(root);
  }
  return roots;
}

}  // namespace adalsh
