#include "core/pairwise.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace adalsh {
namespace {

// Tile geometry of the parallel triangle sweep. Fixed constants — never
// derived from the thread count — so the evaluation schedule, and with it
// every observable output, is a pure function of the input.
constexpr size_t kRowBlock = 64;  // rows per stripe (snapshot granularity)
constexpr size_t kColTile = 128;  // columns per parallel work item

// Below this many records one stripe covers everything and the tiling
// machinery costs more than it saves; run the plain sweep.
constexpr size_t kSerialCutoff = 2 * kRowBlock;

// Minimum sweep size for which the tiled path is worth dispatching at all.
// A few-hundred-record sweep is microseconds of kernel work: the fork/join
// round trips, snapshot passes and decision-buffer traffic cost more than
// the evaluations they spread, which made the engine *slower* at 2-4
// threads than at 1 on the 800-record bench. Path choice is free to depend
// on anything — both sweeps produce byte-identical output (see SweepTiled's
// replay argument); this only decides where the crossover sits.
constexpr size_t kParallelMinRecords = 4096;

// Test override (0 = none): lets the parallel-equivalence suites force the
// tiled path on few-hundred-record inputs that real runs now sweep serially.
size_t g_parallel_cutoff_override = 0;

size_t EffectiveParallelCutoff() {
  // Never below kSerialCutoff: under it a single stripe covers the whole
  // triangle and tiling is pure overhead regardless of what a test asked.
  return std::max(kSerialCutoff, g_parallel_cutoff_override != 0
                                     ? g_parallel_cutoff_override
                                     : kParallelMinRecords);
}

// Per-pair decision recorded by a tile, consumed by the serial replay.
enum : uint8_t { kSkipped = 0, kNoMatch = 1, kMatched = 2 };

}  // namespace

size_t PairwiseComputer::OverrideParallelCutoffForTest(size_t cutoff) {
  size_t previous = g_parallel_cutoff_override;
  g_parallel_cutoff_override = cutoff;
  return previous;
}

PairwiseComputer::PairwiseComputer(const Dataset& dataset,
                                   const MatchRule& rule, ThreadPool* pool,
                                   Instrumentation instr,
                                   RunController* controller)
    : dataset_(&dataset),
      rule_(&rule),
      cache_(dataset),
      evaluator_(rule, cache_),
      pool_(pool),
      instr_(instr),
      controller_(controller) {}

bool PairwiseComputer::StripeCheck() {
  FaultInjectionPoint(FaultSite::kPairwiseTile);
  if (controller_ == nullptr) return false;
  controller_->ReportPairwise(total_similarities_);
  return controller_->ShouldStop();
}

std::vector<NodeId> PairwiseComputer::Apply(
    const std::vector<RecordId>& records, ParentPointerForest* forest) {
  ADALSH_CHECK(forest != nullptr);
  interrupted_ = false;
  const bool observed = instr_.enabled();
  const uint64_t similarities_before = total_similarities_;
  Timer timer;  // read only when observed
  TraceRecorder::Span span(instr_.trace, "pairwise_sweep", "pairwise");
  // Every record starts in its own tree.
  std::vector<NodeId> leaf_of(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    forest->MakeTree(records[i], kProducerPairwise, &leaf_of[i]);
  }
  if (pool_ == nullptr || records.size() < EffectiveParallelCutoff()) {
    SweepSerial(records, leaf_of, forest);
  } else {
    SweepTiled(records, leaf_of, forest);
  }
  std::vector<NodeId> roots;
  std::unordered_set<NodeId> seen;
  for (NodeId leaf : leaf_of) {
    NodeId root = forest->FindRoot(leaf);
    if (seen.insert(root).second) roots.push_back(root);
  }
  if (observed) {
    const uint64_t similarities = total_similarities_ - similarities_before;
    span.AddArg("records", static_cast<double>(records.size()));
    span.AddArg("similarities", static_cast<double>(similarities));
    span.AddArg("clusters_out", static_cast<double>(roots.size()));
    if (instr_.metrics != nullptr) {
      instr_.metrics->AddCounter("pairwise_similarities", similarities);
      instr_.metrics->AddCounter("pairwise_batches", 1);
      instr_.metrics->RecordValue("pairwise_batch_records",
                                  static_cast<double>(records.size()));
    }
    if (instr_.observer != nullptr) {
      PairwiseBatchInfo info;
      info.records = records.size();
      info.similarities = similarities;
      info.clusters_out = roots.size();
      info.seconds = timer.ElapsedSeconds();
      instr_.observer->OnPairwiseBatch(info);
    }
  }
  return roots;
}

void PairwiseComputer::SweepSerial(const std::vector<RecordId>& records,
                                   const std::vector<NodeId>& leaf_of,
                                   ParentPointerForest* forest) {
  for (size_t i = 0; i < records.size(); ++i) {
    // Same stripe boundaries as SweepTiled, so a controller stop lands after
    // an identical completed row prefix at any thread count.
    if (i % kRowBlock == 0 && StripeCheck()) {
      interrupted_ = true;
      return;
    }
    // Row i's root only changes through row i's own merges, so one FindRoot
    // per row plus Merge's returned survivor replaces a FindRoot per pair.
    NodeId root_i = forest->FindRoot(leaf_of[i]);
    for (size_t j = i + 1; j < records.size(); ++j) {
      NodeId root_j = forest->FindRoot(leaf_of[j]);
      if (root_i == root_j) continue;  // transitively closed already
      ++total_similarities_;
      if (evaluator_.Matches(records[i], records[j])) {
        root_i = forest->Merge(root_i, root_j);
      }
    }
  }
}

// Why the replay reproduces the serial sweep byte for byte: a tile skips
// (i, j) only when the pair is connected through the stripe snapshot or
// through matches found earlier in canonical order inside the same tile —
// both subsets of the merges the serial sweep has applied by the time it
// reaches (i, j) — so every serially-evaluated pair has a recorded decision,
// and the decision itself is a pure function of the two records. The replay
// walks canonical order applying exactly the serial sweep's root check
// against the live forest, so it counts and merges precisely the pairs the
// serial sweep would: total_similarities_ and the forest are identical at
// any thread count. (Tiles may evaluate extra pairs the serial sweep skips;
// the replay's root check discards them and they are never counted.)
void PairwiseComputer::SweepTiled(const std::vector<RecordId>& records,
                                  const std::vector<NodeId>& leaf_of,
                                  ParentPointerForest* forest) {
  const size_t n = records.size();
  std::vector<NodeId> snapshot(n);
  std::vector<uint8_t> decisions(kRowBlock * (n - 1));
  for (size_t rb = 0; rb < n; rb += kRowBlock) {
    if (StripeCheck()) {
      interrupted_ = true;
      return;
    }
    const size_t re = std::min(rb + kRowBlock, n);
    const size_t col_begin = rb + 1;
    if (col_begin >= n) break;
    const size_t width = n - col_begin;
    // Read-only snapshot of every root this stripe can touch. The forest is
    // quiescent here (the previous stripe's replay has finished), so the
    // concurrent FindRoot walks are safe; below ~4k roots the fork/join
    // dispatch costs more than the walks and the snapshot runs inline.
    ParallelFor(n - rb < 4096 ? nullptr : pool_, n - rb,
                [&](size_t begin, size_t end) {
                  for (size_t t = rb + begin; t < rb + end; ++t) {
                    snapshot[t] = forest->FindRoot(leaf_of[t]);
                  }
                });
    const size_t num_tiles = (width + kColTile - 1) / kColTile;
    ParallelFor(pool_, num_tiles, [&](size_t tile_begin, size_t tile_end) {
      for (size_t tile = tile_begin; tile < tile_end; ++tile) {
        EvaluateTile(records, snapshot, rb, re, col_begin + tile * kColTile,
                     std::min(col_begin + (tile + 1) * kColTile, n), col_begin,
                     decisions.data());
      }
    });
    // Serial replay in canonical (i, j) order against live roots, with the
    // same one-FindRoot-per-row caching as SweepSerial (row i's root only
    // changes through row i's own merges during the serial replay).
    for (size_t i = rb; i < re; ++i) {
      const uint8_t* row = decisions.data() + (i - rb) * width;
      NodeId root_i = forest->FindRoot(leaf_of[i]);
      for (size_t j = i + 1; j < n; ++j) {
        const uint8_t cell = row[j - col_begin];
        if (cell == kSkipped) continue;
        NodeId root_j = forest->FindRoot(leaf_of[j]);
        if (root_i == root_j) continue;
        ++total_similarities_;
        // Argument order matters: Merge keeps the first root on size ties,
        // exactly as the serial sweep calls it.
        if (cell == kMatched) root_i = forest->Merge(root_i, root_j);
      }
    }
  }
}

void PairwiseComputer::EvaluateTile(const std::vector<RecordId>& records,
                                    const std::vector<NodeId>& snapshot,
                                    size_t row_begin, size_t row_end,
                                    size_t col_tile_begin, size_t col_tile_end,
                                    size_t col_begin,
                                    uint8_t* decisions) const {
  const size_t width = records.size() - col_begin;
  // Tile-local union-find over snapshot roots: remembers the matches this
  // tile has already found so later pairs in the same tile keep the
  // transitive-closure skip. Touches at most kRowBlock + kColTile roots.
  // The snapshot-root -> local-id hashing happens once per row/column in
  // this prologue; the pair loop sees only small-array DSU operations.
  std::unordered_map<NodeId, uint32_t> local_id;
  local_id.reserve((row_end - row_begin) + (col_tile_end - col_tile_begin));
  std::vector<uint32_t> parent;
  auto local_of = [&](NodeId root) {
    auto [it, inserted] =
        local_id.try_emplace(root, static_cast<uint32_t>(parent.size()));
    if (inserted) parent.push_back(it->second);
    return it->second;
  };
  std::vector<uint32_t> row_local(row_end - row_begin);
  for (size_t i = row_begin; i < row_end; ++i) {
    row_local[i - row_begin] = local_of(snapshot[i]);
  }
  std::vector<uint32_t> col_local(col_tile_end - col_tile_begin);
  for (size_t j = col_tile_begin; j < col_tile_end; ++j) {
    col_local[j - col_tile_begin] = local_of(snapshot[j]);
  }
  auto find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t i = row_begin; i < row_end; ++i) {
    uint8_t* row = decisions + (i - row_begin) * width;
    const uint32_t local_i = row_local[i - row_begin];
    for (size_t j = std::max(i + 1, col_tile_begin); j < col_tile_end; ++j) {
      const uint32_t ri = find(local_i);
      const uint32_t rj = find(col_local[j - col_tile_begin]);
      if (ri == rj) {
        row[j - col_begin] = kSkipped;
        continue;
      }
      if (evaluator_.Matches(records[i], records[j])) {
        row[j - col_begin] = kMatched;
        parent[rj] = ri;
      } else {
        row[j - col_begin] = kNoMatch;
      }
    }
  }
}

}  // namespace adalsh
