#include "core/budget_strategy.h"

#include <cmath>
#include <sstream>

#include "util/check.h"

namespace adalsh {

BudgetStrategy BudgetStrategy::Exponential(int start, double multiplier) {
  ADALSH_CHECK_GE(start, 1);
  ADALSH_CHECK_GT(multiplier, 1.0);
  BudgetStrategy strategy;
  strategy.mode = Mode::kExponential;
  strategy.start = start;
  strategy.multiplier = multiplier;
  return strategy;
}

BudgetStrategy BudgetStrategy::Linear(int step) {
  ADALSH_CHECK_GE(step, 1);
  BudgetStrategy strategy;
  strategy.mode = Mode::kLinear;
  strategy.step = step;
  return strategy;
}

int BudgetStrategy::BudgetAt(int i) const {
  ADALSH_CHECK_GE(i, 0);
  if (mode == Mode::kExponential) {
    double value = start * std::pow(multiplier, i);
    return static_cast<int>(std::lround(value));
  }
  return step * (i + 1);
}

std::vector<int> BudgetStrategy::SequenceBudgets(int max_budget) const {
  ADALSH_CHECK_GE(max_budget, 1);
  std::vector<int> budgets;
  for (int i = 0;; ++i) {
    int budget = BudgetAt(i);
    if (budget >= max_budget) {
      budgets.push_back(max_budget);
      break;
    }
    // Guard against a non-growing schedule looping forever.
    ADALSH_CHECK(budgets.empty() || budget > budgets.back())
        << "budget schedule must be strictly increasing";
    budgets.push_back(budget);
  }
  return budgets;
}

std::string BudgetStrategy::ToString() const {
  std::ostringstream out;
  if (mode == Mode::kExponential) {
    out << "expo(start=" << start << ",x" << multiplier << ")";
  } else {
    out << "lin" << step;
  }
  return out.str();
}

}  // namespace adalsh
