#ifndef ADALSH_CORE_LSH_BLOCKING_H_
#define ADALSH_CORE_LSH_BLOCKING_H_

#include <cstdint>

#include "core/filter_output.h"
#include "core/scheme_optimizer.h"
#include "distance/rule.h"
#include "obs/observer.h"
#include "record/dataset.h"
#include "util/run_controller.h"
#include "util/status.h"

namespace adalsh {

/// Configuration of the LSH-X blocking baseline (Section 6.1.1).
struct LshBlockingConfig {
  /// X — hash functions applied to every record in stage 1. The (w, z)
  /// scheme is chosen by the same optimization programs adaLSH uses, with
  /// w*z <= X.
  int num_hashes = 1280;

  /// True for LSH-X (stage 1 + P verification); false for LSH-X-nP
  /// (Appendix E.1), which trusts the stage-1 clusters.
  bool apply_pairwise = true;

  OptimizerConfig optimizer;

  /// Worker threads for stage 1's hashing (same semantics as
  /// AdaptiveLshConfig::threads): 0 = global pool, 1 = serial, N > 1 =
  /// private pool. Output is identical at any setting.
  int threads = 0;

  uint64_t seed = 1;

  /// Observability sinks (obs/observer.h); same contract as
  /// AdaptiveLshConfig::instrumentation.
  Instrumentation instrumentation;

  /// Anytime-execution limits and optional external controller; same
  /// contract as the AdaptiveLshConfig fields (docs/robustness.md).
  RunBudget budget;
  RunController* controller = nullptr;

  /// Validates every user-settable field; InvalidArgument with a
  /// field-specific message on the first violation.
  Status Validate() const;
};

/// The traditional LSH blocking approach adapted to top-k filtering, with the
/// paper's three fairness optimizations: (1) early termination once k
/// verified clusters dominate all unverified ones, (2) P skips transitively
/// closed pairs, (3) the same implementation/data structures as adaLSH
/// (shared engine, forest, bin index).
class LshBlocking {
 public:
  LshBlocking(const Dataset& dataset, const MatchRule& rule,
              const LshBlockingConfig& config);

  LshBlocking(const LshBlocking&) = delete;
  LshBlocking& operator=(const LshBlocking&) = delete;

  /// Runs the baseline for the k largest clusters.
  FilterOutput Run(int k);

  /// The stage-1 scheme selected for the budget (for reporting).
  const CompositeScheme& scheme() const { return scheme_; }

 private:
  const Dataset* dataset_;
  MatchRule rule_;
  LshBlockingConfig config_;
  RuleHashStructure structure_;
  CompositeScheme scheme_;
  SchemePlan plan_;
};

}  // namespace adalsh

#endif  // ADALSH_CORE_LSH_BLOCKING_H_
