#ifndef ADALSH_CORE_TERMINATION_H_
#define ADALSH_CORE_TERMINATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "core/filter_output.h"
#include "obs/metrics_registry.h"
#include "obs/observer.h"
#include "util/run_controller.h"

namespace adalsh {

/// Shared anytime-execution plumbing of the filtering methods
/// (docs/robustness.md). Header-only: three small helpers every method's
/// epilogue calls the same way, so the run report and the obs layer see
/// identical semantics regardless of method.

/// Resolves the effective controller of one run. An externally supplied
/// controller wins (the caller owns its budget and may Cancel() it from
/// another thread); otherwise a non-trivial budget gets a run-local
/// controller emplaced into `local`; with neither the run is uncontrolled
/// (null — every cooperative check degenerates to one pointer test). The
/// chosen controller is armed here, so deadlines are measured from run entry
/// and exclude construction/calibration.
inline RunController* ResolveController(RunController* external,
                                        const RunBudget& budget,
                                        std::optional<RunController>* local,
                                        uint64_t hash_base = 0,
                                        uint64_t pairwise_base = 0) {
  RunController* controller = external;
  if (controller == nullptr && !budget.unlimited()) {
    local->emplace(budget);
    controller = &local->value();
  }
  if (controller != nullptr) controller->Arm(hash_base, pairwise_base);
  return controller;
}

/// Verification level of a cluster root for
/// FilterStats::cluster_verification: kLastFunctionPairwise for P-certified
/// trees, otherwise the 0-based sequence index of the producing function.
inline int VerificationLevel(const ParentPointerForest& forest, NodeId root) {
  const int producer = forest.Producer(root);
  return producer == kProducerPairwise ? kLastFunctionPairwise : producer;
}

/// Fills FilterStats::cluster_verification from the final roots. Call with
/// `finals` already in output (descending-size) order so the levels stay
/// parallel to FilterOutput::clusters.clusters after materialization.
inline void FillClusterVerification(const ParentPointerForest& forest,
                                    const std::vector<NodeId>& finals,
                                    FilterStats* stats) {
  stats->cluster_verification.clear();
  stats->cluster_verification.reserve(finals.size());
  for (NodeId root : finals) {
    stats->cluster_verification.push_back(VerificationLevel(forest, root));
  }
}

/// Shared run epilogue: bumps the per-reason run_controller metric and fires
/// Observer::OnTermination — the last callback of every run, completed or
/// degraded. Call after FilterStats is fully populated.
inline void ReportTermination(const Instrumentation& instr,
                              const FilterStats& stats,
                              size_t clusters_returned) {
  if (instr.metrics != nullptr) {
    instr.metrics->AddCounter(
        std::string("run_controller_terminations_") +
        TerminationReasonName(stats.termination_reason));
  }
  if (instr.observer != nullptr) {
    TerminationInfo info;
    info.reason = stats.termination_reason;
    info.rounds = stats.rounds;
    info.clusters_returned = clusters_returned;
    info.hashes_computed = stats.hashes_computed;
    info.pairwise_similarities = stats.pairwise_similarities;
    info.elapsed_seconds = stats.filtering_seconds;
    instr.observer->OnTermination(info);
  }
}

}  // namespace adalsh

#endif  // ADALSH_CORE_TERMINATION_H_
