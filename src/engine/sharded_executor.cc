#include "engine/sharded_executor.h"

#include <algorithm>
#include <iterator>
#include <numeric>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "clustering/forest_merge.h"
#include "core/refine_loop.h"
#include "core/termination.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {

int ShardOfExternalId(ExternalId id, int shards) {
  ADALSH_CHECK_GE(shards, 1);
  if (shards == 1) return 0;
  return static_cast<int>(SplitMix64(id) % static_cast<uint64_t>(shards));
}

/// Friend-door into ResidentEngine for the merge pass: read-only access to a
/// shard's live set, forest and hash caches, taken under the shard's
/// mutation lock (docs/sharding.md). Nothing here mutates shard state — the
/// merge assembles its own global dataset/forest/caches.
class ShardedMergeAccess {
 public:
  static std::mutex& Mutex(ResidentEngine& e) { return e.mu_; }
  static bool Initialized(const ResidentEngine& e) { return e.initialized_; }
  static const Dataset& Data(const ResidentEngine& e) { return e.dataset_; }
  static const std::vector<char>& Live(const ResidentEngine& e) {
    return e.live_;
  }
  static const std::vector<ExternalId>& ExtOf(const ResidentEngine& e) {
    return e.ext_of_;
  }
  static const std::vector<NodeId>& LeafOf(const ResidentEngine& e) {
    return e.leaf_of_;
  }
  static const std::vector<int>& LastFn(const ResidentEngine& e) {
    return e.last_fn_;
  }
  static const ParentPointerForest& Forest(const ResidentEngine& e) {
    return e.forest_;
  }
  static const HashEngine& Hashes(const ResidentEngine& e) {
    return *e.engine_;
  }
};

namespace {

/// Folds one shard pass's accounting into an aggregated mutation result:
/// counters sum, wall time takes the slowest shard (the passes overlap),
/// round records concatenate in shard order so the per-round sum invariants
/// of filter_output.h keep holding for the aggregate.
void AccumulateStats(const FilterStats& in, FilterStats* out) {
  out->rounds += in.rounds;
  out->hashes_computed += in.hashes_computed;
  out->pairwise_similarities += in.pairwise_similarities;
  out->modeled_cost += in.modeled_cost;
  out->filtering_seconds = std::max(out->filtering_seconds,
                                    in.filtering_seconds);
  out->round_records.insert(out->round_records.end(), in.round_records.begin(),
                            in.round_records.end());
  if (out->records_last_hashed_at.size() < in.records_last_hashed_at.size()) {
    out->records_last_hashed_at.resize(in.records_last_hashed_at.size(), 0);
  }
  for (size_t i = 0; i < in.records_last_hashed_at.size(); ++i) {
    out->records_last_hashed_at[i] += in.records_last_hashed_at[i];
  }
  out->records_finished_by_pairwise += in.records_finished_by_pairwise;
  if (in.termination_reason != TerminationReason::kCompleted) {
    out->termination_reason = in.termination_reason;
  }
}

/// The canonical cross-shard merge (docs/sharding.md). Caller holds every
/// shard's mutation lock; shard state is read-only throughout.
///
/// Records are gathered from all shards and renumbered by ascending external
/// id — exactly the internal-id order of a fresh engine ingesting the live
/// set in one batch, which is the reference the byte-identity contract names.
/// Level-1 bucket keys (recomputed for free from adopted hash prefixes)
/// yield the global components; shard trees are grafted in canonical order
/// (ascending shard, ascending shard-local discovery); components whose
/// trees came from more than one shard are collapsed back to one open
/// level-1 tree — cross-shard evidence may bridge their pieces at any deeper
/// level, the same argument that reopens a component on arrival — while
/// single-shard components keep their pieces, each a node of the component's
/// deterministic refinement tree. The shared refinement loop then certifies
/// the global top-k.
EngineSnapshot MergeShardStatesLocked(
    const MatchRule& rule, const ResidentEngine::Options& tmpl,
    CostModel cost_model,
    const std::vector<std::unique_ptr<ResidentEngine>>& shards,
    ThreadPool* pool) {
  const Instrumentation& instr = tmpl.config.instrumentation;
  TraceRecorder::Span span(instr.trace, "shard_merge", "engine");
  EngineSnapshot snap;

  // Phase accounting: gather (steps 1-3: collect records, adopt hashes,
  // global level-1 union-find), graft (steps 4-5: transplant shard trees,
  // collapse cross-shard components), refine (step 6: the global loop).
  // Spans live in optionals so each closes exactly at its phase boundary
  // without restructuring the step-numbered flow below.
  std::optional<TraceRecorder::Span> phase_span;
  Timer phase_timer;
  phase_span.emplace(instr.trace, "merge_gather", "engine");

  // 1. Gather every live record: (external id, owning shard, shard-local
  // internal id, last function applied).
  struct Src {
    ExternalId ext;
    int shard;
    RecordId local;
    int last_fn;
  };
  std::vector<Src> srcs;
  for (size_t s = 0; s < shards.size(); ++s) {
    const ResidentEngine& e = *shards[s];
    if (!ShardedMergeAccess::Initialized(e)) continue;
    const std::vector<char>& live = ShardedMergeAccess::Live(e);
    const std::vector<ExternalId>& ext_of = ShardedMergeAccess::ExtOf(e);
    const std::vector<int>& last_fn = ShardedMergeAccess::LastFn(e);
    for (size_t r = 0; r < live.size(); ++r) {
      if (!live[r]) continue;
      srcs.push_back({ext_of[r], static_cast<int>(s),
                      static_cast<RecordId>(r), last_fn[r]});
    }
  }
  std::sort(srcs.begin(), srcs.end(),
            [](const Src& a, const Src& b) { return a.ext < b.ext; });
  const size_t n = srcs.size();
  snap.live_records = n;
  if (n == 0) return snap;

  // 2. Global dataset in ascending-external-id order, with each record's
  // hash prefixes adopted from its shard — the merge never recomputes a
  // hash the shards already paid for.
  Dataset global("sharded-merge");
  for (const Src& src : srcs) {
    global.AddRecord(Record(ShardedMergeAccess::Data(*shards[src.shard])
                                .record(src.local)),
                     /*entity=*/0);
  }
  StatusOr<FunctionSequence> built =
      FunctionSequence::Build(rule, global.record(0), tmpl.config.sequence);
  ADALSH_CHECK(built.ok()) << built.status().ToString();
  const FunctionSequence sequence = std::move(built).value();
  HashEngine engine(global, sequence.structure(), tmpl.config.seed);
  for (size_t g = 0; g < n; ++g) {
    engine.AdoptRecordHashes(ShardedMergeAccess::Hashes(*shards[srcs[g].shard]),
                             srcs[g].local, static_cast<RecordId>(g));
  }

  // 3. Global level-1 components: union records whose bucket keys collide
  // in any table — including collisions across shards, which no shard ever
  // saw. Keys come straight off the adopted prefixes (every live record was
  // hashed through plan 0 on arrival in its shard).
  const SchemePlan& plan0 = sequence.plan(0);
  std::vector<RecordId> uf(n);
  std::iota(uf.begin(), uf.end(), 0);
  auto find = [&](RecordId x) {
    while (uf[x] != x) {
      uf[x] = uf[uf[x]];
      x = uf[x];
    }
    return x;
  };
  for (const TablePlan& table : plan0.tables) {
    std::unordered_map<uint64_t, RecordId> first_with_key;
    first_with_key.reserve(n);
    for (size_t g = 0; g < n; ++g) {
      const uint64_t key = engine.TableKey(static_cast<RecordId>(g), table);
      auto [it, inserted] = first_with_key.emplace(key, g);
      if (inserted) continue;
      RecordId a = find(it->second);
      RecordId b = find(static_cast<RecordId>(g));
      if (a != b) uf[std::max(a, b)] = std::min(a, b);
    }
  }
  const double gather_seconds = phase_timer.ElapsedSeconds();
  phase_span.reset();
  phase_span.emplace(instr.trace, "merge_graft", "engine");
  Timer graft_timer;
  GraftStats graft_stats;

  // 4. Graft every shard tree into the global forest in canonical order
  // (ascending shard, ascending shard-local record id), grouping the
  // grafted roots by global component.
  ParentPointerForest forest;
  std::vector<NodeId> leaf_of(n, kInvalidNode);
  std::vector<int> last_fn(n, 0);
  std::vector<uint64_t> order_key(n, 0);
  std::vector<std::vector<RecordId>> remap(shards.size());
  for (size_t g = 0; g < n; ++g) {
    last_fn[g] = srcs[g].last_fn;
    order_key[g] = srcs[g].ext;
    std::vector<RecordId>& shard_map = remap[srcs[g].shard];
    if (shard_map.size() <= static_cast<size_t>(srcs[g].local)) {
      shard_map.resize(srcs[g].local + 1, 0);
    }
    shard_map[srcs[g].local] = static_cast<RecordId>(g);
  }
  struct Component {
    std::vector<NodeId> roots;  // grafted, in canonical graft order
    int first_shard = -1;
    bool multi_shard = false;
  };
  std::unordered_map<RecordId, Component> components;
  std::vector<RecordId> component_order;  // first-touch order
  for (size_t s = 0; s < shards.size(); ++s) {
    const ResidentEngine& e = *shards[s];
    if (!ShardedMergeAccess::Initialized(e)) continue;
    const std::vector<char>& live = ShardedMergeAccess::Live(e);
    const std::vector<NodeId>& shard_leaf_of = ShardedMergeAccess::LeafOf(e);
    const ParentPointerForest& shard_forest = ShardedMergeAccess::Forest(e);
    std::unordered_set<NodeId> seen;
    for (size_t r = 0; r < live.size(); ++r) {
      if (!live[r]) continue;
      const NodeId shard_root = shard_forest.FindRoot(shard_leaf_of[r]);
      if (!seen.insert(shard_root).second) continue;
      const NodeId grafted = GraftTree(shard_forest, shard_root, &forest,
                                       remap[s], &leaf_of, &graft_stats);
      // A tree never spans level-1 components, so any leaf names the
      // component; `r` is one of its leaves.
      const RecordId comp = find(remap[s][r]);
      auto [it, inserted] = components.emplace(comp, Component{});
      if (inserted) component_order.push_back(comp);
      Component& info = it->second;
      if (info.first_shard == -1) {
        info.first_shard = static_cast<int>(s);
      } else if (info.first_shard != static_cast<int>(s)) {
        info.multi_shard = true;
      }
      info.roots.push_back(grafted);
    }
  }

  // 5. Initial roots: multi-shard components collapse to one open tree;
  // single-shard components keep their (already canonical) pieces.
  std::vector<NodeId> roots;
  size_t reopened = 0;
  for (RecordId comp : component_order) {
    Component& info = components[comp];
    if (info.multi_shard) {
      roots.push_back(MergeRoots(&forest, info.roots, /*producer=*/0));
      ++reopened;
    } else {
      roots.insert(roots.end(), info.roots.begin(), info.roots.end());
    }
  }
  span.AddArg("records", static_cast<double>(n));
  span.AddArg("components", static_cast<double>(component_order.size()));
  span.AddArg("cross_shard_components", static_cast<double>(reopened));
  span.AddArg("grafted_trees", static_cast<double>(graft_stats.trees));
  if (instr.metrics != nullptr) {
    instr.metrics->AddCounter("shard_merges", 1);
    instr.metrics->AddCounter("shard_merge_cross_components", reopened);
    instr.metrics->AddCounter("shard_merge_grafted_trees", graft_stats.trees);
    instr.metrics->AddCounter("shard_merge_grafted_leaves",
                              graft_stats.leaves);
  }
  const double graft_seconds = graft_timer.ElapsedSeconds();
  phase_span.reset();
  phase_span.emplace(instr.trace, "merge_refine", "engine");
  Timer refine_timer;

  // 6. Continue the canonical refinement loop to the global top-k, over
  // merge-local hasher/pairwise arenas (the tiled PairwiseComputer sweeps
  // any cross-shard pairs the reopened components surface).
  cost_model.set_pairwise_noise_factor(tmpl.config.pairwise_noise_factor);
  TransitiveHasher hasher(&engine, &forest, n, pool, instr);
  PairwiseComputer pairwise(global, rule, pool, instr);
  RefineLoopDeps deps;
  deps.sequence = &sequence;
  deps.cost_model = &cost_model;
  deps.engine = &engine;
  deps.hasher = &hasher;
  deps.pairwise = &pairwise;
  deps.forest = &forest;
  deps.last_fn = &last_fn;
  deps.order_key = &order_key;
  deps.leaf_of = &leaf_of;
  deps.instrumentation = instr;
  std::vector<NodeId> finals;
  FilterStats stats;
  RunRefineLoop(deps, tmpl.top_k, roots, /*external=*/nullptr, RunBudget{},
                &finals, &stats);
  ADALSH_CHECK(stats.termination_reason == TerminationReason::kCompleted);
  stats.records_last_hashed_at.assign(sequence.size(), 0);
  for (size_t g = 0; g < n; ++g) {
    if (last_fn[g] == kLastFunctionPairwise) {
      ++stats.records_finished_by_pairwise;
    } else {
      ++stats.records_last_hashed_at[last_fn[g]];
    }
  }
  ReportTermination(instr, stats, finals.size());
  const double refine_seconds = refine_timer.ElapsedSeconds();
  phase_span.reset();
  if (instr.metrics != nullptr) {
    instr.metrics->RecordLatency("shard_merge_gather_seconds", gather_seconds);
    instr.metrics->RecordLatency("shard_merge_graft_seconds", graft_seconds);
    instr.metrics->RecordLatency("shard_merge_refine_seconds", refine_seconds);
  }

  // 7. Canonical snapshot, exactly as ResidentEngine publishes one.
  snap.clusters.reserve(finals.size());
  snap.verification.reserve(finals.size());
  for (size_t i = 0; i < finals.size(); ++i) {
    std::vector<ExternalId> members;
    members.reserve(forest.LeafCount(finals[i]));
    forest.ForEachLeaf(finals[i],
                       [&](RecordId g) { members.push_back(order_key[g]); });
    std::sort(members.begin(), members.end());
    for (ExternalId member : members) snap.cluster_of.emplace(member, i);
    snap.clusters.push_back(std::move(members));
    snap.verification.push_back(VerificationLevel(forest, finals[i]));
  }
  snap.stats = std::move(stats);
  return snap;
}

}  // namespace

ShardedEngine::ShardedEngine(MatchRule rule, Options options)
    : rule_(std::move(rule)), options_(std::move(options)) {
  ADALSH_CHECK_GE(options_.shards, 1) << "ShardedEngine needs >= 1 shards";
  Status valid = options_.engine.config.Validate();
  ADALSH_CHECK(valid.ok()) << valid.ToString();
  if (options_.engine.cost_model.has_value()) {
    shared_cost_model_ = options_.engine.cost_model;
  }
  snapshot_ = std::make_shared<EngineSnapshot>();
}

ShardedEngine::~ShardedEngine() = default;

Status ShardedEngine::EnsureShardsLocked(
    const std::vector<Record>& prototype_batch) {
  if (!shards_.empty()) return Status::Ok();
  ADALSH_CHECK(!prototype_batch.empty());
  // Sequence construction is the only fallible per-shard initialization
  // step; probing it once up front keeps a bad first batch all-or-nothing
  // (shard engines would otherwise each reject their sub-batch after other
  // shards already ingested theirs).
  StatusOr<FunctionSequence> probe = FunctionSequence::Build(
      rule_, prototype_batch.front(), options_.engine.config.sequence);
  if (!probe.ok()) return probe.status();
  if (!shared_cost_model_.has_value()) {
    // One model for every shard: shards calibrating separately would
    // disagree on the jump-to-P point, and with it on the produced clusters
    // across shard counts (docs/sharding.md).
    Dataset sample("shard-calibration");
    for (const Record& record : prototype_batch) {
      sample.AddRecord(Record(record), /*entity=*/0);
    }
    shared_cost_model_.emplace(CostModel::Calibrate(
        sample, rule_, options_.engine.config.calibration_samples,
        options_.engine.config.seed, /*pool=*/nullptr,
        options_.engine.config.instrumentation));
  }
  const int total_threads = options_.engine.config.threads > 0
                                ? options_.engine.config.threads
                                : ThreadPool::HardwareConcurrency();
  const int per_shard =
      std::max(1, total_threads / std::max(1, options_.shards));
  shards_.reserve(options_.shards);
  for (int s = 0; s < options_.shards; ++s) {
    ResidentEngine::Options shard_options = options_.engine;
    shard_options.config.threads = per_shard;
    shard_options.cost_model = shared_cost_model_;
    // Shard refinement runs on whichever mutator thread routed the batch —
    // the Observer contract (one driving thread, ordered callbacks) cannot
    // hold across shards, so only the thread-safe sinks pass through.
    shard_options.config.instrumentation.observer = nullptr;
    shards_.push_back(
        std::make_unique<ResidentEngine>(rule_, std::move(shard_options)));
  }
  return Status::Ok();
}

StatusOr<EngineMutationResult> ShardedEngine::Ingest(
    std::vector<Record> records, const EngineBatchOptions& opts) {
  std::vector<ExternalId> ids;
  {
    std::lock_guard<std::mutex> lock(id_mu_);
    if (!records.empty()) {
      const Record& prototype =
          prototype_.has_value() ? *prototype_ : records.front();
      for (size_t i = 0; i < records.size(); ++i) {
        Status schema =
            ResidentEngine::CheckRecordSchema(prototype, records[i], i);
        if (!schema.ok()) return schema;
      }
      Status init = EnsureShardsLocked(records);
      if (!init.ok()) return init;
      if (!prototype_.has_value()) prototype_ = records.front();
    }
    ids.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) ids.push_back(next_ext_id_++);
  }

  if (records.empty() || shards_.empty()) {
    EngineMutationResult result;
    result.assigned_ids = ids;
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    result.generation = generation_;
    return result;
  }
  StatusOr<EngineMutationResult> routed =
      RouteIngest(std::move(records), ids, opts);
  if (!routed.ok()) return routed.status();
  routed.value().assigned_ids = std::move(ids);
  return routed;
}

StatusOr<EngineMutationResult> ShardedEngine::IngestWithIds(
    std::vector<Record> records, std::vector<ExternalId> ids,
    const EngineBatchOptions& opts) {
  if (records.size() != ids.size()) {
    return Status::InvalidArgument(
        "IngestWithIds: " + std::to_string(ids.size()) + " ids for " +
        std::to_string(records.size()) + " records");
  }
  for (size_t i = 1; i < ids.size(); ++i) {
    if (ids[i] <= ids[i - 1]) {
      return Status::InvalidArgument(
          "IngestWithIds: ids must be strictly increasing within the batch");
    }
  }
  {
    std::lock_guard<std::mutex> lock(id_mu_);
    if (!records.empty()) {
      const Record& prototype =
          prototype_.has_value() ? *prototype_ : records.front();
      for (size_t i = 0; i < records.size(); ++i) {
        Status schema =
            ResidentEngine::CheckRecordSchema(prototype, records[i], i);
        if (!schema.ok()) return schema;
      }
      Status init = EnsureShardsLocked(records);
      if (!init.ok()) return init;
      if (!prototype_.has_value()) prototype_ = records.front();
      next_ext_id_ = std::max(next_ext_id_, ids.back() + 1);
    }
  }
  if (records.empty()) {
    EngineMutationResult result;
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    result.generation = generation_;
    return result;
  }
  // Liveness collisions are caught by each shard's own IngestWithIds (the
  // routed sub-batch lands on the shard that owns the colliding id).
  StatusOr<EngineMutationResult> routed =
      RouteIngest(std::move(records), ids, opts);
  if (!routed.ok()) return routed.status();
  routed.value().assigned_ids = std::move(ids);
  return routed;
}

StatusOr<EngineMutationResult> ShardedEngine::RouteIngest(
    std::vector<Record> records, const std::vector<ExternalId>& ids,
    const EngineBatchOptions& opts) {
  const Instrumentation& instr = options_.engine.config.instrumentation;
  EngineMutationResult result;

  // Partition by shard, preserving batch order within each sub-batch (ids
  // stay strictly increasing per shard).
  std::vector<std::vector<Record>> shard_records(shards_.size());
  std::vector<std::vector<ExternalId>> shard_ids(shards_.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const int s = ShardOfExternalId(ids[i], options_.shards);
    shard_records[s].push_back(std::move(records[i]));
    shard_ids[s].push_back(ids[i]);
  }

  // One thread per involved shard: each sub-batch runs the full per-shard
  // round loop concurrently on disjoint engines.
  std::vector<int> involved;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!shard_records[s].empty()) involved.push_back(static_cast<int>(s));
  }
  std::vector<StatusOr<EngineMutationResult>> shard_results(
      involved.size(),
      StatusOr<EngineMutationResult>(
          Status::FailedPrecondition("shard pass never ran")));
  auto run_shard = [&](size_t idx) {
    const int s = involved[idx];
    TraceRecorder::Span span(instr.trace, "shard_run", "engine");
    span.AddArg("shard", static_cast<double>(s));
    span.AddArg("records", static_cast<double>(shard_records[s].size()));
    shard_results[idx] = shards_[s]->IngestWithIds(
        std::move(shard_records[s]), std::move(shard_ids[s]), opts);
  };
  // An external RunController is Arm()ed by every pass that uses it
  // (termination.h) — with several shard passes sharing one controller that
  // must not happen concurrently, so controller-bearing batches run their
  // shards serially. Budget-only SLOs get independent per-shard controllers
  // and stay parallel (the budget bounds each shard pass, not their sum).
  const bool serialize = opts.controller != nullptr ||
                         options_.engine.config.controller != nullptr;
  if (involved.size() == 1 || serialize) {
    for (size_t idx = 0; idx < involved.size(); ++idx) run_shard(idx);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(involved.size());
    for (size_t idx = 0; idx < involved.size(); ++idx) {
      threads.emplace_back(run_shard, idx);
    }
    for (std::thread& t : threads) t.join();
  }

  for (size_t idx = 0; idx < involved.size(); ++idx) {
    if (!shard_results[idx].ok()) return shard_results[idx].status();
    const EngineMutationResult& shard = shard_results[idx].value();
    AccumulateStats(shard.stats, &result.stats);
    result.lock_wait_seconds += shard.lock_wait_seconds;
    if (shard.refinement != TerminationReason::kCompleted) {
      result.refinement = shard.refinement;
    }
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter(
          "shard" + std::to_string(involved[idx]) + "_mutations", 1);
    }
  }
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    result.generation = generation_;
  }
  return result;
}

StatusOr<EngineMutationResult> ShardedEngine::Remove(
    std::span<const ExternalId> ids, const EngineBatchOptions& opts) {
  const Instrumentation& instr = options_.engine.config.instrumentation;
  if (shards_.empty()) {
    if (ids.empty()) {
      EngineMutationResult result;
      std::lock_guard<std::mutex> lock(snapshot_mu_);
      result.generation = generation_;
      return result;
    }
    return Status::NotFound("Remove: no live record with id " +
                            std::to_string(ids.front()));
  }
  std::vector<std::vector<ExternalId>> shard_ids(shards_.size());
  std::unordered_set<ExternalId> seen;
  for (ExternalId id : ids) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("Remove: id " + std::to_string(id) +
                                     " appears twice in the batch");
    }
    shard_ids[ShardOfExternalId(id, options_.shards)].push_back(id);
  }
  // Pre-validate across every involved shard before mutating any of them.
  // Best-effort under races on the same ids (see header).
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (ExternalId id : shard_ids[s]) {
      if (!shards_[s]->IsLive(id)) {
        return Status::NotFound("Remove: no live record with id " +
                                std::to_string(id));
      }
    }
  }
  EngineMutationResult result;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (shard_ids[s].empty()) continue;
    TraceRecorder::Span span(instr.trace, "shard_run", "engine");
    span.AddArg("shard", static_cast<double>(s));
    StatusOr<EngineMutationResult> shard =
        shards_[s]->Remove(shard_ids[s], opts);
    if (!shard.ok()) return shard.status();
    AccumulateStats(shard.value().stats, &result.stats);
    result.lock_wait_seconds += shard.value().lock_wait_seconds;
    if (shard.value().refinement != TerminationReason::kCompleted) {
      result.refinement = shard.value().refinement;
    }
    if (instr.metrics != nullptr) {
      instr.metrics->AddCounter("shard" + std::to_string(s) + "_mutations",
                                1);
    }
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  result.generation = generation_;
  return result;
}

StatusOr<EngineMutationResult> ShardedEngine::Update(
    ExternalId id, Record record, const EngineBatchOptions& opts) {
  const Instrumentation& instr = options_.engine.config.instrumentation;
  if (shards_.empty()) {
    return Status::NotFound("Update: no live record with id " +
                            std::to_string(id));
  }
  const int s = ShardOfExternalId(id, options_.shards);
  TraceRecorder::Span span(instr.trace, "shard_run", "engine");
  span.AddArg("shard", static_cast<double>(s));
  StatusOr<EngineMutationResult> shard =
      shards_[s]->Update(id, std::move(record), opts);
  if (!shard.ok()) return shard.status();
  if (instr.metrics != nullptr) {
    instr.metrics->AddCounter("shard" + std::to_string(s) + "_mutations", 1);
  }
  EngineMutationResult result = std::move(shard).value();
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  result.generation = generation_;
  return result;
}

StatusOr<EngineMutationResult> ShardedEngine::Flush(
    const EngineBatchOptions& opts) {
  const Instrumentation& instr = options_.engine.config.instrumentation;
  Timer flush_timer;
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  EngineMutationResult result;
  if (shards_.empty()) {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    result.generation = generation_;
    return result;
  }
  // Complete any shard refinement left unfinished by SLO-interrupted
  // mutations; the request's options bound these passes only.
  for (const std::unique_ptr<ResidentEngine>& shard : shards_) {
    StatusOr<EngineMutationResult> flushed = shard->Flush(opts);
    if (!flushed.ok()) return flushed.status();
    result.lock_wait_seconds += flushed.value().lock_wait_seconds;
    if (flushed.value().refinement != TerminationReason::kCompleted) {
      result.refinement = flushed.value().refinement;
    }
  }

  // The global certification pause: hold every shard's mutation lock (in
  // ascending shard order — the only multi-lock acquisition in the engine)
  // while the merge reads shard state and certifies the global top-k.
  Timer wait_timer;
  std::vector<std::unique_lock<std::mutex>> shard_locks;
  shard_locks.reserve(shards_.size());
  for (const std::unique_ptr<ResidentEngine>& shard : shards_) {
    shard_locks.emplace_back(ShardedMergeAccess::Mutex(*shard));
  }
  result.lock_wait_seconds += wait_timer.ElapsedSeconds();
  const int total_threads = options_.engine.config.threads;
  ScopedThreadPool merge_pool(total_threads);
  Timer merge_timer;
  EngineSnapshot merged = MergeShardStatesLocked(
      rule_, options_.engine, *shared_cost_model_, shards_, merge_pool.get());
  const double merge_seconds = merge_timer.ElapsedSeconds();
  shard_locks.clear();

  // Per-shard balance gauges, read after the merge released the shard locks
  // (counters() takes each shard's mutation lock itself).
  if (instr.metrics != nullptr) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      const EngineCounters c = shards_[s]->counters();
      const std::string prefix = "shard" + std::to_string(s);
      instr.metrics->SetGauge(prefix + "_live_records",
                              static_cast<double>(c.live_records));
      instr.metrics->SetGauge(prefix + "_level1_buckets",
                              static_cast<double>(c.level1_buckets));
    }
    instr.metrics->RecordLatency("shard_merge_seconds", merge_seconds);
    instr.metrics->RecordLatency("shard_flush_seconds",
                                 flush_timer.ElapsedSeconds());
  }

  result.stats = merged.stats;
  auto snap = std::make_shared<EngineSnapshot>(std::move(merged));
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snap->generation = ++generation_;
  result.generation = generation_;
  snapshot_ = std::move(snap);
  return result;
}

std::shared_ptr<const EngineSnapshot> ShardedEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

StatusOr<std::vector<std::vector<ExternalId>>> ShardedEngine::TopK(
    int k) const {
  if (k < 1) return Status::InvalidArgument("TopK: k must be >= 1");
  std::shared_ptr<const EngineSnapshot> snap = Snapshot();
  const size_t count = std::min(static_cast<size_t>(k), snap->clusters.size());
  return std::vector<std::vector<ExternalId>>(
      snap->clusters.begin(), snap->clusters.begin() + count);
}

StatusOr<std::vector<ExternalId>> ShardedEngine::Cluster(
    ExternalId id) const {
  std::shared_ptr<const EngineSnapshot> snap = Snapshot();
  auto it = snap->cluster_of.find(id);
  if (it == snap->cluster_of.end()) {
    return Status::NotFound("record " + std::to_string(id) +
                            " is in no cluster of snapshot generation " +
                            std::to_string(snap->generation));
  }
  return snap->clusters[it->second];
}

EngineCounters ShardedEngine::counters() const {
  EngineCounters total;
  for (const std::unique_ptr<ResidentEngine>& shard : shards_) {
    const EngineCounters c = shard->counters();
    total.batches += c.batches;
    total.ingested += c.ingested;
    total.removed += c.removed;
    total.updated += c.updated;
    total.arrivals_merged += c.arrivals_merged;
    total.refinements_completed += c.refinements_completed;
    total.refinements_interrupted += c.refinements_interrupted;
    total.internal_records += c.internal_records;
    total.level1_buckets += c.level1_buckets;
    total.snapshot_lag_batches += c.snapshot_lag_batches;
    total.total_hashes += c.total_hashes;
    total.total_similarities += c.total_similarities;
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  total.generation = generation_;
  total.live_records = snapshot_->live_records;
  return total;
}

bool ShardedEngine::IsLive(ExternalId id) const {
  if (shards_.empty()) return false;
  return shards_[ShardOfExternalId(id, options_.shards)]->IsLive(id);
}

std::vector<std::pair<ExternalId, Record>> ShardedEngine::LiveRecords()
    const {
  std::vector<std::pair<ExternalId, Record>> out;
  for (const std::unique_ptr<ResidentEngine>& shard : shards_) {
    std::vector<std::pair<ExternalId, Record>> shard_live =
        shard->LiveRecords();
    out.insert(out.end(), std::make_move_iterator(shard_live.begin()),
               std::make_move_iterator(shard_live.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::optional<CostModel> ShardedEngine::cost_model() const {
  std::lock_guard<std::mutex> lock(id_mu_);
  return shared_cost_model_;
}

std::vector<EngineCounters> ShardedEngine::shard_counters() const {
  std::vector<EngineCounters> per_shard;
  per_shard.reserve(shards_.size());
  for (const std::unique_ptr<ResidentEngine>& shard : shards_) {
    per_shard.push_back(shard->counters());
  }
  return per_shard;
}

StatusOr<EngineSnapshot> RunShardedBatch(
    const Dataset& dataset, const MatchRule& rule,
    const ShardedEngine::Options& options) {
  ShardedEngine engine(rule, options);
  std::vector<Record> records;
  records.reserve(dataset.num_records());
  for (RecordId r = 0; r < static_cast<RecordId>(dataset.num_records()); ++r) {
    records.push_back(Record(dataset.record(r)));
  }
  StatusOr<EngineMutationResult> ingested = engine.Ingest(std::move(records));
  if (!ingested.ok()) return ingested.status();
  StatusOr<EngineMutationResult> flushed = engine.Flush();
  if (!flushed.ok()) return flushed.status();
  return EngineSnapshot(*engine.Snapshot());
}

}  // namespace adalsh
