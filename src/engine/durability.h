#ifndef ADALSH_ENGINE_DURABILITY_H_
#define ADALSH_ENGINE_DURABILITY_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "io/wal.h"
#include "util/status.h"

namespace adalsh {

/// Recovery/runtime accounting of the durability plane, surfaced as wal_*
/// fields of the engine report and as obs metrics (docs/durability.md).
struct DurabilityStats {
  // Log writer totals, summed across shard logs.
  uint64_t wal_frames_appended = 0;
  uint64_t wal_bytes_appended = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_append_retries = 0;
  uint64_t wal_sync_retries = 0;

  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;

  /// Set when a permanent WAL failure degraded the engine to read-only.
  bool wal_degraded = false;

  // What Open() found.
  bool checkpoint_loaded = false;
  uint64_t checkpoint_seq = 0;
  uint64_t frames_replayed = 0;    // mutations re-applied from the log
  uint64_t frames_discarded = 0;   // dropped after a torn/incomplete tail
  uint64_t replay_apply_failures = 0;  // logged mutations that re-applied non-ok
  bool log_truncated = false;      // some log had a torn/corrupt tail
  std::vector<std::string> recovery_warnings;
};

/// Durable wrapper around the resident/sharded engine (docs/durability.md):
/// every mutation is appended to a write-ahead log *before* it is applied,
/// checkpoints periodically fold the live set into an atomically-replaced
/// snapshot file that truncates the logs, and Open() recovers by loading the
/// newest valid checkpoint and replaying the log tail.
///
/// Data directory layout:
///   <dir>/wal-<shard>.log        one append-only frame log per shard
///   <dir>/checkpoint-<seq>       newest-valid-wins checkpoint files
///
/// Recovery rebuilds state through the engine's own confluence contract:
/// the checkpoint stores only the live records (plus the id counter and the
/// pinned cost model — docs/engine.md's reproducibility prerequisite), and
/// re-ingesting them is byte-identical to the crashed engine's incremental
/// history, which is exactly what the differential harness certifies.
/// Snapshot generations restart after recovery (they count publications,
/// not state).
///
/// Failure semantics: transient append/sync failures are retried inside
/// MutationLog with bounded backoff; a permanent failure rejects the
/// mutation, degrades the engine to read-only (mutations fail fast with
/// FailedPrecondition, queries keep serving the last snapshot) and raises
/// the wal_degraded gauge. The engine never crashes on I/O errors.
///
/// Threading: mutations and checkpoints serialize on one internal lock —
/// the WAL is a total order and replay equivalence requires the apply order
/// to match it. A single Ingest batch still fans out across shards inside
/// the sharded engine; only cross-batch writer parallelism is traded for
/// durability. Queries never take the lock.
class DurableEngine {
 public:
  struct Options {
    /// Per-(shard-)engine template, exactly ResidentEngine::Options.
    ResidentEngine::Options engine;

    /// 0 = wrap a ResidentEngine (continuous certification, one log);
    /// >= 1 = wrap a ShardedEngine with that many shards (deferred global
    /// certification, one log per shard).
    int shards = 0;

    /// Directory for logs and checkpoints; created if missing.
    std::string data_dir;

    WalSyncPolicy sync = WalSyncPolicy::kBatch;

    /// Write a checkpoint automatically after every N applied mutations
    /// (0 = only on explicit Checkpoint() calls).
    uint64_t checkpoint_every_n = 0;
  };

  /// Opens the data directory, recovers (newest valid checkpoint + log-tail
  /// replay, torn tails truncated with a warning), and returns a serving
  /// engine. Fails with FailedPrecondition on a stale shard layout (the
  /// directory was written with a different shard count — id routing would
  /// scatter records to wrong logs) and on unreadable/uncreatable storage.
  static StatusOr<std::unique_ptr<DurableEngine>> Open(MatchRule rule,
                                                       Options options);

  ~DurableEngine();

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  // Mutations: the wrapped engine's contract, preceded by a WAL append.
  // All return FailedPrecondition without touching anything once degraded.
  StatusOr<EngineMutationResult> Ingest(std::vector<Record> records,
                                        const EngineBatchOptions& opts = {});
  StatusOr<EngineMutationResult> Remove(std::span<const ExternalId> ids,
                                        const EngineBatchOptions& opts = {});
  StatusOr<EngineMutationResult> Update(ExternalId id, Record record,
                                        const EngineBatchOptions& opts = {});
  StatusOr<EngineMutationResult> Flush(const EngineBatchOptions& opts = {});

  /// Writes a checkpoint now: syncs the logs, serializes the live set
  /// atomically (write-temp + fsync + rename + dir fsync), truncates the
  /// logs it supersedes and prunes older checkpoint files. On failure the
  /// logs are left intact — durability is unchanged, only the log stays
  /// long.
  Status Checkpoint();

  // Queries: straight pass-through, never blocked by mutations.
  std::shared_ptr<const EngineSnapshot> Snapshot() const;
  StatusOr<std::vector<std::vector<ExternalId>>> TopK(int k) const;
  StatusOr<std::vector<ExternalId>> Cluster(ExternalId id) const;
  EngineCounters counters() const;
  std::vector<EngineCounters> shard_counters() const;

  /// Durability accounting: recovery results plus live writer totals.
  DurabilityStats durability_stats() const;

  /// True once a permanent WAL failure switched the engine to read-only.
  bool degraded() const;

  int shards() const { return options_.shards; }
  int top_k() const { return options_.engine.top_k; }
  const std::string& data_dir() const { return options_.data_dir; }
  WalSyncPolicy sync_policy() const { return options_.sync; }

 private:
  DurableEngine(MatchRule rule, Options options);

  /// Replays checkpoint + log tails into the fresh engine. Fills recovery_.
  Status RecoverLocked();

  /// Appends `frame` to the logs in `shard_list` (same seq each), honoring
  /// the sync policy. On permanent failure flips degraded_ and reports.
  Status AppendFramesLocked(WalFrame frame, const std::vector<int>& shards);

  /// After the first applied ingest: persists the engine's calibrated cost
  /// model (unless the options pinned one) so replay prices identically.
  void MaybeLogCostModelLocked();

  /// checkpoint_every_n bookkeeping after an applied mutation.
  void MaybeCheckpointLocked();

  Status CheckpointLocked();

  /// Fast-fail guard shared by every mutation entry point.
  Status CheckWritableLocked() const;

  /// Exports the wal_* counters/gauges through the obs metrics registry.
  void ReportMetricsLocked();

  // Wrapped-engine dispatch (exactly one of the two is constructed).
  int num_logs() const { return options_.shards > 0 ? options_.shards : 1; }
  int ShardOfId(ExternalId id) const {
    return options_.shards > 0 ? ShardOfExternalId(id, options_.shards) : 0;
  }
  bool EngineIsLive(ExternalId id) const;
  StatusOr<EngineMutationResult> EngineIngestWithIds(
      std::vector<Record> records, std::vector<ExternalId> ids,
      const EngineBatchOptions& opts);

  MatchRule rule_;
  Options options_;

  std::optional<ResidentEngine> resident_;
  std::optional<ShardedEngine> sharded_;

  /// Serializes mutations, WAL appends and checkpoints (see class comment).
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<MutationLog>> logs_;  // one per shard
  uint64_t next_seq_ = 1;
  ExternalId next_ext_id_ = 0;
  std::optional<Record> prototype_;  // schema reference for pre-validation
  bool cost_model_logged_ = false;
  uint64_t mutations_since_checkpoint_ = 0;
  bool degraded_ = false;

  uint64_t checkpoints_written_ = 0;
  uint64_t checkpoint_failures_ = 0;
  DurabilityStats recovery_;  // recovery-time fields, frozen after Open
};

}  // namespace adalsh

#endif  // ADALSH_ENGINE_DURABILITY_H_
