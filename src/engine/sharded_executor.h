#ifndef ADALSH_ENGINE_SHARDED_EXECUTOR_H_
#define ADALSH_ENGINE_SHARDED_EXECUTOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "engine/resident_engine.h"

namespace adalsh {

/// Sharded execution of the adaptive LSH engine (docs/sharding.md): records
/// are partitioned across S shard engines by a deterministic hash of their
/// external id, each shard runs the full adaptive round loop over its own
/// HashCache/FeatureCache arenas and its own mutation lock, and a canonical
/// cross-shard merge reconciles the shard forests into the global certified
/// top-k. The contract is the repo's standing discipline: the canonical
/// result (live set, cluster memberships, verification levels) is
/// byte-identical for any shard count at any thread count, provided every
/// configuration shares one cost model (shard_equivalence_test).

/// The partition function: SplitMix64 of the external id, mod `shards`.
/// Content-independent and stable across the engine's lifetime, so a record
/// never migrates and removals/updates route without any directory lookup.
int ShardOfExternalId(ExternalId id, int shards);

/// A resident engine over S internal shards. Mutations route to their
/// record's shard and serialize only on that shard's lock, so writers
/// touching different shards proceed in parallel — the single-writer-lock
/// bottleneck this layer exists to remove. Each shard continuously maintains
/// its own shard-local certified top-k exactly like a standalone
/// ResidentEngine.
///
/// Global certification is deferred: the globally-merged snapshot served by
/// Snapshot()/TopK()/Cluster() advances only when Flush() runs the
/// cross-shard merge (per-shard refinement alone cannot certify a global
/// top-k, because a component split across shards may hold cross-shard merge
/// evidence no shard ever saw). This is the sharded engine's explicit
/// certification cadence: mutate freely, Flush() to publish.
///
/// Threading: Ingest/Remove/Update are safe from any thread; a single call
/// that spans multiple shards applies per shard (see each method). Flush()
/// serializes against other Flush() calls and briefly locks every shard.
/// Queries never block on mutations.
class ShardedEngine {
 public:
  struct Options {
    /// Per-shard engine template. `engine.config.threads` is the TOTAL
    /// worker budget: each shard engine gets max(1, threads / shards).
    /// The observer (if any) is detached from shard engines — shard
    /// refinement runs on mutator threads, violating the Observer
    /// single-driving-thread contract; metrics/trace sinks are kept (both
    /// are thread-safe) and report in per-shard lanes.
    ResidentEngine::Options engine;
    int shards = 1;
  };

  ShardedEngine(MatchRule rule, Options options);
  ~ShardedEngine();

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Assigns globally-unique ascending external ids, partitions the batch by
  /// ShardOfExternalId, and ingests each shard's sub-batch into its engine —
  /// concurrently on one thread per involved shard. The returned result
  /// aggregates the per-shard passes; `lock_wait_seconds` is the summed
  /// shard lock wait (the contention signal engine_load_gen histograms).
  ///
  /// On the first non-empty ingest, if the options did not pin a cost model,
  /// one model is calibrated on that batch and shared by every shard — shard
  /// engines calibrating separately would disagree on the jump-to-P point
  /// and break cross-shard-count identity (docs/sharding.md).
  StatusOr<EngineMutationResult> Ingest(std::vector<Record> records,
                                        const EngineBatchOptions& opts = {});

  /// Ingest with caller-assigned external ids (ResidentEngine::IngestWithIds
  /// semantics: strictly increasing within the batch, no collision with live
  /// ids — InvalidArgument otherwise): routes each record by
  /// ShardOfExternalId and advances the internal id counter past the largest
  /// assigned id. The durable engine replays logged ingests through this, so
  /// recovered records land on the shards that logged them
  /// (docs/durability.md).
  StatusOr<EngineMutationResult> IngestWithIds(
      std::vector<Record> records, std::vector<ExternalId> ids,
      const EngineBatchOptions& opts = {});

  /// Removes by external id, routed per shard. The batch is pre-validated
  /// against every involved shard (NotFound/InvalidArgument before any state
  /// changes); with concurrent removers racing on the *same* ids the
  /// validation is best-effort and a later shard's apply may still fail,
  /// leaving earlier shards' removals in place (the per-shard results are
  /// each atomic).
  StatusOr<EngineMutationResult> Remove(std::span<const ExternalId> ids,
                                        const EngineBatchOptions& opts = {});

  /// Replaces the record bound to `id` (single-shard: exactly the
  /// ResidentEngine contract on `id`'s shard).
  StatusOr<EngineMutationResult> Update(ExternalId id, Record record,
                                        const EngineBatchOptions& opts = {});

  /// Global certification point: flushes every shard (completing any
  /// SLO-interrupted shard refinement), then runs the canonical cross-shard
  /// merge under all shard locks and publishes the merged snapshot. The
  /// merge itself always runs to completion. `opts` applies to the per-shard
  /// flushes only.
  StatusOr<EngineMutationResult> Flush(const EngineBatchOptions& opts = {});

  /// The last globally-merged snapshot (generation 0 before the first
  /// Flush). Mutations since the last Flush are NOT reflected — see the
  /// class comment on deferred global certification.
  std::shared_ptr<const EngineSnapshot> Snapshot() const;

  /// TopK/Cluster against the last merged snapshot (ResidentEngine
  /// semantics).
  StatusOr<std::vector<std::vector<ExternalId>>> TopK(int k) const;
  StatusOr<std::vector<ExternalId>> Cluster(ExternalId id) const;

  /// Whole-life counters summed across shards; `generation` and
  /// `live_records` describe the merged snapshot.
  EngineCounters counters() const;

  /// One EngineCounters per shard, in shard order (empty before the first
  /// ingest) — the per-shard breakdown of the engine report: record/bucket
  /// balance, refinement outcomes and hash/pairwise work per shard. Takes
  /// each shard's mutation lock briefly, like counters().
  std::vector<EngineCounters> shard_counters() const;

  /// True when `id` is live on its shard (ResidentEngine::IsLive routed;
  /// point-in-time only). False before the first ingest.
  bool IsLive(ExternalId id) const;

  /// Copies of every live record with its external id across all shards,
  /// sorted by id (ResidentEngine::LiveRecords aggregated) — the checkpoint
  /// payload of the durability plane.
  std::vector<std::pair<ExternalId, Record>> LiveRecords() const;

  /// The shared cost model every shard prices with: the pinned option, the
  /// first ingest's calibration, or nullopt before initialization.
  std::optional<CostModel> cost_model() const;

  int shards() const { return options_.shards; }
  int top_k() const { return options_.engine.top_k; }

 private:
  /// Lazily constructs the shard engines on the first non-empty ingest
  /// (calibrating the shared cost model if none was pinned). Caller holds
  /// id_mu_.
  Status EnsureShardsLocked(const std::vector<Record>& prototype_batch);

  /// Shared tail of Ingest/IngestWithIds: partitions (records, ids) by
  /// shard, runs the involved shard passes (concurrently unless an external
  /// controller forces serial execution) and aggregates their results. Ids
  /// are already assigned/validated and shards_ is non-empty.
  StatusOr<EngineMutationResult> RouteIngest(std::vector<Record> records,
                                             const std::vector<ExternalId>& ids,
                                             const EngineBatchOptions& opts);

  MatchRule rule_;
  Options options_;

  /// Guards id assignment and lazy shard construction.
  mutable std::mutex id_mu_;
  ExternalId next_ext_id_ = 0;
  std::vector<std::unique_ptr<ResidentEngine>> shards_;
  std::optional<CostModel> shared_cost_model_;
  std::optional<Record> prototype_;  // schema reference, set at first ingest

  /// Serializes Flush() merges; publishes through snapshot_mu_.
  mutable std::mutex flush_mu_;
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;
  uint64_t generation_ = 0;
};

/// One-shot batch entry point (the CLI's `--shards` path): ingests the whole
/// dataset through a ShardedEngine — one concurrent per-shard batch — then
/// flushes and returns the merged snapshot. External ids are the dataset's
/// record indices. With `options.engine.cost_model` unset the model is
/// calibrated once on the full dataset and shared, so the result is still
/// identical across shard counts for one process (pin the model to make it
/// reproducible across runs).
StatusOr<EngineSnapshot> RunShardedBatch(const Dataset& dataset,
                                         const MatchRule& rule,
                                         const ShardedEngine::Options& options);

}  // namespace adalsh

#endif  // ADALSH_ENGINE_SHARDED_EXECUTOR_H_
