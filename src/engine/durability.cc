#include "engine/durability.h"

#include <dirent.h>
#include <errno.h>
#include <string.h>
#include <sys/stat.h>

#include <algorithm>
#include <map>
#include <unordered_set>
#include <utility>

#include "io/checkpoint.h"
#include "obs/metrics_registry.h"
#include "util/fault_injection.h"
#include "util/timer.h"

namespace adalsh {

namespace {

std::string WalPath(const std::string& dir, int shard) {
  return dir + "/wal-" + std::to_string(shard) + ".log";
}

// Parses "wal-<digits>.log" into the shard index; false otherwise.
bool ParseWalFileName(const std::string& name, int* shard) {
  constexpr char kPrefix[] = "wal-";
  constexpr char kSuffix[] = ".log";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  if (name.size() <= kPrefixLen + kSuffixLen ||
      name.compare(0, kPrefixLen, kPrefix) != 0 ||
      name.compare(name.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
    return false;
  }
  int value = 0;
  for (size_t i = kPrefixLen; i < name.size() - kSuffixLen; ++i) {
    if (name[i] < '0' || name[i] > '9') return false;
    value = value * 10 + (name[i] - '0');
  }
  *shard = value;
  return true;
}

}  // namespace

DurableEngine::DurableEngine(MatchRule rule, Options options)
    : rule_(std::move(rule)), options_(std::move(options)) {}

DurableEngine::~DurableEngine() {
  // Best-effort final barrier: a clean shutdown under sync=batch/none leaves
  // nothing in the page cache. Failures are ignored — the process is going
  // away and the sync policy already told the caller what can be lost.
  if (degraded_ || options_.sync == WalSyncPolicy::kNone) return;
  for (const std::unique_ptr<MutationLog>& log : logs_) {
    if (log != nullptr) (void)log->Sync();
  }
}

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(MatchRule rule,
                                                             Options options) {
  if (options.data_dir.empty()) {
    return Status::InvalidArgument("DurableEngine needs a data_dir");
  }
  if (options.shards < 0) {
    return Status::InvalidArgument("DurableEngine: shards must be >= 0");
  }
  if (::mkdir(options.data_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::FailedPrecondition("mkdir " + options.data_dir + ": " +
                                      ::strerror(errno));
  }
  std::unique_ptr<DurableEngine> engine(
      new DurableEngine(std::move(rule), std::move(options)));
  std::lock_guard<std::mutex> lock(engine->mu_);
  Status recovered = engine->RecoverLocked();
  if (!recovered.ok()) return recovered;
  return engine;
}

Status DurableEngine::RecoverLocked() {
  const std::string& dir = options_.data_dir;
  std::vector<std::string>& warnings = recovery_.recovery_warnings;
  Timer replay_timer;

  // 1. Stale-layout guard: a wal file for a shard index this configuration
  // does not have means the directory was written with more shards — the
  // id->shard routing changed and per-shard logs no longer line up.
  if (DIR* d = ::opendir(dir.c_str())) {
    while (dirent* entry = ::readdir(d)) {
      int shard = 0;
      if (ParseWalFileName(entry->d_name, &shard) && shard >= num_logs()) {
        const std::string name(entry->d_name);  // d_name dies with closedir
        ::closedir(d);
        return Status::FailedPrecondition(
            "stale shard layout: " + dir + " holds " + name +
            " but this engine has only " +
            std::to_string(num_logs()) + " log(s); reopen with the shard "
            "count that wrote the directory");
      }
    }
    ::closedir(d);
  }

  // 2. Newest valid checkpoint, if any. A checkpoint written under a
  // different shard count is the same stale-layout error as above.
  std::optional<CheckpointData> checkpoint;
  {
    StatusOr<CheckpointData> loaded = LoadNewestCheckpoint(dir, &warnings);
    if (loaded.ok()) {
      if (static_cast<int>(loaded->shards) != options_.shards) {
        return Status::FailedPrecondition(
            "stale shard layout: checkpoint in " + dir + " was written with "
            "shards=" + std::to_string(loaded->shards) + ", engine opened "
            "with shards=" + std::to_string(options_.shards));
      }
      checkpoint = *std::move(loaded);
    } else if (loaded.status().code() != StatusCode::kNotFound) {
      return loaded.status();
    }
  }

  // 3. Valid frame prefix of every shard log; torn/corrupt tails are
  // reported and truncated, never fatal (docs/durability.md).
  std::vector<std::vector<WalFrame>> log_frames(num_logs());
  for (int s = 0; s < num_logs(); ++s) {
    StatusOr<WalReadResult> read = ReadMutationLog(WalPath(dir, s));
    if (!read.ok()) {
      if (read.status().code() == StatusCode::kNotFound) continue;
      return read.status();
    }
    if (read->truncated) {
      recovery_.log_truncated = true;
      warnings.push_back(read->warning);
    }
    log_frames[s] = std::move(read->frames);
  }

  // 4. Pin the cost model before the engine exists: explicit option >
  // checkpoint > earliest logged kCostModel frame. Without a pin a replay
  // would recalibrate by wall clock and price jump-to-P decisions
  // differently from the crashed run (docs/engine.md).
  ResidentEngine::Options engine_options = options_.engine;
  if (!engine_options.cost_model.has_value()) {
    if (checkpoint.has_value() && checkpoint->has_cost_model) {
      engine_options.cost_model.emplace(checkpoint->cost_per_hash,
                                        checkpoint->cost_per_pair);
    } else {
      uint64_t best_seq = 0;
      for (const std::vector<WalFrame>& frames : log_frames) {
        for (const WalFrame& frame : frames) {
          if (frame.type != WalFrameType::kCostModel) continue;
          if (best_seq == 0 || frame.seq < best_seq) {
            best_seq = frame.seq;
            engine_options.cost_model.emplace(frame.cost_per_hash,
                                              frame.cost_per_pair);
          }
        }
      }
    }
    if (engine_options.cost_model.has_value()) {
      // Replay must not re-log it; the frame/checkpoint entry survives.
      cost_model_logged_ = true;
    }
  } else {
    cost_model_logged_ = true;  // pinned by the caller on every run
  }

  if (options_.shards > 0) {
    ShardedEngine::Options sharded_options;
    sharded_options.engine = engine_options;
    sharded_options.shards = options_.shards;
    sharded_.emplace(rule_, std::move(sharded_options));
  } else {
    resident_.emplace(rule_, std::move(engine_options));
  }

  // 5. Seed from the checkpoint: one bulk ingest of the live set. The
  // confluence contract makes this byte-identical to the incremental
  // history the checkpoint folded up.
  uint64_t replay_floor = 0;
  if (checkpoint.has_value()) {
    recovery_.checkpoint_loaded = true;
    recovery_.checkpoint_seq = checkpoint->last_seq;
    replay_floor = checkpoint->last_seq;
    next_ext_id_ = checkpoint->next_external_id;
    if (!checkpoint->records.empty()) {
      prototype_ = checkpoint->records.front();
      StatusOr<EngineMutationResult> seeded = EngineIngestWithIds(
          std::move(checkpoint->records), checkpoint->ids, {});
      if (!seeded.ok()) {
        return Status::FailedPrecondition(
            "checkpoint re-ingest failed: " + seeded.status().ToString());
      }
    }
  }

  // 6. Group replayable frames by seq. Within one log, appends are in seq
  // order; across logs the global counter interleaves, so a sorted map
  // rebuilds the original mutation order.
  struct SeqGroup {
    std::vector<WalFrame> frames;
  };
  std::map<uint64_t, SeqGroup> groups;
  // Per-log (seq, on-disk bytes) of every valid frame, captured before the
  // frames are moved into the groups — step 8 needs the sizes to compute
  // committed offsets, and a moved-from frame re-encodes to the wrong bytes.
  std::vector<std::vector<std::pair<uint64_t, size_t>>> extents(num_logs());
  for (int s = 0; s < num_logs(); ++s) {
    for (WalFrame& frame : log_frames[s]) {
      extents[s].emplace_back(frame.seq, EncodeWalFrame(frame).size());
      if (frame.seq <= replay_floor) continue;  // superseded by checkpoint
      groups[frame.seq].frames.push_back(std::move(frame));
    }
  }

  // 7. Replay the longest consecutive, complete prefix. A missing seq or a
  // mutation with fewer sub-frames than it logged (`parts`) means its tail
  // was lost — everything at and after that point is discarded, which is
  // exactly the sync policy's loss window, never a torn state.
  uint64_t last_applied_seq = replay_floor;
  bool stopped = false;
  for (const auto& [seq, group] : groups) {
    if (stopped || seq != last_applied_seq + 1) {
      if (!stopped) {
        warnings.push_back("seq gap after " +
                           std::to_string(last_applied_seq) +
                           "; discarding the remaining frames");
        stopped = true;
      }
      ++recovery_.frames_discarded;
      continue;
    }
    const uint32_t parts = group.frames.front().parts;
    if (group.frames.size() != parts) {
      warnings.push_back(
          "mutation seq " + std::to_string(seq) + " has " +
          std::to_string(group.frames.size()) + " of " +
          std::to_string(parts) +
          " sub-frames (unsynced tail); discarding it and everything after");
      stopped = true;
      ++recovery_.frames_discarded;
      continue;
    }

    if (auto injected = FaultStatusPoint(FaultSite::kRecoveryReplay)) {
      return Status::FailedPrecondition("recovery replay: " +
                                        injected->ToString());
    }

    const WalFrame& first = group.frames.front();
    Status applied = Status::Ok();
    switch (first.type) {
      case WalFrameType::kIngest: {
        // Re-join the sub-batches: the original batch assigned strictly
        // increasing ids, so sorting the union by id restores it.
        std::vector<std::pair<uint64_t, const Record*>> merged;
        for (const WalFrame& frame : group.frames) {
          for (size_t i = 0; i < frame.ids.size(); ++i) {
            merged.emplace_back(frame.ids[i], &frame.records[i]);
          }
        }
        std::sort(merged.begin(), merged.end(),
                  [](const auto& a, const auto& b) {
                    return a.first < b.first;
                  });
        std::vector<Record> records;
        std::vector<ExternalId> ids;
        records.reserve(merged.size());
        ids.reserve(merged.size());
        for (const auto& [id, record] : merged) {
          ids.push_back(id);
          records.push_back(*record);
        }
        if (!prototype_.has_value() && !records.empty()) {
          prototype_ = records.front();
        }
        next_ext_id_ = std::max(next_ext_id_, ids.back() + 1);
        StatusOr<EngineMutationResult> result =
            EngineIngestWithIds(std::move(records), ids, {});
        applied = result.ok() ? Status::Ok() : result.status();
        break;
      }
      case WalFrameType::kRemove: {
        std::vector<ExternalId> ids;
        for (const WalFrame& frame : group.frames) {
          ids.insert(ids.end(), frame.ids.begin(), frame.ids.end());
        }
        std::sort(ids.begin(), ids.end());
        StatusOr<EngineMutationResult> result =
            resident_.has_value() ? resident_->Remove(ids)
                                  : sharded_->Remove(ids);
        applied = result.ok() ? Status::Ok() : result.status();
        break;
      }
      case WalFrameType::kUpdate: {
        StatusOr<EngineMutationResult> result =
            resident_.has_value()
                ? resident_->Update(first.ids[0], Record(first.records[0]))
                : sharded_->Update(first.ids[0], Record(first.records[0]));
        applied = result.ok() ? Status::Ok() : result.status();
        break;
      }
      case WalFrameType::kFlush: {
        StatusOr<EngineMutationResult> result =
            resident_.has_value() ? resident_->Flush() : sharded_->Flush();
        applied = result.ok() ? Status::Ok() : result.status();
        break;
      }
      case WalFrameType::kCostModel:
        break;  // consumed in step 4, before the engine existed
    }
    if (!applied.ok()) {
      // A logged mutation that re-applies non-ok (e.g. its pre-validation
      // raced in the original run) is skipped: the live set still converges
      // because the apply conditions are the same function of state.
      ++recovery_.replay_apply_failures;
      warnings.push_back("replay of seq " + std::to_string(seq) +
                         " applied non-ok: " + applied.ToString());
    }
    if (first.type != WalFrameType::kCostModel) ++recovery_.frames_replayed;
    last_applied_seq = seq;
  }
  next_seq_ = last_applied_seq + 1;

  // 8. Reopen the logs for appending, committed through the last applied
  // seq: re-encoding is byte-deterministic, so summing encoded sizes of the
  // retained frames gives the exact file offset. Anything after (torn bytes
  // or discarded ghost frames) is physically truncated — a ghost frame's
  // seq would otherwise collide with a future mutation's.
  for (int s = 0; s < num_logs(); ++s) {
    uint64_t committed = 0;
    for (const auto& [seq, bytes] : extents[s]) {
      if (seq > last_applied_seq) break;
      committed += bytes;
    }
    StatusOr<std::unique_ptr<MutationLog>> log =
        MutationLog::Open(WalPath(dir, s), options_.sync, committed);
    if (!log.ok()) return log.status();
    logs_.push_back(std::move(log).value());
  }

  MetricsRegistry* metrics = options_.engine.config.instrumentation.metrics;
  if (metrics != nullptr) {
    metrics->RecordLatency("wal_replay_seconds",
                           replay_timer.ElapsedSeconds());
  }
  ReportMetricsLocked();
  return Status::Ok();
}

Status DurableEngine::CheckWritableLocked() const {
  if (!degraded_) return Status::Ok();
  return Status::FailedPrecondition(
      "engine is read-only: the write-ahead log failed permanently "
      "(wal_degraded); queries keep serving, mutations are rejected");
}

Status DurableEngine::AppendFramesLocked(WalFrame frame,
                                         const std::vector<int>& shards) {
  MetricsRegistry* metrics = options_.engine.config.instrumentation.metrics;
  Timer append_timer;
  for (int s : shards) {
    Status appended = logs_[s]->Append(frame);
    if (!appended.ok()) {
      degraded_ = true;
      ReportMetricsLocked();
      return Status::FailedPrecondition(
          "WAL append failed permanently (" + appended.ToString() +
          "); engine degraded to read-only");
    }
  }
  if (metrics != nullptr) {
    metrics->RecordLatency("wal_append_seconds", append_timer.ElapsedSeconds());
  }
  return Status::Ok();
}

void DurableEngine::MaybeLogCostModelLocked() {
  if (cost_model_logged_) return;
  std::optional<CostModel> model =
      resident_.has_value() ? resident_->cost_model() : sharded_->cost_model();
  if (!model.has_value()) return;
  WalFrame frame;
  frame.type = WalFrameType::kCostModel;
  frame.seq = next_seq_++;
  frame.generation = Snapshot()->generation;
  frame.parts = static_cast<uint32_t>(num_logs());
  frame.cost_per_hash = model->cost_per_hash();
  frame.cost_per_pair = model->cost_per_pair();
  std::vector<int> all(num_logs());
  for (int s = 0; s < num_logs(); ++s) all[s] = s;
  Status appended = AppendFramesLocked(std::move(frame), all);
  if (appended.ok()) cost_model_logged_ = true;
}

void DurableEngine::MaybeCheckpointLocked() {
  if (options_.checkpoint_every_n == 0 || degraded_) return;
  if (mutations_since_checkpoint_ < options_.checkpoint_every_n) return;
  Status written = CheckpointLocked();
  if (!written.ok()) {
    // A failed periodic checkpoint only means the log stays long; the next
    // threshold crossing (or an explicit `checkpoint`) tries again.
    recovery_.recovery_warnings.push_back("periodic checkpoint failed: " +
                                          written.ToString());
  }
}

Status DurableEngine::CheckpointLocked() {
  MetricsRegistry* metrics = options_.engine.config.instrumentation.metrics;
  Timer checkpoint_timer;

  // Barrier: everything the checkpoint folds up must be at least as durable
  // as the log claims before the log is superseded and truncated.
  if (options_.sync != WalSyncPolicy::kNone) {
    for (const std::unique_ptr<MutationLog>& log : logs_) {
      Status synced = log->Sync();
      if (!synced.ok()) {
        degraded_ = true;
        ReportMetricsLocked();
        ++checkpoint_failures_;
        return Status::FailedPrecondition(
            "WAL sync failed permanently before checkpoint (" +
            synced.ToString() + "); engine degraded to read-only");
      }
    }
  }

  CheckpointData data;
  data.last_seq = next_seq_ - 1;
  data.next_external_id = next_ext_id_;
  data.generation = Snapshot()->generation;
  data.shards = static_cast<uint32_t>(options_.shards);
  std::optional<CostModel> model =
      resident_.has_value() ? resident_->cost_model() : sharded_->cost_model();
  if (model.has_value()) {
    data.has_cost_model = true;
    data.cost_per_hash = model->cost_per_hash();
    data.cost_per_pair = model->cost_per_pair();
  }
  std::vector<std::pair<ExternalId, Record>> live =
      resident_.has_value() ? resident_->LiveRecords()
                            : sharded_->LiveRecords();
  data.ids.reserve(live.size());
  data.records.reserve(live.size());
  for (auto& [id, record] : live) {
    data.ids.push_back(id);
    data.records.push_back(std::move(record));
  }

  StatusOr<std::string> path = WriteCheckpoint(options_.data_dir, data);
  if (!path.ok()) {
    ++checkpoint_failures_;
    ReportMetricsLocked();
    return path.status();
  }

  // The checkpoint now supersedes every logged frame; truncating after the
  // rename means a crash in between only leaves already-superseded frames
  // that replay skips by seq.
  for (const std::unique_ptr<MutationLog>& log : logs_) {
    Status truncated = log->Truncate();
    if (!truncated.ok()) {
      ++checkpoint_failures_;
      return truncated;
    }
  }
  PruneCheckpoints(options_.data_dir, data.last_seq);
  ++checkpoints_written_;
  mutations_since_checkpoint_ = 0;
  if (metrics != nullptr) {
    metrics->RecordLatency("checkpoint_write_seconds",
                           checkpoint_timer.ElapsedSeconds());
  }
  ReportMetricsLocked();
  return Status::Ok();
}

Status DurableEngine::Checkpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  Status writable = CheckWritableLocked();
  if (!writable.ok()) return writable;
  return CheckpointLocked();
}

StatusOr<EngineMutationResult> DurableEngine::Ingest(
    std::vector<Record> records, const EngineBatchOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  Status writable = CheckWritableLocked();
  if (!writable.ok()) return writable;
  if (records.empty()) {
    // Nothing to make durable; still a (no-op) engine mutation.
    return resident_.has_value() ? resident_->Ingest({}, opts)
                                 : sharded_->Ingest({}, opts);
  }
  const Record& prototype =
      prototype_.has_value() ? *prototype_ : records.front();
  for (size_t i = 0; i < records.size(); ++i) {
    Status schema = ResidentEngine::CheckRecordSchema(prototype, records[i], i);
    if (!schema.ok()) return schema;
  }

  std::vector<ExternalId> ids(records.size());
  for (size_t i = 0; i < records.size(); ++i) ids[i] = next_ext_id_ + i;
  std::vector<std::vector<size_t>> by_shard(num_logs());
  for (size_t i = 0; i < ids.size(); ++i) {
    by_shard[ShardOfId(ids[i])].push_back(i);
  }
  std::vector<int> involved;
  for (int s = 0; s < num_logs(); ++s) {
    if (!by_shard[s].empty()) involved.push_back(s);
  }

  const uint64_t seq = next_seq_++;
  const uint64_t generation = Snapshot()->generation;
  for (int s : involved) {
    WalFrame frame;
    frame.type = WalFrameType::kIngest;
    frame.seq = seq;
    frame.generation = generation;
    frame.parts = static_cast<uint32_t>(involved.size());
    for (size_t i : by_shard[s]) {
      frame.ids.push_back(ids[i]);
      frame.records.push_back(Record(records[i]));
    }
    Status appended = AppendFramesLocked(std::move(frame), {s});
    if (!appended.ok()) return appended;
  }

  next_ext_id_ = ids.back() + 1;
  if (!prototype_.has_value()) prototype_ = records.front();
  StatusOr<EngineMutationResult> result =
      EngineIngestWithIds(std::move(records), ids, opts);
  if (result.ok()) {
    MaybeLogCostModelLocked();
    ++mutations_since_checkpoint_;
    MaybeCheckpointLocked();
  }
  ReportMetricsLocked();
  return result;
}

StatusOr<EngineMutationResult> DurableEngine::Remove(
    std::span<const ExternalId> ids, const EngineBatchOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  Status writable = CheckWritableLocked();
  if (!writable.ok()) return writable;
  // Pre-validate so doomed mutations never reach the log (replay would just
  // skip them, but a clean log makes frames_replayed meaningful).
  std::unordered_set<ExternalId> seen;
  for (ExternalId id : ids) {
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("Remove: id " + std::to_string(id) +
                                     " appears twice in the batch");
    }
    if (!EngineIsLive(id)) {
      return Status::NotFound("Remove: no live record with id " +
                              std::to_string(id));
    }
  }
  if (!ids.empty()) {
    std::vector<std::vector<uint64_t>> by_shard(num_logs());
    for (ExternalId id : ids) by_shard[ShardOfId(id)].push_back(id);
    std::vector<int> involved;
    for (int s = 0; s < num_logs(); ++s) {
      if (!by_shard[s].empty()) involved.push_back(s);
    }
    const uint64_t seq = next_seq_++;
    const uint64_t generation = Snapshot()->generation;
    for (int s : involved) {
      WalFrame frame;
      frame.type = WalFrameType::kRemove;
      frame.seq = seq;
      frame.generation = generation;
      frame.parts = static_cast<uint32_t>(involved.size());
      frame.ids = std::move(by_shard[s]);
      Status appended = AppendFramesLocked(std::move(frame), {s});
      if (!appended.ok()) return appended;
    }
  }
  StatusOr<EngineMutationResult> result =
      resident_.has_value() ? resident_->Remove(ids, opts)
                            : sharded_->Remove(ids, opts);
  if (result.ok() && !ids.empty()) {
    ++mutations_since_checkpoint_;
    MaybeCheckpointLocked();
  }
  ReportMetricsLocked();
  return result;
}

StatusOr<EngineMutationResult> DurableEngine::Update(
    ExternalId id, Record record, const EngineBatchOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  Status writable = CheckWritableLocked();
  if (!writable.ok()) return writable;
  if (!EngineIsLive(id)) {
    return Status::NotFound("Update: no live record with id " +
                            std::to_string(id));
  }
  if (prototype_.has_value()) {
    Status schema = ResidentEngine::CheckRecordSchema(*prototype_, record, 0);
    if (!schema.ok()) return schema;
  }
  WalFrame frame;
  frame.type = WalFrameType::kUpdate;
  frame.seq = next_seq_++;
  frame.generation = Snapshot()->generation;
  frame.ids.push_back(id);
  frame.records.push_back(Record(record));
  Status appended = AppendFramesLocked(std::move(frame), {ShardOfId(id)});
  if (!appended.ok()) return appended;
  StatusOr<EngineMutationResult> result =
      resident_.has_value() ? resident_->Update(id, std::move(record), opts)
                            : sharded_->Update(id, std::move(record), opts);
  if (result.ok()) {
    ++mutations_since_checkpoint_;
    MaybeCheckpointLocked();
  }
  ReportMetricsLocked();
  return result;
}

StatusOr<EngineMutationResult> DurableEngine::Flush(
    const EngineBatchOptions& opts) {
  std::lock_guard<std::mutex> lock(mu_);
  Status writable = CheckWritableLocked();
  if (!writable.ok()) return writable;
  WalFrame frame;
  frame.type = WalFrameType::kFlush;
  frame.seq = next_seq_++;
  frame.generation = Snapshot()->generation;
  frame.parts = static_cast<uint32_t>(num_logs());
  std::vector<int> all(num_logs());
  for (int s = 0; s < num_logs(); ++s) all[s] = s;
  Status appended = AppendFramesLocked(std::move(frame), all);
  if (!appended.ok()) return appended;

  // Flush is the sync=batch barrier: everything appended since the last
  // barrier becomes durable before the certification point it feeds.
  if (options_.sync == WalSyncPolicy::kBatch) {
    MetricsRegistry* metrics = options_.engine.config.instrumentation.metrics;
    Timer sync_timer;
    for (const std::unique_ptr<MutationLog>& log : logs_) {
      Status synced = log->Sync();
      if (!synced.ok()) {
        degraded_ = true;
        ReportMetricsLocked();
        return Status::FailedPrecondition(
            "WAL sync failed permanently (" + synced.ToString() +
            "); engine degraded to read-only");
      }
    }
    if (metrics != nullptr) {
      metrics->RecordLatency("wal_fsync_seconds", sync_timer.ElapsedSeconds());
    }
  }

  StatusOr<EngineMutationResult> result =
      resident_.has_value() ? resident_->Flush(opts) : sharded_->Flush(opts);
  if (result.ok()) {
    ++mutations_since_checkpoint_;
    MaybeCheckpointLocked();
  }
  ReportMetricsLocked();
  return result;
}

bool DurableEngine::EngineIsLive(ExternalId id) const {
  return resident_.has_value() ? resident_->IsLive(id) : sharded_->IsLive(id);
}

StatusOr<EngineMutationResult> DurableEngine::EngineIngestWithIds(
    std::vector<Record> records, std::vector<ExternalId> ids,
    const EngineBatchOptions& opts) {
  return resident_.has_value()
             ? resident_->IngestWithIds(std::move(records), std::move(ids),
                                        opts)
             : sharded_->IngestWithIds(std::move(records), std::move(ids),
                                       opts);
}

std::shared_ptr<const EngineSnapshot> DurableEngine::Snapshot() const {
  return resident_.has_value() ? resident_->Snapshot() : sharded_->Snapshot();
}

StatusOr<std::vector<std::vector<ExternalId>>> DurableEngine::TopK(
    int k) const {
  return resident_.has_value() ? resident_->TopK(k) : sharded_->TopK(k);
}

StatusOr<std::vector<ExternalId>> DurableEngine::Cluster(ExternalId id) const {
  return resident_.has_value() ? resident_->Cluster(id)
                               : sharded_->Cluster(id);
}

EngineCounters DurableEngine::counters() const {
  return resident_.has_value() ? resident_->counters() : sharded_->counters();
}

std::vector<EngineCounters> DurableEngine::shard_counters() const {
  if (sharded_.has_value()) return sharded_->shard_counters();
  return {};
}

DurabilityStats DurableEngine::durability_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  DurabilityStats stats = recovery_;
  for (const std::unique_ptr<MutationLog>& log : logs_) {
    const WalWriterStats& w = log->stats();
    stats.wal_frames_appended += w.frames_appended;
    stats.wal_bytes_appended += w.bytes_appended;
    stats.wal_syncs += w.syncs;
    stats.wal_append_retries += w.append_retries;
    stats.wal_sync_retries += w.sync_retries;
  }
  stats.checkpoints_written = checkpoints_written_;
  stats.checkpoint_failures = checkpoint_failures_;
  stats.wal_degraded = degraded_;
  return stats;
}

bool DurableEngine::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

void DurableEngine::ReportMetricsLocked() {
  MetricsRegistry* metrics = options_.engine.config.instrumentation.metrics;
  if (metrics == nullptr) return;
  WalWriterStats totals;
  for (const std::unique_ptr<MutationLog>& log : logs_) {
    const WalWriterStats& w = log->stats();
    totals.frames_appended += w.frames_appended;
    totals.bytes_appended += w.bytes_appended;
    totals.syncs += w.syncs;
    totals.append_retries += w.append_retries;
    totals.sync_retries += w.sync_retries;
  }
  metrics->SetGauge("wal_frames_appended",
                    static_cast<double>(totals.frames_appended));
  metrics->SetGauge("wal_bytes_appended",
                    static_cast<double>(totals.bytes_appended));
  metrics->SetGauge("wal_syncs", static_cast<double>(totals.syncs));
  metrics->SetGauge("wal_append_retries",
                    static_cast<double>(totals.append_retries));
  metrics->SetGauge("wal_sync_retries",
                    static_cast<double>(totals.sync_retries));
  metrics->SetGauge("wal_checkpoints_written",
                    static_cast<double>(checkpoints_written_));
  metrics->SetGauge("wal_checkpoint_failures",
                    static_cast<double>(checkpoint_failures_));
  metrics->SetGauge("wal_frames_replayed",
                    static_cast<double>(recovery_.frames_replayed));
  metrics->SetGauge("wal_degraded", degraded_ ? 1 : 0);
}

}  // namespace adalsh
