#include "engine/resident_engine.h"

#include <algorithm>
#include <string>
#include <utility>

#include "core/refine_loop.h"
#include "core/termination.h"
#include "obs/metrics_registry.h"
#include "obs/trace_recorder.h"
#include "util/check.h"
#include "util/simd_kernels.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {
namespace {

Status CancelledStatus(const char* op) {
  return Status::FailedPrecondition(
      std::string(op) +
      " after Cancel(): the effective controller is sticky-cancelled; "
      "attach a fresh controller to keep mutating");
}

}  // namespace

/// Structural schema check against the engine's prototype record — the same
/// invariants FeatureCache asserts with CHECKs, surfaced as a Status before
/// any engine state is touched.
Status ResidentEngine::CheckRecordSchema(const Record& prototype,
                                         const Record& record, size_t index) {
  if (record.num_fields() != prototype.num_fields()) {
    return Status::InvalidArgument(
        "record " + std::to_string(index) + " has " +
        std::to_string(record.num_fields()) + " fields, engine schema has " +
        std::to_string(prototype.num_fields()));
  }
  for (FieldId f = 0; f < record.num_fields(); ++f) {
    const Field& field = record.field(f);
    const Field& proto = prototype.field(f);
    if (field.is_dense() != proto.is_dense()) {
      return Status::InvalidArgument("record " + std::to_string(index) +
                                     " field " + std::to_string(f) +
                                     " kind differs from the engine schema");
    }
    if (field.is_dense() && field.size() != proto.size()) {
      return Status::InvalidArgument(
          "record " + std::to_string(index) + " field " + std::to_string(f) +
          " has dimension " + std::to_string(field.size()) +
          ", engine schema has " + std::to_string(proto.size()));
    }
  }
  return Status::Ok();
}

ResidentEngine::ResidentEngine(MatchRule rule, Options options)
    : rule_(std::move(rule)),
      options_(std::move(options)),
      pool_(options_.config.threads),
      dataset_("resident") {
  Status valid = options_.config.Validate();
  ADALSH_CHECK(valid.ok()) << valid.ToString();
  ADALSH_CHECK_GE(options_.top_k, 1) << "ResidentEngine top_k must be >= 1";
  // --threads determines the load regime the SIMD kernels run under; if the
  // worker count changed since the last probe, re-resolve the dispatch
  // levels for it (simd_kernels.h — speed re-pick only, results identical).
  simd::NotifyWorkerCount(options_.config.threads > 0
                              ? options_.config.threads
                              : ThreadPool::HardwareConcurrency());
  // Generation 0: the published view before any completed refinement.
  snapshot_ = std::make_shared<EngineSnapshot>();
}

EngineBatchOptions ResidentEngine::EffectiveOptions(
    const EngineBatchOptions& opts) const {
  EngineBatchOptions eff = opts;
  if (eff.controller == nullptr && eff.budget.unlimited()) {
    eff.controller = options_.config.controller;
    eff.budget = options_.config.budget;
  }
  return eff;
}

StatusOr<EngineMutationResult> ResidentEngine::Ingest(
    std::vector<Record> records, const EngineBatchOptions& opts) {
  Timer wait_timer;
  std::lock_guard<std::mutex> lock(mu_);
  const double lock_wait = wait_timer.ElapsedSeconds();
  EngineBatchOptions eff = EffectiveOptions(opts);
  if (eff.controller != nullptr && eff.controller->cancel_requested()) {
    return CancelledStatus("Ingest");
  }
  Status valid = ValidateIngestLocked(records);
  if (!valid.ok()) return valid;
  std::vector<ExternalId> ids;
  ids.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) ids.push_back(next_ext_id_++);
  return ApplyBatch("ingest", lock_wait, std::move(records), std::move(ids),
                    {}, eff);
}

StatusOr<EngineMutationResult> ResidentEngine::IngestWithIds(
    std::vector<Record> records, std::vector<ExternalId> ids,
    const EngineBatchOptions& opts) {
  Timer wait_timer;
  std::lock_guard<std::mutex> lock(mu_);
  const double lock_wait = wait_timer.ElapsedSeconds();
  EngineBatchOptions eff = EffectiveOptions(opts);
  if (eff.controller != nullptr && eff.controller->cancel_requested()) {
    return CancelledStatus("IngestWithIds");
  }
  if (ids.size() != records.size()) {
    return Status::InvalidArgument(
        "IngestWithIds: " + std::to_string(ids.size()) + " ids for " +
        std::to_string(records.size()) + " records");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0 && ids[i] <= ids[i - 1]) {
      return Status::InvalidArgument(
          "IngestWithIds: ids must be strictly increasing within the batch; "
          "id " + std::to_string(ids[i]) + " at index " + std::to_string(i) +
          " follows " + std::to_string(ids[i - 1]));
    }
    if (int_of_.count(ids[i]) != 0) {
      return Status::InvalidArgument("IngestWithIds: id " +
                                     std::to_string(ids[i]) +
                                     " is already bound to a live record");
    }
  }
  Status valid = ValidateIngestLocked(records);
  if (!valid.ok()) return valid;
  if (!ids.empty()) next_ext_id_ = std::max(next_ext_id_, ids.back() + 1);
  return ApplyBatch("ingest", lock_wait, std::move(records), std::move(ids),
                    {}, eff);
}

Status ResidentEngine::ValidateIngestLocked(
    const std::vector<Record>& records) {
  if (records.empty()) return Status::Ok();
  const Record& prototype =
      dataset_.num_records() > 0 ? dataset_.record(0) : records.front();
  for (size_t i = 0; i < records.size(); ++i) {
    Status schema = CheckRecordSchema(prototype, records[i], i);
    if (!schema.ok()) return schema;
  }
  if (!initialized_) {
    // Build the sequence before mutating anything: it is the only fallible
    // initialization step, and ingest is all-or-nothing.
    StatusOr<FunctionSequence> built = FunctionSequence::Build(
        rule_, records.front(), options_.config.sequence);
    if (!built.ok()) return built.status();
    sequence_.emplace(std::move(built).value());
  }
  return Status::Ok();
}

StatusOr<EngineMutationResult> ResidentEngine::Remove(
    std::span<const ExternalId> ids, const EngineBatchOptions& opts) {
  Timer wait_timer;
  std::lock_guard<std::mutex> lock(mu_);
  const double lock_wait = wait_timer.ElapsedSeconds();
  EngineBatchOptions eff = EffectiveOptions(opts);
  if (eff.controller != nullptr && eff.controller->cancel_requested()) {
    return CancelledStatus("Remove");
  }
  std::vector<RecordId> ints;
  ints.reserve(ids.size());
  std::unordered_set<ExternalId> seen;
  for (ExternalId id : ids) {
    auto it = int_of_.find(id);
    if (it == int_of_.end()) {
      return Status::NotFound("Remove: no live record with id " +
                              std::to_string(id));
    }
    if (!seen.insert(id).second) {
      return Status::InvalidArgument("Remove: id " + std::to_string(id) +
                                     " appears twice in the batch");
    }
    ints.push_back(it->second);
  }
  return ApplyBatch("remove", lock_wait, {}, {}, ints, eff);
}

StatusOr<EngineMutationResult> ResidentEngine::Update(
    ExternalId id, Record record, const EngineBatchOptions& opts) {
  Timer wait_timer;
  std::lock_guard<std::mutex> lock(mu_);
  const double lock_wait = wait_timer.ElapsedSeconds();
  EngineBatchOptions eff = EffectiveOptions(opts);
  if (eff.controller != nullptr && eff.controller->cancel_requested()) {
    return CancelledStatus("Update");
  }
  auto it = int_of_.find(id);
  if (it == int_of_.end()) {
    return Status::NotFound("Update: no live record with id " +
                            std::to_string(id));
  }
  Status schema = CheckRecordSchema(dataset_.record(0), record, 0);
  if (!schema.ok()) return schema;
  std::vector<Record> adds;
  adds.push_back(std::move(record));
  ++counters_.updated;
  return ApplyBatch("update", lock_wait, std::move(adds), {id}, {it->second},
                    eff);
}

StatusOr<EngineMutationResult> ResidentEngine::Flush(
    const EngineBatchOptions& opts) {
  Timer wait_timer;
  std::lock_guard<std::mutex> lock(mu_);
  const double lock_wait = wait_timer.ElapsedSeconds();
  EngineBatchOptions eff = EffectiveOptions(opts);
  if (eff.controller != nullptr && eff.controller->cancel_requested()) {
    return CancelledStatus("Flush");
  }
  return ApplyBatch("flush", lock_wait, {}, {}, {}, eff);
}

EngineMutationResult ResidentEngine::ApplyBatch(
    const char* op, double lock_wait_seconds, std::vector<Record> adds,
    std::vector<ExternalId> add_ext_ids,
    const std::vector<RecordId>& removed_ints,
    const EngineBatchOptions& opts) {
  const Instrumentation& instr = options_.config.instrumentation;
  Timer batch_timer;
  const double cpu_start = Timer::ThreadCpuSeconds();
  TraceRecorder::Span span(instr.trace, "engine_batch", "engine");
  span.AddArg("adds", static_cast<double>(adds.size()));
  span.AddArg("removes", static_cast<double>(removed_ints.size()));
  span.AddArg("lock_wait_ms", lock_wait_seconds * 1e3);
  ++counters_.batches;

  if (!removed_ints.empty()) {
    RemoveLocked(removed_ints);
    counters_.removed += removed_ints.size();
  }

  if (!adds.empty()) {
    const RecordId first_new = static_cast<RecordId>(dataset_.num_records());
    for (Record& record : adds) {
      // The engine has no ground truth; entity 0 is a placeholder (the
      // dataset's truth accessors are never used through this path).
      dataset_.AddRecord(std::move(record), /*entity=*/0);
    }
    if (!initialized_) InitializeLocked();
    GrowStateLocked();
    for (size_t i = 0; i < adds.size(); ++i) {
      const RecordId r = first_new + static_cast<RecordId>(i);
      live_[r] = 1;
      ext_of_[r] = add_ext_ids[i];
      int_of_[add_ext_ids[i]] = r;
      ArriveLocked(r);
    }
    counters_.ingested += adds.size();
  }

  EngineMutationResult result;
  result.assigned_ids = std::move(add_ext_ids);
  double refine_seconds = 0.0;
  if (initialized_) {
    Timer refine_timer;
    std::vector<NodeId> finals;
    result.refinement = RefineLocked(opts, &finals, &result.stats);
    refine_seconds = refine_timer.ElapsedSeconds();
    if (result.refinement == TerminationReason::kCompleted) {
      ++counters_.refinements_completed;
      PublishLocked(finals, result.stats);
    } else {
      ++counters_.refinements_interrupted;
    }
  }
  result.generation = generation_;
  result.lock_wait_seconds = lock_wait_seconds;
  counters_.snapshot_lag_batches = counters_.batches - batches_at_publish_;
  if (instr.metrics != nullptr) {
    instr.metrics->AddCounter("engine_batches", 1);
    instr.metrics->AddCounter("engine_records_ingested", adds.size());
    instr.metrics->AddCounter("engine_records_removed", removed_ints.size());
    instr.metrics->AddCounter(std::string("engine_op_") + op, 1);
    instr.metrics->AddCounter(
        result.refinement == TerminationReason::kCompleted
            ? "engine_refinements_completed"
            : "engine_refinements_interrupted",
        1);
    instr.metrics->SetGauge("engine_generation",
                            static_cast<double>(generation_));
    instr.metrics->SetGauge("engine_live_records",
                            static_cast<double>(int_of_.size()));
    instr.metrics->SetGauge(
        "engine_snapshot_lag_batches",
        static_cast<double>(counters_.snapshot_lag_batches));
    const double wall = batch_timer.ElapsedSeconds();
    const double cpu = Timer::ThreadCpuSeconds() - cpu_start;
    instr.metrics->RecordLatency("engine_batch_wall_seconds", wall);
    instr.metrics->RecordLatency(
        std::string("engine_") + op + "_wall_seconds", wall);
    instr.metrics->RecordLatency("engine_batch_cpu_seconds", cpu);
    instr.metrics->RecordLatency("engine_lock_wait_seconds",
                                 lock_wait_seconds);
    if (initialized_) {
      instr.metrics->RecordLatency("engine_refine_seconds", refine_seconds);
    }
  }
  return result;
}

void ResidentEngine::InitializeLocked() {
  ADALSH_CHECK(!initialized_);
  ADALSH_CHECK(sequence_.has_value());
  if (options_.cost_model.has_value()) {
    cost_model_.emplace(*options_.cost_model);
  } else {
    cost_model_.emplace(CostModel::Calibrate(
        dataset_, rule_, options_.config.calibration_samples,
        options_.config.seed, pool_.get(), options_.config.instrumentation));
  }
  cost_model_->set_pairwise_noise_factor(options_.config.pairwise_noise_factor);
  engine_.emplace(dataset_, sequence_->structure(), options_.config.seed);
  hasher_.emplace(&*engine_, &forest_, dataset_.num_records(), pool_.get(),
                  options_.config.instrumentation);
  pairwise_.emplace(dataset_, rule_, pool_.get(),
                    options_.config.instrumentation);
  buckets_.resize(sequence_->plan(0).tables.size());
  initialized_ = true;
}

void ResidentEngine::GrowStateLocked() {
  const size_t n = dataset_.num_records();
  counters_.internal_records = n;
  if (live_.size() >= n) return;
  live_.resize(n, 0);
  leaf_of_.resize(n, kInvalidNode);
  last_fn_.resize(n, 0);
  ext_of_.resize(n, 0);
  engine_->GrowTo(n);
  hasher_->GrowTo(n);
  pairwise_->NotifyDatasetGrown();
}

void ResidentEngine::ArriveLocked(RecordId r) {
  const SchemePlan& plan0 = sequence_->plan(0);
  engine_->EnsureHashes(r, plan0);
  last_fn_[r] = 0;  // arrival evidence is level-1 only
  bool merged_any = false;
  for (size_t t = 0; t < plan0.tables.size(); ++t) {
    const uint64_t key = engine_->TableKey(r, plan0.tables[t]);
    std::vector<RecordId>& members = buckets_[t][key];
    // The newest live member is the merge partner (every live member of a
    // bucket is in the same component, so any one works); dead tail entries
    // are pruned on the way.
    while (!members.empty() && !live_[members.back()]) members.pop_back();
    if (members.empty()) {
      if (leaf_of_[r] == kInvalidNode) {
        forest_.MakeTree(r, /*producer=*/0, &leaf_of_[r]);
      }
    } else {
      const RecordId other = members.back();
      NodeId other_root = forest_.FindRoot(leaf_of_[other]);
      if (forest_.Producer(other_root) != 0) {
        // The partner sits in a refined piece, so its component may be split
        // across several trees. The reference semantics restart the whole
        // level-1 cluster — the arrival may bridge two pieces at a deeper
        // hash level — so the component is merged back into one open tree.
        other_root = ReopenComponentLocked(other);
      }
      if (leaf_of_[r] == kInvalidNode) {
        leaf_of_[r] = forest_.AddLeaf(other_root, r);
        // New member joined on level-1 evidence: the cluster must be
        // re-verified by the next refinement pass.
        forest_.SetProducer(other_root, 0);
        merged_any = true;
      } else {
        const NodeId my_root = forest_.FindRoot(leaf_of_[r]);
        if (my_root != other_root) {
          forest_.SetProducer(forest_.Merge(my_root, other_root), 0);
          merged_any = true;
        }
      }
    }
    members.push_back(r);
  }
  if (plan0.tables.empty() && leaf_of_[r] == kInvalidNode) {
    forest_.MakeTree(r, 0, &leaf_of_[r]);
  }
  counters_.arrivals_merged += merged_any ? 1 : 0;
}

NodeId ResidentEngine::ReopenComponentLocked(RecordId seed) {
  const SchemePlan& plan0 = sequence_->plan(0);
  std::unordered_set<RecordId> visited = {seed};
  std::vector<RecordId> stack = {seed};
  NodeId root = forest_.FindRoot(leaf_of_[seed]);
  while (!stack.empty()) {
    const RecordId cur = stack.back();
    stack.pop_back();
    for (size_t t = 0; t < plan0.tables.size(); ++t) {
      const uint64_t key = engine_->TableKey(cur, plan0.tables[t]);
      auto it = buckets_[t].find(key);
      if (it == buckets_[t].end()) continue;
      for (RecordId m : it->second) {
        if (!live_[m] || !visited.insert(m).second) continue;
        stack.push_back(m);
        const NodeId m_root = forest_.FindRoot(leaf_of_[m]);
        if (m_root != root) root = forest_.Merge(root, m_root);
      }
    }
  }
  // Merge keeps every leaf node intact, so leaf_of_ needs no reindexing;
  // last_fn_ keeps recording the last function actually applied.
  forest_.SetProducer(root, 0);
  return root;
}

void ResidentEngine::RemoveLocked(const std::vector<RecordId>& removed_ints) {
  const SchemePlan& plan0 = sequence_->plan(0);
  const std::unordered_set<RecordId> in_batch(removed_ints.begin(),
                                              removed_ints.end());

  // 1. The dirty region: every record reachable from a removed record
  // through shared level-1 bucket keys, where the removed records themselves
  // still conduct (they may be the only bridge between two live subsets
  // whose merge evidence dies with them). Records removed by earlier batches
  // never conduct — their components were regrouped when they left — and are
  // pruned from the member lists as the walk touches them.
  std::unordered_set<RecordId> visited(removed_ints.begin(),
                                       removed_ints.end());
  std::vector<RecordId> frontier(removed_ints.begin(), removed_ints.end());
  while (!frontier.empty()) {
    const RecordId r = frontier.back();
    frontier.pop_back();
    for (size_t t = 0; t < plan0.tables.size(); ++t) {
      const uint64_t key = engine_->TableKey(r, plan0.tables[t]);
      auto it = buckets_[t].find(key);
      if (it == buckets_[t].end()) continue;
      std::erase_if(it->second, [&](RecordId m) {
        return !live_[m] && in_batch.count(m) == 0;
      });
      for (RecordId m : it->second) {
        if (visited.insert(m).second) frontier.push_back(m);
      }
    }
  }
  std::vector<RecordId> dirty_live;
  for (RecordId m : visited) {
    if (in_batch.count(m) == 0) dirty_live.push_back(m);
  }

  // 2. The removed records die: liveness, id binding, tree membership, and
  // their bucket entries all go (their trees are dismantled with the dirty
  // region below, so no live tree ever contains a dead record).
  for (RecordId r : removed_ints) {
    live_[r] = 0;
    int_of_.erase(ext_of_[r]);
    leaf_of_[r] = kInvalidNode;
    last_fn_[r] = 0;
  }
  for (RecordId r : removed_ints) {
    for (size_t t = 0; t < plan0.tables.size(); ++t) {
      const uint64_t key = engine_->TableKey(r, plan0.tables[t]);
      auto it = buckets_[t].find(key);
      if (it == buckets_[t].end()) continue;
      std::erase(it->second, r);
      if (it->second.empty()) buckets_[t].erase(it);
    }
  }

  // 3. Dismantle the dirty survivors back to level 1: their old trees (and
  // any refinement level those trees had earned) may rest on evidence routed
  // through a removed record, so all of it is conservatively discarded. The
  // orphaned trees simply stop being referenced — forest nodes are never
  // freed.
  std::sort(dirty_live.begin(), dirty_live.end());
  for (RecordId r : dirty_live) {
    leaf_of_[r] = kInvalidNode;
    last_fn_[r] = 0;
  }

  // 4. Regroup the survivors by their post-removal connectivity (live
  // records only) and rebuild each group as a fresh level-1 tree — exactly
  // the partition a fresh engine's level-1 pass would produce, which is what
  // keeps removal confluent with from-scratch ingestion.
  std::unordered_set<RecordId> grouped;
  for (RecordId seed : dirty_live) {
    if (grouped.count(seed) != 0) continue;
    grouped.insert(seed);
    std::vector<RecordId> group;
    std::vector<RecordId> stack = {seed};
    while (!stack.empty()) {
      const RecordId r = stack.back();
      stack.pop_back();
      group.push_back(r);
      for (size_t t = 0; t < plan0.tables.size(); ++t) {
        const uint64_t key = engine_->TableKey(r, plan0.tables[t]);
        auto it = buckets_[t].find(key);
        if (it == buckets_[t].end()) continue;
        for (RecordId m : it->second) {
          if (!live_[m] || grouped.count(m) != 0) continue;
          // Post-removal connectivity only shrinks, so the walk stays inside
          // the dirty region.
          ADALSH_CHECK_EQ(leaf_of_[m], kInvalidNode);
          grouped.insert(m);
          stack.push_back(m);
        }
      }
    }
    std::sort(group.begin(), group.end());
    NodeId leaf = kInvalidNode;
    const NodeId root = forest_.MakeTree(group[0], /*producer=*/0, &leaf);
    leaf_of_[group[0]] = leaf;
    for (size_t i = 1; i < group.size(); ++i) {
      leaf_of_[group[i]] = forest_.AddLeaf(root, group[i]);
    }
  }
}

TerminationReason ResidentEngine::RefineLocked(const EngineBatchOptions& opts,
                                               std::vector<NodeId>* finals,
                                               FilterStats* out_stats) {
  const Instrumentation& instr = options_.config.instrumentation;
  std::vector<NodeId> roots;
  {
    std::unordered_set<NodeId> seen;
    for (size_t r = 0; r < live_.size(); ++r) {
      if (!live_[r]) continue;
      const NodeId root = forest_.FindRoot(leaf_of_[r]);
      if (seen.insert(root).second) roots.push_back(root);
    }
  }

  RefineLoopDeps deps;
  deps.sequence = &*sequence_;
  deps.cost_model = &*cost_model_;
  deps.engine = &*engine_;
  deps.hasher = &*hasher_;
  deps.pairwise = &*pairwise_;
  deps.forest = &forest_;
  deps.last_fn = &last_fn_;
  deps.order_key = &ext_of_;
  deps.leaf_of = &leaf_of_;
  deps.instrumentation = instr;

  FilterStats stats;
  RunRefineLoop(deps, options_.top_k, roots, opts.controller, opts.budget,
                finals, &stats);
  // Definition 3 snapshot over every live record: each is counted exactly
  // once, under the last function applied to it (filter_output.h invariants).
  // This stays with the engine — it needs the live-record iteration the loop
  // doesn't have.
  stats.records_last_hashed_at.assign(sequence_->size(), 0);
  for (size_t r = 0; r < live_.size(); ++r) {
    if (!live_[r]) continue;
    if (last_fn_[r] == kLastFunctionPairwise) {
      ++stats.records_finished_by_pairwise;
    } else {
      ++stats.records_last_hashed_at[last_fn_[r]];
    }
  }
  ReportTermination(instr, stats, finals->size());
  *out_stats = std::move(stats);
  return out_stats->termination_reason;
}

void ResidentEngine::PublishLocked(const std::vector<NodeId>& finals,
                                   FilterStats stats) {
  auto snap = std::make_shared<EngineSnapshot>();
  snap->generation = ++generation_;
  snap->live_records = int_of_.size();
  snap->clusters.reserve(finals.size());
  snap->verification.reserve(finals.size());
  for (size_t i = 0; i < finals.size(); ++i) {
    const NodeId root = finals[i];
    std::vector<ExternalId> members;
    members.reserve(forest_.LeafCount(root));
    forest_.ForEachLeaf(root,
                        [&](RecordId r) { members.push_back(ext_of_[r]); });
    std::sort(members.begin(), members.end());
    for (ExternalId member : members) snap->cluster_of.emplace(member, i);
    snap->clusters.push_back(std::move(members));
    snap->verification.push_back(VerificationLevel(forest_, root));
  }
  snap->stats = std::move(stats);
  counters_.generation = generation_;
  batches_at_publish_ = counters_.batches;
  const Instrumentation& instr = options_.config.instrumentation;
  if (instr.metrics != nullptr) {
    instr.metrics->AddCounter("engine_snapshots_published", 1);
  }
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  snapshot_ = std::move(snap);
}

std::shared_ptr<const EngineSnapshot> ResidentEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

StatusOr<std::vector<std::vector<ExternalId>>> ResidentEngine::TopK(
    int k) const {
  if (k < 1) return Status::InvalidArgument("TopK: k must be >= 1");
  std::shared_ptr<const EngineSnapshot> snap = Snapshot();
  const size_t count =
      std::min(static_cast<size_t>(k), snap->clusters.size());
  return std::vector<std::vector<ExternalId>>(
      snap->clusters.begin(), snap->clusters.begin() + count);
}

StatusOr<std::vector<ExternalId>> ResidentEngine::Cluster(
    ExternalId id) const {
  std::shared_ptr<const EngineSnapshot> snap = Snapshot();
  auto it = snap->cluster_of.find(id);
  if (it == snap->cluster_of.end()) {
    return Status::NotFound("record " + std::to_string(id) +
                            " is in no cluster of snapshot generation " +
                            std::to_string(snap->generation));
  }
  return snap->clusters[it->second];
}

bool ResidentEngine::IsLive(ExternalId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  return int_of_.count(id) != 0;
}

std::vector<std::pair<ExternalId, Record>> ResidentEngine::LiveRecords()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<ExternalId, Record>> out;
  out.reserve(int_of_.size());
  for (const auto& [ext, internal] : int_of_) {
    out.emplace_back(ext, Record(dataset_.record(internal)));
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::optional<CostModel> ResidentEngine::cost_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cost_model_;
}

EngineCounters ResidentEngine::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  EngineCounters counters = counters_;
  counters.generation = generation_;
  counters.live_records = int_of_.size();
  counters.internal_records = dataset_.num_records();
  for (const auto& table : buckets_) counters.level1_buckets += table.size();
  if (initialized_) {
    counters.total_hashes = engine_->total_hashes_computed();
    counters.total_similarities = pairwise_->total_similarities();
  }
  return counters;
}

}  // namespace adalsh
