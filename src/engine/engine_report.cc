#include "engine/engine_report.h"

#include <memory>

#include "obs/json_writer.h"
#include "obs/run_report.h"
#include "util/simd_kernels.h"

namespace adalsh {
namespace {

void AppendCounters(const EngineCounters& counters, JsonWriter* out) {
  out->BeginObject()
      .Key("batches")
      .Uint(counters.batches)
      .Key("ingested")
      .Uint(counters.ingested)
      .Key("removed")
      .Uint(counters.removed)
      .Key("updated")
      .Uint(counters.updated)
      .Key("arrivals_merged")
      .Uint(counters.arrivals_merged)
      .Key("refinements_completed")
      .Uint(counters.refinements_completed)
      .Key("refinements_interrupted")
      .Uint(counters.refinements_interrupted)
      .Key("generation")
      .Uint(counters.generation)
      .Key("live_records")
      .Uint(counters.live_records)
      .Key("internal_records")
      .Uint(counters.internal_records)
      .Key("level1_buckets")
      .Uint(counters.level1_buckets)
      .Key("snapshot_lag_batches")
      .Uint(counters.snapshot_lag_batches)
      .Key("total_hashes")
      .Uint(counters.total_hashes)
      .Key("total_similarities")
      .Uint(counters.total_similarities)
      .EndObject();
}

void AppendDurability(const DurabilityStats& stats, JsonWriter* out) {
  out->BeginObject()
      .Key("wal_frames_appended")
      .Uint(stats.wal_frames_appended)
      .Key("wal_bytes_appended")
      .Uint(stats.wal_bytes_appended)
      .Key("wal_syncs")
      .Uint(stats.wal_syncs)
      .Key("wal_append_retries")
      .Uint(stats.wal_append_retries)
      .Key("wal_sync_retries")
      .Uint(stats.wal_sync_retries)
      .Key("wal_degraded")
      .Bool(stats.wal_degraded)
      .Key("checkpoints_written")
      .Uint(stats.checkpoints_written)
      .Key("checkpoint_failures")
      .Uint(stats.checkpoint_failures)
      .Key("recovery")
      .BeginObject()
      .Key("checkpoint_loaded")
      .Bool(stats.checkpoint_loaded)
      .Key("checkpoint_seq")
      .Uint(stats.checkpoint_seq)
      .Key("frames_replayed")
      .Uint(stats.frames_replayed)
      .Key("frames_discarded")
      .Uint(stats.frames_discarded)
      .Key("replay_apply_failures")
      .Uint(stats.replay_apply_failures)
      .Key("log_truncated")
      .Bool(stats.log_truncated)
      .Key("warnings")
      .Uint(stats.recovery_warnings.size())
      .EndObject()
      .EndObject();
}

/// Shared body for all engine shapes: they expose the same
/// Snapshot()/counters()/top_k() surface, and the schema is identical except
/// for the sharded engine's extra "shards" key and "per_shard" breakdown and
/// the durable engine's "durability" object.
template <typename Engine>
std::string WriteReport(const Engine& engine, int shards,
                        const std::vector<EngineCounters>* per_shard,
                        const DurabilityStats* durability,
                        const MetricsSnapshot* metrics) {
  const std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
  const EngineCounters counters = engine.counters();

  JsonWriter json;
  json.BeginObject()
      .Key("schema")
      .String("adalsh-engine-report-v1")
      .Key("top_k")
      .Int(engine.top_k());
  if (shards > 0) json.Key("shards").Int(shards);

  // The SIMD dispatch levels the kernels resolved to under this engine's
  // worker count (re-probed at construction when --threads changes) — which
  // code paths produced the numbers below, not a result-affecting choice.
  json.Key("simd")
      .BeginObject()
      .Key("dot")
      .String(SimdLevelName(simd::ActiveDotLevel()))
      .Key("minhash")
      .String(SimdLevelName(simd::ActiveMinHashLevel()))
      .EndObject();

  json.Key("counters");
  AppendCounters(counters, &json);

  // Per-shard balance breakdown (sharded engine only): records, bucket
  // load and work counters per shard, in shard order.
  if (per_shard != nullptr && !per_shard->empty()) {
    json.Key("per_shard").BeginArray();
    for (size_t s = 0; s < per_shard->size(); ++s) {
      json.BeginObject().Key("shard").Uint(s).Key("counters");
      AppendCounters((*per_shard)[s], &json);
      json.EndObject();
    }
    json.EndArray();
  }

  // Durability plane accounting (durable engine only, docs/durability.md).
  if (durability != nullptr) {
    json.Key("durability");
    AppendDurability(*durability, &json);
  }

  json.Key("snapshot")
      .BeginObject()
      .Key("generation")
      .Uint(snap->generation)
      .Key("live_records")
      .Uint(snap->live_records);
  json.Key("cluster_sizes").BeginArray();
  for (const auto& cluster : snap->clusters) json.Uint(cluster.size());
  json.EndArray();
  json.Key("cluster_verification").BeginArray();
  for (int level : snap->verification) json.Int(level);
  json.EndArray();
  // The refinement pass that published this snapshot, with the run report's
  // keys (obs/run_report.h).
  json.Key("refinement").BeginObject();
  AppendFilterStats(snap->stats, &json);
  json.EndObject();
  json.EndObject();

  if (metrics != nullptr) {
    json.Key("metrics");
    AppendMetricsSnapshot(*metrics, &json);
  }
  return json.EndObject().TakeString();
}

}  // namespace

std::string WriteEngineReportJson(const ResidentEngine& engine,
                                  const MetricsSnapshot* metrics) {
  return WriteReport(engine, /*shards=*/0, /*per_shard=*/nullptr,
                     /*durability=*/nullptr, metrics);
}

std::string WriteEngineReportJson(const ShardedEngine& engine,
                                  const MetricsSnapshot* metrics) {
  const std::vector<EngineCounters> per_shard = engine.shard_counters();
  return WriteReport(engine, engine.shards(), &per_shard,
                     /*durability=*/nullptr, metrics);
}

std::string WriteEngineReportJson(const DurableEngine& engine,
                                  const MetricsSnapshot* metrics) {
  const std::vector<EngineCounters> per_shard = engine.shard_counters();
  const DurabilityStats durability = engine.durability_stats();
  return WriteReport(engine, engine.shards(),
                     per_shard.empty() ? nullptr : &per_shard, &durability,
                     metrics);
}

}  // namespace adalsh
