#ifndef ADALSH_ENGINE_RESIDENT_ENGINE_H_
#define ADALSH_ENGINE_RESIDENT_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "core/adaptive_lsh.h"
#include "core/cost_model.h"
#include "core/filter_output.h"
#include "core/function_sequence.h"
#include "core/hash_engine.h"
#include "core/pairwise.h"
#include "core/transitive_hash_function.h"
#include "distance/rule.h"
#include "record/dataset.h"
#include "util/run_controller.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace adalsh {

/// Stable client-facing record handle of the resident engine. External ids
/// are assigned by Ingest (monotonically increasing) and survive Update — an
/// update rebinds the id to the new record contents. Internal RecordIds are
/// an implementation detail: the engine's dataset grows monotonically and an
/// updated record gets a fresh internal id, which is what keeps every hash
/// cache entry valid forever (a given internal id's contents never change).
using ExternalId = uint64_t;

/// An immutable point-in-time view of the engine's certified top-k, shared
/// with query threads by shared_ptr. A snapshot is only ever published by a
/// refinement pass that ran to completion; interrupted passes (deadline,
/// budget, cancel) leave the previous snapshot in place, so queries always
/// see a fully certified answer (docs/engine.md).
struct EngineSnapshot {
  /// Publication counter: strictly increasing, 0 = the empty pre-ingest
  /// snapshot. A query comparing generations can detect concurrent progress.
  uint64_t generation = 0;

  /// Live records at publication time.
  size_t live_records = 0;

  /// The certified top-k clusters in canonical order — descending size, ties
  /// by ascending smallest member id — with each cluster's members sorted
  /// ascending. Canonical ordering makes the snapshot byte-comparable across
  /// engines that ingested the same live set by different histories (the
  /// confluence property the differential tests assert).
  std::vector<std::vector<ExternalId>> clusters;

  /// Verification level per cluster, parallel to `clusters`:
  /// kLastFunctionPairwise for P-certified clusters, otherwise the 0-based
  /// index of the producing hash function (L-1 = fully hash-verified).
  std::vector<int> verification;

  /// Member -> index into `clusters` for O(1) Cluster(id) lookups.
  std::unordered_map<ExternalId, size_t> cluster_of;

  /// Accounting of the refinement pass that published this snapshot.
  FilterStats stats;
};

/// Per-mutation execution limits: the request's SLO. The controller (when
/// set) overrides the budget and allows cross-thread Cancel(), mirroring
/// AdaptiveLshConfig::controller.
struct EngineBatchOptions {
  RunBudget budget;
  RunController* controller = nullptr;
};

/// What a mutation did. `refinement` tells whether the post-mutation
/// refinement pass completed (kCompleted => `generation` is a new snapshot
/// containing this mutation) or was interrupted by the request's SLO
/// (`generation` is then the previous published snapshot; the mutation's
/// records are ingested and a later mutation or Flush() will certify them).
struct EngineMutationResult {
  /// Ids bound to the mutation's records, in record order: freshly assigned
  /// for Ingest, the (stable) rebound id for Update, empty otherwise.
  std::vector<ExternalId> assigned_ids;
  uint64_t generation = 0;
  TerminationReason refinement = TerminationReason::kCompleted;
  FilterStats stats;  // the refinement pass's accounting

  /// Wall time this mutation spent waiting to acquire the engine's mutation
  /// lock before any work started — the writer-contention signal the sharded
  /// engine exists to shrink (engine_load_gen reports it as a histogram).
  double lock_wait_seconds = 0;
};

/// Monotonic whole-life counters (engine report / `stats` CLI verb).
struct EngineCounters {
  uint64_t batches = 0;     // mutations applied (ingest/remove/update/flush)
  uint64_t ingested = 0;    // records ever ingested (includes updates)
  uint64_t removed = 0;     // records ever removed (includes updates)
  uint64_t updated = 0;     // update operations
  uint64_t arrivals_merged = 0;
  uint64_t refinements_completed = 0;
  uint64_t refinements_interrupted = 0;
  uint64_t generation = 0;
  size_t live_records = 0;
  size_t internal_records = 0;  // dataset rows ever allocated
  /// Distinct level-1 bucket keys currently held across all tables — the
  /// load-balance signal for the sharded engine's per-shard breakdown.
  size_t level1_buckets = 0;
  /// Mutations applied since the last published snapshot (0 = the snapshot
  /// is current): the generation lag an SLO-interrupted tail builds up.
  uint64_t snapshot_lag_batches = 0;
  uint64_t total_hashes = 0;
  uint64_t total_similarities = 0;
};

/// Long-lived resident entity-resolution engine: the streaming mode
/// (Section 9's online direction) wrapped into a service-shaped object that
/// supports batched Ingest / Remove / Update while continuously maintaining
/// the certified top-k, and serves concurrent TopK/Cluster queries against
/// an immutable snapshot while mutations proceed.
///
/// Semantics (docs/engine.md):
///   * Confluence: after any history of mutations whose refinement completed,
///     the published snapshot is byte-identical to the snapshot of a fresh
///     engine that ingested the final live records in one batch. Level-1
///     clusters are connected components of shared bucket keys (arrival-order
///     invariant); refinement of a (member set, level) cluster is
///     deterministic; removals dismantle every cluster whose level-1
///     component contained a removed record back to level 1, discarding any
///     merge evidence that may have flowed through the removed "bridge".
///   * Snapshots: generation advances only when a refinement pass runs to
///     completion. An SLO-interrupted mutation keeps its records (they are
///     ingested, at whatever verification level they reached) but leaves the
///     previous snapshot published.
///   * Caches: hash values, feature norms and the parent-pointer forest are
///     reused across batches — internal record ids are content-immutable, so
///     nothing is ever invalidated; re-refining after an arrival only pays
///     for hash levels not yet computed.
///
/// Threading: mutations are serialized internally (mu_); queries (TopK,
/// Cluster, Snapshot) never take the mutation lock and are safe from any
/// thread at any time. counters() may block behind an in-flight mutation.
class ResidentEngine {
 public:
  struct Options {
    /// Sequence/selection/threads/seed/instrumentation; `budget` and
    /// `controller` act as the ambient default SLO applied when a mutation
    /// passes no EngineBatchOptions of its own.
    AdaptiveLshConfig config;

    /// How many top clusters every refinement pass certifies and every
    /// snapshot holds. Queries asking for more are truncated to this.
    int top_k = 10;

    /// Fixed unit costs, skipping wall-clock calibration. Calibration times
    /// real code, so two engines calibrating separately can disagree on the
    /// jump-to-P point; tests and the serve golden transcript pin the model
    /// to make runs reproducible.
    std::optional<CostModel> cost_model;
  };

  ResidentEngine(MatchRule rule, Options options);

  ResidentEngine(const ResidentEngine&) = delete;
  ResidentEngine& operator=(const ResidentEngine&) = delete;

  /// Ingests a batch of records, assigning each a fresh ExternalId, then
  /// runs a refinement pass under the request's SLO. All-or-nothing
  /// validation before any state changes:
  ///   * FailedPrecondition — the effective controller holds a sticky
  ///     Cancel().
  ///   * InvalidArgument — a record's schema (field count/kinds/dense dims)
  ///     deviates from the engine's first record, or the first batch's rule/
  ///     sequence construction fails.
  StatusOr<EngineMutationResult> Ingest(std::vector<Record> records,
                                        const EngineBatchOptions& opts = {});

  /// Ingest with caller-assigned external ids — the sharded engine routes a
  /// global id space across shard engines, so each shard sees a sparse id
  /// sequence, and concurrent routed batches may land out of global order.
  /// `ids` must parallel `records`, be strictly increasing within the batch,
  /// and not collide with any currently live id (InvalidArgument otherwise;
  /// the caller owns global uniqueness across batches). Advances the
  /// internal id counter past the largest assigned id so plain Ingest stays
  /// collision-free.
  StatusOr<EngineMutationResult> IngestWithIds(
      std::vector<Record> records, std::vector<ExternalId> ids,
      const EngineBatchOptions& opts = {});

  /// Removes records by external id (NotFound if any id is not live;
  /// all-or-nothing), dismantles and rebuilds the affected level-1
  /// components, then refines under the request's SLO.
  StatusOr<EngineMutationResult> Remove(std::span<const ExternalId> ids,
                                        const EngineBatchOptions& opts = {});

  /// Replaces the record bound to `id` (NotFound if not live) with new
  /// contents, keeping the external id stable, then refines.
  StatusOr<EngineMutationResult> Update(ExternalId id, Record record,
                                        const EngineBatchOptions& opts = {});

  /// Runs a refinement pass with no new mutation — completes certification
  /// left unfinished by SLO-interrupted mutations. With default (unlimited)
  /// options the pass always completes and publishes.
  StatusOr<EngineMutationResult> Flush(const EngineBatchOptions& opts = {});

  /// The current published snapshot; never null (generation 0 = empty).
  std::shared_ptr<const EngineSnapshot> Snapshot() const;

  /// The k largest certified clusters of the current snapshot (truncated to
  /// the snapshot's size). InvalidArgument when k < 1.
  StatusOr<std::vector<std::vector<ExternalId>>> TopK(int k) const;

  /// Members of the snapshot cluster containing `id`. NotFound when `id` is
  /// in no cluster of the current snapshot (never ingested, removed, or in a
  /// cluster below the maintained top-k).
  StatusOr<std::vector<ExternalId>> Cluster(ExternalId id) const;

  EngineCounters counters() const;

  /// True when `id` is bound to a live record at the time of the call —
  /// point-in-time only: a concurrent mutation may change the answer before
  /// the caller acts on it. Takes the mutation lock briefly.
  bool IsLive(ExternalId id) const;

  /// The structural schema check Ingest applies to every record against the
  /// engine's first record, exposed so wrappers (the sharded engine) can
  /// pre-validate a whole batch before partitioning it across engines.
  static Status CheckRecordSchema(const Record& prototype,
                                  const Record& record, size_t index);

  /// Copies of every live record with its external id, sorted by id — the
  /// checkpoint payload of the durability plane (docs/durability.md). Takes
  /// the mutation lock for the duration of the copy.
  std::vector<std::pair<ExternalId, Record>> LiveRecords() const;

  /// The engine's effective cost model: the pinned option, or the model the
  /// first ingest calibrated, or nullopt before initialization. The durable
  /// engine persists it so a recovery replay prices jump-to-P decisions
  /// identically to the original run (docs/durability.md).
  std::optional<CostModel> cost_model() const;

  int top_k() const { return options_.top_k; }

 private:
  /// Shared Ingest/IngestWithIds validation: schema check against the
  /// prototype and, on the first non-empty batch, the fallible sequence
  /// construction (the batch is all-or-nothing, so this runs before any
  /// state changes).
  Status ValidateIngestLocked(const std::vector<Record>& records);

  /// One serialized mutation: validation has already passed. Applies
  /// removals (dismantle + rebuild), appends `adds` (arrival merges), then
  /// refines and publishes on completion. `op` names the public entry point
  /// ("ingest"/"remove"/"update"/"flush") for the per-op latency histograms;
  /// `lock_wait_seconds` is the time the caller spent acquiring mu_ and is
  /// both recorded and copied into the result.
  EngineMutationResult ApplyBatch(const char* op, double lock_wait_seconds,
                                  std::vector<Record> adds,
                                  std::vector<ExternalId> add_ext_ids,
                                  const std::vector<RecordId>& removed_ints,
                                  const EngineBatchOptions& opts);

  /// First non-empty ingest: builds cost model/engine/hasher/pairwise over
  /// the just-appended records (sequence_ was already built — fallibly — by
  /// Ingest before mutating anything).
  void InitializeLocked();

  /// Appends per-record bookkeeping slots and grows the core caches.
  void GrowStateLocked();

  /// Level-1 arrival of internal record r (mirrors StreamingAdaptiveLsh::Add
  /// over persistent member-list buckets), with one strengthening that the
  /// confluence guarantee needs: before merging into a refined (closed)
  /// piece, the piece's whole level-1 component is reopened.
  void ArriveLocked(RecordId r);

  /// Merges every tree of `seed`'s level-1 component back into a single
  /// producer-0 tree and returns its root. A new arrival that touches a
  /// component discards the component's refinement: the reference semantics
  /// re-refine the whole level-1 cluster, and a later-arriving record may
  /// bridge two previously split pieces at a higher hash level — evidence a
  /// per-piece merge would never consider. Invariant maintained everywhere:
  /// an open (producer-0) tree always contains its entire component, so this
  /// walk runs at most once per refined component per batch.
  NodeId ReopenComponentLocked(RecordId seed);

  /// Dismantles every level-1 component containing a record of
  /// `removed_ints` and rebuilds the surviving members as fresh level-1
  /// trees grouped by their new (post-removal) components.
  void RemoveLocked(const std::vector<RecordId>& removed_ints);

  /// The Algorithm 1 refinement loop with canonical Largest-First selection
  /// (size desc, smallest external id asc), delegated to the shared
  /// core/refine_loop.h implementation. Returns the termination reason; on
  /// kCompleted fills `finals` with the certified roots in canonical order.
  TerminationReason RefineLocked(const EngineBatchOptions& opts,
                                 std::vector<NodeId>* finals,
                                 FilterStats* stats);

  /// Builds and publishes a new snapshot from certified roots.
  void PublishLocked(const std::vector<NodeId>& finals, FilterStats stats);

  /// Effective SLO of one mutation: explicit options win, else the ambient
  /// config budget/controller.
  EngineBatchOptions EffectiveOptions(const EngineBatchOptions& opts) const;

  /// The cross-shard merge (engine/sharded_executor.cc) reads shard-engine
  /// internals — live records, forests, hash caches, producers — under all
  /// shard locks to build the canonical global result (docs/sharding.md).
  friend class ShardedMergeAccess;

  MatchRule rule_;
  Options options_;
  ScopedThreadPool pool_;
  Dataset dataset_;

  // Lazy-initialized on the first non-empty ingest (sequence construction
  // needs a prototype record; calibration needs data).
  bool initialized_ = false;
  std::optional<FunctionSequence> sequence_;
  std::optional<CostModel> cost_model_;
  std::optional<HashEngine> engine_;
  ParentPointerForest forest_;
  std::optional<TransitiveHasher> hasher_;
  std::optional<PairwiseComputer> pairwise_;

  /// Persistent level-1 buckets, one map per table: key -> every internal
  /// record ever inserted with that key (dead members are skipped on read
  /// and pruned opportunistically). Invariant: all *live* records sharing a
  /// key are in the same level-1 component.
  std::vector<std::unordered_map<uint64_t, std::vector<RecordId>>> buckets_;

  // Per-internal-record state (parallel vectors, grown on append).
  std::vector<char> live_;
  std::vector<NodeId> leaf_of_;
  std::vector<int> last_fn_;
  std::vector<ExternalId> ext_of_;

  std::unordered_map<ExternalId, RecordId> int_of_;  // live records only
  ExternalId next_ext_id_ = 0;

  EngineCounters counters_;

  /// counters_.batches at the moment of the last PublishLocked; the
  /// difference to counters_.batches is the snapshot generation lag.
  uint64_t batches_at_publish_ = 0;

  /// Serializes mutations. Queries never take it.
  mutable std::mutex mu_;

  /// Guards only the snapshot pointer swap/read.
  mutable std::mutex snapshot_mu_;
  std::shared_ptr<const EngineSnapshot> snapshot_;
  uint64_t generation_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_ENGINE_RESIDENT_ENGINE_H_
