#ifndef ADALSH_ENGINE_ENGINE_REPORT_H_
#define ADALSH_ENGINE_ENGINE_REPORT_H_

#include <string>

#include "engine/durability.h"
#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "obs/metrics_registry.h"

namespace adalsh {

/// The resident engine's machine-readable report (schema
/// "adalsh-engine-report-v1", documented in docs/engine.md): whole-life
/// counters, the current snapshot's shape (generation, live records, cluster
/// sizes, verification levels), the accounting of the refinement pass that
/// published it — emitted with the exact keys of the run report via the
/// shared AppendFilterStats — the SIMD levels the kernels resolved to, and
/// optionally a metrics snapshot.
///
/// Reads the engine's published snapshot and counters; safe to call from any
/// thread (it may block behind an in-flight mutation for the counters).
std::string WriteEngineReportJson(const ResidentEngine& engine,
                                  const MetricsSnapshot* metrics = nullptr);

/// Same schema for a sharded engine (docs/sharding.md): counters are the
/// cross-shard sums, the snapshot is the last globally-merged one, a
/// "shards" key records the partition width, and a "per_shard" array breaks
/// the counters down per shard (records, bucket load, refinement outcomes —
/// the shard-imbalance view of the telemetry plane).
std::string WriteEngineReportJson(const ShardedEngine& engine,
                                  const MetricsSnapshot* metrics = nullptr);

/// Same schema for a durable engine (docs/durability.md): the wrapped
/// engine's report — sharded keys included when it wraps a ShardedEngine —
/// plus a "durability" object with the wal_* accounting (frames/bytes
/// appended, syncs, retries, checkpoints, recovery results and the
/// wal_degraded read-only flag).
std::string WriteEngineReportJson(const DurableEngine& engine,
                                  const MetricsSnapshot* metrics = nullptr);

}  // namespace adalsh

#endif  // ADALSH_ENGINE_ENGINE_REPORT_H_
