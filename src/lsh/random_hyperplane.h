#ifndef ADALSH_LSH_RANDOM_HYPERPLANE_H_
#define ADALSH_LSH_RANDOM_HYPERPLANE_H_

#include <vector>

#include "lsh/hash_family.h"
#include "record/record.h"
#include "util/simd.h"

namespace adalsh {

/// The random-hyperplane family for cosine distance (Examples 2 and 6): hash
/// function j is a random hyperplane through the origin (a Gaussian normal
/// vector); the hash value is which side of the hyperplane the record's
/// vector lies on (0/1). For two records at normalized angle x, a uniformly
/// drawn function collides with probability p(x) = 1 - x.
///
/// The normals live in a structure-of-arrays arena: one 64-byte-aligned
/// buffer, rows padded to the SIMD stride (util/simd.h), streamed by the
/// runtime-dispatched dot kernel. The sign test uses the canonical-lane dot
/// product (docs/simd.md), so hash values are identical on every dispatch
/// target.
class RandomHyperplaneFamily : public HashFamily {
 public:
  /// `field` selects the dense field hashed by this family; `dim` is its
  /// dimensionality; `seed` determines the hyperplanes.
  RandomHyperplaneFamily(FieldId field, size_t dim, uint64_t seed);

  void HashRange(const Record& record, size_t begin, size_t end,
                 uint64_t* out) override;

  /// Materializes the first `count` hyperplanes so concurrent HashRange calls
  /// below that index never mutate the arena.
  void Prepare(size_t count) override { EnsureMaterialized(count); }

  bool is_binary() const override { return true; }

  /// Number of hyperplanes materialized so far (for tests).
  size_t num_materialized() const { return num_materialized_; }

 private:
  void EnsureMaterialized(size_t count);

  FieldId field_;
  size_t dim_;
  size_t stride_;  // padded row length (floats)
  uint64_t seed_;
  /// Hyperplane normals, row-major at stride_, aligned and zero-padded.
  AlignedFloatBuffer normals_;
  size_t num_materialized_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_LSH_RANDOM_HYPERPLANE_H_
