#ifndef ADALSH_LSH_HASH_FAMILY_H_
#define ADALSH_LSH_HASH_FAMILY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "record/record.h"

namespace adalsh {

/// An indexed locality-sensitive hash family (Appendix A, Definition 4):
/// an unbounded stream of hash functions h_0, h_1, ... drawn deterministically
/// from the family's seed. The stream view is what makes the sequence's
/// *incremental computation* property (Section 2.2, Property 4) natural:
/// function H_i consumes the first w_i*z_i raw hashes of each record and
/// H_{i+1} extends the same stream, so earlier work is never repeated.
class HashFamily {
 public:
  virtual ~HashFamily() = default;

  /// Computes raw hash values for function indices [begin, end) applied to
  /// `record`, writing end-begin values into `out`. Implementations lazily
  /// materialize per-index function parameters, so indices may grow without
  /// bound.
  virtual void HashRange(const Record& record, size_t begin, size_t end,
                         uint64_t* out) = 0;

  /// Materializes per-index function parameters for indices [0, count).
  /// After Prepare(c), concurrent HashRange calls with end <= c are safe:
  /// they only read parameter state. Parameters are derived per index, so
  /// preparing in a different batching than lazy materialization yields the
  /// same functions. Default: no parameter state, nothing to do.
  virtual void Prepare(size_t count) { (void)count; }

  /// True when every raw hash value is a single bit (random hyperplanes).
  /// Callers may then pack cached values.
  virtual bool is_binary() const = 0;
};

}  // namespace adalsh

#endif  // ADALSH_LSH_HASH_FAMILY_H_
