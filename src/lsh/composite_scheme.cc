#include "lsh/composite_scheme.h"

#include <sstream>

#include "util/check.h"

namespace adalsh {
namespace {

HashUnitSpec UnitFromLeafLike(const MatchRule& rule) {
  ADALSH_CHECK(rule.is_leaf_like());
  HashUnitSpec unit;
  unit.fields = rule.fields();
  unit.weights = rule.weights();
  unit.threshold = rule.threshold();
  return unit;
}

}  // namespace

StatusOr<RuleHashStructure> CompileRuleForHashing(const MatchRule& rule) {
  RuleHashStructure structure;

  auto add_group_for = [&structure](const MatchRule& branch) -> Status {
    std::vector<int> group;
    if (branch.is_leaf_like()) {
      group.push_back(static_cast<int>(structure.units.size()));
      structure.units.push_back(UnitFromLeafLike(branch));
    } else if (branch.type() == MatchRule::Type::kAnd) {
      for (const MatchRule& child : branch.children()) {
        if (!child.is_leaf_like()) {
          return Status::InvalidArgument(
              "hashing supports And() of leaf-like rules only; got nested "
              "composite: " +
              child.DebugString());
        }
        group.push_back(static_cast<int>(structure.units.size()));
        structure.units.push_back(UnitFromLeafLike(child));
      }
    } else {
      return Status::InvalidArgument(
          "hashing supports Or() of leaf-like or And() branches only; got: " +
          branch.DebugString());
    }
    structure.groups.push_back(std::move(group));
    return Status::Ok();
  };

  if (rule.type() == MatchRule::Type::kOr) {
    for (const MatchRule& branch : rule.children()) {
      Status status = add_group_for(branch);
      if (!status.ok()) return status;
    }
  } else {
    Status status = add_group_for(rule);
    if (!status.ok()) return status;
  }
  return structure;
}

int GroupScheme::budget() const {
  int per_table = hashes_per_table();
  return per_table * z + w_rem;
}

int GroupScheme::hashes_per_table() const {
  int per_table = 0;
  for (int wu : w) per_table += wu;
  return per_table;
}

int CompositeScheme::budget() const {
  int total = 0;
  for (const GroupScheme& group : groups) total += group.budget();
  return total;
}

std::string CompositeScheme::ToString() const {
  std::ostringstream out;
  for (size_t g = 0; g < groups.size(); ++g) {
    if (g > 0) out << " | ";
    const GroupScheme& group = groups[g];
    out << "(w=";
    for (size_t u = 0; u < group.w.size(); ++u) {
      if (u > 0) out << "+";
      out << group.w[u];
    }
    out << ",z=" << group.z;
    if (group.w_rem > 0) out << ",rem=" << group.w_rem;
    if (!group.constraint_met) out << ",unconstrained";
    out << ")";
  }
  return out.str();
}

size_t SchemePlan::total_hashes() const {
  size_t total = 0;
  for (size_t count : hashes_per_unit) total += count;
  return total;
}

SchemePlan BuildPlan(const RuleHashStructure& structure,
                     const CompositeScheme& scheme) {
  ADALSH_CHECK_EQ(structure.groups.size(), scheme.groups.size());
  SchemePlan plan;
  plan.hashes_per_unit.assign(structure.units.size(), 0);

  for (size_t g = 0; g < structure.groups.size(); ++g) {
    const std::vector<int>& units = structure.groups[g];
    const GroupScheme& group = scheme.groups[g];
    ADALSH_CHECK_EQ(units.size(), group.w.size());
    if (group.w_rem > 0) {
      ADALSH_CHECK_EQ(units.size(), 1u)
          << "partial tables are only defined for single-unit groups";
    }
    for (int t = 0; t < group.z; ++t) {
      TablePlan table;
      for (size_t u = 0; u < units.size(); ++u) {
        int unit = units[u];
        size_t begin = plan.hashes_per_unit[unit];
        size_t end = begin + static_cast<size_t>(group.w[u]);
        table.parts.push_back({unit, begin, end});
        plan.hashes_per_unit[unit] = end;
      }
      plan.tables.push_back(std::move(table));
    }
    if (group.w_rem > 0) {
      int unit = units[0];
      TablePlan table;
      size_t begin = plan.hashes_per_unit[unit];
      size_t end = begin + static_cast<size_t>(group.w_rem);
      table.parts.push_back({unit, begin, end});
      plan.hashes_per_unit[unit] = end;
      plan.tables.push_back(std::move(table));
    }
  }
  return plan;
}

}  // namespace adalsh
