#ifndef ADALSH_LSH_MINHASH_H_
#define ADALSH_LSH_MINHASH_H_

#include "lsh/hash_family.h"
#include "record/record.h"

namespace adalsh {

/// The MinHash family for Jaccard distance (Broder et al., cited as [8]):
/// hash function j applies a random permutation pi_j to the token universe
/// and maps a set S to min(pi_j(S)). Two sets collide under a uniformly drawn
/// function with probability equal to their Jaccard similarity, i.e.
/// p(x) = 1 - x for Jaccard distance x.
///
/// The permutation is approximated by the strongly-mixing keyed hash
/// t -> SplitMix64(t XOR seed_j), which is the standard practical choice.
class MinHashFamily : public HashFamily {
 public:
  MinHashFamily(FieldId field, uint64_t seed);

  void HashRange(const Record& record, size_t begin, size_t end,
                 uint64_t* out) override;

  bool is_binary() const override { return false; }

 private:
  FieldId field_;
  uint64_t seed_;
};

}  // namespace adalsh

#endif  // ADALSH_LSH_MINHASH_H_
