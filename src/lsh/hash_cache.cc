#include "lsh/hash_cache.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

HashCache::HashCache(std::unique_ptr<HashFamily> family, size_t num_records)
    : family_(std::move(family)) {
  ADALSH_CHECK(family_ != nullptr);
  binary_ = family_->is_binary();
  if (binary_) {
    bits_.resize(num_records);
  } else {
    values_.resize(num_records);
  }
  computed_.assign(num_records, 0);
}

HashCache::HashCache(HashCache&& other) noexcept
    : family_(std::move(other.family_)),
      binary_(other.binary_),
      bits_(std::move(other.bits_)),
      values_(std::move(other.values_)),
      computed_(std::move(other.computed_)),
      total_computed_(
          other.total_computed_.load(std::memory_order_relaxed)) {}

void HashCache::GrowTo(size_t num_records) {
  if (num_records <= computed_.size()) return;
  if (binary_) {
    bits_.resize(num_records);
  } else {
    values_.resize(num_records);
  }
  computed_.resize(num_records, 0);
}

void HashCache::Ensure(const Record& record, RecordId r, size_t count) {
  ADALSH_CHECK_LT(r, computed_.size());
  size_t have = computed_[r];
  if (have >= count) return;
  // Per-thread scratch, not a member: Ensure runs concurrently for distinct
  // records, and only this buffer would be shared between them.
  thread_local std::vector<uint64_t> scratch;
  scratch.resize(count - have);
  family_->HashRange(record, have, count, scratch.data());
  total_computed_.fetch_add(count - have, std::memory_order_relaxed);
  if (binary_) {
    std::vector<uint64_t>& blocks = bits_[r];
    blocks.resize((count + 63) / 64, 0);
    for (size_t j = have; j < count; ++j) {
      if (scratch[j - have] & 1) blocks[j / 64] |= uint64_t{1} << (j % 64);
    }
  } else {
    std::vector<uint32_t>& vals = values_[r];
    vals.resize(count);
    for (size_t j = have; j < count; ++j) {
      vals[j] = static_cast<uint32_t>(SplitMix64(scratch[j - have]));
    }
  }
  computed_[r] = count;
}

void HashCache::AdoptPrefix(const HashCache& src, RecordId src_record,
                            RecordId dst_record) {
  ADALSH_CHECK_LT(src_record, src.computed_.size());
  ADALSH_CHECK_LT(dst_record, computed_.size());
  ADALSH_CHECK_EQ(binary_, src.binary_);
  const size_t have = src.computed_[src_record];
  if (have <= computed_[dst_record]) return;
  if (binary_) {
    bits_[dst_record] = src.bits_[src_record];
  } else {
    values_[dst_record] = src.values_[src_record];
  }
  computed_[dst_record] = have;
}

uint64_t HashCache::CombineRange(RecordId r, size_t begin, size_t end,
                                 uint64_t key) const {
  ADALSH_CHECK_LT(r, computed_.size());
  ADALSH_CHECK_LE(end, computed_[r]) << "CombineRange past computed prefix";
  if (binary_) {
    const std::vector<uint64_t>& blocks = bits_[r];
    // Fold whole and partial 64-bit blocks of the bit range.
    size_t j = begin;
    while (j < end) {
      size_t block = j / 64;
      size_t bit = j % 64;
      size_t take = std::min<size_t>(64 - bit, end - j);
      uint64_t chunk = blocks[block] >> bit;
      if (take < 64) chunk &= (uint64_t{1} << take) - 1;
      key = SplitMix64(key ^ chunk);
      j += take;
    }
    return key;
  }
  // Wide values fold word-at-a-time: two 32-bit mixed values pack into one
  // 64-bit word per SplitMix64 round, halving the mix chain that dominates
  // bucket-key construction. Packing is relative to `begin`, so two records
  // combining the same range get equal keys iff their values agree on the
  // whole range — the same equality semantics as the value-at-a-time fold.
  const std::vector<uint32_t>& vals = values_[r];
  size_t j = begin;
  for (; j + 2 <= end; j += 2) {
    uint64_t word = static_cast<uint64_t>(vals[j]) |
                    (static_cast<uint64_t>(vals[j + 1]) << 32);
    key = SplitMix64(key ^ word);
  }
  if (j < end) key = SplitMix64(key ^ vals[j]);
  return key;
}

uint64_t HashCache::ValueForTest(RecordId r, size_t j) const {
  ADALSH_CHECK_LT(r, computed_.size());
  ADALSH_CHECK_LT(j, computed_[r]);
  if (binary_) return (bits_[r][j / 64] >> (j % 64)) & 1;
  return values_[r][j];
}

}  // namespace adalsh
