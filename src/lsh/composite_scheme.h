#ifndef ADALSH_LSH_COMPOSITE_SCHEME_H_
#define ADALSH_LSH_COMPOSITE_SCHEME_H_

#include <cstddef>
#include <string>
#include <vector>

#include "distance/rule.h"
#include "util/status.h"

namespace adalsh {

/// One hashable component of a match rule: a single field or a
/// weighted-average combination of fields (Definition 7), with the component's
/// own distance threshold. Units are what the AND/OR-construction composes.
struct HashUnitSpec {
  std::vector<FieldId> fields;
  std::vector<double> weights;
  double threshold = 0.0;
};

/// The hashing shape of a match rule (Appendix C): a disjunction of
/// conjunctions of units.
///   * Leaf / WeightedAverage  -> 1 group with 1 unit.
///   * And(leaf-likes)         -> 1 group with one unit per child (C.1: every
///                                table concatenates hashes from all units).
///   * Or(children)            -> one group per child (C.2: each group gets
///                                its own tables), where each child is
///                                leaf-like or an And of leaf-likes.
struct RuleHashStructure {
  std::vector<HashUnitSpec> units;
  /// groups[g] lists the unit indices AND-ed inside group g's tables.
  std::vector<std::vector<int>> groups;
};

/// Compiles a rule into its hash structure. Returns InvalidArgument for
/// shapes outside Or-of-And-of-leaf-like (e.g. an Or nested inside an And),
/// which the paper's construction does not cover.
StatusOr<RuleHashStructure> CompileRuleForHashing(const MatchRule& rule);

/// Chosen parameters for one group: z tables, each keyed by w[u] hash values
/// of the group's u-th unit; single-unit groups may carry one extra partial
/// table of w_rem values (the Section 5.1 non-integer-budget correction).
struct GroupScheme {
  std::vector<int> w;
  int z = 0;
  int w_rem = 0;
  bool constraint_met = true;
  /// Group objective value (the integral the optimizer minimized).
  double objective = 0.0;

  int budget() const;
  int hashes_per_table() const;
};

/// Full parameterization of one transitive hashing function.
struct CompositeScheme {
  std::vector<GroupScheme> groups;

  /// Total hash functions across all groups (the function's budget).
  int budget() const;
  std::string ToString() const;
};

/// An executable table layout: which hash-function indices of which unit form
/// each table's bucket key. Unit indices are assigned consecutively from 0,
/// so a later (larger) scheme's plan reuses every index an earlier plan used —
/// the incremental-computation property at the plan level.
struct TablePart {
  int unit;
  size_t begin;
  size_t end;
};
struct TablePlan {
  std::vector<TablePart> parts;
};
struct SchemePlan {
  std::vector<TablePlan> tables;
  /// Total function indices consumed per unit (prefix length each record's
  /// cache must cover).
  std::vector<size_t> hashes_per_unit;

  size_t total_hashes() const;
};

/// Lays out `scheme`'s tables over `structure`'s units.
SchemePlan BuildPlan(const RuleHashStructure& structure,
                     const CompositeScheme& scheme);

}  // namespace adalsh

#endif  // ADALSH_LSH_COMPOSITE_SCHEME_H_
