#include "lsh/weighted_field_family.h"

#include <cmath>

#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

WeightedFieldFamily::WeightedFieldFamily(
    std::vector<std::unique_ptr<HashFamily>> families,
    std::vector<double> weights, uint64_t seed)
    : families_(std::move(families)), seed_(seed) {
  ADALSH_CHECK(!families_.empty());
  ADALSH_CHECK_EQ(families_.size(), weights.size());
  double total = 0.0;
  for (double w : weights) {
    ADALSH_CHECK_GT(w, 0.0);
    total += w;
    cumulative_weights_.push_back(total);
  }
  ADALSH_CHECK(std::abs(total - 1.0) < 1e-9) << "weights must sum to 1";
  cumulative_weights_.back() = 1.0;  // guard against rounding
  all_binary_ = true;
  for (const auto& family : families_) {
    if (!family->is_binary()) all_binary_ = false;
  }
}

size_t WeightedFieldFamily::FieldPickForIndex(size_t j) const {
  // Deterministic uniform draw in [0,1) from the function index.
  double u = static_cast<double>(DeriveSeed(seed_, j) >> 11) * 0x1.0p-53;
  for (size_t i = 0; i < cumulative_weights_.size(); ++i) {
    if (u < cumulative_weights_[i]) return i;
  }
  return cumulative_weights_.size() - 1;
}

void WeightedFieldFamily::HashRange(const Record& record, size_t begin,
                                    size_t end, uint64_t* out) {
  for (size_t j = begin; j < end; ++j) {
    size_t pick = FieldPickForIndex(j);
    // Delegate to the picked family's function with the same index; sibling
    // families are independently seeded so index reuse is harmless.
    families_[pick]->HashRange(record, j, j + 1, &out[j - begin]);
    if (all_binary_) continue;
    // Mix the field pick into non-binary values so that, in the astronomically
    // unlikely event two fields' functions collide numerically, records still
    // only match when the *same* field produced the value. (Binary values are
    // compared per-position within a table key, where the pick is already
    // fixed by the index, and must stay 0/1 for packing.)
    out[j - begin] = SplitMix64(out[j - begin] ^ DeriveSeed(seed_, pick));
  }
}

std::unique_ptr<HashFamily> MakeFamilyForFields(
    const std::vector<FieldId>& fields, const std::vector<double>& weights,
    const Record& prototype, uint64_t seed) {
  ADALSH_CHECK(!fields.empty());
  ADALSH_CHECK_EQ(fields.size(), weights.size());

  auto make_single = [&](FieldId f, uint64_t s) -> std::unique_ptr<HashFamily> {
    const Field& field = prototype.field(f);
    if (field.is_dense()) {
      return std::make_unique<RandomHyperplaneFamily>(f, field.size(), s);
    }
    return std::make_unique<MinHashFamily>(f, s);
  };

  if (fields.size() == 1) return make_single(fields[0], seed);

  std::vector<std::unique_ptr<HashFamily>> families;
  families.reserve(fields.size());
  for (size_t i = 0; i < fields.size(); ++i) {
    families.push_back(make_single(fields[i], DeriveSeed(seed, 1000 + i)));
  }
  return std::make_unique<WeightedFieldFamily>(std::move(families), weights,
                                               DeriveSeed(seed, 999));
}

}  // namespace adalsh
