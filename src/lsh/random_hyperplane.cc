#include "lsh/random_hyperplane.h"

#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

RandomHyperplaneFamily::RandomHyperplaneFamily(FieldId field, size_t dim,
                                               uint64_t seed)
    : field_(field), dim_(dim), seed_(seed) {
  ADALSH_CHECK_GT(dim, 0u);
}

void RandomHyperplaneFamily::EnsureMaterialized(size_t count) {
  while (hyperplanes_.size() < count) {
    // Each hyperplane gets its own derived seed so materialization order
    // (and batching) cannot change the functions.
    Rng rng(DeriveSeed(seed_, hyperplanes_.size()));
    std::vector<float> normal(dim_);
    for (float& component : normal) {
      component = static_cast<float>(rng.NextGaussian());
    }
    hyperplanes_.push_back(std::move(normal));
  }
}

void RandomHyperplaneFamily::HashRange(const Record& record, size_t begin,
                                       size_t end, uint64_t* out) {
  ADALSH_CHECK_LE(begin, end);
  EnsureMaterialized(end);
  const std::vector<float>& vec = record.field(field_).dense();
  ADALSH_CHECK_EQ(vec.size(), dim_);
  for (size_t j = begin; j < end; ++j) {
    const std::vector<float>& normal = hyperplanes_[j];
    double dot = 0.0;
    for (size_t d = 0; d < dim_; ++d) {
      dot += static_cast<double>(normal[d]) * vec[d];
    }
    out[j - begin] = dot >= 0.0 ? 1 : 0;
  }
}

}  // namespace adalsh
