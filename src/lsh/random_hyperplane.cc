#include "lsh/random_hyperplane.h"

#include "util/check.h"
#include "util/rng.h"
#include "util/simd_kernels.h"

namespace adalsh {

RandomHyperplaneFamily::RandomHyperplaneFamily(FieldId field, size_t dim,
                                               uint64_t seed)
    : field_(field), dim_(dim), stride_(PadFloats(dim)), seed_(seed) {
  ADALSH_CHECK_GT(dim, 0u);
}

void RandomHyperplaneFamily::EnsureMaterialized(size_t count) {
  if (count <= num_materialized_) return;
  normals_.GrowTo(count * stride_);  // zero-fills, including row padding
  while (num_materialized_ < count) {
    // Each hyperplane gets its own derived seed so materialization order
    // (and batching) cannot change the functions.
    Rng rng(DeriveSeed(seed_, num_materialized_));
    float* row = normals_.data() + num_materialized_ * stride_;
    for (size_t d = 0; d < dim_; ++d) {
      row[d] = static_cast<float>(rng.NextGaussian());
    }
    ++num_materialized_;
  }
}

void RandomHyperplaneFamily::HashRange(const Record& record, size_t begin,
                                       size_t end, uint64_t* out) {
  ADALSH_CHECK_LE(begin, end);
  EnsureMaterialized(end);
  const std::vector<float>& vec = record.field(field_).dense();
  ADALSH_CHECK_EQ(vec.size(), dim_);
  // Adjacent hyperplanes evaluate pairwise per pass over the normals arena:
  // the two-row kernel loads (and widens) the record vector once for both
  // rows, with per-row canonical lane state, so every hash value stays
  // bit-identical to the one-row kernel on every dispatch target. Padding is
  // excluded: the kernels run over the true dimension.
  size_t j = begin;
  for (; j + 2 <= end; j += 2) {
    const float* n0 = normals_.data() + j * stride_;
    const float* n1 = normals_.data() + (j + 1) * stride_;
    double dot0 = 0.0, dot1 = 0.0;
    simd::DotProductF32x2(n0, n1, vec.data(), dim_, &dot0, &dot1);
    out[j - begin] = dot0 >= 0.0 ? 1 : 0;
    out[j + 1 - begin] = dot1 >= 0.0 ? 1 : 0;
  }
  if (j < end) {
    const float* normal = normals_.data() + j * stride_;
    double dot = simd::DotProductF32(normal, vec.data(), dim_);
    out[j - begin] = dot >= 0.0 ? 1 : 0;
  }
}

}  // namespace adalsh
