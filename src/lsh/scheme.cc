#include "lsh/scheme.h"

#include <sstream>

namespace adalsh {

std::string WzScheme::ToString() const {
  std::ostringstream out;
  out << "(w=" << w << ",z=" << z;
  if (w_rem > 0) out << ",rem=" << w_rem;
  if (!constraint_met) out << ",unconstrained";
  out << ")";
  return out.str();
}

}  // namespace adalsh
