#ifndef ADALSH_LSH_HASH_CACHE_H_
#define ADALSH_LSH_HASH_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "lsh/hash_family.h"
#include "record/record.h"

namespace adalsh {

/// Per-record cache of one hash family's raw values — the mechanism behind
/// the sequence's incremental-computation property (Section 2.2, Property 4
/// and Appendix B.2): "the computation of hashes is incremental and uses the
/// hashes computed from the previous function in the sequence".
///
/// Each record owns a growing prefix of the family's function stream. A
/// transitive hashing function asks the cache to Ensure() the prefix it
/// needs; anything already computed by earlier functions is reused for free.
///
/// Storage is compressed: binary families (random hyperplanes) pack one bit
/// per value; wide families (MinHash) keep 32 mixed bits per value, which
/// preserves equality semantics with 2^-32 per-function false-collision
/// probability — negligible next to the LSH scheme's own design error.
///
/// Concurrency contract (docs/threading.md): distinct records are independent
/// slots — Ensure/CombineRange for different RecordIds may run on different
/// threads concurrently, provided no two threads touch the same record inside
/// one fork/join region. The only cross-record state is the cost counter,
/// which is a relaxed atomic (its total is order-independent, so parallel and
/// serial runs report identical hash counts).
class HashCache {
 public:
  HashCache(std::unique_ptr<HashFamily> family, size_t num_records);

  HashCache(const HashCache&) = delete;
  HashCache& operator=(const HashCache&) = delete;
  HashCache(HashCache&& other) noexcept;

  /// Ensures values [0, count) are computed for record r. `record` must be
  /// the dataset record with id r.
  void Ensure(const Record& record, RecordId r, size_t count);

  /// Materializes the family's parameters for function indices [0, count).
  /// Must be called (from one thread) before Ensure runs concurrently for
  /// prefixes up to `count` — see HashFamily::Prepare.
  void Prepare(size_t count) { family_->Prepare(count); }

  /// Extends the per-record slot tables to `num_records` (no-op when already
  /// at least that large) so long-lived engines can ingest records appended
  /// to the dataset after construction. New slots start with an empty prefix;
  /// existing slots — and every cached value — are untouched, which is what
  /// makes cross-batch hash reuse sound: values depend only on record content
  /// and the family seed, never on when the record arrived. Call from the
  /// ingesting thread only, outside any concurrent Ensure region.
  void GrowTo(size_t num_records);

  /// Number of values computed so far for record r.
  size_t computed_count(RecordId r) const { return computed_[r]; }

  /// Copies record `src_record`'s computed prefix from `src` (a cache built
  /// over the same family seed and function stream) into this cache's slot
  /// for `dst_record`, replacing whatever shorter prefix it held. Hash
  /// values depend only on record content and the family seed, so when both
  /// caches index the same underlying record the copied prefix is exactly
  /// what this cache would have computed itself — the cross-shard merge uses
  /// this to assemble a global cache from shard caches without recomputing a
  /// single hash. Does NOT count toward total_hashes_computed(): adoption
  /// moves already-paid-for work. Call from one thread, outside any
  /// concurrent Ensure region.
  void AdoptPrefix(const HashCache& src, RecordId src_record,
                   RecordId dst_record);

  /// Folds values [begin, end) of record r into a running bucket key,
  /// word-at-a-time: binary families fold 64 packed bits per mix round, wide
  /// families two 32-bit values. Requires Ensure(record, r, end) to have
  /// happened. Two records receive equal results iff (with overwhelming
  /// probability) their raw values agree on the whole range — this builds
  /// the AND-construction's concatenated bucket index.
  uint64_t CombineRange(RecordId r, size_t begin, size_t end,
                        uint64_t key) const;

  /// Total raw hash evaluations performed through this cache (cost metric:
  /// the "number of hash functions applied" the paper's cost model counts).
  uint64_t total_hashes_computed() const {
    return total_computed_.load(std::memory_order_relaxed);
  }

  bool is_binary() const { return binary_; }

  /// Direct value access for tests: the stored (packed/mixed) value of
  /// function j for record r.
  uint64_t ValueForTest(RecordId r, size_t j) const;

 private:
  std::unique_ptr<HashFamily> family_;
  bool binary_;
  /// binary: bit-packed blocks per record; wide: 32-bit mixed values.
  std::vector<std::vector<uint64_t>> bits_;
  std::vector<std::vector<uint32_t>> values_;
  std::vector<size_t> computed_;
  std::atomic<uint64_t> total_computed_{0};
};

}  // namespace adalsh

#endif  // ADALSH_LSH_HASH_CACHE_H_
