#ifndef ADALSH_LSH_SCHEME_H_
#define ADALSH_LSH_SCHEME_H_

#include <cstddef>
#include <string>

namespace adalsh {

/// A (w, z)-scheme (Section 3 / Appendix A): z hash tables, each keyed by the
/// concatenation of w hash values (AND-construction within a table,
/// OR-construction across tables). Two records collide if they share a bucket
/// in at least one table: probability 1 - (1 - p(x)^w)^z.
///
/// `w_rem` implements the paper's non-integer budget/w handling (Section
/// 5.1): one extra partial table keyed by w_rem < w hash values, so the total
/// number of hash functions is exactly w*z + w_rem = budget.
struct WzScheme {
  int w = 1;
  int z = 0;
  int w_rem = 0;

  /// Whether the distance-threshold constraint (Eq. 3) was satisfiable for
  /// this budget. When false the optimizer returned the most conservative
  /// feasible scheme (smallest allowed w) and recall guarantees are weaker —
  /// expected for the tiny budgets of the first functions in a sequence.
  bool constraint_met = true;

  /// Value of the optimization objective (Eq. 1) at the solution.
  double objective = 0.0;

  /// Total hash functions consumed: w*z + w_rem.
  int budget() const { return w * z + w_rem; }

  /// Number of tables including the partial one.
  int num_tables() const { return z + (w_rem > 0 ? 1 : 0); }

  /// e.g. "(w=30,z=70)" or "(w=30,z=69,rem=21)".
  std::string ToString() const;
};

}  // namespace adalsh

#endif  // ADALSH_LSH_SCHEME_H_
