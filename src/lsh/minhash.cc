#include "lsh/minhash.h"

#include <limits>

#include "util/check.h"
#include "util/rng.h"

namespace adalsh {

MinHashFamily::MinHashFamily(FieldId field, uint64_t seed)
    : field_(field), seed_(seed) {}

void MinHashFamily::HashRange(const Record& record, size_t begin, size_t end,
                              uint64_t* out) {
  ADALSH_CHECK_LE(begin, end);
  const std::vector<uint64_t>& tokens = record.field(field_).tokens();
  for (size_t j = begin; j < end; ++j) {
    uint64_t function_seed = DeriveSeed(seed_, j);
    uint64_t min_value = std::numeric_limits<uint64_t>::max();
    for (uint64_t token : tokens) {
      uint64_t value = SplitMix64(token ^ function_seed);
      if (value < min_value) min_value = value;
    }
    // The empty set gets a sentinel that still compares equal across records,
    // which is the right semantics: two empty sets have Jaccard distance 0.
    out[j - begin] = min_value;
  }
}

}  // namespace adalsh
