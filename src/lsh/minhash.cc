#include "lsh/minhash.h"

#include "util/check.h"
#include "util/rng.h"
#include "util/simd_kernels.h"

namespace adalsh {

MinHashFamily::MinHashFamily(FieldId field, uint64_t seed)
    : field_(field), seed_(seed) {}

void MinHashFamily::HashRange(const Record& record, size_t begin, size_t end,
                              uint64_t* out) {
  ADALSH_CHECK_LE(begin, end);
  const std::vector<uint64_t>& tokens = record.field(field_).tokens();
  for (size_t j = begin; j < end; ++j) {
    uint64_t function_seed = DeriveSeed(seed_, j);
    // Runtime-dispatched min-of-SplitMix64 kernel (docs/simd.md). All-integer
    // and min-commutative, so every dispatch target returns the same bits.
    // The empty set gets the kernel's UINT64_MAX sentinel, which still
    // compares equal across records — the right semantics: two empty sets
    // have Jaccard distance 0.
    out[j - begin] =
        simd::MinHashTokens(tokens.data(), tokens.size(), function_seed);
  }
}

}  // namespace adalsh
