#ifndef ADALSH_LSH_WEIGHTED_FIELD_FAMILY_H_
#define ADALSH_LSH_WEIGHTED_FIELD_FAMILY_H_

#include <memory>
#include <vector>

#include "lsh/hash_family.h"
#include "record/record.h"

namespace adalsh {

/// The family for weighted-average rules (Appendix C.3, Definition 7):
/// hash function j (a) picks one of the F fields with probability equal to
/// its weight alpha_i — the pick is a deterministic function of j so every
/// record agrees on it — and (b) uses function j of that field's own family.
/// By Theorem 3, if each per-field family has collision probability
/// 1 - d_i, the combined family has collision probability
/// 1 - sum_i alpha_i d_i = 1 - weighted_average_distance.
class WeightedFieldFamily : public HashFamily {
 public:
  /// `families[i]` is the per-field family for weight `weights[i]`; weights
  /// must sum to 1. `seed` drives the per-index field picks.
  WeightedFieldFamily(std::vector<std::unique_ptr<HashFamily>> families,
                      std::vector<double> weights, uint64_t seed);

  void HashRange(const Record& record, size_t begin, size_t end,
                 uint64_t* out) override;

  /// Prepares every sub-family (each is indexed with the same j space).
  void Prepare(size_t count) override {
    for (auto& family : families_) family->Prepare(count);
  }

  /// Binary only if every sub-family is binary (otherwise values mix widths
  /// and must be stored wide).
  bool is_binary() const override { return all_binary_; }

  /// The field index function `j` delegates to (exposed for tests).
  size_t FieldPickForIndex(size_t j) const;

 private:
  std::vector<std::unique_ptr<HashFamily>> families_;
  std::vector<double> cumulative_weights_;
  uint64_t seed_;
  bool all_binary_;
};

/// Builds the canonical family for a leaf-like rule component: the field's
/// own family for a single field (MinHash for token sets, random hyperplanes
/// for dense vectors), or a WeightedFieldFamily over the per-field families
/// for a weighted-average component. `prototype` supplies field kinds and
/// dimensionalities.
std::unique_ptr<HashFamily> MakeFamilyForFields(
    const std::vector<FieldId>& fields, const std::vector<double>& weights,
    const Record& prototype, uint64_t seed);

}  // namespace adalsh

#endif  // ADALSH_LSH_WEIGHTED_FIELD_FAMILY_H_
