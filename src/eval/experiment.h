#ifndef ADALSH_EVAL_EXPERIMENT_H_
#define ADALSH_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "datagen/generated_dataset.h"

namespace adalsh {

/// Aligned-column table printer used by the bench binaries to emit the
/// series behind each paper figure.
class ResultTable {
 public:
  explicit ResultTable(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Prints with a header rule, columns padded to content width.
  void Print(std::ostream& out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting for table cells.
std::string FormatDouble(double value, int precision = 3);

/// Scaled workload constructors for the sweep experiments: the base
/// generated dataset extended `scale`x with the paper's resampling procedure
/// (Section 6.3), paired with its rule. scale == 1 is the base dataset.
GeneratedDataset MakeCoraWorkload(size_t scale, uint64_t seed);
GeneratedDataset MakeSpotSigsWorkload(size_t scale, uint64_t seed);
GeneratedDataset MakeSpotSigsWorkload(size_t scale, double jaccard_sim_threshold,
                                      uint64_t seed);
GeneratedDataset MakePopularImagesWorkload(double zipf_exponent,
                                           double threshold_degrees,
                                           size_t num_records, uint64_t seed);

/// Prints a standard experiment banner (figure id, dataset, parameters).
void PrintExperimentHeader(std::ostream& out, const std::string& figure,
                           const std::string& description);

}  // namespace adalsh

#endif  // ADALSH_EVAL_EXPERIMENT_H_
