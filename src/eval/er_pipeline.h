#ifndef ADALSH_EVAL_ER_PIPELINE_H_
#define ADALSH_EVAL_ER_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "clustering/clustering.h"
#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The downstream half of the paper's Figure 1 workflow: after the filtering
/// stage shrinks the dataset, an ER algorithm resolves the kept records and
/// aggregation produces a per-entity summary. The filtering output is small,
/// so the ER algorithm "can afford a quadratic (or even higher) cost".

/// Result of running exact ER over a record subset.
struct ErResult {
  /// Connected components of the exact match graph, ranked by size.
  Clustering clusters;
  /// Rule evaluations performed (skipping transitively closed pairs).
  uint64_t similarities = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
};

/// Exact entity resolution on `records`: computes the match graph under
/// `rule` (with transitive closure) and returns its components — the
/// "benchmark ER algorithm" of Section 6.2.2, runnable.
ErResult ResolveExact(const Dataset& dataset, const MatchRule& rule,
                      const std::vector<RecordId>& records);

/// Per-entity aggregation: the medoid of a cluster — the record minimizing
/// the total rule distance to the other members (sampled above
/// `sample_limit` members to stay near-linear). The paper's examples
/// aggregate clusters into summaries (the most complete article version, a
/// customer's merged contact info); the medoid is the generic stand-in.
RecordId ClusterMedoid(const Dataset& dataset, const MatchRule& rule,
                       const std::vector<RecordId>& cluster,
                       size_t sample_limit = 64);

}  // namespace adalsh

#endif  // ADALSH_EVAL_ER_PIPELINE_H_
