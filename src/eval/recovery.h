#ifndef ADALSH_EVAL_RECOVERY_H_
#define ADALSH_EVAL_RECOVERY_H_

#include <cstdint>
#include <vector>

#include "clustering/clustering.h"
#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The "perfect" recovery process of Section 6.2.1, used to evaluate the
/// recovery accuracy booster of Section 6.1.2: after ER on the filtering
/// output, recovery compares every excluded record with the k clusters and
/// pulls back records that were mistakenly filtered out. A perfect recovery
/// ends with, "for each entity referenced by a record in O, all the records
/// for that entity on the whole dataset, in a single cluster".
///
/// Returns that clustering, ranked by descending size. Entities none of
/// whose records made it into `output` are unrecoverable and absent — the
/// failure mode the paper calls out.
Clustering PerfectRecovery(const std::vector<RecordId>& output,
                           const GroundTruth& truth);

/// Result of an actual (non-oracle) recovery run.
struct RecoveryResult {
  /// The input clusters augmented with the recovered records, re-ranked by
  /// size.
  Clustering clusters;
  /// Rule evaluations performed (the benchmark recovery algorithm's cost is
  /// |O| * (|R| - |O|); early-exit matching keeps the realized count lower).
  uint64_t similarities = 0;
  /// Wall-clock seconds.
  double seconds = 0.0;
  /// Records pulled back into some cluster.
  size_t recovered_records = 0;
};

/// The runnable counterpart of the paper's "benchmark recovery algorithm"
/// (Section 6.2.2): compares every record excluded from the filtering output
/// with the members of each of the output clusters, and adds each excluded
/// record to the first (highest-ranked) cluster containing a record it
/// matches. Unlike PerfectRecovery this uses the match rule, not ground
/// truth, so it is usable in production pipelines.
RecoveryResult RunRecoveryProcess(const Dataset& dataset,
                                  const MatchRule& rule,
                                  const Clustering& filtered);

}  // namespace adalsh

#endif  // ADALSH_EVAL_RECOVERY_H_
