#include "eval/experiment.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "datagen/cora_like.h"
#include "datagen/extend.h"
#include "datagen/popular_images.h"
#include "datagen/spotsigs_like.h"
#include "util/check.h"

namespace adalsh {

ResultTable::ResultTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  ADALSH_CHECK(!headers_.empty());
}

void ResultTable::AddRow(std::vector<std::string> cells) {
  ADALSH_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void ResultTable::Print(std::ostream& out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::left << std::setw(widths[c])
          << row[c];
    }
    out << " |\n";
  };
  print_row(headers_);
  out << "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

GeneratedDataset MakeCoraWorkload(size_t scale, uint64_t seed) {
  CoraLikeConfig config;
  config.seed = seed;
  GeneratedDataset base = GenerateCoraLike(config);
  if (scale == 1) return base;
  Dataset extended = ExtendByResampling(base.dataset, scale, seed + 17);
  return GeneratedDataset(std::move(extended), base.rule);
}

GeneratedDataset MakeSpotSigsWorkload(size_t scale, uint64_t seed) {
  return MakeSpotSigsWorkload(scale, 0.4, seed);
}

GeneratedDataset MakeSpotSigsWorkload(size_t scale,
                                      double jaccard_sim_threshold,
                                      uint64_t seed) {
  SpotSigsLikeConfig config;
  config.seed = seed;
  config.jaccard_sim_threshold = jaccard_sim_threshold;
  GeneratedDataset base = GenerateSpotSigsLike(config);
  if (scale == 1) return base;
  Dataset extended = ExtendByResampling(base.dataset, scale, seed + 23);
  return GeneratedDataset(std::move(extended), base.rule);
}

GeneratedDataset MakePopularImagesWorkload(double zipf_exponent,
                                           double threshold_degrees,
                                           size_t num_records, uint64_t seed) {
  PopularImagesConfig config;
  config.zipf_exponent = zipf_exponent;
  config.angle_threshold_degrees = threshold_degrees;
  config.num_records = num_records;
  config.seed = seed;
  return GeneratePopularImages(config);
}

void PrintExperimentHeader(std::ostream& out, const std::string& figure,
                           const std::string& description) {
  out << "\n=== " << figure << " — " << description << " ===\n";
}

}  // namespace adalsh
