#include "eval/metrics.h"

#include <algorithm>

#include "util/check.h"

namespace adalsh {
namespace {

/// Intersection size of two sorted vectors.
size_t IntersectionSize(const std::vector<RecordId>& a,
                        const std::vector<RecordId>& b) {
  size_t i = 0, j = 0, count = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++count;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return count;
}

std::vector<RecordId> SortedUnionOfPrefix(
    const std::vector<std::vector<RecordId>>& clusters, size_t prefix) {
  std::vector<RecordId> result;
  for (size_t i = 0; i < std::min(prefix, clusters.size()); ++i) {
    result.insert(result.end(), clusters[i].begin(), clusters[i].end());
  }
  std::sort(result.begin(), result.end());
  result.erase(std::unique(result.begin(), result.end()), result.end());
  return result;
}

RankedAccuracy RankedPrefixAccuracy(
    const std::vector<std::vector<RecordId>>& output,
    const std::vector<std::vector<RecordId>>& reference, size_t k) {
  ADALSH_CHECK_GE(k, 1u);
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (size_t i = 1; i <= k; ++i) {
    std::vector<RecordId> out_prefix = SortedUnionOfPrefix(output, i);
    std::vector<RecordId> ref_prefix = SortedUnionOfPrefix(reference, i);
    size_t overlap = IntersectionSize(out_prefix, ref_prefix);
    precision_sum += out_prefix.empty()
                         ? 0.0
                         : static_cast<double>(overlap) / out_prefix.size();
    recall_sum += ref_prefix.empty()
                      ? 0.0
                      : static_cast<double>(overlap) / ref_prefix.size();
  }
  RankedAccuracy result;
  result.map = precision_sum / static_cast<double>(k);
  result.mar = recall_sum / static_cast<double>(k);
  return result;
}

}  // namespace

SetAccuracy ComputeSetAccuracy(const std::vector<RecordId>& output,
                               const std::vector<RecordId>& reference) {
  SetAccuracy accuracy;
  size_t overlap = IntersectionSize(output, reference);
  if (!output.empty()) {
    accuracy.precision = static_cast<double>(overlap) / output.size();
  }
  if (!reference.empty()) {
    accuracy.recall = static_cast<double>(overlap) / reference.size();
  }
  if (accuracy.precision + accuracy.recall > 0.0) {
    accuracy.f1 = 2.0 * accuracy.precision * accuracy.recall /
                  (accuracy.precision + accuracy.recall);
  }
  return accuracy;
}

SetAccuracy GoldAccuracy(const Clustering& output, const GroundTruth& truth,
                         size_t k) {
  std::vector<RecordId> records =
      output.UnionOfTopClusters(output.clusters.size());
  return ComputeSetAccuracy(records, truth.TopKRecords(k));
}

RankedAccuracy ComputeRankedAccuracy(const Clustering& output,
                                     const GroundTruth& truth, size_t k) {
  return RankedPrefixAccuracy(output.clusters, truth.clusters(), k);
}

RankedAccuracy ComputeRankedAccuracyAgainst(const Clustering& output,
                                            const Clustering& reference,
                                            size_t k) {
  return RankedPrefixAccuracy(output.clusters, reference.clusters, k);
}

}  // namespace adalsh
