#include "eval/er_pipeline.h"

#include <limits>

#include "clustering/parent_pointer_forest.h"
#include "core/pairwise.h"
#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {
namespace {

/// Collects the leaf-like components of a rule tree (a composite rule has no
/// single distance; the medoid uses the mean over components).
void CollectLeafLike(const MatchRule& rule, std::vector<const MatchRule*>* out) {
  if (rule.is_leaf_like()) {
    out->push_back(&rule);
    return;
  }
  for (const MatchRule& child : rule.children()) CollectLeafLike(child, out);
}

double MeanComponentDistance(const std::vector<const MatchRule*>& components,
                             const Record& a, const Record& b) {
  double sum = 0.0;
  for (const MatchRule* component : components) {
    sum += component->Distance(a, b);
  }
  return sum / static_cast<double>(components.size());
}

}  // namespace

ErResult ResolveExact(const Dataset& dataset, const MatchRule& rule,
                      const std::vector<RecordId>& records) {
  Timer timer;
  ParentPointerForest forest;
  PairwiseComputer pairwise(dataset, rule);
  std::vector<NodeId> roots = pairwise.Apply(records, &forest);
  ErResult result;
  result.clusters = MaterializeClusters(forest, roots);
  result.clusters.SortBySizeDescending();
  result.similarities = pairwise.total_similarities();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

RecordId ClusterMedoid(const Dataset& dataset, const MatchRule& rule,
                       const std::vector<RecordId>& cluster,
                       size_t sample_limit) {
  ADALSH_CHECK(!cluster.empty());
  if (cluster.size() == 1) return cluster[0];
  std::vector<const MatchRule*> components;
  CollectLeafLike(rule, &components);
  ADALSH_CHECK(!components.empty());

  // Sample the comparison set when the cluster is large.
  std::vector<RecordId> probes = cluster;
  if (probes.size() > sample_limit) {
    Rng rng(0xed01d ^ cluster[0]);
    rng.Shuffle(&probes);
    probes.resize(sample_limit);
  }

  RecordId best = cluster[0];
  double best_total = std::numeric_limits<double>::infinity();
  for (RecordId candidate : cluster) {
    const Record& record = dataset.record(candidate);
    double total = 0.0;
    for (RecordId probe : probes) {
      if (probe == candidate) continue;
      total += MeanComponentDistance(components, record, dataset.record(probe));
      if (total >= best_total) break;  // cannot beat the incumbent
    }
    if (total < best_total) {
      best_total = total;
      best = candidate;
    }
  }
  return best;
}

}  // namespace adalsh
