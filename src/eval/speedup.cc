#include "eval/speedup.h"

#include "util/check.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {

SpeedupModel SpeedupModel::Measure(const Dataset& dataset,
                                   const MatchRule& rule, int samples,
                                   uint64_t seed) {
  ADALSH_CHECK_GT(samples, 0);
  ADALSH_CHECK_GE(dataset.num_records(), 2u);
  Rng rng(DeriveSeed(seed, 0x5beed));
  std::vector<std::pair<RecordId, RecordId>> pairs;
  pairs.reserve(samples);
  for (int i = 0; i < samples; ++i) {
    RecordId a = static_cast<RecordId>(rng.NextBelow(dataset.num_records()));
    RecordId b = static_cast<RecordId>(rng.NextBelow(dataset.num_records()));
    if (a == b) b = (b + 1) % dataset.num_records();
    pairs.emplace_back(a, b);
  }
  volatile int sink = 0;
  Timer timer;
  for (const auto& [a, b] : pairs) {
    sink = sink + (rule.Matches(dataset.record(a), dataset.record(b)) ? 1 : 0);
  }
  return SpeedupModel(timer.ElapsedSeconds() / samples);
}

double SpeedupModel::WholeTime(size_t n) const {
  return cost_per_similarity_ * static_cast<double>(PairCount(n));
}

double SpeedupModel::ReducedTime(size_t n_out) const {
  return cost_per_similarity_ * static_cast<double>(PairCount(n_out));
}

double SpeedupModel::RecoveryTime(size_t n_out, size_t n) const {
  ADALSH_CHECK_LE(n_out, n);
  return cost_per_similarity_ * static_cast<double>(n_out) *
         static_cast<double>(n - n_out);
}

double SpeedupModel::SpeedupWithoutRecovery(double filtering_seconds, size_t n,
                                            size_t n_out) const {
  return WholeTime(n) / (filtering_seconds + ReducedTime(n_out));
}

double SpeedupModel::SpeedupWithRecovery(double filtering_seconds, size_t n,
                                         size_t n_out) const {
  return WholeTime(n) /
         (filtering_seconds + ReducedTime(n_out) + RecoveryTime(n_out, n));
}

double DatasetReductionPercent(size_t n_out, size_t n) {
  ADALSH_CHECK_GT(n, 0u);
  return 100.0 * static_cast<double>(n_out) / static_cast<double>(n);
}

}  // namespace adalsh
