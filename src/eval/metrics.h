#ifndef ADALSH_EVAL_METRICS_H_
#define ADALSH_EVAL_METRICS_H_

#include <cstddef>
#include <vector>

#include "clustering/clustering.h"
#include "record/dataset.h"

namespace adalsh {

/// Set-level accuracy (Section 2.1): the filtering output treated as one set
/// of records O, compared against a reference set O*.
struct SetAccuracy {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Precision/recall/F1 of `output` against `reference`. Inputs are sorted,
/// deduplicated record-id vectors (as produced by UnionOfTopClusters /
/// GroundTruth::TopKRecords). Empty output yields zero precision; empty
/// reference yields zero recall; F1 is 0 when both P and R are 0.
SetAccuracy ComputeSetAccuracy(const std::vector<RecordId>& output,
                               const std::vector<RecordId>& reference);

/// "Gold" metrics (Section 6.2.1): all records of `output` against the
/// ground-truth top-k records O*.
SetAccuracy GoldAccuracy(const Clustering& output, const GroundTruth& truth,
                         size_t k);

/// Ranked-cluster accuracy (Section 6.2.1): mean Average Precision and
/// Recall over cluster-rank prefixes. For prefix i (1-based, up to k):
///   P_i = |O_i ∩ G_i| / |O_i|,   R_i = |O_i ∩ G_i| / |G_i|,
/// where O_i is the union of the output's top-i clusters and G_i the union of
/// the ground truth's top-i clusters; mAP/mAR are their means over i = 1..k.
/// Reproduces the paper's worked example (mAP 0.775, mAR 0.9). Missing
/// output clusters (fewer than k) contribute their prefix with O_i frozen.
struct RankedAccuracy {
  double map = 0.0;
  double mar = 0.0;
};

RankedAccuracy ComputeRankedAccuracy(const Clustering& output,
                                     const GroundTruth& truth, size_t k);

/// Same prefix metrics against an arbitrary reference clustering (ranked by
/// size) instead of ground truth — used for the F1-target study of Appendix
/// E.1 where the reference is the Pairs outcome.
RankedAccuracy ComputeRankedAccuracyAgainst(const Clustering& output,
                                            const Clustering& reference,
                                            size_t k);

}  // namespace adalsh

#endif  // ADALSH_EVAL_METRICS_H_
