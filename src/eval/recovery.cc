#include "eval/recovery.h"

#include <algorithm>
#include <set>
#include <vector>

#include "util/timer.h"

namespace adalsh {

Clustering PerfectRecovery(const std::vector<RecordId>& output,
                           const GroundTruth& truth) {
  // Entities touched by the output, in ground-truth rank order so the
  // resulting clustering is deterministic.
  std::set<size_t> touched_ranks;
  for (RecordId r : output) {
    touched_ranks.insert(truth.rank_of_entity(truth.entity_of(r)));
  }
  Clustering recovered;
  for (size_t rank : touched_ranks) {
    std::vector<RecordId> cluster = truth.cluster(rank);
    std::sort(cluster.begin(), cluster.end());
    recovered.clusters.push_back(std::move(cluster));
  }
  recovered.SortBySizeDescending();
  return recovered;
}

RecoveryResult RunRecoveryProcess(const Dataset& dataset,
                                  const MatchRule& rule,
                                  const Clustering& filtered) {
  Timer timer;
  RecoveryResult result;
  result.clusters = filtered;

  // Membership mask of the filtering output.
  std::vector<bool> in_output(dataset.num_records(), false);
  for (const std::vector<RecordId>& cluster : filtered.clusters) {
    for (RecordId r : cluster) in_output[r] = true;
  }

  for (RecordId r = 0; r < dataset.num_records(); ++r) {
    if (in_output[r]) continue;
    const Record& candidate = dataset.record(r);
    bool placed = false;
    for (size_t c = 0; c < filtered.clusters.size() && !placed; ++c) {
      // Compare against the cluster as filtered (not as augmented), matching
      // the benchmark recovery algorithm's cost model.
      for (RecordId member : filtered.clusters[c]) {
        ++result.similarities;
        if (rule.Matches(candidate, dataset.record(member))) {
          result.clusters.clusters[c].push_back(r);
          ++result.recovered_records;
          placed = true;
          break;
        }
      }
    }
  }
  for (std::vector<RecordId>& cluster : result.clusters.clusters) {
    std::sort(cluster.begin(), cluster.end());
  }
  result.clusters.SortBySizeDescending();
  result.seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace adalsh
