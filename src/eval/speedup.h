#ifndef ADALSH_EVAL_SPEEDUP_H_
#define ADALSH_EVAL_SPEEDUP_H_

#include <cstddef>
#include <cstdint>

#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The benchmark-ER performance model of Section 6.2.2. The paper measures
/// end-to-end speedups against a "benchmark ER algorithm" that computes all
/// pairwise similarities (and a "benchmark recovery algorithm" that compares
/// every kept record with every excluded one); this class implements exactly
/// those formulas with a measured per-similarity cost.
class SpeedupModel {
 public:
  explicit SpeedupModel(double cost_per_similarity)
      : cost_per_similarity_(cost_per_similarity) {}

  /// Measures the per-similarity cost by timing `samples` rule evaluations
  /// on random record pairs.
  static SpeedupModel Measure(const Dataset& dataset, const MatchRule& rule,
                              int samples, uint64_t seed);

  /// WholeTime: benchmark ER on all n records — cost * C(n, 2).
  double WholeTime(size_t n) const;

  /// ReducedTime: benchmark ER on the filtering output — cost * C(n_out, 2).
  double ReducedTime(size_t n_out) const;

  /// RecoveryTime: every kept record against every excluded record —
  /// cost * n_out * (n - n_out).
  double RecoveryTime(size_t n_out, size_t n) const;

  /// WholeTime / (FilteringTime + ReducedTime).
  double SpeedupWithoutRecovery(double filtering_seconds, size_t n,
                                size_t n_out) const;

  /// WholeTime / (FilteringTime + ReducedTime + RecoveryTime).
  double SpeedupWithRecovery(double filtering_seconds, size_t n,
                             size_t n_out) const;

  double cost_per_similarity() const { return cost_per_similarity_; }

 private:
  double cost_per_similarity_;
};

/// Dataset Reduction (Section 6.2.2): filtering-output size as a percentage
/// of the dataset ("if the filtering output is 100 of 1000 records, the
/// reduction percentage is 10%").
double DatasetReductionPercent(size_t n_out, size_t n);

}  // namespace adalsh

#endif  // ADALSH_EVAL_SPEEDUP_H_
