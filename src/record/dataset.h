#ifndef ADALSH_RECORD_DATASET_H_
#define ADALSH_RECORD_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "record/record.h"

namespace adalsh {

/// Identifier of a ground-truth entity within a Dataset.
using EntityId = uint32_t;

/// The ground-truth clustering C* = {C*_1, ..., C*_|C*|} (Section 2.1):
/// one cluster of record ids per entity, ordered by descending cluster size
/// (ties broken by entity id for determinism), so cluster(0) is the top-1
/// entity.
class GroundTruth {
 public:
  /// Builds from a per-record entity assignment. `entity_of[r]` is the entity
  /// of record r; entity ids must be dense [0, num_entities).
  explicit GroundTruth(std::vector<EntityId> entity_of);

  size_t num_records() const { return entity_of_.size(); }
  size_t num_entities() const { return clusters_.size(); }

  /// Entity of a record.
  EntityId entity_of(RecordId r) const;

  /// The i-th largest ground-truth cluster (0-based).
  const std::vector<RecordId>& cluster(size_t rank) const;

  /// All clusters, descending by size.
  const std::vector<std::vector<RecordId>>& clusters() const {
    return clusters_;
  }

  /// O* — union of records in the k largest clusters (Section 2.1),
  /// as a sorted vector of record ids. k is clamped to num_entities().
  std::vector<RecordId> TopKRecords(size_t k) const;

  /// Rank (0-based, by descending size) of the cluster of entity `e`.
  size_t rank_of_entity(EntityId e) const;

  /// Entity whose cluster has the given rank (inverse of rank_of_entity).
  EntityId entity_at_rank(size_t rank) const;

 private:
  std::vector<EntityId> entity_of_;
  std::vector<std::vector<RecordId>> clusters_;  // descending by size
  std::vector<size_t> rank_of_entity_;
  std::vector<EntityId> entity_rank_to_id_;
};

/// A dataset: records plus ground truth and a human-readable name.
/// Records are immutable once added; algorithms address them by RecordId.
class Dataset {
 public:
  explicit Dataset(std::string name) : name_(std::move(name)) {}

  Dataset(const Dataset&) = delete;
  Dataset& operator=(const Dataset&) = delete;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  /// Appends a record with its ground-truth entity; returns its RecordId.
  RecordId AddRecord(Record record, EntityId entity);

  size_t num_records() const { return records_.size(); }
  const Record& record(RecordId r) const;
  const std::string& name() const { return name_; }

  /// Entity assignment as added (used to build GroundTruth and by the
  /// dataset-extension procedure of Section 6.3).
  const std::vector<EntityId>& entity_assignment() const { return entities_; }

  /// Builds the ground-truth clustering over all records added so far.
  GroundTruth BuildGroundTruth() const;

  /// All record ids [0, num_records()), the filtering-stage input set R.
  std::vector<RecordId> AllRecordIds() const;

 private:
  std::string name_;
  std::vector<Record> records_;
  std::vector<EntityId> entities_;
};

}  // namespace adalsh

#endif  // ADALSH_RECORD_DATASET_H_
