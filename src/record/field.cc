#include "record/field.h"

#include <algorithm>

#include "util/check.h"

namespace adalsh {

Field Field::DenseVector(std::vector<float> values) {
  return Field(Kind::kDenseVector, std::move(values), {});
}

Field Field::TokenSet(std::vector<uint64_t> tokens) {
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());
  return Field(Kind::kTokenSet, {}, std::move(tokens));
}

const std::vector<float>& Field::dense() const {
  ADALSH_CHECK(is_dense()) << "field is not a dense vector";
  return dense_;
}

const std::vector<uint64_t>& Field::tokens() const {
  ADALSH_CHECK(is_token_set()) << "field is not a token set";
  return tokens_;
}

size_t Field::size() const {
  return is_dense() ? dense_.size() : tokens_.size();
}

}  // namespace adalsh
