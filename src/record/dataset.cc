#include "record/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace adalsh {

GroundTruth::GroundTruth(std::vector<EntityId> entity_of)
    : entity_of_(std::move(entity_of)) {
  EntityId max_entity = 0;
  for (EntityId e : entity_of_) max_entity = std::max(max_entity, e);
  size_t num_entities = entity_of_.empty() ? 0 : max_entity + 1;

  std::vector<std::vector<RecordId>> by_entity(num_entities);
  for (RecordId r = 0; r < entity_of_.size(); ++r) {
    by_entity[entity_of_[r]].push_back(r);
  }
  for (size_t e = 0; e < num_entities; ++e) {
    ADALSH_CHECK(!by_entity[e].empty())
        << "entity ids must be dense; entity " << e << " has no records";
  }

  // Order clusters by descending size, ties by entity id.
  std::vector<EntityId> order(num_entities);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](EntityId a, EntityId b) {
    return by_entity[a].size() > by_entity[b].size();
  });

  clusters_.reserve(num_entities);
  rank_of_entity_.assign(num_entities, 0);
  entity_rank_to_id_.reserve(num_entities);
  for (size_t rank = 0; rank < order.size(); ++rank) {
    EntityId e = order[rank];
    rank_of_entity_[e] = rank;
    entity_rank_to_id_.push_back(e);
    clusters_.push_back(std::move(by_entity[e]));
  }
}

EntityId GroundTruth::entity_of(RecordId r) const {
  ADALSH_CHECK_LT(r, entity_of_.size());
  return entity_of_[r];
}

const std::vector<RecordId>& GroundTruth::cluster(size_t rank) const {
  ADALSH_CHECK_LT(rank, clusters_.size());
  return clusters_[rank];
}

std::vector<RecordId> GroundTruth::TopKRecords(size_t k) const {
  std::vector<RecordId> result;
  size_t limit = std::min(k, clusters_.size());
  for (size_t i = 0; i < limit; ++i) {
    result.insert(result.end(), clusters_[i].begin(), clusters_[i].end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

size_t GroundTruth::rank_of_entity(EntityId e) const {
  ADALSH_CHECK_LT(e, rank_of_entity_.size());
  return rank_of_entity_[e];
}

EntityId GroundTruth::entity_at_rank(size_t rank) const {
  ADALSH_CHECK_LT(rank, entity_rank_to_id_.size());
  return entity_rank_to_id_[rank];
}

RecordId Dataset::AddRecord(Record record, EntityId entity) {
  records_.push_back(std::move(record));
  entities_.push_back(entity);
  return static_cast<RecordId>(records_.size() - 1);
}

const Record& Dataset::record(RecordId r) const {
  ADALSH_CHECK_LT(r, records_.size());
  return records_[r];
}

GroundTruth Dataset::BuildGroundTruth() const {
  return GroundTruth(entities_);
}

std::vector<RecordId> Dataset::AllRecordIds() const {
  std::vector<RecordId> ids(num_records());
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

}  // namespace adalsh
