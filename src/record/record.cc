#include "record/record.h"

#include "util/check.h"

namespace adalsh {

const Field& Record::field(FieldId f) const {
  ADALSH_CHECK_LT(f, fields_.size());
  return fields_[f];
}

}  // namespace adalsh
