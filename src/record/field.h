#ifndef ADALSH_RECORD_FIELD_H_
#define ADALSH_RECORD_FIELD_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adalsh {

/// A high-dimensional feature value for one record field.
///
/// The paper's records are feature vectors produced by an application-specific
/// extraction step: RGB histograms for images (dense vectors compared under
/// cosine distance) and shingle / spot-signature sets for text (token sets
/// compared under Jaccard distance). Field is a tagged union of the two.
class Field {
 public:
  enum class Kind { kDenseVector, kTokenSet };

  /// A dense feature vector (e.g. an RGB histogram). Not required to be
  /// normalized; cosine distance normalizes internally.
  static Field DenseVector(std::vector<float> values);

  /// A set of 64-bit token ids (e.g. hashed shingles). The input need not be
  /// sorted or deduplicated; the constructor canonicalizes it so that Jaccard
  /// computations can use linear merges.
  static Field TokenSet(std::vector<uint64_t> tokens);

  Kind kind() const { return kind_; }
  bool is_dense() const { return kind_ == Kind::kDenseVector; }
  bool is_token_set() const { return kind_ == Kind::kTokenSet; }

  /// Dense payload; aborts if kind() != kDenseVector.
  const std::vector<float>& dense() const;

  /// Sorted, deduplicated token payload; aborts if kind() != kTokenSet.
  const std::vector<uint64_t>& tokens() const;

  /// Dimensionality: vector length or set cardinality.
  size_t size() const;

 private:
  Field(Kind kind, std::vector<float> dense, std::vector<uint64_t> tokens)
      : kind_(kind), dense_(std::move(dense)), tokens_(std::move(tokens)) {}

  Kind kind_;
  std::vector<float> dense_;
  std::vector<uint64_t> tokens_;
};

}  // namespace adalsh

#endif  // ADALSH_RECORD_FIELD_H_
