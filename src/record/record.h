#ifndef ADALSH_RECORD_RECORD_H_
#define ADALSH_RECORD_RECORD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "record/field.h"

namespace adalsh {

/// Index of a record within its Dataset. RecordIds are dense [0, |R|).
using RecordId = uint32_t;

/// Index of a field within a record's schema.
using FieldId = uint32_t;

/// One record: an ordered list of fields matching the dataset schema, plus an
/// optional display label for examples and debugging output.
class Record {
 public:
  explicit Record(std::vector<Field> fields, std::string label = "")
      : fields_(std::move(fields)), label_(std::move(label)) {}

  const Field& field(FieldId f) const;
  size_t num_fields() const { return fields_.size(); }
  const std::string& label() const { return label_; }

 private:
  std::vector<Field> fields_;
  std::string label_;
};

}  // namespace adalsh

#endif  // ADALSH_RECORD_RECORD_H_
