#include "clustering/forest_merge.h"

#include "util/check.h"

namespace adalsh {

NodeId GraftTree(const ParentPointerForest& src, NodeId src_root,
                 ParentPointerForest* dst, const std::vector<RecordId>& remap,
                 std::vector<NodeId>* leaf_of, GraftStats* stats) {
  ADALSH_CHECK(dst != nullptr);
  ADALSH_CHECK(src.IsRoot(src_root));
  NodeId new_root = kInvalidNode;
  uint64_t leaves = 0;
  src.ForEachLeaf(src_root, [&](RecordId r) {
    ADALSH_CHECK_LT(static_cast<size_t>(r), remap.size());
    const RecordId mapped = remap[r];
    NodeId leaf = kInvalidNode;
    if (new_root == kInvalidNode) {
      new_root = dst->MakeTree(mapped, src.Producer(src_root), &leaf);
    } else {
      leaf = dst->AddLeaf(new_root, mapped);
    }
    if (leaf_of != nullptr) (*leaf_of)[mapped] = leaf;
    ++leaves;
  });
  ADALSH_CHECK_NE(new_root, kInvalidNode) << "grafted tree has no leaves";
  if (stats != nullptr) {
    ++stats->trees;
    stats->leaves += leaves;
  }
  return new_root;
}

NodeId MergeRoots(ParentPointerForest* forest, const std::vector<NodeId>& roots,
                  int producer) {
  ADALSH_CHECK(forest != nullptr);
  ADALSH_CHECK(!roots.empty());
  NodeId survivor = roots.front();
  for (size_t i = 1; i < roots.size(); ++i) {
    survivor = forest->Merge(survivor, roots[i]);
  }
  forest->SetProducer(survivor, producer);
  return survivor;
}

}  // namespace adalsh
