#include "clustering/parent_pointer_forest.h"

#include "util/check.h"

namespace adalsh {

const ParentPointerForest::Node& ParentPointerForest::node(NodeId n) const {
  ADALSH_CHECK(n >= 0 && static_cast<size_t>(n) < nodes_.size());
  return nodes_[n];
}

ParentPointerForest::Node& ParentPointerForest::node(NodeId n) {
  ADALSH_CHECK(n >= 0 && static_cast<size_t>(n) < nodes_.size());
  return nodes_[n];
}

NodeId ParentPointerForest::NewNode() {
  nodes_.emplace_back();
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId ParentPointerForest::MakeTree(RecordId r, int producer,
                                     NodeId* leaf_out) {
  NodeId root = NewNode();
  NodeId leaf = NewNode();
  if (leaf_out != nullptr) *leaf_out = leaf;
  Node& root_node = nodes_[root];
  Node& leaf_node = nodes_[leaf];
  leaf_node.is_leaf = true;
  leaf_node.record = r;
  leaf_node.parent = root;
  root_node.first_leaf = leaf;
  root_node.last_leaf = leaf;
  root_node.leaf_count = 1;
  root_node.producer = producer;
  return root;
}

NodeId ParentPointerForest::AddLeaf(NodeId root, RecordId r) {
  ADALSH_CHECK(IsRoot(root)) << "AddLeaf target must be a root";
  NodeId leaf = NewNode();
  Node& leaf_node = nodes_[leaf];
  leaf_node.is_leaf = true;
  leaf_node.record = r;
  leaf_node.parent = root;
  Node& root_node = nodes_[root];
  nodes_[root_node.last_leaf].next_leaf = leaf;
  root_node.last_leaf = leaf;
  ++root_node.leaf_count;
  return leaf;
}

NodeId ParentPointerForest::Merge(NodeId root_a, NodeId root_b) {
  ADALSH_CHECK(IsRoot(root_a) && IsRoot(root_b));
  ADALSH_CHECK_NE(root_a, root_b) << "merging a tree with itself";
  // Union by size: the root with more leaves survives.
  NodeId big = root_a, small = root_b;
  if (nodes_[big].leaf_count < nodes_[small].leaf_count) std::swap(big, small);
  Node& big_node = nodes_[big];
  Node& small_node = nodes_[small];
  // Splice the smaller tree's leaf chain after the bigger tree's.
  nodes_[big_node.last_leaf].next_leaf = small_node.first_leaf;
  big_node.last_leaf = small_node.last_leaf;
  big_node.leaf_count += small_node.leaf_count;
  small_node.parent = big;
  return big;
}

NodeId ParentPointerForest::FindRoot(NodeId n) const {
  ADALSH_CHECK(n >= 0 && static_cast<size_t>(n) < nodes_.size());
  while (nodes_[n].parent != kInvalidNode) n = nodes_[n].parent;
  return n;
}

uint32_t ParentPointerForest::LeafCount(NodeId root) const {
  ADALSH_CHECK(IsRoot(root));
  return node(root).leaf_count;
}

int ParentPointerForest::Producer(NodeId root) const {
  ADALSH_CHECK(IsRoot(root));
  return node(root).producer;
}

void ParentPointerForest::SetProducer(NodeId root, int producer) {
  ADALSH_CHECK(IsRoot(root));
  node(root).producer = producer;
}

RecordId ParentPointerForest::RecordAt(NodeId leaf) const {
  const Node& n = node(leaf);
  ADALSH_CHECK(n.is_leaf);
  return n.record;
}

std::vector<RecordId> ParentPointerForest::Leaves(NodeId root) const {
  std::vector<RecordId> records;
  records.reserve(LeafCount(root));
  ForEachLeaf(root, [&records](RecordId r) { records.push_back(r); });
  return records;
}

}  // namespace adalsh
