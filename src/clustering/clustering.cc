#include "clustering/clustering.h"

#include <algorithm>

namespace adalsh {

void Clustering::SortBySizeDescending() {
  std::stable_sort(clusters.begin(), clusters.end(),
                   [](const std::vector<RecordId>& a,
                      const std::vector<RecordId>& b) {
                     return a.size() > b.size();
                   });
}

size_t Clustering::TotalRecords() const {
  size_t total = 0;
  for (const std::vector<RecordId>& c : clusters) total += c.size();
  return total;
}

std::vector<RecordId> Clustering::UnionOfTopClusters(size_t k) const {
  std::vector<RecordId> result;
  size_t limit = std::min(k, clusters.size());
  for (size_t i = 0; i < limit; ++i) {
    result.insert(result.end(), clusters[i].begin(), clusters[i].end());
  }
  std::sort(result.begin(), result.end());
  return result;
}

Clustering MaterializeClusters(const ParentPointerForest& forest,
                               const std::vector<NodeId>& roots) {
  Clustering clustering;
  clustering.clusters.reserve(roots.size());
  for (NodeId root : roots) {
    clustering.clusters.push_back(forest.Leaves(root));
  }
  return clustering;
}

}  // namespace adalsh
