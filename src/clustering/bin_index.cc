#include "clustering/bin_index.h"

#include <algorithm>

#include "util/check.h"
#include "util/numeric.h"

namespace adalsh {

BinIndex::BinIndex(size_t max_records) {
  size_t bin_count =
      max_records == 0 ? 1 : static_cast<size_t>(FloorLog2(max_records)) + 1;
  bins_.resize(bin_count);
}

void BinIndex::Insert(NodeId root, uint32_t leaf_count) {
  ADALSH_CHECK_GE(leaf_count, 1u);
  int bin = FloorLog2(leaf_count);
  ADALSH_CHECK_LT(static_cast<size_t>(bin), bins_.size())
      << "cluster larger than the BinIndex capacity";
  bins_[bin].push_back({root, leaf_count});
  highest_nonempty_ = std::max(highest_nonempty_, bin);
  ++size_;
}

void BinIndex::FixHighest() {
  while (highest_nonempty_ >= 0 && bins_[highest_nonempty_].empty()) {
    --highest_nonempty_;
  }
}

NodeId BinIndex::PopLargest() {
  ADALSH_CHECK(!empty()) << "PopLargest on an empty BinIndex";
  FixHighest();
  std::vector<Entry>& bin = bins_[highest_nonempty_];
  size_t best = 0;
  for (size_t i = 1; i < bin.size(); ++i) {
    if (bin[i].leaf_count > bin[best].leaf_count) best = i;
  }
  NodeId root = bin[best].root;
  bin[best] = bin.back();
  bin.pop_back();
  --size_;
  FixHighest();
  return root;
}

uint32_t BinIndex::LargestCount() const {
  if (empty()) return 0;
  int b = highest_nonempty_;
  while (b >= 0 && bins_[b].empty()) --b;
  ADALSH_CHECK_GE(b, 0);
  uint32_t best = 0;
  for (const Entry& e : bins_[b]) best = std::max(best, e.leaf_count);
  return best;
}

}  // namespace adalsh
