#ifndef ADALSH_CLUSTERING_PARENT_POINTER_FOREST_H_
#define ADALSH_CLUSTERING_PARENT_POINTER_FOREST_H_

#include <cstdint>
#include <vector>

#include "record/record.h"

namespace adalsh {

/// Index of a node in a ParentPointerForest.
using NodeId = int32_t;
constexpr NodeId kInvalidNode = -1;

/// Producer tag stored on every tree root: which function in the sequence
/// produced the cluster. Function H_i uses its 0-based index i; the pairwise
/// computation function P uses kProducerPairwise, which the termination rule
/// of Algorithm 1 treats as final.
constexpr int kProducerPairwise = 1 << 20;

/// The parent-pointer tree structure of Appendix B.1 (Figures 18/19): each
/// cluster is a tree whose leaves are the cluster's records. Every node has a
/// parent pointer; leaves are chained left-to-right through `next_leaf`; the
/// root knows the first and last leaf and the leaf count, so that
///   * membership queries are FindRoot (short parent chains),
///   * merging two clusters is O(1) pointer splicing plus one root hop, and
///   * iterating a cluster's records is a linear leaf-chain walk.
///
/// Deviation from the paper, documented in DESIGN.md: when two trees merge we
/// attach the smaller root under the larger root (union by size) instead of
/// allocating a fresh root n' (Fig. 19c). Leaf chains, counts and producer
/// tags behave identically, root-finding stays O(log n), and it halves node
/// allocations.
///
/// Nodes are never freed: each invocation of a clustering function builds new
/// trees over its input records and abandons the old ones, and the pool grows
/// monotonically with the total work performed (which Algorithm 1 is designed
/// to keep small).
class ParentPointerForest {
 public:
  ParentPointerForest() = default;

  ParentPointerForest(const ParentPointerForest&) = delete;
  ParentPointerForest& operator=(const ParentPointerForest&) = delete;

  /// Creates a new tree holding the single record `r`; returns its root.
  /// The tree has a root node and one leaf node (Fig. 19a). If `leaf_out` is
  /// non-null it receives the leaf's node id (callers track record -> leaf).
  NodeId MakeTree(RecordId r, int producer, NodeId* leaf_out = nullptr);

  /// Adds record `r` as a fresh leaf directly under `root` (Fig. 19b).
  /// Returns the new leaf's node id.
  NodeId AddLeaf(NodeId root, RecordId r);

  /// Merges the trees rooted at `root_a` and `root_b` (Fig. 19c; see class
  /// comment for the union-by-size deviation). Returns the surviving root.
  /// The producer tag of the surviving root is kept.
  NodeId Merge(NodeId root_a, NodeId root_b);

  /// Walks parent pointers to the root of `node`'s tree.
  NodeId FindRoot(NodeId node) const;

  /// Number of leaves (records) in the tree rooted at `root`.
  uint32_t LeafCount(NodeId root) const;

  /// Producer tag of the tree rooted at `root`.
  int Producer(NodeId root) const;
  void SetProducer(NodeId root, int producer);

  /// Record stored at a leaf node.
  RecordId RecordAt(NodeId leaf) const;

  /// Records of the tree rooted at `root`, in leaf-chain order.
  std::vector<RecordId> Leaves(NodeId root) const;

  /// Calls `fn(RecordId)` for every leaf of the tree rooted at `root`.
  template <typename Fn>
  void ForEachLeaf(NodeId root, Fn&& fn) const {
    const Node& r = node(root);
    uint32_t remaining = r.leaf_count;
    NodeId leaf = r.first_leaf;
    while (remaining-- > 0) {
      fn(nodes_[leaf].record);
      leaf = nodes_[leaf].next_leaf;
    }
  }

  /// Calls `fn(RecordId, NodeId leaf)` for every leaf of the tree rooted at
  /// `root` — for callers that track record -> current-leaf maps across
  /// invocations (e.g. the streaming mode).
  template <typename Fn>
  void ForEachLeafNode(NodeId root, Fn&& fn) const {
    const Node& r = node(root);
    uint32_t remaining = r.leaf_count;
    NodeId leaf = r.first_leaf;
    while (remaining-- > 0) {
      fn(nodes_[leaf].record, leaf);
      leaf = nodes_[leaf].next_leaf;
    }
  }

  /// Total nodes allocated (for tests and memory accounting).
  size_t num_nodes() const { return nodes_.size(); }

  /// Parent hops from `n` to its root (0 for roots) — exposes the chain
  /// length FindRoot walks, for the Appendix B.2 complexity tests.
  size_t DepthForTest(NodeId n) const {
    size_t depth = 0;
    while (node(n).parent != kInvalidNode) {
      n = node(n).parent;
      ++depth;
    }
    return depth;
  }

  /// True if `n` is a root (has no parent).
  bool IsRoot(NodeId n) const { return node(n).parent == kInvalidNode; }

 private:
  struct Node {
    NodeId parent = kInvalidNode;
    NodeId first_leaf = kInvalidNode;  // meaningful on roots
    NodeId last_leaf = kInvalidNode;   // meaningful on roots
    NodeId next_leaf = kInvalidNode;   // meaningful on leaves
    uint32_t leaf_count = 0;           // authoritative on roots
    RecordId record = 0;               // meaningful on leaves
    int producer = 0;                  // meaningful on roots
    bool is_leaf = false;
  };

  const Node& node(NodeId n) const;
  Node& node(NodeId n);
  NodeId NewNode();

  std::vector<Node> nodes_;
};

}  // namespace adalsh

#endif  // ADALSH_CLUSTERING_PARENT_POINTER_FOREST_H_
