#ifndef ADALSH_CLUSTERING_CLUSTERING_H_
#define ADALSH_CLUSTERING_CLUSTERING_H_

#include <cstddef>
#include <vector>

#include "clustering/parent_pointer_forest.h"
#include "record/record.h"

namespace adalsh {

/// A materialized clustering: a list of clusters, each a list of record ids.
/// Used as the output type of the filtering stage (the "k largest clusters"
/// of Algorithm 1) and as the interchange format for the metric suite.
struct Clustering {
  std::vector<std::vector<RecordId>> clusters;

  /// Sorts clusters by descending size (stable; ties keep insertion order).
  void SortBySizeDescending();

  /// Total number of records across all clusters.
  size_t TotalRecords() const;

  /// Union of the records in the first `k` clusters, sorted ascending —
  /// the filtering-stage output set O of Section 2.1. `k` is clamped.
  std::vector<RecordId> UnionOfTopClusters(size_t k) const;
};

/// Materializes the clusters rooted at `roots` from the forest.
Clustering MaterializeClusters(const ParentPointerForest& forest,
                               const std::vector<NodeId>& roots);

}  // namespace adalsh

#endif  // ADALSH_CLUSTERING_CLUSTERING_H_
