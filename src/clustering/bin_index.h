#ifndef ADALSH_CLUSTERING_BIN_INDEX_H_
#define ADALSH_CLUSTERING_BIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "clustering/parent_pointer_forest.h"

namespace adalsh {

/// The bin-based structure of Appendix B.1/B.4: an array of ~log2(|R|) bins;
/// the root of a tree with x leaves lives in bin floor(log2(x)). Inserting is
/// O(1); extracting the largest cluster scans the highest non-empty bin,
/// which holds few clusters in practice (cluster sizes are skewed), and
/// removes the largest tree in it.
class BinIndex {
 public:
  /// `max_records` bounds cluster sizes (bin count is log2(max_records)+1).
  explicit BinIndex(size_t max_records);

  /// Inserts a tree root with the given leaf count.
  void Insert(NodeId root, uint32_t leaf_count);

  /// Removes and returns the root of the largest cluster; aborts when empty.
  NodeId PopLargest();

  /// Leaf count of the current largest cluster without removing it;
  /// 0 when empty.
  uint32_t LargestCount() const;

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

 private:
  struct Entry {
    NodeId root;
    uint32_t leaf_count;
  };

  std::vector<std::vector<Entry>> bins_;
  size_t size_ = 0;
  int highest_nonempty_ = -1;  // index of highest possibly-non-empty bin

  void FixHighest();
};

}  // namespace adalsh

#endif  // ADALSH_CLUSTERING_BIN_INDEX_H_
