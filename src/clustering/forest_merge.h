#ifndef ADALSH_CLUSTERING_FOREST_MERGE_H_
#define ADALSH_CLUSTERING_FOREST_MERGE_H_

#include <vector>

#include "clustering/parent_pointer_forest.h"

namespace adalsh {

/// Tools for transplanting parent-pointer trees between forests — the
/// mechanism behind the cross-shard merge (docs/sharding.md): each shard
/// refines its own forest over its own internal record-id space, and the
/// merge pass grafts every shard tree into one global forest over global
/// record ids before continuing refinement where the shards left off.

/// Copies the tree rooted at `src_root` in `src` into `dst` as a fresh tree:
/// same leaf records (each mapped through `remap`, indexed by source record
/// id), same producer tag, leaf-chain order preserved. Node ids are NOT
/// preserved — the graft is a new root/leaf allocation in `dst` — so grafted
/// trees compose with any trees `dst` already holds. Leaf-chain order is not
/// part of the canonical output contract (cluster membership is
/// order-invariant and snapshots sort members), but preserving it keeps the
/// walk single-pass and allocation-ordered.
///
/// Accumulated graft accounting, filled by GraftTree when a stats sink is
/// passed: how many trees were transplanted and how many leaves they carried.
/// The merge pass surfaces these per Flush in the telemetry plane
/// (docs/observability.md) — graft volume is the cross-shard merge's unit of
/// work, the way hashes/similarities are the refine loop's.
struct GraftStats {
  uint64_t trees = 0;
  uint64_t leaves = 0;
};

/// If `leaf_of` is non-null, `(*leaf_of)[remap[r]]` receives the new leaf's
/// node id for every grafted record r. If `stats` is non-null, the graft is
/// added to it (trees += 1, leaves += leaf count). Returns the new root.
NodeId GraftTree(const ParentPointerForest& src, NodeId src_root,
                 ParentPointerForest* dst, const std::vector<RecordId>& remap,
                 std::vector<NodeId>* leaf_of = nullptr,
                 GraftStats* stats = nullptr);

/// Merges the trees rooted at `roots` (all in `forest`, at least one) into a
/// single tree by folding left-to-right in the given order, then stamps the
/// surviving root with `producer`. The merge pass calls this with roots in
/// canonical order (ascending shard, ascending shard-local discovery) and
/// producer 0: a component split across shards may hold cross-shard merge
/// evidence no shard ever saw, so — exactly like a reopened component in the
/// resident engine — its refinement restarts from level 1. Returns the
/// surviving root.
NodeId MergeRoots(ParentPointerForest* forest, const std::vector<NodeId>& roots,
                  int producer);

}  // namespace adalsh

#endif  // ADALSH_CLUSTERING_FOREST_MERGE_H_
