#include "image/transforms.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace adalsh {

Image Crop(const Image& source, int x0, int y0, int width, int height) {
  ADALSH_CHECK(x0 >= 0 && y0 >= 0 && width > 0 && height > 0 &&
               x0 + width <= source.width() && y0 + height <= source.height())
      << "crop rectangle out of bounds";
  Image result(width, height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      result.set(x, y, source.at(x0 + x, y0 + y, 0), source.at(x0 + x, y0 + y, 1),
                 source.at(x0 + x, y0 + y, 2));
    }
  }
  return result;
}

Image ScaleBilinear(const Image& source, int new_width, int new_height) {
  ADALSH_CHECK(new_width > 0 && new_height > 0);
  Image result(new_width, new_height);
  double sx = static_cast<double>(source.width()) / new_width;
  double sy = static_cast<double>(source.height()) / new_height;
  for (int y = 0; y < new_height; ++y) {
    double fy = (y + 0.5) * sy - 0.5;
    int y0 = std::clamp(static_cast<int>(std::floor(fy)), 0, source.height() - 1);
    int y1 = std::min(y0 + 1, source.height() - 1);
    double ty = std::clamp(fy - y0, 0.0, 1.0);
    for (int x = 0; x < new_width; ++x) {
      double fx = (x + 0.5) * sx - 0.5;
      int x0 = std::clamp(static_cast<int>(std::floor(fx)), 0, source.width() - 1);
      int x1 = std::min(x0 + 1, source.width() - 1);
      double tx = std::clamp(fx - x0, 0.0, 1.0);
      uint8_t rgb[3];
      for (int c = 0; c < 3; ++c) {
        double top = source.at(x0, y0, c) * (1 - tx) + source.at(x1, y0, c) * tx;
        double bottom =
            source.at(x0, y1, c) * (1 - tx) + source.at(x1, y1, c) * tx;
        rgb[c] = static_cast<uint8_t>(
            std::clamp(top * (1 - ty) + bottom * ty, 0.0, 255.0));
      }
      result.set(x, y, rgb[0], rgb[1], rgb[2]);
    }
  }
  return result;
}

Image Recenter(const Image& source, int dx, int dy) {
  Image result(source.width(), source.height());
  for (int y = 0; y < source.height(); ++y) {
    int sy = std::clamp(y - dy, 0, source.height() - 1);
    for (int x = 0; x < source.width(); ++x) {
      int sx = std::clamp(x - dx, 0, source.width() - 1);
      result.set(x, y, source.at(sx, sy, 0), source.at(sx, sy, 1),
                 source.at(sx, sy, 2));
    }
  }
  return result;
}

Image RandomTransform(const Image& source, const RandomTransformConfig& config,
                      Rng* rng) {
  ADALSH_CHECK(rng != nullptr);
  ADALSH_CHECK(config.min_keep_fraction > 0.0 &&
               config.min_keep_fraction <= 1.0);
  ADALSH_CHECK(config.min_scale > 0.0 && config.min_scale <= config.max_scale);

  // Random crop.
  double keep_x =
      config.min_keep_fraction + rng->NextDouble() * (1.0 - config.min_keep_fraction);
  double keep_y =
      config.min_keep_fraction + rng->NextDouble() * (1.0 - config.min_keep_fraction);
  int crop_w = std::max(1, static_cast<int>(std::lround(source.width() * keep_x)));
  int crop_h = std::max(1, static_cast<int>(std::lround(source.height() * keep_y)));
  int x0 = crop_w < source.width()
               ? static_cast<int>(rng->NextBelow(source.width() - crop_w + 1))
               : 0;
  int y0 = crop_h < source.height()
               ? static_cast<int>(rng->NextBelow(source.height() - crop_h + 1))
               : 0;
  Image cropped = Crop(source, x0, y0, crop_w, crop_h);

  // Random scale.
  double scale =
      config.min_scale + rng->NextDouble() * (config.max_scale - config.min_scale);
  int new_w = std::max(1, static_cast<int>(std::lround(crop_w * scale)));
  int new_h = std::max(1, static_cast<int>(std::lround(crop_h * scale)));
  Image scaled = ScaleBilinear(cropped, new_w, new_h);

  // Random recenter.
  int max_dx =
      static_cast<int>(std::lround(new_w * config.max_shift_fraction));
  int max_dy =
      static_cast<int>(std::lround(new_h * config.max_shift_fraction));
  int dx = max_dx > 0 ? static_cast<int>(rng->NextInRange(-max_dx, max_dx)) : 0;
  int dy = max_dy > 0 ? static_cast<int>(rng->NextInRange(-max_dy, max_dy)) : 0;
  return Recenter(scaled, dx, dy);
}

}  // namespace adalsh
