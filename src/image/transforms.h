#ifndef ADALSH_IMAGE_TRANSFORMS_H_
#define ADALSH_IMAGE_TRANSFORMS_H_

#include "image/image.h"
#include "util/rng.h"

namespace adalsh {

/// The transformations the paper's PopularImages dataset applies to original
/// images to create records: "random cropping, scaling, re-centering".
/// Crops and shifts are kept mild so a transformed copy's RGB histogram stays
/// within a few degrees of the original — the regime the paper's 2/3/5-degree
/// thresholds probe.

/// Axis-aligned crop; the rectangle must lie inside the image.
Image Crop(const Image& source, int x0, int y0, int width, int height);

/// Bilinear rescale to the requested size.
Image ScaleBilinear(const Image& source, int new_width, int new_height);

/// Translates content by (dx, dy), clamping samples at the borders (the
/// revealed band repeats the nearest edge pixels).
Image Recenter(const Image& source, int dx, int dy);

/// Parameters for the random record-transformation pipeline.
struct RandomTransformConfig {
  /// Crop keeps at least this fraction of each axis.
  double min_keep_fraction = 0.90;
  /// Scale factor range applied after the crop.
  double min_scale = 0.75;
  double max_scale = 1.25;
  /// Maximum recenter shift as a fraction of each axis.
  double max_shift_fraction = 0.05;
};

/// Applies random crop -> scale -> recenter, mirroring the paper's record
/// generation for image entities.
Image RandomTransform(const Image& source, const RandomTransformConfig& config,
                      Rng* rng);

}  // namespace adalsh

#endif  // ADALSH_IMAGE_TRANSFORMS_H_
