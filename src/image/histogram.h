#ifndef ADALSH_IMAGE_HISTOGRAM_H_
#define ADALSH_IMAGE_HISTOGRAM_H_

#include <vector>

#include "image/image.h"

namespace adalsh {

/// RGB color histogram, the paper's image feature: "for each histogram
/// bucket, we count the number of pixels with an RGB value that is within
/// the bucket RGB limits. The RGB histogram forms a vector."
///
/// The color cube is partitioned into bins_per_channel^3 buckets; the result
/// has that many entries in R-major order. Counts are normalized by the
/// pixel count so images of different sizes are comparable (cosine distance
/// is scale-invariant anyway; normalization just keeps values well ranged).
std::vector<float> RgbHistogram(const Image& image, int bins_per_channel);

}  // namespace adalsh

#endif  // ADALSH_IMAGE_HISTOGRAM_H_
