#include "image/histogram.h"

#include "util/check.h"

namespace adalsh {

std::vector<float> RgbHistogram(const Image& image, int bins_per_channel) {
  ADALSH_CHECK_GE(bins_per_channel, 1);
  ADALSH_CHECK_LE(bins_per_channel, 256);
  size_t num_bins = static_cast<size_t>(bins_per_channel) * bins_per_channel *
                    bins_per_channel;
  std::vector<float> histogram(num_bins, 0.0f);
  const std::vector<uint8_t>& pixels = image.pixels();
  size_t pixel_count = pixels.size() / 3;
  for (size_t p = 0; p < pixel_count; ++p) {
    int r = pixels[p * 3] * bins_per_channel / 256;
    int g = pixels[p * 3 + 1] * bins_per_channel / 256;
    int b = pixels[p * 3 + 2] * bins_per_channel / 256;
    size_t bin = (static_cast<size_t>(r) * bins_per_channel + g) *
                     bins_per_channel + b;
    histogram[bin] += 1.0f;
  }
  float inv = pixel_count > 0 ? 1.0f / static_cast<float>(pixel_count) : 0.0f;
  for (float& value : histogram) value *= inv;
  return histogram;
}

}  // namespace adalsh
