#include "image/image.h"

#include <algorithm>

#include "util/check.h"

namespace adalsh {

Image::Image(int width, int height) : width_(width), height_(height) {
  ADALSH_CHECK_GT(width, 0);
  ADALSH_CHECK_GT(height, 0);
  pixels_.assign(static_cast<size_t>(width) * height * 3, 0);
}

uint8_t Image::at(int x, int y, int channel) const {
  ADALSH_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_ && channel >= 0 &&
               channel < 3);
  return pixels_[(static_cast<size_t>(y) * width_ + x) * 3 + channel];
}

void Image::set(int x, int y, uint8_t r, uint8_t g, uint8_t b) {
  ADALSH_CHECK(x >= 0 && x < width_ && y >= 0 && y < height_);
  size_t base = (static_cast<size_t>(y) * width_ + x) * 3;
  pixels_[base] = r;
  pixels_[base + 1] = g;
  pixels_[base + 2] = b;
}

Image GenerateRandomImage(const ImagePatternConfig& config, Rng* rng) {
  ADALSH_CHECK(rng != nullptr);
  ADALSH_CHECK_LE(config.min_rectangles, config.max_rectangles);
  Image image(config.width, config.height);

  // Background color.
  uint8_t bg[3];
  for (uint8_t& c : bg) c = static_cast<uint8_t>(rng->NextBelow(256));
  for (int y = 0; y < config.height; ++y) {
    for (int x = 0; x < config.width; ++x) {
      image.set(x, y, bg[0], bg[1], bg[2]);
    }
  }

  // Optional linear gradient blended over the background.
  if (config.add_gradient) {
    uint8_t grad[3];
    for (uint8_t& c : grad) c = static_cast<uint8_t>(rng->NextBelow(256));
    bool horizontal = rng->NextBernoulli(0.5);
    for (int y = 0; y < config.height; ++y) {
      for (int x = 0; x < config.width; ++x) {
        double t = horizontal ? static_cast<double>(x) / (config.width - 1)
                              : static_cast<double>(y) / (config.height - 1);
        uint8_t rgb[3];
        for (int c = 0; c < 3; ++c) {
          rgb[c] = static_cast<uint8_t>((1.0 - t * 0.5) * image.at(x, y, c) +
                                        t * 0.5 * grad[c]);
        }
        image.set(x, y, rgb[0], rgb[1], rgb[2]);
      }
    }
  }

  // Random filled rectangles.
  int64_t rectangles =
      rng->NextInRange(config.min_rectangles, config.max_rectangles);
  for (int64_t i = 0; i < rectangles; ++i) {
    int x0 = static_cast<int>(rng->NextBelow(config.width));
    int y0 = static_cast<int>(rng->NextBelow(config.height));
    int w = 1 + static_cast<int>(rng->NextBelow(config.width / 2));
    int h = 1 + static_cast<int>(rng->NextBelow(config.height / 2));
    uint8_t rgb[3];
    for (uint8_t& c : rgb) c = static_cast<uint8_t>(rng->NextBelow(256));
    int x1 = std::min(config.width, x0 + w);
    int y1 = std::min(config.height, y0 + h);
    for (int y = y0; y < y1; ++y) {
      for (int x = x0; x < x1; ++x) {
        image.set(x, y, rgb[0], rgb[1], rgb[2]);
      }
    }
  }
  return image;
}

}  // namespace adalsh
