#ifndef ADALSH_IMAGE_IMAGE_H_
#define ADALSH_IMAGE_IMAGE_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace adalsh {

/// A tiny in-memory RGB raster image. This is the substrate for the
/// PopularImages-like dataset: the paper's records are images compared by
/// RGB-histogram cosine distance, and its entities are sets of transformed
/// copies (random cropping, scaling, re-centering) of an original image.
class Image {
 public:
  /// Creates a black image of the given size.
  Image(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  /// Pixel accessors; coordinates must be in range. Channels are 0=R 1=G 2=B.
  uint8_t at(int x, int y, int channel) const;
  void set(int x, int y, uint8_t r, uint8_t g, uint8_t b);

  /// Raw interleaved RGB bytes, row-major.
  const std::vector<uint8_t>& pixels() const { return pixels_; }

 private:
  int width_;
  int height_;
  std::vector<uint8_t> pixels_;
};

/// Parameters for synthetic "original image" generation.
struct ImagePatternConfig {
  int width = 64;
  int height = 64;
  /// Number of random filled rectangles composited over the background.
  int min_rectangles = 4;
  int max_rectangles = 10;
  /// Whether to overlay a linear color gradient (adds smooth histogram mass).
  bool add_gradient = true;
};

/// Generates a random composition (background + gradient + rectangles) whose
/// RGB histogram is distinctive: two independently generated images land tens
/// of degrees apart in histogram space, while transformed copies stay within
/// a few degrees — matching the paper's image-dataset geometry.
Image GenerateRandomImage(const ImagePatternConfig& config, Rng* rng);

}  // namespace adalsh

#endif  // ADALSH_IMAGE_IMAGE_H_
