#include "text/shingle.h"

#include "text/tokenizer.h"
#include "util/check.h"

namespace adalsh {

std::vector<uint64_t> WordShingles(const std::string& text, int n) {
  ADALSH_CHECK_GE(n, 1);
  std::vector<std::string> tokens = Tokenize(text);
  std::vector<uint64_t> shingles;
  if (tokens.empty()) return shingles;
  if (tokens.size() < static_cast<size_t>(n)) {
    shingles.push_back(HashTokenSequence(tokens, 0, tokens.size()));
    return shingles;
  }
  shingles.reserve(tokens.size() - n + 1);
  for (size_t i = 0; i + n <= tokens.size(); ++i) {
    shingles.push_back(HashTokenSequence(tokens, i, i + n));
  }
  return shingles;
}

std::vector<uint64_t> CharShingles(const std::string& text, int k) {
  ADALSH_CHECK_GE(k, 1);
  std::vector<uint64_t> shingles;
  if (text.empty()) return shingles;
  if (text.size() < static_cast<size_t>(k)) {
    shingles.push_back(HashToken(text));
    return shingles;
  }
  shingles.reserve(text.size() - k + 1);
  for (size_t i = 0; i + k <= text.size(); ++i) {
    shingles.push_back(HashToken(text.substr(i, k)));
  }
  return shingles;
}

}  // namespace adalsh
