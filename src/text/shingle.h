#ifndef ADALSH_TEXT_SHINGLE_H_
#define ADALSH_TEXT_SHINGLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adalsh {

/// Shingling turns a document into a set of hashed n-grams so that set
/// similarity (Jaccard) approximates textual similarity (Broder et al.'s
/// syntactic clustering, cited by the paper as the basis of its Cora
/// features: "we create three sets of shingles for each record").

/// Hashed word n-grams of `text` (tokenized with Tokenize). A document
/// shorter than `n` tokens yields a single shingle covering all its tokens,
/// so no non-empty document maps to the empty set.
std::vector<uint64_t> WordShingles(const std::string& text, int n);

/// Hashed overlapping character k-grams of `text` (no tokenization; useful
/// for short fields like author lists where word shingles are too coarse).
std::vector<uint64_t> CharShingles(const std::string& text, int k);

}  // namespace adalsh

#endif  // ADALSH_TEXT_SHINGLE_H_
