#include "text/spot_signatures.h"

#include "text/tokenizer.h"
#include "util/check.h"

namespace adalsh {

std::unordered_set<std::string> SpotSigConfig::DefaultAntecedents() {
  return {"a",  "an",  "the",  "is",  "are", "was",  "were", "do",
          "did", "to",  "be",   "of",  "and", "that", "have", "it",
          "in",  "for", "with", "on",  "as",  "at",   "by",   "this"};
}

std::vector<uint64_t> SpotSignatures(const std::string& text,
                                     const SpotSigConfig& config) {
  ADALSH_CHECK_GE(config.chain_length, 1);
  ADALSH_CHECK_GE(config.spot_distance, 1);
  std::vector<std::string> tokens = Tokenize(text);

  // Precompute, for every position, whether the token is an antecedent, and
  // the list of non-antecedent token indices (chains skip antecedents).
  std::vector<bool> is_antecedent(tokens.size());
  std::vector<size_t> content_positions;  // indices of non-antecedent tokens
  std::vector<size_t> next_content_rank(tokens.size() + 1, 0);
  for (size_t i = 0; i < tokens.size(); ++i) {
    is_antecedent[i] = config.antecedents.count(tokens[i]) > 0;
    if (!is_antecedent[i]) content_positions.push_back(i);
  }
  // next_content_rank[i]: number of content tokens strictly before i — lets
  // us find the first content token at or after a given position in O(1).
  size_t rank = 0;
  for (size_t i = 0; i <= tokens.size(); ++i) {
    next_content_rank[i] = rank;
    if (i < tokens.size() && !is_antecedent[i]) ++rank;
  }

  std::vector<uint64_t> signatures;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!is_antecedent[i]) continue;
    // Chain starts at the first content token after position i, then steps by
    // spot_distance through the content-token list.
    size_t start_rank = next_content_rank[i + 1];
    size_t last_rank =
        start_rank + static_cast<size_t>(config.spot_distance) *
                         (static_cast<size_t>(config.chain_length) - 1);
    if (last_rank >= content_positions.size()) continue;
    std::vector<std::string> chain;
    chain.reserve(static_cast<size_t>(config.chain_length) + 1);
    chain.push_back(tokens[i]);  // the antecedent anchors the signature
    for (int c = 0; c < config.chain_length; ++c) {
      size_t r = start_rank + static_cast<size_t>(config.spot_distance) * c;
      chain.push_back(tokens[content_positions[r]]);
    }
    signatures.push_back(HashTokenSequence(chain, 0, chain.size()));
  }
  return signatures;
}

}  // namespace adalsh
