#ifndef ADALSH_TEXT_SPOT_SIGNATURES_H_
#define ADALSH_TEXT_SPOT_SIGNATURES_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

namespace adalsh {

/// Configuration for spot-signature extraction (Theobald et al., SIGIR'08 —
/// the feature extraction the paper's SpotSigs dataset uses: "the main body
/// of each article is transformed to a set of spot signatures").
///
/// A spot signature anchors at an occurrence of an *antecedent* (a frequent
/// stop word) and chains the next `chain_length` non-antecedent tokens,
/// skipping `spot_distance - 1` non-antecedent tokens between consecutive
/// chain elements.
struct SpotSigConfig {
  /// Antecedent stop words. Defaults to the common English function words
  /// used in the SpotSigs paper's experiments.
  std::unordered_set<std::string> antecedents = DefaultAntecedents();

  /// Number of tokens chained after the antecedent.
  int chain_length = 3;

  /// Step between chained tokens (1 = consecutive non-antecedent tokens).
  int spot_distance = 1;

  static std::unordered_set<std::string> DefaultAntecedents();
};

/// Extracts the set of hashed spot signatures of `text`. Documents produce
/// one signature per antecedent occurrence that has enough following tokens;
/// the result is a multiset reduced to a set by the Field::TokenSet
/// canonicalization downstream.
std::vector<uint64_t> SpotSignatures(const std::string& text,
                                     const SpotSigConfig& config);

}  // namespace adalsh

#endif  // ADALSH_TEXT_SPOT_SIGNATURES_H_
