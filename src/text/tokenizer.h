#ifndef ADALSH_TEXT_TOKENIZER_H_
#define ADALSH_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace adalsh {

/// Splits `text` into lowercase word tokens: maximal runs of alphanumeric
/// characters; everything else is a separator. "Verroios, H. 2017" ->
/// ["verroios", "h", "2017"].
std::vector<std::string> Tokenize(const std::string& text);

/// Stable 64-bit FNV-1a hash of a string. All text features (shingles, spot
/// signatures) are reduced to token ids with this hash so that Jaccard
/// computations operate on integers.
uint64_t HashToken(const std::string& token);

/// Hash of a token sequence (order-sensitive), used for n-gram features.
uint64_t HashTokenSequence(const std::vector<std::string>& tokens,
                           size_t begin, size_t end);

}  // namespace adalsh

#endif  // ADALSH_TEXT_TOKENIZER_H_
