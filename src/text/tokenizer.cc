#include "text/tokenizer.h"

#include <cctype>

#include "util/check.h"

namespace adalsh {
namespace {

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvStep(uint64_t state, unsigned char byte) {
  return (state ^ byte) * kFnvPrime;
}

}  // namespace

std::vector<std::string> Tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

uint64_t HashToken(const std::string& token) {
  uint64_t state = kFnvOffset;
  for (char c : token) state = FnvStep(state, static_cast<unsigned char>(c));
  return state;
}

uint64_t HashTokenSequence(const std::vector<std::string>& tokens,
                           size_t begin, size_t end) {
  ADALSH_CHECK_LE(begin, end);
  ADALSH_CHECK_LE(end, tokens.size());
  uint64_t state = kFnvOffset;
  for (size_t i = begin; i < end; ++i) {
    for (char c : tokens[i]) state = FnvStep(state, static_cast<unsigned char>(c));
    state = FnvStep(state, 0x1f);  // token separator
  }
  return state;
}

}  // namespace adalsh
