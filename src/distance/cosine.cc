#include "distance/cosine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace adalsh {

double CosineDistance(const std::vector<float>& a,
                      const std::vector<float>& b) {
  ADALSH_CHECK_EQ(a.size(), b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  if (norm_a == 0.0 && norm_b == 0.0) return 0.0;
  if (norm_a == 0.0 || norm_b == 0.0) return 1.0;
  double cosine = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine) / M_PI;
}

double DegreesToNormalizedAngle(double degrees) { return degrees / 180.0; }

double NormalizedAngleToDegrees(double normalized) {
  return normalized * 180.0;
}

}  // namespace adalsh
