#include "distance/cosine.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/simd_kernels.h"

namespace adalsh {

double CosineDistance(const std::vector<float>& a,
                      const std::vector<float>& b) {
  // Per-pair dimension checks are debug-only: FeatureCache validates each
  // field's dimensionality once per dataset, and the hot loops must not pay
  // a branch per pair for it.
  ADALSH_DCHECK_EQ(a.size(), b.size());
  double dot = 0.0, norm_a = 0.0, norm_b = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * b[i];
    norm_a += static_cast<double>(a[i]) * a[i];
    norm_b += static_cast<double>(b[i]) * b[i];
  }
  if (norm_a == 0.0 && norm_b == 0.0) return 0.0;
  if (norm_a == 0.0 || norm_b == 0.0) return 1.0;
  double cosine = dot / (std::sqrt(norm_a) * std::sqrt(norm_b));
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine) / M_PI;
}

double DotProduct(const float* a, const float* b, size_t size) {
  // Runtime-dispatched vector kernel (docs/simd.md): 16 independent double
  // accumulators in a canonical lane order, reduced by a fixed tree, so the
  // result depends only on the operands and `size` — never on the dispatch
  // target, alignment, or caller.
  return simd::DotProductF32(a, b, size);
}

double L2Norm(const float* values, size_t size) {
  double sum = 0.0;
  for (size_t i = 0; i < size; ++i) {
    sum += static_cast<double>(values[i]) * values[i];
  }
  return std::sqrt(sum);
}

double CosineDistanceWithNorms(const float* a, const float* b, size_t size,
                               double norm_a, double norm_b) {
  if (norm_a == 0.0 && norm_b == 0.0) return 0.0;
  if (norm_a == 0.0 || norm_b == 0.0) return 1.0;
  double cosine = DotProduct(a, b, size) / (norm_a * norm_b);
  cosine = std::clamp(cosine, -1.0, 1.0);
  return std::acos(cosine) / M_PI;
}

double CosineBoundForMaxDistance(double max_dist) {
  return std::cos(M_PI * std::clamp(max_dist, 0.0, 1.0));
}

bool CosineWithinBound(const float* a, const float* b, size_t size,
                       double norm_a, double norm_b, double cos_bound) {
  // Zero-norm edge cases mirror CosineDistance: both zero -> distance 0,
  // within any valid threshold; one zero -> distance 1, within the threshold
  // only when it admits everything (cos_bound <= -1 <=> max_dist >= 1).
  if (norm_a == 0.0 && norm_b == 0.0) return true;
  if (norm_a == 0.0 || norm_b == 0.0) return cos_bound <= -1.0;
  // max_dist >= 1 admits every pair; deciding it via the dot product would
  // re-introduce the clamp edge case for exactly-opposite vectors.
  if (cos_bound <= -1.0) return true;
  return DotProduct(a, b, size) >= cos_bound * (norm_a * norm_b);
}

bool CosineDistanceAtMost(const float* a, const float* b, size_t size,
                          double norm_a, double norm_b, double max_dist) {
  if (max_dist < 0.0) return false;
  return CosineWithinBound(a, b, size, norm_a, norm_b,
                           CosineBoundForMaxDistance(max_dist));
}

bool CosineDistanceAtMost(const std::vector<float>& a,
                          const std::vector<float>& b, double max_dist) {
  ADALSH_DCHECK_EQ(a.size(), b.size());
  return CosineDistanceAtMost(a.data(), b.data(), a.size(),
                              L2Norm(a.data(), a.size()),
                              L2Norm(b.data(), b.size()), max_dist);
}

double DegreesToNormalizedAngle(double degrees) { return degrees / 180.0; }

double NormalizedAngleToDegrees(double normalized) {
  return normalized * 180.0;
}

}  // namespace adalsh
