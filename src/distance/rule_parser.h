#ifndef ADALSH_DISTANCE_RULE_PARSER_H_
#define ADALSH_DISTANCE_RULE_PARSER_H_

#include <string>

#include "distance/rule.h"
#include "util/status.h"

namespace adalsh {

/// Parses the textual rule DSL used by the CLI and configuration files into
/// a MatchRule. Grammar (whitespace-insensitive, case-insensitive keywords):
///
///   rule  := leaf | wavg | and | or
///   leaf  := "leaf(" field ";" threshold ")"
///   wavg  := "wavg(" field ("," field)+ ";" weight ("," weight)+ ";"
///            threshold ")"
///   and   := "and(" rule ("," rule)+ ")"
///   or    := "or("  rule ("," rule)+ ")"
///
/// Thresholds are *distances* in [0, 1]. Examples:
///
///   leaf(0; 0.6)                       — Jaccard/cosine distance <= 0.6
///   and(wavg(0,1; 0.5,0.5; 0.3), leaf(2; 0.8))   — the paper's Cora rule
///   or(leaf(0; 0.022), leaf(1; 0.5))             — multimodal OR rule
///
/// Returns InvalidArgument with a position-annotated message on malformed
/// input. Structural validation against a record schema is the caller's job
/// (MatchRule::Validate).
StatusOr<MatchRule> ParseRule(const std::string& text);

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_RULE_PARSER_H_
