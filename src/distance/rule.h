#ifndef ADALSH_DISTANCE_RULE_H_
#define ADALSH_DISTANCE_RULE_H_

#include <memory>
#include <string>
#include <vector>

#include "record/record.h"
#include "util/status.h"

namespace adalsh {

/// Distance between two fields of the same kind, normalized to [0, 1]:
/// normalized-angle cosine distance for dense vectors, Jaccard distance for
/// token sets. Aborts if the kinds differ.
double FieldDistance(const Field& a, const Field& b);

/// A record-matching rule (Section 3 and Appendix C). Two records are a
/// match — i.e. are considered to refer to the same entity by the filtering
/// stage — when the rule holds. Rules form a small combinator tree:
///
///   * Leaf(f, d):          distance on field f is at most d.
///   * WeightedAverage:     the weighted average of several field distances
///                          is at most d (Appendix C.3).
///   * And(rules):          all sub-rules hold (Appendix C.1).
///   * Or(rules):           at least one sub-rule holds (Appendix C.2).
///
/// Thresholds are *distances* in [0, 1]; e.g. the paper's "Jaccard similarity
/// at least 0.4" is Leaf(f, 0.6).
///
/// Matching is also closed transitively by the clustering machinery
/// (Section 3): MatchRule only defines the pairwise predicate.
class MatchRule {
 public:
  enum class Type { kLeaf, kWeightedAverage, kAnd, kOr };

  /// Single-field threshold rule.
  static MatchRule Leaf(FieldId field, double threshold);

  /// Weighted-average rule over `fields` with weights summing to 1.
  static MatchRule WeightedAverage(std::vector<FieldId> fields,
                                   std::vector<double> weights,
                                   double threshold);

  /// Conjunction / disjunction of sub-rules.
  static MatchRule And(std::vector<MatchRule> children);
  static MatchRule Or(std::vector<MatchRule> children);

  Type type() const { return type_; }
  bool is_leaf_like() const {
    return type_ == Type::kLeaf || type_ == Type::kWeightedAverage;
  }

  /// True iff the rule holds for the record pair.
  bool Matches(const Record& a, const Record& b) const;

  /// The (possibly weighted-average) distance of a leaf-like rule; aborts on
  /// And/Or rules, whose "distance" is not a single number.
  double Distance(const Record& a, const Record& b) const;

  /// Leaf-like accessors (abort on And/Or).
  double threshold() const;
  const std::vector<FieldId>& fields() const;
  const std::vector<double>& weights() const;

  /// Children of And/Or rules (abort on leaf-like rules).
  const std::vector<MatchRule>& children() const;

  /// Checks the rule against a record's schema: field ids in range, weights
  /// valid, thresholds in [0, 1].
  Status Validate(const Record& prototype) const;

  /// e.g. "And(WeightedAvg({0,1},{0.5,0.5})<=0.3, Leaf(2)<=0.8)".
  std::string DebugString() const;

 private:
  MatchRule() = default;

  Type type_ = Type::kLeaf;
  std::vector<FieldId> fields_;
  std::vector<double> weights_;
  double threshold_ = 0.0;
  std::vector<MatchRule> children_;
};

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_RULE_H_
