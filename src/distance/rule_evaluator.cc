#include "distance/rule_evaluator.h"

#include "distance/cosine.h"
#include "distance/jaccard.h"
#include "util/check.h"

namespace adalsh {

RuleEvaluator::RuleEvaluator(const MatchRule& rule, const FeatureCache& cache)
    : cache_(&cache) {
  Compile(rule);
}

size_t RuleEvaluator::Compile(const MatchRule& rule) {
  size_t index = nodes_.size();
  nodes_.emplace_back();
  nodes_[index].type = rule.type();
  if (rule.is_leaf_like()) {
    Node& node = nodes_[index];
    node.threshold = rule.threshold();
    const std::vector<FieldId>& fields = rule.fields();
    const std::vector<double>& weights = rule.weights();
    for (size_t i = 0; i < fields.size(); ++i) {
      ADALSH_CHECK_LT(fields[i], cache_->num_fields())
          << "rule references a field missing from the cache's schema";
      node.fields.push_back(
          LeafField{fields[i], weights[i], cache_->is_dense(fields[i])});
    }
    if (rule.type() == MatchRule::Type::kLeaf) {
      node.cos_bound = CosineBoundForMaxDistance(node.threshold);
      node.min_sim = 1.0 - node.threshold;
    }
    return index;
  }
  // Children append after this node; collect their indices first to avoid
  // writing through a reference invalidated by vector growth.
  std::vector<size_t> children;
  for (const MatchRule& child : rule.children()) {
    children.push_back(Compile(child));
  }
  nodes_[index].children = std::move(children);
  return index;
}

bool RuleEvaluator::Matches(RecordId a, RecordId b) const {
  return MatchesNode(0, a, b);
}

bool RuleEvaluator::MatchesNode(size_t index, RecordId a, RecordId b) const {
  const Node& node = nodes_[index];
  switch (node.type) {
    case MatchRule::Type::kLeaf: {
      const LeafField& f = node.fields[0];
      if (f.dense) {
        return CosineWithinBound(cache_->dense(a, f.field),
                                 cache_->dense(b, f.field),
                                 cache_->dim(f.field), cache_->norm(a, f.field),
                                 cache_->norm(b, f.field), node.cos_bound);
      }
      return JaccardSimilarityAtLeast(cache_->tokens(a, f.field),
                                      cache_->tokens(b, f.field), node.min_sim);
    }
    case MatchRule::Type::kWeightedAverage: {
      // Distances are accumulated in field order exactly as
      // MatchRule::Distance does, so when no early exit fires the final
      // comparison is bit-identical. The early exit is sound because each
      // remaining term is >= 0: once sum > threshold the full sum is too.
      double sum = 0.0;
      for (const LeafField& f : node.fields) {
        double distance =
            f.dense ? CosineDistanceWithNorms(
                          cache_->dense(a, f.field), cache_->dense(b, f.field),
                          cache_->dim(f.field), cache_->norm(a, f.field),
                          cache_->norm(b, f.field))
                    : JaccardDistance(cache_->tokens(a, f.field),
                                      cache_->tokens(b, f.field));
        sum += f.weight * distance;
        if (sum > node.threshold) return false;
      }
      return true;
    }
    case MatchRule::Type::kAnd:
      for (size_t child : node.children) {
        if (!MatchesNode(child, a, b)) return false;
      }
      return true;
    case MatchRule::Type::kOr:
      for (size_t child : node.children) {
        if (MatchesNode(child, a, b)) return true;
      }
      return false;
  }
  ADALSH_CHECK(false) << "unknown rule type";
  return false;
}

}  // namespace adalsh
