#ifndef ADALSH_DISTANCE_COLLISION_MODEL_H_
#define ADALSH_DISTANCE_COLLISION_MODEL_H_

#include <functional>

#include "record/field.h"

namespace adalsh {

/// p(x): the probability that a single hash function drawn from the field's
/// locality-sensitive family gives equal values for two records at distance
/// x in [0, 1] (Section 5.1). For both families the library ships —
/// random hyperplanes under normalized-angle distance (Example 6) and
/// MinHash under Jaccard distance — p(x) = 1 - x, but the optimizer accepts
/// any model so alternative families can be plugged in.
using CollisionModel = std::function<double(double)>;

/// p(x) = 1 - x: the model for random hyperplanes (cosine) and MinHash
/// (Jaccard).
CollisionModel LinearCollisionModel();

/// The collision model of the canonical family for a field kind. Both kinds
/// currently map to the linear model; this is the single place that would
/// change if a family with a different p(x) were added.
CollisionModel CollisionModelForFieldKind(Field::Kind kind);

/// Probability that two records at distance x hash to the same bucket in at
/// least one table of a (w, z)-scheme: 1 - (1 - p(x)^w)^z (Example 3 /
/// Appendix A's AND-OR construction).
double SchemeCollisionProbability(const CollisionModel& p, double x, int w,
                                  int z);

/// Same with the paper's non-integer-budget correction (Section 5.1): with
/// z = floor(budget / w) full tables plus one partial table of w_rem < w
/// functions, the probability becomes 1 - (1 - p^w)^z * (1 - p^w_rem).
/// w_rem == 0 reduces to the plain (w, z) expression.
double SchemeCollisionProbabilityWithRemainder(const CollisionModel& p,
                                               double x, int w, int z,
                                               int w_rem);

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_COLLISION_MODEL_H_
