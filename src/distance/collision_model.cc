#include "distance/collision_model.h"

#include "util/check.h"
#include "util/numeric.h"

namespace adalsh {

CollisionModel LinearCollisionModel() {
  return [](double x) { return 1.0 - x; };
}

CollisionModel CollisionModelForFieldKind(Field::Kind kind) {
  switch (kind) {
    case Field::Kind::kDenseVector:  // random hyperplanes
    case Field::Kind::kTokenSet:     // MinHash
      return LinearCollisionModel();
  }
  ADALSH_CHECK(false) << "unknown field kind";
  return LinearCollisionModel();
}

double SchemeCollisionProbability(const CollisionModel& p, double x, int w,
                                  int z) {
  return SchemeCollisionProbabilityWithRemainder(p, x, w, z, 0);
}

double SchemeCollisionProbabilityWithRemainder(const CollisionModel& p,
                                               double x, int w, int z,
                                               int w_rem) {
  ADALSH_CHECK_GE(w, 1);
  ADALSH_CHECK_GE(z, 0);
  ADALSH_CHECK_GE(w_rem, 0);
  double px = p(x);
  double miss = PowInt(1.0 - PowInt(px, w), z);
  if (w_rem > 0) miss *= 1.0 - PowInt(px, w_rem);
  return 1.0 - miss;
}

}  // namespace adalsh
