#include "distance/jaccard.h"

namespace adalsh {

double JaccardSimilarity(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t i = 0, j = 0, intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  size_t union_size = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  return 1.0 - JaccardSimilarity(a, b);
}

bool JaccardSimilarityAtLeast(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b,
                              double min_sim) {
  if (min_sim <= 0.0) return true;
  if (a.empty() || b.empty()) return JaccardSimilarity(a, b) >= min_sim;
  // Size-ratio prefilter: J <= min(|A|,|B|) / max(|A|,|B|).
  size_t smaller = a.size() < b.size() ? a.size() : b.size();
  size_t larger = a.size() + b.size() - smaller;
  if (static_cast<double>(smaller) <
      min_sim * static_cast<double>(larger) - 1e-12) {
    return false;
  }
  size_t i = 0, j = 0, intersection = 0;
  size_t check_countdown = 32;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
    if (--check_countdown == 0) {
      check_countdown = 32;
      // Optimistic bound: every remaining element of the smaller tail also
      // lands in the intersection.
      size_t rem_a = a.size() - i, rem_b = b.size() - j;
      size_t rem = rem_a < rem_b ? rem_a : rem_b;
      size_t best_intersection = intersection + rem;
      size_t union_then = a.size() + b.size() - best_intersection;
      if (static_cast<double>(best_intersection) <
          min_sim * static_cast<double>(union_then) - 1e-12) {
        return false;
      }
    }
  }
  size_t union_size = a.size() + b.size() - intersection;
  return static_cast<double>(intersection) >=
         min_sim * static_cast<double>(union_size) - 1e-12;
}

}  // namespace adalsh
