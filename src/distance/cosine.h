#ifndef ADALSH_DISTANCE_COSINE_H_
#define ADALSH_DISTANCE_COSINE_H_

#include <vector>

namespace adalsh {

/// Cosine (angular) distance between two dense vectors, normalized to [0, 1]:
/// the angle between the vectors divided by 180 degrees (Example 5's
/// "normalized angle" x = theta / 180). This is the distance under which the
/// random-hyperplane family has collision probability p(x) = 1 - x.
///
/// Edge cases: if both vectors are zero the distance is 0; if exactly one is
/// zero the distance is 1 (maximally far).
double CosineDistance(const std::vector<float>& a, const std::vector<float>& b);

/// Converts an angle threshold in degrees (the paper uses 2/3/5-degree image
/// thresholds) to the normalized-angle distance used throughout the library.
double DegreesToNormalizedAngle(double degrees);

/// Inverse of DegreesToNormalizedAngle.
double NormalizedAngleToDegrees(double normalized);

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_COSINE_H_
