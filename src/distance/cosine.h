#ifndef ADALSH_DISTANCE_COSINE_H_
#define ADALSH_DISTANCE_COSINE_H_

#include <cstddef>
#include <vector>

namespace adalsh {

/// Cosine (angular) distance between two dense vectors, normalized to [0, 1]:
/// the angle between the vectors divided by 180 degrees (Example 5's
/// "normalized angle" x = theta / 180). This is the distance under which the
/// random-hyperplane family has collision probability p(x) = 1 - x.
///
/// Edge cases: if both vectors are zero the distance is 0; if exactly one is
/// zero the distance is 1 (maximally far).
double CosineDistance(const std::vector<float>& a, const std::vector<float>& b);

/// The inner kernel of the cached-norm cosine path: a runtime-dispatched
/// SIMD dot product with double accumulation (simd_kernels.h, docs/simd.md).
/// Deterministic: every dispatch target executes the same canonical 16-lane
/// accumulation order, so the result depends only on the operand values and
/// `size` — never on the machine's vector width, the caller, or the thread.
double DotProduct(const float* a, const float* b, size_t size);

/// L2 norm of a dense vector, accumulated in the same element order as
/// CosineDistance's norm terms so cached norms reproduce its arithmetic.
double L2Norm(const float* values, size_t size);

/// CosineDistance with the two norms precomputed (FeatureCache caches them
/// per record/field): one DotProduct per pair instead of three accumulations.
/// Same edge-case contract as CosineDistance.
double CosineDistanceWithNorms(const float* a, const float* b, size_t size,
                               double norm_a, double norm_b);

/// The cosine-similarity bound equivalent to a normalized-angle threshold:
/// CosineDistance(a, b) <= max_dist  <=>  cos(angle) >= cos(pi * max_dist).
/// Precompute once per rule threshold; acos disappears from the per-pair path.
double CosineBoundForMaxDistance(double max_dist);

/// True iff the pair's cosine similarity meets a precomputed bound from
/// CosineBoundForMaxDistance — the hot per-pair predicate: one dot product,
/// one multiply, one compare. `cos_bound <= -1` encodes "any pair passes"
/// (max_dist >= 1), which is also what the one-zero-vector edge case needs.
bool CosineWithinBound(const float* a, const float* b, size_t size,
                       double norm_a, double norm_b, double cos_bound);

/// Exactly equivalent to CosineDistance(a, b) <= max_dist, mirroring
/// JaccardSimilarityAtLeast's threshold-aware contract: the monotone acos is
/// folded into the threshold, so no trig runs per pair. Norms are taken from
/// the caller's cache (see FeatureCache).
bool CosineDistanceAtMost(const float* a, const float* b, size_t size,
                          double norm_a, double norm_b, double max_dist);

/// Convenience overload computing the norms in place (tests, one-off calls).
bool CosineDistanceAtMost(const std::vector<float>& a,
                          const std::vector<float>& b, double max_dist);

/// Converts an angle threshold in degrees (the paper uses 2/3/5-degree image
/// thresholds) to the normalized-angle distance used throughout the library.
double DegreesToNormalizedAngle(double degrees);

/// Inverse of DegreesToNormalizedAngle.
double NormalizedAngleToDegrees(double normalized);

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_COSINE_H_
