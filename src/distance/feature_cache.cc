#include "distance/feature_cache.h"

#include <cstring>

#include "distance/cosine.h"
#include "util/check.h"

namespace adalsh {

FeatureCache::FeatureCache(const Dataset& dataset) : num_records_(0) {
  ADALSH_CHECK_GE(dataset.num_records(), 1u)
      << "FeatureCache over an empty dataset";
  const Record& prototype = dataset.record(0);
  fields_.resize(prototype.num_fields());
  for (FieldId f = 0; f < fields_.size(); ++f) {
    FieldCache& cache = fields_[f];
    const Field& proto_field = prototype.field(f);
    cache.dense = proto_field.is_dense();
    if (cache.dense) {
      cache.dim = proto_field.size();
      cache.stride = PadFloats(cache.dim);
    }
  }
  GrowTo(dataset);
}

void FeatureCache::GrowTo(const Dataset& dataset) {
  const size_t new_count = dataset.num_records();
  ADALSH_CHECK_GE(new_count, num_records_)
      << "FeatureCache::GrowTo on a dataset that shrank";
  for (FieldCache& cache : fields_) {
    if (cache.dense) {
      // The arena zero-fills the appended rows, which is what makes the
      // padding lanes read as 0.0f for full-stride vector loads.
      cache.values.GrowTo(new_count * cache.stride);
      cache.norms.resize(new_count);
    } else {
      cache.token_ptrs.resize(new_count);
    }
  }
  for (RecordId r = 0; r < new_count; ++r) {
    const Record& record = dataset.record(r);
    const bool fresh = r >= num_records_;
    if (fresh) {
      ADALSH_CHECK_EQ(record.num_fields(), fields_.size())
          << "record " << r << " deviates from the schema of record 0";
    }
    for (FieldId f = 0; f < fields_.size(); ++f) {
      FieldCache& cache = fields_[f];
      const Field& field = record.field(f);
      if (fresh) {
        ADALSH_CHECK_EQ(field.is_dense(), cache.dense)
            << "record " << r << " field " << f
            << " kind differs from record 0";
      }
      if (cache.dense) {
        // Dense rows are copied once into the SoA arena; nothing to re-sync
        // for existing records (the arena is ours, record moves don't touch
        // it).
        if (fresh) {
          ADALSH_CHECK_EQ(field.size(), cache.dim)
              << "record " << r << " field " << f
              << " dimensionality differs from record 0";
          const std::vector<float>& values = field.dense();
          if (cache.dim > 0) {
            std::memcpy(cache.values.data() + r * cache.stride, values.data(),
                        cache.dim * sizeof(float));
          }
          cache.norms[r] = L2Norm(values.data(), values.size());
        }
      } else {
        cache.token_ptrs[r] = &field.tokens();
      }
    }
  }
  num_records_ = new_count;
}

}  // namespace adalsh
