#include "distance/feature_cache.h"

#include "distance/cosine.h"
#include "util/check.h"

namespace adalsh {

FeatureCache::FeatureCache(const Dataset& dataset)
    : num_records_(dataset.num_records()) {
  ADALSH_CHECK_GE(num_records_, 1u) << "FeatureCache over an empty dataset";
  const Record& prototype = dataset.record(0);
  fields_.resize(prototype.num_fields());
  for (FieldId f = 0; f < fields_.size(); ++f) {
    FieldCache& cache = fields_[f];
    const Field& proto_field = prototype.field(f);
    cache.dense = proto_field.is_dense();
    if (cache.dense) {
      cache.dim = proto_field.size();
      cache.dense_ptrs.resize(num_records_);
      cache.norms.resize(num_records_);
    } else {
      cache.token_ptrs.resize(num_records_);
    }
  }
  for (RecordId r = 0; r < num_records_; ++r) {
    const Record& record = dataset.record(r);
    ADALSH_CHECK_EQ(record.num_fields(), fields_.size())
        << "record " << r << " deviates from the schema of record 0";
    for (FieldId f = 0; f < fields_.size(); ++f) {
      FieldCache& cache = fields_[f];
      const Field& field = record.field(f);
      ADALSH_CHECK_EQ(field.is_dense(), cache.dense)
          << "record " << r << " field " << f << " kind differs from record 0";
      if (cache.dense) {
        ADALSH_CHECK_EQ(field.size(), cache.dim)
            << "record " << r << " field " << f
            << " dimensionality differs from record 0";
        const std::vector<float>& values = field.dense();
        cache.dense_ptrs[r] = values.data();
        cache.norms[r] = L2Norm(values.data(), values.size());
      } else {
        cache.token_ptrs[r] = &field.tokens();
      }
    }
  }
}

}  // namespace adalsh
