#include "distance/rule_parser.h"

#include <cctype>
#include <cstdlib>
#include <vector>

namespace adalsh {
namespace {

/// Recursive-descent parser over the DSL of the header comment.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  StatusOr<MatchRule> Parse() {
    StatusOr<MatchRule> rule = ParseRuleExpr();
    if (!rule.ok()) return rule;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing input after rule");
    }
    return rule;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("rule parse error at position " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Reads a lowercase keyword (letters only).
  std::string ReadKeyword() {
    SkipSpace();
    std::string keyword;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      keyword.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(text_[pos_]))));
      ++pos_;
    }
    return keyword;
  }

  StatusOr<double> ReadNumber() {
    SkipSpace();
    const char* start = text_.c_str() + pos_;
    char* end = nullptr;
    double value = std::strtod(start, &end);
    if (end == start) return Error("expected a number");
    pos_ += static_cast<size_t>(end - start);
    return value;
  }

  StatusOr<std::vector<double>> ReadNumberList() {
    std::vector<double> values;
    for (;;) {
      StatusOr<double> value = ReadNumber();
      if (!value.ok()) return value.status();
      values.push_back(*value);
      if (!Consume(',')) break;
    }
    return values;
  }

  StatusOr<MatchRule> ParseRuleExpr() {
    std::string keyword = ReadKeyword();
    if (keyword.empty()) return Error("expected leaf/wavg/and/or");
    if (!Consume('(')) return Error("expected '(' after '" + keyword + "'");

    if (keyword == "leaf") {
      StatusOr<double> field = ReadNumber();
      if (!field.ok()) return field.status();
      if (!Consume(';')) return Error("expected ';' in leaf()");
      StatusOr<double> threshold = ReadNumber();
      if (!threshold.ok()) return threshold.status();
      if (!Consume(')')) return Error("expected ')' closing leaf()");
      if (*field < 0 || *field != static_cast<FieldId>(*field)) {
        return Error("leaf field must be a non-negative integer");
      }
      return MatchRule::Leaf(static_cast<FieldId>(*field), *threshold);
    }

    if (keyword == "wavg") {
      StatusOr<std::vector<double>> fields = ReadNumberList();
      if (!fields.ok()) return fields.status();
      if (!Consume(';')) return Error("expected ';' after wavg fields");
      StatusOr<std::vector<double>> weights = ReadNumberList();
      if (!weights.ok()) return weights.status();
      if (!Consume(';')) return Error("expected ';' after wavg weights");
      StatusOr<double> threshold = ReadNumber();
      if (!threshold.ok()) return threshold.status();
      if (!Consume(')')) return Error("expected ')' closing wavg()");
      if (fields->size() != weights->size()) {
        return Error("wavg needs as many weights as fields");
      }
      std::vector<FieldId> field_ids;
      for (double f : *fields) {
        if (f < 0 || f != static_cast<FieldId>(f)) {
          return Error("wavg fields must be non-negative integers");
        }
        field_ids.push_back(static_cast<FieldId>(f));
      }
      return MatchRule::WeightedAverage(field_ids, *weights, *threshold);
    }

    if (keyword == "and" || keyword == "or") {
      std::vector<MatchRule> children;
      for (;;) {
        StatusOr<MatchRule> child = ParseRuleExpr();
        if (!child.ok()) return child;
        children.push_back(std::move(child).value());
        if (!Consume(',')) break;
      }
      if (!Consume(')')) {
        return Error("expected ')' closing " + keyword + "()");
      }
      if (children.size() < 2) {
        return Error(keyword + "() needs at least two sub-rules");
      }
      return keyword == "and" ? MatchRule::And(std::move(children))
                              : MatchRule::Or(std::move(children));
    }

    return Error("unknown rule '" + keyword + "'");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<MatchRule> ParseRule(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace adalsh
