#include "distance/rule.h"

#include <cmath>
#include <sstream>

#include "distance/cosine.h"
#include "distance/jaccard.h"
#include "util/check.h"

namespace adalsh {

double FieldDistance(const Field& a, const Field& b) {
  ADALSH_CHECK(a.kind() == b.kind()) << "field kinds differ";
  if (a.is_dense()) return CosineDistance(a.dense(), b.dense());
  return JaccardDistance(a.tokens(), b.tokens());
}

MatchRule MatchRule::Leaf(FieldId field, double threshold) {
  MatchRule rule;
  rule.type_ = Type::kLeaf;
  rule.fields_ = {field};
  rule.weights_ = {1.0};
  rule.threshold_ = threshold;
  return rule;
}

MatchRule MatchRule::WeightedAverage(std::vector<FieldId> fields,
                                     std::vector<double> weights,
                                     double threshold) {
  ADALSH_CHECK(!fields.empty());
  ADALSH_CHECK_EQ(fields.size(), weights.size());
  MatchRule rule;
  rule.type_ = Type::kWeightedAverage;
  rule.fields_ = std::move(fields);
  rule.weights_ = std::move(weights);
  rule.threshold_ = threshold;
  return rule;
}

MatchRule MatchRule::And(std::vector<MatchRule> children) {
  ADALSH_CHECK(!children.empty());
  MatchRule rule;
  rule.type_ = Type::kAnd;
  rule.children_ = std::move(children);
  return rule;
}

MatchRule MatchRule::Or(std::vector<MatchRule> children) {
  ADALSH_CHECK(!children.empty());
  MatchRule rule;
  rule.type_ = Type::kOr;
  rule.children_ = std::move(children);
  return rule;
}

bool MatchRule::Matches(const Record& a, const Record& b) const {
  switch (type_) {
    case Type::kLeaf: {
      const Field& fa = a.field(fields_[0]);
      const Field& fb = b.field(fields_[0]);
      if (fa.is_token_set() && fb.is_token_set()) {
        // Threshold-aware evaluation abandons the set merge early for
        // far-apart pairs — the hot path of the P function.
        return JaccardSimilarityAtLeast(fa.tokens(), fb.tokens(),
                                        1.0 - threshold_);
      }
      return Distance(a, b) <= threshold_;
    }
    case Type::kWeightedAverage:
      return Distance(a, b) <= threshold_;
    case Type::kAnd:
      for (const MatchRule& child : children_) {
        if (!child.Matches(a, b)) return false;
      }
      return true;
    case Type::kOr:
      for (const MatchRule& child : children_) {
        if (child.Matches(a, b)) return true;
      }
      return false;
  }
  ADALSH_CHECK(false) << "unknown rule type";
  return false;
}

double MatchRule::Distance(const Record& a, const Record& b) const {
  ADALSH_CHECK(is_leaf_like()) << "Distance() on a composite rule";
  double sum = 0.0;
  for (size_t i = 0; i < fields_.size(); ++i) {
    sum += weights_[i] * FieldDistance(a.field(fields_[i]), b.field(fields_[i]));
  }
  return sum;
}

double MatchRule::threshold() const {
  ADALSH_CHECK(is_leaf_like());
  return threshold_;
}

const std::vector<FieldId>& MatchRule::fields() const {
  ADALSH_CHECK(is_leaf_like());
  return fields_;
}

const std::vector<double>& MatchRule::weights() const {
  ADALSH_CHECK(is_leaf_like());
  return weights_;
}

const std::vector<MatchRule>& MatchRule::children() const {
  ADALSH_CHECK(!is_leaf_like());
  return children_;
}

Status MatchRule::Validate(const Record& prototype) const {
  if (is_leaf_like()) {
    if (threshold_ < 0.0 || threshold_ > 1.0) {
      return Status::InvalidArgument("rule threshold outside [0, 1]");
    }
    double weight_sum = 0.0;
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i] >= prototype.num_fields()) {
        return Status::InvalidArgument("rule references missing field");
      }
      if (weights_[i] <= 0.0) {
        return Status::InvalidArgument("rule weights must be positive");
      }
      weight_sum += weights_[i];
    }
    if (type_ == Type::kWeightedAverage &&
        std::abs(weight_sum - 1.0) > 1e-9) {
      return Status::InvalidArgument("weighted-average weights must sum to 1");
    }
    return Status::Ok();
  }
  for (const MatchRule& child : children_) {
    Status status = child.Validate(prototype);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

std::string MatchRule::DebugString() const {
  std::ostringstream out;
  switch (type_) {
    case Type::kLeaf:
      out << "Leaf(" << fields_[0] << ")<=" << threshold_;
      break;
    case Type::kWeightedAverage: {
      out << "WeightedAvg({";
      for (size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) out << ",";
        out << fields_[i];
      }
      out << "},{";
      for (size_t i = 0; i < weights_.size(); ++i) {
        if (i > 0) out << ",";
        out << weights_[i];
      }
      out << "})<=" << threshold_;
      break;
    }
    case Type::kAnd:
    case Type::kOr: {
      out << (type_ == Type::kAnd ? "And(" : "Or(");
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out << ", ";
        out << children_[i].DebugString();
      }
      out << ")";
      break;
    }
  }
  return out.str();
}

}  // namespace adalsh
