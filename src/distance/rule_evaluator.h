#ifndef ADALSH_DISTANCE_RULE_EVALUATOR_H_
#define ADALSH_DISTANCE_RULE_EVALUATOR_H_

#include <cstddef>
#include <vector>

#include "distance/feature_cache.h"
#include "distance/rule.h"
#include "record/dataset.h"

namespace adalsh {

/// The hot-path form of MatchRule::Matches: the rule tree is compiled once
/// against a FeatureCache, and per-pair evaluation runs on cached norms and
/// hoisted payload pointers with all per-pair trig and record/field lookups
/// eliminated. Decisions agree with MatchRule::Matches on every pair (the
/// acos of the cosine leaf is folded into the threshold, which is exact
/// because acos is monotone).
///
/// Per-node kernels:
///   * Leaf(dense):      CosineWithinBound with a precompiled cosine bound —
///                       one dot product, one multiply, one compare.
///   * Leaf(tokens):     JaccardSimilarityAtLeast with the precompiled
///                       min-similarity (the existing threshold-aware merge).
///   * WeightedAverage:  running-bound early exit — remaining field distances
///                       are >= 0, so the moment the accumulated weighted sum
///                       exceeds the threshold the best case cannot cross it
///                       and the remaining fields are abandoned.
///   * And / Or:         short-circuit over children, as in MatchRule.
///
/// Thread-safety: Matches is const and touches only immutable compiled state,
/// so one evaluator may serve any number of concurrent callers.
class RuleEvaluator {
 public:
  /// Compiles `rule` against `cache`. Both must outlive the evaluator; the
  /// rule must validate against the cache's dataset schema.
  RuleEvaluator(const MatchRule& rule, const FeatureCache& cache);

  RuleEvaluator(const RuleEvaluator&) = delete;
  RuleEvaluator& operator=(const RuleEvaluator&) = delete;

  /// Same decision as rule.Matches(dataset.record(a), dataset.record(b)).
  bool Matches(RecordId a, RecordId b) const;

 private:
  struct LeafField {
    FieldId field = 0;
    double weight = 1.0;
    bool dense = false;
  };

  struct Node {
    MatchRule::Type type = MatchRule::Type::kLeaf;
    double threshold = 0.0;
    double cos_bound = 1.0;  // kLeaf over a dense field
    double min_sim = 0.0;    // kLeaf over a token field
    std::vector<LeafField> fields;  // leaf-like nodes
    std::vector<size_t> children;   // kAnd / kOr
  };

  size_t Compile(const MatchRule& rule);
  bool MatchesNode(size_t node, RecordId a, RecordId b) const;

  const FeatureCache* cache_;
  std::vector<Node> nodes_;  // nodes_[0] is the root
};

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_RULE_EVALUATOR_H_
