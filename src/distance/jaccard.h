#ifndef ADALSH_DISTANCE_JACCARD_H_
#define ADALSH_DISTANCE_JACCARD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace adalsh {

/// Jaccard similarity |A ∩ B| / |A ∪ B| of two sorted, deduplicated token
/// vectors (as produced by Field::TokenSet). Two empty sets are defined to
/// have similarity 1.
double JaccardSimilarity(const std::vector<uint64_t>& a,
                         const std::vector<uint64_t>& b);

/// Jaccard distance 1 - similarity, the distance under which MinHash has
/// collision probability p(x) = 1 - x.
double JaccardDistance(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b);

/// Exactly equivalent to JaccardSimilarity(a, b) >= min_sim, but abandons the
/// merge as soon as the remaining elements cannot reach the bound anymore:
/// the dominant cost of the pairwise computation function P is evaluating
/// far-apart pairs, and those are rejected after a fraction of the merge.
/// Two cheap prefilters run first: the size-ratio bound
/// |A ∩ B| / |A ∪ B| <= min(|A|,|B|) / max(|A|,|B|), and empty-set handling.
bool JaccardSimilarityAtLeast(const std::vector<uint64_t>& a,
                              const std::vector<uint64_t>& b, double min_sim);

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_JACCARD_H_
