#ifndef ADALSH_DISTANCE_FEATURE_CACHE_H_
#define ADALSH_DISTANCE_FEATURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "record/dataset.h"
#include "util/simd.h"

namespace adalsh {

/// Per-dataset cache of everything the pairwise kernels would otherwise
/// recompute or re-resolve per pair (the dominant waste of the seed P loop):
///
///   * one L2 norm per dense field per record, computed once — per-pair
///     cosine collapses to a single dot product (CosineDistanceWithNorms /
///     CosineWithinBound);
///   * dense payloads copied into a structure-of-arrays arena: one
///     64-byte-aligned buffer per field, rows padded to the SIMD stride
///     (util/simd.h) and zero-filled, so the vector dot kernels stream
///     cache-line-aligned rows with no Dataset -> Record -> Field
///     indirection per pair (docs/simd.md, "SoA layout");
///   * direct token-payload pointers per field per record for the merge
///     kernels, which stay pointer-based (token sets are variable-length).
///
/// Building the cache also validates the dataset's schema once: every record
/// must have the same field count, field kinds, and dense dimensionalities as
/// record 0. That single validation is what lets the per-pair
/// ADALSH_CHECK_EQ in CosineDistance drop to a debug-only ADALSH_DCHECK.
///
/// Dense rows are *copies* (the price of alignment and contiguity — for the
/// paper's feature sizes the arena is a few MB per million records per
/// field), so they survive Dataset growth untouched; token pointers still
/// point into the Dataset's records, so the Dataset must outlive the cache
/// and not grow while it is alive — unless the owner calls GrowTo after each
/// append, which re-resolves every token pointer.
class FeatureCache {
 public:
  explicit FeatureCache(const Dataset& dataset);

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// Re-syncs the cache with a dataset that grew since construction (must be
  /// the same dataset object): validates the appended records against the
  /// schema, copies their dense rows into the arena, computes their norms,
  /// and re-resolves ALL token pointers — appending to the dataset's record
  /// vector may have moved the Record objects, which invalidates token
  /// pointers (dense rows live in the cache's own arena and survive). Cached
  /// norms and rows of existing records are kept (records are immutable).
  /// Call from the ingesting thread, outside any concurrent pairwise
  /// evaluation.
  void GrowTo(const Dataset& dataset);

  size_t num_fields() const { return fields_.size(); }
  size_t num_records() const { return num_records_; }

  /// Field kind, uniform across records (validated at build).
  bool is_dense(FieldId f) const { return fields_[f].dense; }

  /// Dense dimensionality, uniform across records (validated at build).
  size_t dim(FieldId f) const { return fields_[f].dim; }

  /// Dense payload of record r's field f: a 64-byte-aligned row of dim(f)
  /// valid floats (followed by zero padding up to the SoA stride).
  const float* dense(RecordId r, FieldId f) const {
    const FieldCache& field = fields_[f];
    return field.values.data() + r * field.stride;
  }

  /// Cached L2 norm of record r's dense field f.
  double norm(RecordId r, FieldId f) const { return fields_[f].norms[r]; }

  /// Sorted, deduplicated token payload of record r's field f.
  const std::vector<uint64_t>& tokens(RecordId r, FieldId f) const {
    return *fields_[f].token_ptrs[r];
  }

 private:
  struct FieldCache {
    bool dense = false;
    size_t dim = 0;     // dense fields only: true dimensionality
    size_t stride = 0;  // dense fields only: padded row length (floats)
    AlignedFloatBuffer values;   // dense fields only: num_records * stride
    std::vector<double> norms;   // dense fields only
    std::vector<const std::vector<uint64_t>*> token_ptrs;  // token fields
  };

  size_t num_records_;
  std::vector<FieldCache> fields_;
};

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_FEATURE_CACHE_H_
