#ifndef ADALSH_DISTANCE_FEATURE_CACHE_H_
#define ADALSH_DISTANCE_FEATURE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "record/dataset.h"

namespace adalsh {

/// Per-dataset cache of everything the pairwise kernels would otherwise
/// recompute or re-resolve per pair (the dominant waste of the seed P loop):
///
///   * one L2 norm per dense field per record, computed once — per-pair
///     cosine collapses to a single dot product (CosineDistanceWithNorms /
///     CosineWithinBound);
///   * direct payload pointers per field per record, so the hot loops never
///     walk Dataset -> Record -> Field indirections per pair.
///
/// Building the cache also validates the dataset's schema once: every record
/// must have the same field count, field kinds, and dense dimensionalities as
/// record 0. That single validation is what lets the per-pair
/// ADALSH_CHECK_EQ in CosineDistance drop to a debug-only ADALSH_DCHECK.
///
/// The cache stores pointers into the Dataset's records; the Dataset must
/// outlive it and not grow while it is alive (Dataset records are immutable
/// once added, so any fully-built dataset qualifies) — unless the owner calls
/// GrowTo after each append, which re-resolves every pointer.
class FeatureCache {
 public:
  explicit FeatureCache(const Dataset& dataset);

  FeatureCache(const FeatureCache&) = delete;
  FeatureCache& operator=(const FeatureCache&) = delete;

  /// Re-syncs the cache with a dataset that grew since construction (must be
  /// the same dataset object): validates the appended records against the
  /// schema, computes their norms, and re-resolves ALL payload pointers —
  /// appending to the dataset's record vector may have moved the Record
  /// objects, which invalidates token pointers (the float payloads survive
  /// moves, but re-resolving everything keeps the invariant trivial). Cached
  /// norms of existing records are kept (records are immutable). Call from
  /// the ingesting thread, outside any concurrent pairwise evaluation.
  void GrowTo(const Dataset& dataset);

  size_t num_fields() const { return fields_.size(); }
  size_t num_records() const { return num_records_; }

  /// Field kind, uniform across records (validated at build).
  bool is_dense(FieldId f) const { return fields_[f].dense; }

  /// Dense dimensionality, uniform across records (validated at build).
  size_t dim(FieldId f) const { return fields_[f].dim; }

  /// Dense payload of record r's field f.
  const float* dense(RecordId r, FieldId f) const {
    return fields_[f].dense_ptrs[r];
  }

  /// Cached L2 norm of record r's dense field f.
  double norm(RecordId r, FieldId f) const { return fields_[f].norms[r]; }

  /// Sorted, deduplicated token payload of record r's field f.
  const std::vector<uint64_t>& tokens(RecordId r, FieldId f) const {
    return *fields_[f].token_ptrs[r];
  }

 private:
  struct FieldCache {
    bool dense = false;
    size_t dim = 0;                                   // dense fields only
    std::vector<const float*> dense_ptrs;             // dense fields only
    std::vector<double> norms;                        // dense fields only
    std::vector<const std::vector<uint64_t>*> token_ptrs;  // token fields
  };

  size_t num_records_;
  std::vector<FieldCache> fields_;
};

}  // namespace adalsh

#endif  // ADALSH_DISTANCE_FEATURE_CACHE_H_
