#ifndef ADALSH_OBS_OBSERVER_H_
#define ADALSH_OBS_OBSERVER_H_

#include <cstddef>
#include <cstdint>

#include "obs/events.h"
#include "util/run_controller.h"

namespace adalsh {

class MetricsRegistry;
class TraceRecorder;

/// Notification payloads. All fields are exact counts/times for the reported
/// event, not cumulative totals.

struct RoundStartInfo {
  size_t round = 0;         // 1-based
  size_t cluster_size = 0;  // records the round will treat
  /// Producer of the cluster being refined: sequence index of the function
  /// that built it (0-based), or -1 for the initial whole-dataset round.
  int producer = -1;
};

struct FunctionApplyInfo {
  int function_index = 0;   // sequence index of the applied H_i
  size_t records = 0;       // records hashed
  uint64_t hashes_computed = 0;
  size_t clusters_out = 0;  // trees the invocation produced
  double seconds = 0.0;     // wall time of the invocation
};

struct PairwiseBatchInfo {
  size_t records = 0;       // records swept by P
  uint64_t similarities = 0;  // rule evaluations actually performed
  size_t clusters_out = 0;  // connected components found
  double seconds = 0.0;     // wall time of the sweep
};

struct TerminationInfo {
  TerminationReason reason = TerminationReason::kCompleted;
  size_t rounds = 0;           // rounds recorded (incl. an interrupted one)
  size_t clusters_returned = 0;
  uint64_t hashes_computed = 0;
  uint64_t pairwise_similarities = 0;
  double elapsed_seconds = 0.0;
};

/// Pluggable pipeline observer. AdaptiveLsh, StreamingAdaptiveLsh,
/// LshBlocking, PairsBaseline, PairwiseComputer, the TransitiveHasher and
/// the cost-model calibration all report through this interface when one is
/// attached (see Instrumentation); with none attached the hooks cost a
/// single pointer test.
///
/// Threading contract: every callback fires on the thread driving the
/// filtering run (never from pool workers), strictly ordered:
/// OnRoundStart precedes the OnFunctionApplied/OnPairwiseBatch of its round,
/// which precede its OnRoundEnd. Implementations therefore need no locking
/// of their own unless they share state across runs.
class Observer {
 public:
  virtual ~Observer() = default;

  /// A refinement round picked a cluster and is about to treat it.
  virtual void OnRoundStart(const RoundStartInfo&) {}

  /// The round finished; `record` is its final accounting (the same object
  /// appended to FilterStats::round_records).
  virtual void OnRoundEnd(const RoundRecord&) {}

  /// A transitive hashing function was applied to a record set.
  virtual void OnFunctionApplied(const FunctionApplyInfo&) {}

  /// The exact pairwise function P swept a record set.
  virtual void OnPairwiseBatch(const PairwiseBatchInfo&) {}

  /// The run ended — the last callback of every run, fired whether it
  /// completed or degraded (deadline/cancel/budget; docs/robustness.md).
  virtual void OnTermination(const TerminationInfo&) {}
};

/// Bundle of observability sinks threaded through the pipeline. All pointers
/// are borrowed and may independently be null; a default-constructed
/// Instrumentation disables everything at the cost of one pointer test per
/// (coarse) event. Copy freely — it is three pointers.
struct Instrumentation {
  MetricsRegistry* metrics = nullptr;
  TraceRecorder* trace = nullptr;
  Observer* observer = nullptr;

  bool enabled() const {
    return metrics != nullptr || trace != nullptr || observer != nullptr;
  }
};

}  // namespace adalsh

#endif  // ADALSH_OBS_OBSERVER_H_
