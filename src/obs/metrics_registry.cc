#include "obs/metrics_registry.h"

#include <atomic>
#include <utility>

namespace adalsh {
namespace {

/// Process-unique registry ids; never reused, so thread-local shard caches
/// keyed by id can never confuse a destroyed registry with a live one.
std::atomic<uint64_t> g_next_registry_id{1};

/// Per-thread cache of (registry id -> shard owned by that registry).
/// Registries are few and long-lived relative to updates, so a flat vector
/// scan beats a hash map here.
thread_local std::vector<std::pair<uint64_t, void*>> t_shard_cache;

}  // namespace

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Shard* MetricsRegistry::LocalShard() const {
  for (const auto& [id, shard] : t_shard_cache) {
    if (id == id_) return static_cast<Shard*>(shard);
  }
  std::unique_lock<std::mutex> lock(mu_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  lock.unlock();
  t_shard_cache.emplace_back(id_, shard);
  return shard;
}

void MetricsRegistry::AddCounter(std::string_view name, uint64_t delta) {
  Shard* shard = LocalShard();
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->counters[std::string(name)] += delta;
}

void MetricsRegistry::SetGauge(std::string_view name, double value) {
  std::unique_lock<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

void MetricsRegistry::RecordValue(std::string_view name, double value) {
  Shard* shard = LocalShard();
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->distributions[std::string(name)].Add(value);
}

void MetricsRegistry::RecordLatency(std::string_view name, double seconds) {
  Shard* shard = LocalShard();
  std::unique_lock<std::mutex> lock(shard->mu);
  shard->histograms[std::string(name)].Add(seconds);
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  // Copy the shard pointer list under the central lock, then read each
  // shard under its own lock (shards keep their contents — snapshots are
  // cumulative); shards are never destroyed before the registry, so the
  // pointers stay valid.
  std::vector<Shard*> shards;
  {
    std::unique_lock<std::mutex> lock(mu_);
    shards.reserve(shards_.size());
    for (const auto& shard : shards_) shards.push_back(shard.get());
    snapshot.gauges = gauges_;
  }
  for (Shard* shard : shards) {
    std::unique_lock<std::mutex> lock(shard->mu);
    for (const auto& [name, value] : shard->counters) {
      snapshot.counters[name] += value;
    }
    for (const auto& [name, stats] : shard->distributions) {
      snapshot.distributions[name].Merge(stats);
    }
    for (const auto& [name, histogram] : shard->histograms) {
      snapshot.histograms[name].Merge(histogram);
    }
  }
  return snapshot;
}

}  // namespace adalsh
