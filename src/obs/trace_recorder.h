#ifndef ADALSH_OBS_TRACE_RECORDER_H_
#define ADALSH_OBS_TRACE_RECORDER_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_pool.h"

namespace adalsh {

/// Collects timestamped spans from a filtering run and exports them as
/// Chrome trace_event JSON, loadable in chrome://tracing or
/// https://ui.perfetto.dev. The span taxonomy (`round`, `hash_pass`,
/// `pairwise_sweep`, `merge`, `calibration`, `parallel_chunk`) is documented
/// in docs/observability.md.
///
/// Spans are stamped with the recording thread's lane (CurrentThreadLane()),
/// so work executed on pool workers renders as per-worker lanes, and with
/// both wall and thread-cpu duration, so a span's parallel efficiency /
/// scheduling delay is visible directly in the trace.
///
/// Thread-safety: AddSpan appends under a mutex. Spans are coarse (rounds,
/// stage passes, ParallelFor subranges — never per pair or per hash), so the
/// lock is uncontended in practice; hot loops stay untouched.
class TraceRecorder {
 public:
  /// One completed span. Times are seconds relative to the recorder's
  /// construction (the trace epoch).
  struct SpanRecord {
    std::string name;
    std::string category;
    /// Recorder-unique id (1, 2, ...) assigned when the RAII Span opens, so
    /// log lines (the slow-op watchdog) can reference a span before it is
    /// exported. 0 for spans built outside the RAII helper.
    uint64_t id = 0;
    double start_seconds = 0.0;
    double duration_seconds = 0.0;
    /// CLOCK_THREAD_CPUTIME_ID consumed by the recording thread inside the
    /// span; cpu/wall is the span's busy fraction.
    double cpu_seconds = 0.0;
    int lane = 0;
    /// Numeric annotations exported into the event's "args".
    std::vector<std::pair<std::string, double>> args;
  };

  /// `max_spans` == 0 records unboundedly (batch runs, tests). A positive
  /// cap turns the store into a ring: once full, each new span overwrites
  /// the oldest and dropped_spans() counts the overwritten ones — a
  /// long-lived serve session keeps the most recent window of activity at a
  /// bounded memory ceiling instead of growing without limit.
  explicit TraceRecorder(size_t max_spans = 0);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Seconds since the trace epoch.
  double NowSeconds() const;

  /// Converts a raw steady_clock point into epoch-relative seconds (used by
  /// the ParallelFor chunk adapter, whose timestamps are taken in util).
  double SecondsSince(std::chrono::steady_clock::time_point tp) const;

  void AddSpan(SpanRecord span);

  size_t num_spans() const;

  /// Spans overwritten by the ring (0 while under the cap or uncapped).
  uint64_t dropped_spans() const;

  /// Snapshot of the retained spans in recording order (oldest first, even
  /// after the ring has wrapped).
  std::vector<SpanRecord> Spans() const;

  /// The full trace as Chrome trace_event JSON ("X" complete events, one
  /// lane per recording thread, thread_name metadata per lane). Timestamps
  /// are microseconds as the format requires.
  std::string ToChromeTraceJson() const;

  /// RAII span: records wall + cpu time from construction to destruction on
  /// the calling thread. A null recorder makes every operation a no-op, so
  /// call sites need no branching.
  class Span {
   public:
    Span(TraceRecorder* recorder, const char* name, const char* category);
    ~Span();

    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;

    /// Attaches a numeric annotation (no-op without a recorder).
    void AddArg(const char* key, double value);

    /// The span's recorder-unique id (0 with a null recorder). Stable from
    /// construction, so it can be handed to logs while the span is open.
    uint64_t id() const { return record_.id; }

   private:
    TraceRecorder* recorder_;
    SpanRecord record_;
    double cpu_start_ = 0.0;
  };

 private:
  uint64_t NextSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  const size_t max_spans_;  // 0 = unbounded
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<uint64_t> next_span_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  size_t ring_next_ = 0;  // overwrite cursor once spans_ hit the cap
  uint64_t dropped_spans_ = 0;
};

/// Installs a process-global ParallelFor tracer that records every executed
/// subrange as a `parallel_chunk` span of `recorder`, giving parallel stages
/// per-worker lanes in the exported trace. Restores the previously installed
/// tracer on destruction. A null recorder installs nothing.
class ScopedParallelForTrace : public ParallelForTracer {
 public:
  explicit ScopedParallelForTrace(TraceRecorder* recorder);
  ~ScopedParallelForTrace() override;

  ScopedParallelForTrace(const ScopedParallelForTrace&) = delete;
  ScopedParallelForTrace& operator=(const ScopedParallelForTrace&) = delete;

  void OnChunk(const ParallelForChunk& chunk) override;

 private:
  TraceRecorder* recorder_;
  ParallelForTracer* previous_ = nullptr;
};

}  // namespace adalsh

#endif  // ADALSH_OBS_TRACE_RECORDER_H_
