#include "obs/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "util/check.h"

namespace adalsh {
namespace {

// Rounds to three significant digits by printing through %.2e and parsing
// back, so the ladder is bit-identical on every platform (no dependence on
// how libm pow() rounds the last ulp).
double RoundTo3SigDigits(double x) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2e", x);
  return std::strtod(buf, nullptr);
}

std::vector<double> BuildDefaultBoundaries() {
  // Five log-spaced buckets per decade from 1us to 1000s inclusive:
  // 10^(-6 + i/5) for i = 0..45.
  std::vector<double> boundaries;
  boundaries.reserve(46);
  for (int i = 0; i <= 45; ++i) {
    boundaries.push_back(RoundTo3SigDigits(std::pow(10.0, -6.0 + i / 5.0)));
  }
  return boundaries;
}

}  // namespace

const std::vector<double>& LatencyHistogram::DefaultBoundaries() {
  static const std::vector<double>* kBoundaries =
      new std::vector<double>(BuildDefaultBoundaries());
  return *kBoundaries;
}

LatencyHistogram::LatencyHistogram() : boundaries_(&DefaultBoundaries()) {
  counts_.assign(boundaries_->size() + 1, 0);
}

LatencyHistogram::LatencyHistogram(std::vector<double> boundaries)
    : boundaries_(nullptr), owned_boundaries_(std::move(boundaries)) {
  ADALSH_CHECK(!owned_boundaries_.empty()) << "histogram needs >= 1 boundary";
  for (size_t i = 1; i < owned_boundaries_.size(); ++i) {
    ADALSH_CHECK(owned_boundaries_[i - 1] < owned_boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
  boundaries_ = &owned_boundaries_;
  counts_.assign(owned_boundaries_.size() + 1, 0);
}

void LatencyHistogram::Add(double value) {
  const std::vector<double>& bounds = *boundaries_;
  // First bucket whose upper boundary is >= value (`le` semantics); values
  // beyond the last boundary fall through to the +Inf bucket at the end.
  const size_t bucket =
      std::lower_bound(bounds.begin(), bounds.end(), value) - bounds.begin();
  ++counts_[bucket];
  sum_ += value;
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  ADALSH_CHECK(SameBoundaries(other))
      << "Merge() across histograms with different boundary ladders";
  if (other.count_ == 0) return;
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double LatencyHistogram::Percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::min(100.0, std::max(0.0, p));
  // Nearest-rank with interpolation: target the k-th smallest sample where
  // k = ceil(p/100 * count), clamped to [1, count].
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(p / 100.0 * count_)));
  const std::vector<double>& bounds = *boundaries_;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const uint64_t before = cumulative;
    cumulative += counts_[i];
    if (cumulative < rank) continue;
    // The rank lands in bucket i: interpolate across the bucket's value
    // range by the rank's position inside the bucket, then clamp to the
    // observed extremes so a single-sample tail reports the true value.
    const double lo = (i == 0) ? std::min(min_, bounds[0]) : bounds[i - 1];
    const double hi = (i < bounds.size()) ? bounds[i] : max_;
    const double fraction =
        static_cast<double>(rank - before) / static_cast<double>(counts_[i]);
    const double value = lo + (hi - lo) * fraction;
    return std::min(max_, std::max(min_, value));
  }
  return max_;
}

}  // namespace adalsh
