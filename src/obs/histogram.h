#ifndef ADALSH_OBS_HISTOGRAM_H_
#define ADALSH_OBS_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace adalsh {

/// Exact fixed-boundary histogram for latency-style distributions
/// (docs/observability.md). Buckets are defined by an ascending list of
/// upper boundaries with Prometheus `le` semantics: a value lands in the
/// first bucket whose boundary is >= the value; values above the last
/// boundary land in the implicit +Inf overflow bucket, so there are
/// `boundaries().size() + 1` buckets in total.
///
/// Everything the histogram reports is exact and deterministic: bucket
/// counts are integral, Merge() sums them bucket-for-bucket (two histograms
/// built from the same multiset of samples are identical regardless of how
/// the samples were split across threads or shards), and Percentile() is a
/// pure function of the merged counts — tail quantiles (p99, p99.9) are
/// resolved to bucket resolution with linear interpolation inside the
/// bucket, clamped to the observed min/max. This is what the RunningStats
/// distributions cannot do: mean/stddev say nothing about the tail, and the
/// tail is the per-mutation SLO signal the resident engine serves under.
///
/// Not thread-safe; MetricsRegistry shards instances per thread exactly like
/// its counters and merges them on Snapshot().
class LatencyHistogram {
 public:
  /// The default boundary ladder used by every registry histogram:
  /// log-spaced, five buckets per decade, covering 1 microsecond to 1000
  /// seconds (46 boundaries, 47 buckets). Each boundary is rounded to three
  /// significant digits so exported values are stable, human-readable
  /// literals (1e-06, 1.58e-06, 2.51e-06, ..., 1000).
  static const std::vector<double>& DefaultBoundaries();

  /// Default-boundary histogram (the registry's configuration).
  LatencyHistogram();

  /// Custom boundaries: must be non-empty and strictly increasing.
  explicit LatencyHistogram(std::vector<double> boundaries);

  void Add(double value);

  /// Folds `other` in bucket-for-bucket. Both histograms must share the
  /// identical boundary ladder (CHECK).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  const std::vector<double>& boundaries() const { return *boundaries_; }
  /// Per-bucket (non-cumulative) counts; size() == boundaries().size() + 1,
  /// the last entry being the +Inf overflow bucket.
  const std::vector<uint64_t>& bucket_counts() const { return counts_; }

  /// The p-th percentile (0..100) of the recorded values, exact to bucket
  /// resolution: the rank's bucket is found by exact cumulative counts, and
  /// the value is linearly interpolated across that bucket's range, clamped
  /// to the observed min/max. 0 when empty. Deterministic: depends only on
  /// the merged bucket counts and min/max, never on insertion order.
  double Percentile(double p) const;

  bool SameBoundaries(const LatencyHistogram& other) const {
    return boundaries_ == other.boundaries_ ||
           *boundaries_ == *other.boundaries_;
  }

 private:
  /// Boundary ladders are shared immutable vectors (all default-boundary
  /// histograms point at one static ladder), so copying a histogram across
  /// the registry snapshot path never reallocates them.
  const std::vector<double>* boundaries_;
  std::vector<double> owned_boundaries_;  // only for custom ladders
  std::vector<uint64_t> counts_;
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace adalsh

#endif  // ADALSH_OBS_HISTOGRAM_H_
