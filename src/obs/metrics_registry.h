#ifndef ADALSH_OBS_METRICS_REGISTRY_H_
#define ADALSH_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"
#include "util/stats.h"

namespace adalsh {

/// Point-in-time aggregation of a MetricsRegistry. Maps are ordered so
/// exports and golden tests are deterministic.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, double> gauges;
  /// Value distributions (RunningStats merged across shards).
  std::map<std::string, RunningStats> distributions;
  /// Fixed-boundary latency histograms (exact bucket counts merged across
  /// shards; see LatencyHistogram for the determinism contract).
  std::map<std::string, LatencyHistogram> histograms;
};

/// Registry of named counters, gauges and value distributions shared by the
/// filtering pipeline's instrumentation (docs/observability.md lists the
/// metric taxonomy).
///
/// Thread-safety: updates go to a per-thread shard — each shard is written by
/// exactly one thread and carries its own mutex, locked uncontended on the
/// hot path and only ever fought over by Snapshot() — so concurrent updates
/// from pool workers never share cache lines or spin on a central lock, and
/// the whole scheme is TSan-clean by construction. Snapshot() locks each
/// shard in turn and sums, so counts are exact: every update that
/// happened-before the snapshot is included.
///
/// Gauges are last-write-wins and rare (configuration values, end-of-run
/// readings); they live behind the central mutex instead of sharding, which
/// would have no meaningful "last" across shards.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the named counter (creating it at zero).
  void AddCounter(std::string_view name, uint64_t delta = 1);

  /// Sets the named gauge to `value` (last write wins).
  void SetGauge(std::string_view name, double value);

  /// Folds `value` into the named distribution (RunningStats: count, mean,
  /// stddev, min, max).
  void RecordValue(std::string_view name, double value);

  /// Folds `seconds` into the named fixed-boundary latency histogram
  /// (LatencyHistogram with the default log-spaced ladder). Exact counts:
  /// the merged Snapshot() histogram's count equals the number of
  /// RecordLatency calls that happened-before the snapshot, regardless of
  /// how those calls were spread across threads.
  void RecordLatency(std::string_view name, double seconds);

  /// Aggregates all shards. Safe to call concurrently with updates; the
  /// result includes every update that completed before the call.
  MetricsSnapshot Snapshot() const;

 private:
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, uint64_t> counters;
    std::unordered_map<std::string, RunningStats> distributions;
    std::unordered_map<std::string, LatencyHistogram> histograms;
  };

  /// The calling thread's shard, created on first use and cached in a
  /// thread_local keyed by the registry's process-unique id (ids are never
  /// reused, so a stale cache entry for a destroyed registry can never be
  /// matched by a live one).
  Shard* LocalShard() const;

  const uint64_t id_;
  mutable std::mutex mu_;  // guards shards_ growth and gauges_
  mutable std::vector<std::unique_ptr<Shard>> shards_;
  std::map<std::string, double> gauges_;
};

}  // namespace adalsh

#endif  // ADALSH_OBS_METRICS_REGISTRY_H_
