#include "obs/run_report.h"

#include "core/filter_output.h"

namespace adalsh {

void AppendMetricsSnapshot(const MetricsSnapshot& snapshot, JsonWriter* json) {
  json->BeginObject().Key("counters").BeginObject();
  for (const auto& [name, value] : snapshot.counters) {
    json->Key(name).Uint(value);
  }
  json->EndObject().Key("gauges").BeginObject();
  for (const auto& [name, value] : snapshot.gauges) {
    json->Key(name).Double(value);
  }
  json->EndObject().Key("distributions").BeginObject();
  for (const auto& [name, stats] : snapshot.distributions) {
    json->Key(name)
        .BeginObject()
        .Key("count")
        .Uint(stats.count())
        .Key("mean")
        .Double(stats.mean())
        .Key("stddev")
        .Double(stats.stddev())
        .Key("min")
        .Double(stats.min())
        .Key("max")
        .Double(stats.max())
        .EndObject();
  }
  json->EndObject().Key("histograms").BeginObject();
  for (const auto& [name, histogram] : snapshot.histograms) {
    json->Key(name);
    AppendHistogram(histogram, json);
  }
  json->EndObject().EndObject();
}

void AppendHistogram(const LatencyHistogram& histogram, JsonWriter* json) {
  json->BeginObject()
      .Key("count")
      .Uint(histogram.count())
      .Key("sum")
      .Double(histogram.sum())
      .Key("min")
      .Double(histogram.min())
      .Key("max")
      .Double(histogram.max())
      .Key("p50")
      .Double(histogram.Percentile(50))
      .Key("p90")
      .Double(histogram.Percentile(90))
      .Key("p99")
      .Double(histogram.Percentile(99))
      .Key("p99_9")
      .Double(histogram.Percentile(99.9));
  // Exact per-bucket counts, sparse: only non-empty buckets are listed. The
  // final +Inf overflow bucket (no finite upper bound) is reported
  // separately so every "le" is a number.
  const std::vector<double>& bounds = histogram.boundaries();
  const std::vector<uint64_t>& counts = histogram.bucket_counts();
  json->Key("buckets").BeginArray();
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (counts[i] == 0) continue;
    json->BeginObject()
        .Key("le")
        .Double(bounds[i])
        .Key("count")
        .Uint(counts[i])
        .EndObject();
  }
  json->EndArray().Key("overflow").Uint(counts.back()).EndObject();
}

void AppendFilterStats(const FilterStats& stats, JsonWriter* out) {
  JsonWriter& json = *out;
  json.Key("totals")
      .BeginObject()
      .Key("filtering_seconds")
      .Double(stats.filtering_seconds)
      .Key("rounds")
      .Uint(stats.rounds)
      .Key("pairwise_similarities")
      .Uint(stats.pairwise_similarities)
      .Key("hashes_computed")
      .Uint(stats.hashes_computed)
      .Key("records_finished_by_pairwise")
      .Uint(stats.records_finished_by_pairwise)
      .Key("modeled_cost")
      .Double(stats.modeled_cost)
      .EndObject();

  json.Key("termination_reason")
      .String(TerminationReasonName(stats.termination_reason));

  json.Key("records_last_hashed_at").BeginArray();
  for (size_t n : stats.records_last_hashed_at) json.Uint(n);
  json.EndArray();

  json.Key("cluster_verification").BeginArray();
  for (int level : stats.cluster_verification) json.Int(level);
  json.EndArray();

  json.Key("rounds_detail").BeginArray();
  for (const RoundRecord& record : stats.round_records) {
    json.BeginObject()
        .Key("round")
        .Uint(record.round)
        .Key("action")
        .String(record.action == RoundAction::kPairwise ? "pairwise" : "hash")
        .Key("function_index")
        .Int(record.function_index)
        .Key("cluster_size")
        .Uint(record.cluster_size)
        .Key("hashes_computed")
        .Uint(record.hashes_computed)
        .Key("pairwise_similarities")
        .Uint(record.pairwise_similarities)
        .Key("wall_seconds")
        .Double(record.wall_seconds)
        .Key("hash_seconds")
        .Double(record.hash_seconds)
        .Key("pairwise_seconds")
        .Double(record.pairwise_seconds)
        .Key("modeled_cost")
        .Double(record.modeled_cost)
        .Key("cost_delta")
        .Double(record.CostDelta())
        .Key("interrupted")
        .Bool(record.interrupted)
        .EndObject();
  }
  json.EndArray();
}

std::string WriteRunReportJson(const FilterStats& stats,
                               const RunReportOptions& options,
                               const MetricsSnapshot* metrics) {
  JsonWriter json;
  json.BeginObject()
      .Key("schema")
      .String("adalsh-run-report-v1")
      .Key("method")
      .String(options.method)
      .Key("dataset")
      .String(options.dataset)
      .Key("k")
      .Int(options.k)
      .Key("num_records")
      .Uint(options.num_records)
      .Key("threads")
      .Int(options.threads);

  AppendFilterStats(stats, &json);

  if (metrics != nullptr) {
    json.Key("metrics");
    AppendMetricsSnapshot(*metrics, &json);
  }
  return json.EndObject().TakeString();
}

}  // namespace adalsh
