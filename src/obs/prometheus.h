#ifndef ADALSH_OBS_PROMETHEUS_H_
#define ADALSH_OBS_PROMETHEUS_H_

#include <string>

namespace adalsh {

struct MetricsSnapshot;

/// Renders a MetricsSnapshot in the Prometheus text exposition format
/// (docs/observability.md). Every metric name is prefixed `adalsh_` and
/// sanitized to [a-zA-Z0-9_:]. Counters become `counter` families,
/// gauges `gauge`, RunningStats distributions a summary-style group of
/// `<name>_count/_sum/_min/_max` gauges, and LatencyHistograms full
/// `histogram` families with cumulative `_bucket{le="..."}` series, an
/// explicit `le="+Inf"` bucket equal to `_count`, `_sum` and `_count`.
/// Output is deterministic: families appear in sorted name order.
std::string WritePrometheusText(const MetricsSnapshot& snapshot);

}  // namespace adalsh

#endif  // ADALSH_OBS_PROMETHEUS_H_
