#ifndef ADALSH_OBS_EVENTS_H_
#define ADALSH_OBS_EVENTS_H_

#include <cstddef>
#include <cstdint>

namespace adalsh {

/// What a round of Algorithm 1's loop (or a non-adaptive method's stage) did
/// to the cluster it treated.
enum class RoundAction {
  kHash,      // applied the next transitive hashing function H_i
  kPairwise,  // applied the exact pairwise function P
};

/// Per-round accounting record kept in FilterStats::round_records — one per
/// FilterStats::rounds, in execution order. Counters are exact deltas of the
/// same sources as the run totals, so summing a field over all records
/// reproduces the corresponding total (asserted in tests; see the invariants
/// in core/filter_output.h).
struct RoundRecord {
  /// 1-based round index (matches its position in round_records).
  size_t round = 0;

  RoundAction action = RoundAction::kHash;

  /// Sequence index of the applied function for kHash; -1 for kPairwise.
  int function_index = -1;

  /// Records in the cluster this round treated.
  size_t cluster_size = 0;

  /// Raw LSH hash evaluations performed by this round.
  uint64_t hashes_computed = 0;

  /// Rule evaluations performed by this round (P sweeps and, for the
  /// sampled-purity jump model, the in-cluster sampling probes).
  uint64_t pairwise_similarities = 0;

  /// Wall-clock seconds of the whole round, and of its hashing / pairwise
  /// stage (the remainder is selection + merge bookkeeping).
  double wall_seconds = 0.0;
  double hash_seconds = 0.0;
  double pairwise_seconds = 0.0;

  /// What the method's cost model predicted this round would cost, in the
  /// model's unit (seconds, since unit costs are calibrated in seconds).
  /// 0 when the method ran without a model (LSH-X, Pairs).
  double modeled_cost = 0.0;

  /// True when a RunController stopped the round mid-sweep (deadline,
  /// cancellation or budget exhaustion). An interrupted round contributed
  /// nothing to the output clustering — the treated cluster stays at its
  /// previous verification level — but its counter deltas are real work and
  /// are recorded here so the FilterStats sum invariants keep holding.
  bool interrupted = false;

  /// Measured minus modeled cost — the per-round diagnostic of how far
  /// Definition 3's accounting is from wall-clock reality. Meaningful only
  /// when modeled_cost is nonzero.
  double CostDelta() const { return wall_seconds - modeled_cost; }
};

}  // namespace adalsh

#endif  // ADALSH_OBS_EVENTS_H_
