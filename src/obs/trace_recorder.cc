#include "obs/trace_recorder.h"

#include <algorithm>
#include <set>

#include "obs/json_writer.h"
#include "util/timer.h"

namespace adalsh {

TraceRecorder::TraceRecorder(size_t max_spans)
    : max_spans_(max_spans), epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::NowSeconds() const {
  return SecondsSince(std::chrono::steady_clock::now());
}

double TraceRecorder::SecondsSince(
    std::chrono::steady_clock::time_point tp) const {
  return std::chrono::duration<double>(tp - epoch_).count();
}

void TraceRecorder::AddSpan(SpanRecord span) {
  std::unique_lock<std::mutex> lock(mu_);
  if (max_spans_ == 0 || spans_.size() < max_spans_) {
    spans_.push_back(std::move(span));
    return;
  }
  spans_[ring_next_] = std::move(span);
  ring_next_ = (ring_next_ + 1) % max_spans_;
  ++dropped_spans_;
}

size_t TraceRecorder::num_spans() const {
  std::unique_lock<std::mutex> lock(mu_);
  return spans_.size();
}

uint64_t TraceRecorder::dropped_spans() const {
  std::unique_lock<std::mutex> lock(mu_);
  return dropped_spans_;
}

std::vector<TraceRecorder::SpanRecord> TraceRecorder::Spans() const {
  std::unique_lock<std::mutex> lock(mu_);
  std::vector<SpanRecord> spans;
  spans.reserve(spans_.size());
  // Unwrap the ring so callers always see recording order: the slot at
  // ring_next_ holds the oldest retained span once the buffer has wrapped.
  for (size_t i = 0; i < spans_.size(); ++i) {
    spans.push_back(spans_[(ring_next_ + i) % spans_.size()]);
  }
  return spans;
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<SpanRecord> spans = Spans();
  // Stable export order: by start time, then lane. The format does not
  // require it, but sorted output makes traces diffable and the nesting
  // tests straightforward.
  std::stable_sort(spans.begin(), spans.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_seconds != b.start_seconds) {
                       return a.start_seconds < b.start_seconds;
                     }
                     return a.lane < b.lane;
                   });
  std::set<int> lanes;
  for (const SpanRecord& span : spans) lanes.insert(span.lane);

  JsonWriter json;
  json.BeginObject().Key("displayTimeUnit").String("ms");
  json.Key("traceEvents").BeginArray();
  for (int lane : lanes) {
    json.BeginObject()
        .Key("name")
        .String("thread_name")
        .Key("ph")
        .String("M")
        .Key("pid")
        .Int(1)
        .Key("tid")
        .Int(lane)
        .Key("args")
        .BeginObject()
        .Key("name")
        .String(lane == 0 ? "main" : "worker-" + std::to_string(lane))
        .EndObject()
        .EndObject();
  }
  for (const SpanRecord& span : spans) {
    json.BeginObject()
        .Key("name")
        .String(span.name)
        .Key("cat")
        .String(span.category)
        .Key("ph")
        .String("X")
        .Key("pid")
        .Int(1)
        .Key("tid")
        .Int(span.lane)
        .Key("ts")
        .Double(span.start_seconds * 1e6)
        .Key("dur")
        .Double(span.duration_seconds * 1e6)
        .Key("args")
        .BeginObject()
        .Key("cpu_ms")
        .Double(span.cpu_seconds * 1e3);
    if (span.id != 0) {
      json.Key("span_id").Uint(span.id);
    }
    for (const auto& [key, value] : span.args) {
      json.Key(key).Double(value);
    }
    json.EndObject().EndObject();
  }
  json.EndArray().EndObject();
  return json.TakeString();
}

TraceRecorder::Span::Span(TraceRecorder* recorder, const char* name,
                          const char* category)
    : recorder_(recorder) {
  if (recorder_ == nullptr) return;
  record_.name = name;
  record_.category = category;
  record_.id = recorder_->NextSpanId();
  record_.lane = CurrentThreadLane();
  record_.start_seconds = recorder_->NowSeconds();
  cpu_start_ = Timer::ThreadCpuSeconds();
}

TraceRecorder::Span::~Span() {
  if (recorder_ == nullptr) return;
  record_.duration_seconds = recorder_->NowSeconds() - record_.start_seconds;
  record_.cpu_seconds = Timer::ThreadCpuSeconds() - cpu_start_;
  recorder_->AddSpan(std::move(record_));
}

void TraceRecorder::Span::AddArg(const char* key, double value) {
  if (recorder_ == nullptr) return;
  record_.args.emplace_back(key, value);
}

ScopedParallelForTrace::ScopedParallelForTrace(TraceRecorder* recorder)
    : recorder_(recorder) {
  if (recorder_ != nullptr) previous_ = SetParallelForTracer(this);
}

ScopedParallelForTrace::~ScopedParallelForTrace() {
  if (recorder_ != nullptr) SetParallelForTracer(previous_);
}

void ScopedParallelForTrace::OnChunk(const ParallelForChunk& chunk) {
  TraceRecorder::SpanRecord span;
  span.name = "parallel_chunk";
  span.category = "worker";
  span.lane = chunk.lane;
  span.start_seconds = recorder_->SecondsSince(chunk.start_time);
  span.duration_seconds = recorder_->SecondsSince(chunk.end_time) -
                          span.start_seconds;
  span.cpu_seconds = chunk.cpu_seconds;
  span.args.emplace_back("begin", static_cast<double>(chunk.begin));
  span.args.emplace_back("end", static_cast<double>(chunk.end));
  recorder_->AddSpan(std::move(span));
}

}  // namespace adalsh
