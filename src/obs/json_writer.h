#ifndef ADALSH_OBS_JSON_WRITER_H_
#define ADALSH_OBS_JSON_WRITER_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "util/check.h"

namespace adalsh {

/// Streaming JSON writer shared by the observability exporters (Chrome
/// traces, run reports) and the bench baselines (BENCH_*.json): comma
/// placement and nesting are tracked so call sites read like the document.
/// No dependencies, no DOM — every emitter writes a few thousand values at
/// most. Promoted from bench/bench_util.h when the obs layer grew its own
/// exporters.
///
/// Usage:
///   JsonWriter json;
///   json.BeginObject().Key("threads").Int(8).Key("runs").BeginArray();
///   json.Double(0.5).Double(0.25).EndArray().EndObject();
///   std::string doc = json.TakeString();
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return OpenScope('{'); }
  JsonWriter& EndObject() { return CloseScope('}'); }
  JsonWriter& BeginArray() { return OpenScope('['); }
  JsonWriter& EndArray() { return CloseScope(']'); }

  /// Emits `"name":`; the next call must produce the value.
  JsonWriter& Key(const std::string& name) {
    Separate();
    Escaped(name);
    out_ += ':';
    after_key_ = true;
    return *this;
  }

  JsonWriter& String(const std::string& value) {
    Separate();
    Escaped(value);
    return *this;
  }

  JsonWriter& Int(int64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& Uint(uint64_t value) {
    Separate();
    out_ += std::to_string(value);
    return *this;
  }

  JsonWriter& Bool(bool value) {
    Separate();
    out_ += value ? "true" : "false";
    return *this;
  }

  /// %.17g round-trips every double; non-finite values have no JSON
  /// representation and are emitted as null.
  JsonWriter& Double(double value) {
    Separate();
    if (std::isfinite(value)) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value);
      out_ += buffer;
    } else {
      out_ += "null";
    }
    return *this;
  }

  /// The finished document. All scopes must be closed.
  std::string TakeString() {
    ADALSH_CHECK(scopes_.empty()) << "unclosed JSON scope";
    out_ += '\n';
    return std::move(out_);
  }

 private:
  JsonWriter& OpenScope(char open) {
    Separate();
    out_ += open;
    scopes_.push_back(false);
    return *this;
  }

  JsonWriter& CloseScope(char close) {
    ADALSH_CHECK(!scopes_.empty()) << "unbalanced JSON scope";
    ADALSH_CHECK(!after_key_) << "JSON key without a value";
    scopes_.pop_back();
    out_ += close;
    return *this;
  }

  // Writes the separating comma for the second and later items of the
  // enclosing scope; a value directly after Key() never separates.
  void Separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (!scopes_.empty()) {
      if (scopes_.back()) out_ += ',';
      scopes_.back() = true;
    }
  }

  void Escaped(const std::string& text) {
    out_ += '"';
    for (char c : text) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
            out_ += buffer;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> scopes_;  // per open scope: "has at least one item"
  bool after_key_ = false;
};

}  // namespace adalsh

#endif  // ADALSH_OBS_JSON_WRITER_H_
