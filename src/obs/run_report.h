#ifndef ADALSH_OBS_RUN_REPORT_H_
#define ADALSH_OBS_RUN_REPORT_H_

#include <cstddef>
#include <string>

#include "obs/json_writer.h"
#include "obs/metrics_registry.h"

namespace adalsh {

struct FilterStats;  // core/filter_output.h (header-only accounting struct)

/// Run context stamped into the report header.
struct RunReportOptions {
  std::string method;   // "adalsh", "lsh", "pairs", "streaming", ...
  std::string dataset;  // dataset name/path (may be empty)
  int k = 0;
  size_t num_records = 0;
  int threads = 0;  // resolved worker-thread count (0 = global default)
};

/// Writes a MetricsSnapshot as a JSON object value ({"counters": {...},
/// "gauges": {...}, "distributions": {...}, "histograms": {...}}) into
/// `json`, which must be positioned where a value is expected. Shared by the
/// run report and the BENCH_*.json baselines.
void AppendMetricsSnapshot(const MetricsSnapshot& snapshot, JsonWriter* json);

/// Writes one LatencyHistogram as a JSON object value: exact count/sum/
/// min/max, p50/p90/p99/p99_9, the non-empty finite buckets as
/// {"le": upper, "count": n}, and the +Inf bucket as "overflow".
void AppendHistogram(const LatencyHistogram& histogram, JsonWriter* json);

/// Appends the FilterStats portion of a report — the "totals" object,
/// "termination_reason", "records_last_hashed_at", "cluster_verification"
/// and "rounds_detail" keys — into `json`, which must be inside an open
/// object. Shared by the run report and the engine report so the two schemas
/// describe a filtering pass with identical keys.
void AppendFilterStats(const FilterStats& stats, JsonWriter* json);

/// The compact machine-readable run report (schema "adalsh-run-report-v1",
/// documented in docs/observability.md): run context, FilterStats totals,
/// one entry per round with counters/stage-times/modeled-vs-measured cost,
/// and optionally a metrics snapshot. Per-round counters sum exactly to the
/// totals (the invariant documented in core/filter_output.h).
std::string WriteRunReportJson(const FilterStats& stats,
                               const RunReportOptions& options,
                               const MetricsSnapshot* metrics = nullptr);

}  // namespace adalsh

#endif  // ADALSH_OBS_RUN_REPORT_H_
