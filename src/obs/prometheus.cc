#include "obs/prometheus.h"

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "obs/metrics_registry.h"

namespace adalsh {
namespace {

std::string Sanitize(const std::string& name) {
  std::string out = "adalsh_";
  for (char c : name) {
    const bool ok = std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                    c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string FormatDouble(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendFamily(const std::string& name, const char* type,
                  std::string* out) {
  out->append("# TYPE ").append(name).append(" ").append(type).append("\n");
}

void AppendSample(const std::string& name, double value, std::string* out) {
  out->append(name).append(" ").append(FormatDouble(value)).append("\n");
}

void AppendSample(const std::string& name, uint64_t value, std::string* out) {
  out->append(name).append(" ").append(std::to_string(value)).append("\n");
}

}  // namespace

std::string WritePrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string family = Sanitize(name);
    AppendFamily(family, "counter", &out);
    AppendSample(family, value, &out);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string family = Sanitize(name);
    AppendFamily(family, "gauge", &out);
    AppendSample(family, value, &out);
  }
  // RunningStats carry no buckets, so they export as a flat gauge group
  // rather than a native summary (no quantile series to offer).
  for (const auto& [name, stats] : snapshot.distributions) {
    const std::string family = Sanitize(name);
    AppendFamily(family + "_count", "gauge", &out);
    AppendSample(family + "_count", stats.count(), &out);
    AppendFamily(family + "_sum", "gauge", &out);
    AppendSample(family + "_sum", stats.mean() * stats.count(), &out);
    AppendFamily(family + "_min", "gauge", &out);
    AppendSample(family + "_min", stats.min(), &out);
    AppendFamily(family + "_max", "gauge", &out);
    AppendSample(family + "_max", stats.max(), &out);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string family = Sanitize(name);
    AppendFamily(family, "histogram", &out);
    const std::vector<double>& bounds = histogram.boundaries();
    const std::vector<uint64_t>& counts = histogram.bucket_counts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < bounds.size(); ++i) {
      cumulative += counts[i];
      // Empty leading/inner buckets are still emitted: Prometheus scrapers
      // expect the full cumulative ladder, and the fixed ladder keeps the
      // series set stable across scrapes.
      out.append(family)
          .append("_bucket{le=\"")
          .append(FormatDouble(bounds[i]))
          .append("\"} ")
          .append(std::to_string(cumulative))
          .append("\n");
    }
    out.append(family)
        .append("_bucket{le=\"+Inf\"} ")
        .append(std::to_string(histogram.count()))
        .append("\n");
    AppendSample(family + "_sum", histogram.sum(), &out);
    AppendSample(family + "_count", histogram.count(), &out);
  }
  return out;
}

}  // namespace adalsh
