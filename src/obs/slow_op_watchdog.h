#ifndef ADALSH_OBS_SLOW_OP_WATCHDOG_H_
#define ADALSH_OBS_SLOW_OP_WATCHDOG_H_

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace adalsh {

/// Flags mutations/flushes that run anomalously slow relative to their own
/// history: each observed duration is compared against `factor` times the
/// running median of the previous `window` samples of the same op, and
/// outliers are logged (with the op's trace span id, so the line joins to
/// the --trace-out timeline) before being folded into the history. The
/// median is exact — computed by nth_element over the bounded sample ring —
/// not an estimate; with <= 256 samples per op that costs nothing next to
/// the mutation itself.
///
/// Not thread-safe: designed for the serve loop, where one thread drives
/// all mutations. docs/observability.md describes the knobs.
class SlowOpWatchdog {
 public:
  struct Options {
    /// An op is slow when duration > factor * running median. <= 0 disables
    /// the watchdog entirely (Observe never logs, never stores).
    double factor = 0.0;
    /// No verdicts until this many samples of the op exist — early calls
    /// only feed the history, so startup noise can't page.
    size_t min_samples = 16;
    /// Bounded per-op sample ring; the median tracks the recent regime
    /// rather than the whole session.
    size_t window = 256;
  };

  /// Logs to `log` (stderr in the CLI). `log` must outlive the watchdog.
  SlowOpWatchdog(const Options& options, std::ostream* log);

  /// Records one completed op. Returns true (and writes one log line) when
  /// the duration exceeded factor x the running median of prior samples.
  bool Observe(std::string_view op, double seconds, uint64_t span_id);

  uint64_t slow_ops() const { return slow_ops_; }

 private:
  struct History {
    std::vector<double> samples;  // ring of the last `window` durations
    size_t next = 0;              // ring write cursor
  };

  double MedianOf(const History& history) const;

  const Options options_;
  std::ostream* const log_;
  std::map<std::string, History, std::less<>> history_;
  uint64_t slow_ops_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_OBS_SLOW_OP_WATCHDOG_H_
