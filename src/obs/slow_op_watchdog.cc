#include "obs/slow_op_watchdog.h"

#include <algorithm>
#include <ostream>

namespace adalsh {

SlowOpWatchdog::SlowOpWatchdog(const Options& options, std::ostream* log)
    : options_(options), log_(log) {}

double SlowOpWatchdog::MedianOf(const History& history) const {
  std::vector<double> sorted = history.samples;
  const size_t mid = sorted.size() / 2;
  std::nth_element(sorted.begin(), sorted.begin() + mid, sorted.end());
  double median = sorted[mid];
  if (sorted.size() % 2 == 0) {
    // Lower-half max completes the even-count midpoint average.
    const double below =
        *std::max_element(sorted.begin(), sorted.begin() + mid);
    median = (median + below) / 2.0;
  }
  return median;
}

bool SlowOpWatchdog::Observe(std::string_view op, double seconds,
                             uint64_t span_id) {
  if (options_.factor <= 0.0) return false;
  auto it = history_.find(op);
  if (it == history_.end()) {
    it = history_.emplace(std::string(op), History{}).first;
  }
  History& history = it->second;

  bool slow = false;
  if (history.samples.size() >= options_.min_samples) {
    const double median = MedianOf(history);
    if (median > 0.0 && seconds > options_.factor * median) {
      slow = true;
      ++slow_ops_;
      (*log_) << "[adalsh watchdog] slow " << op << ": " << seconds * 1e3
              << " ms > " << options_.factor << "x median "
              << median * 1e3 << " ms (span_id=" << span_id << ")\n";
      log_->flush();
    }
  }

  // Slow samples still enter the history: a durable regime change (bigger
  // corpus, colder cache) should move the median rather than page forever.
  if (history.samples.size() < options_.window) {
    history.samples.push_back(seconds);
  } else {
    history.samples[history.next] = seconds;
    history.next = (history.next + 1) % options_.window;
  }
  return slow;
}

}  // namespace adalsh
