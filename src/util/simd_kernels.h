#ifndef ADALSH_UTIL_SIMD_KERNELS_H_
#define ADALSH_UTIL_SIMD_KERNELS_H_

#include <cstddef>
#include <cstdint>

#include "util/simd.h"

namespace adalsh {
namespace simd {

/// The two innermost kernels of the system — the dense dot product behind
/// every cosine rule evaluation and hyperplane hash, and the keyed-min mix
/// behind every MinHash — each with one implementation per SimdLevel.
///
/// Bit-identity contract (docs/simd.md): for any input, every level returns
/// the same bits. Integer kernels get this for free (the operations are
/// exact and the min-reduction is commutative); the floating dot product
/// gets it by fixing a *canonical lane order* that every path executes:
///
///   * kDotLanes = 16 independent double accumulators; element i feeds
///     accumulator i mod 16 (the main loop consumes 16 elements per step);
///   * each term is float->double convert (exact), double multiply, double
///     add — never FMA, which would round differently from the scalar path;
///   * the trailing size % 16 elements accumulate into lanes 0.. in order;
///   * the 16 lanes reduce in a fixed binary tree:
///     ((l0+l1)+(l2+l3)) + ... computed by ReduceDotLanes.
///
/// A 512-bit path runs lanes 0-7 / 8-15 as two vector accumulators, a
/// 256-bit path as four, a 128-bit path as eight, and the scalar path as
/// sixteen doubles — all the same arithmetic in the same order.

constexpr size_t kDotLanes = 16;

/// Dispatch target each kernel currently uses: the process pin when one is
/// set (SimdPin), otherwise this kernel's probed-best level, resolved once
/// on first use (see util/simd.h — wide registers are not uniformly a win,
/// and the two kernels can legitimately resolve to different levels).
SimdLevel ActiveDotLevel();
SimdLevel ActiveMinHashLevel();

/// sum_i double(a[i]) * double(b[i]) in the canonical lane order, on the
/// active dispatch level. Deterministic: the result depends only on the
/// operand values and `size`, never on the level, alignment, or caller.
double DotProductF32(const float* a, const float* b, size_t size);

/// Same kernel forced to one level (differential tests, benches). Aborts if
/// the level is unsupported on this machine.
double DotProductF32At(SimdLevel level, const float* a, const float* b,
                       size_t size);

/// Two dot products sharing one right-hand side in a single pass: the
/// hyperplane hot loop evaluates adjacent hash functions per sweep over the
/// SoA normals arena, loading (and converting) the record vector once for
/// both rows. Each row keeps its OWN canonical 16-lane state and fixed-tree
/// reduction, so out0/out1 are bit-identical to two DotProductF32 calls at
/// every level — batching is a bandwidth optimization, never an arithmetic
/// change.
void DotProductF32x2(const float* a0, const float* a1, const float* b,
                     size_t size, double* out0, double* out1);

/// Same two-row kernel forced to one level.
void DotProductF32x2At(SimdLevel level, const float* a0, const float* a1,
                       const float* b, size_t size, double* out0,
                       double* out1);

/// min over tokens of SplitMix64(token ^ seed) — the MinHash inner loop
/// (one hash function against one token set). Returns UINT64_MAX for the
/// empty set (the family's empty-set sentinel). Exact on every level.
uint64_t MinHashTokens(const uint64_t* tokens, size_t size, uint64_t seed);

/// Same kernel forced to one level.
uint64_t MinHashTokensAt(SimdLevel level, const uint64_t* tokens, size_t size,
                         uint64_t seed);

/// Tells the dispatcher how many worker threads the process is about to run
/// the kernels under. The throughput probe's verdict depends on the load the
/// vector units see — wide registers that win on an idle core can lose under
/// SMT contention — so when the worker count changes (ResidentEngine
/// construction honoring --threads), the probed-best levels are discarded
/// and re-resolved on next unpinned use under the new regime. A no-op when a
/// level is pinned (SimdPin), and never changes results: every level is
/// bit-identical, so re-probing only re-picks speed.
void NotifyWorkerCount(int workers);

}  // namespace simd
}  // namespace adalsh

#endif  // ADALSH_UTIL_SIMD_KERNELS_H_
