#include "util/flags.h"

#include <cstdlib>
#include <sstream>

#include "util/check.h"

namespace adalsh {
namespace {

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> parts;
  std::string current;
  std::istringstream in(s);
  while (std::getline(in, current, ',')) parts.push_back(current);
  return parts;
}

}  // namespace

Flags::Flags(int argc, char** argv) {
  if (argc > 0) program_name_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    ADALSH_CHECK(StartsWith(arg, "--"))
        << "unexpected positional argument '" << arg << "'";
    arg = arg.substr(2);
    size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

const std::string* Flags::Find(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return nullptr;
  used_[name] = true;
  return &it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) {
  const std::string* raw = Find(name);
  if (raw == nullptr) return default_value;
  char* end = nullptr;
  int64_t value = std::strtoll(raw->c_str(), &end, 10);
  ADALSH_CHECK(end != nullptr && *end == '\0' && !raw->empty())
      << "--" << name << "=" << *raw << " is not an integer";
  return value;
}

double Flags::GetDouble(const std::string& name, double default_value) {
  const std::string* raw = Find(name);
  if (raw == nullptr) return default_value;
  char* end = nullptr;
  double value = std::strtod(raw->c_str(), &end);
  ADALSH_CHECK(end != nullptr && *end == '\0' && !raw->empty())
      << "--" << name << "=" << *raw << " is not a number";
  return value;
}

bool Flags::GetBool(const std::string& name, bool default_value) {
  const std::string* raw = Find(name);
  if (raw == nullptr) return default_value;
  if (*raw == "true" || *raw == "1") return true;
  if (*raw == "false" || *raw == "0") return false;
  ADALSH_CHECK(false) << "--" << name << "=" << *raw << " is not a boolean";
  return default_value;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) {
  const std::string* raw = Find(name);
  return raw == nullptr ? default_value : *raw;
}

std::vector<int64_t> Flags::GetIntList(
    const std::string& name, const std::vector<int64_t>& default_value) {
  const std::string* raw = Find(name);
  if (raw == nullptr) return default_value;
  std::vector<int64_t> result;
  for (const std::string& part : SplitCommas(*raw)) {
    char* end = nullptr;
    result.push_back(std::strtoll(part.c_str(), &end, 10));
    ADALSH_CHECK(end != nullptr && *end == '\0' && !part.empty())
        << "--" << name << ": '" << part << "' is not an integer";
  }
  return result;
}

std::vector<double> Flags::GetDoubleList(
    const std::string& name, const std::vector<double>& default_value) {
  const std::string* raw = Find(name);
  if (raw == nullptr) return default_value;
  std::vector<double> result;
  for (const std::string& part : SplitCommas(*raw)) {
    char* end = nullptr;
    result.push_back(std::strtod(part.c_str(), &end));
    ADALSH_CHECK(end != nullptr && *end == '\0' && !part.empty())
        << "--" << name << ": '" << part << "' is not a number";
  }
  return result;
}

void Flags::CheckNoUnusedFlags() const {
  for (const auto& [name, value] : values_) {
    auto it = used_.find(name);
    ADALSH_CHECK(it != used_.end() && it->second)
        << program_name_ << ": unknown flag --" << name;
  }
}

}  // namespace adalsh
