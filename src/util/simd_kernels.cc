#include "util/simd_kernels.h"

#include <algorithm>
#include <atomic>
#include <limits>

#include "util/check.h"
#include "util/rng.h"
#include "util/timer.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define ADALSH_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define ADALSH_NEON 1
#endif

namespace adalsh {
namespace simd {
namespace {

// ---------------------------------------------------------------------------
// Dot product: canonical 16-lane spec (see simd_kernels.h).
// ---------------------------------------------------------------------------

/// Scalar tail + fixed-tree reduction shared by every path. `i` is the first
/// element the vector main loop did not consume (a multiple of kDotLanes);
/// tail element i+k lands in lane k, exactly as the main loop would place it.
double FinishDot(double* lanes, const float* a, const float* b, size_t size,
                 size_t i) {
  for (size_t k = 0; i < size; ++i, ++k) {
    lanes[k] += static_cast<double>(a[i]) * b[i];
  }
  double q0 = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
  double q1 = (lanes[4] + lanes[5]) + (lanes[6] + lanes[7]);
  double q2 = (lanes[8] + lanes[9]) + (lanes[10] + lanes[11]);
  double q3 = (lanes[12] + lanes[13]) + (lanes[14] + lanes[15]);
  return (q0 + q1) + (q2 + q3);
}

double DotScalar(const float* a, const float* b, size_t size) {
  double lanes[kDotLanes] = {0.0};
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    for (size_t k = 0; k < kDotLanes; ++k) {
      lanes[k] += static_cast<double>(a[i + k]) * b[i + k];
    }
  }
  return FinishDot(lanes, a, b, size, i);
}

void DotScalarX2(const float* a0, const float* a1, const float* b, size_t size,
                 double* out0, double* out1) {
  double lanes0[kDotLanes] = {0.0};
  double lanes1[kDotLanes] = {0.0};
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    for (size_t k = 0; k < kDotLanes; ++k) {
      const double bk = static_cast<double>(b[i + k]);
      lanes0[k] += static_cast<double>(a0[i + k]) * bk;
      lanes1[k] += static_cast<double>(a1[i + k]) * bk;
    }
  }
  *out0 = FinishDot(lanes0, a0, b, size, i);
  *out1 = FinishDot(lanes1, a1, b, size, i);
}

#ifdef ADALSH_X86

__attribute__((target("avx2"))) double DotAvx2(const float* a, const float* b,
                                               size_t size) {
  // Lanes 0-3 / 4-7 / 8-11 / 12-15 as four 256-bit double accumulators.
  // Convert-multiply-add, never FMA: the scalar reference rounds the product
  // before the add, and the paths must agree bit for bit.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    __m256d a0 = _mm256_cvtps_pd(_mm_loadu_ps(a + i));
    __m256d a1 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 4));
    __m256d a2 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 8));
    __m256d a3 = _mm256_cvtps_pd(_mm_loadu_ps(a + i + 12));
    __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    __m256d b2 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 8));
    __m256d b3 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 12));
    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(a0, b0));
    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(a1, b1));
    acc2 = _mm256_add_pd(acc2, _mm256_mul_pd(a2, b2));
    acc3 = _mm256_add_pd(acc3, _mm256_mul_pd(a3, b3));
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  _mm256_store_pd(lanes + 0, acc0);
  _mm256_store_pd(lanes + 4, acc1);
  _mm256_store_pd(lanes + 8, acc2);
  _mm256_store_pd(lanes + 12, acc3);
  return FinishDot(lanes, a, b, size, i);
}

__attribute__((target("avx512f,avx512dq"))) double DotAvx512(const float* a,
                                                             const float* b,
                                                             size_t size) {
  // Lanes 0-7 / 8-15 as two 512-bit double accumulators.
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    __m512d a0 = _mm512_cvtps_pd(_mm256_loadu_ps(a + i));
    __m512d a1 = _mm512_cvtps_pd(_mm256_loadu_ps(a + i + 8));
    __m512d b0 = _mm512_cvtps_pd(_mm256_loadu_ps(b + i));
    __m512d b1 = _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8));
    acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(a0, b0));
    acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(a1, b1));
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  _mm512_store_pd(lanes + 0, acc0);
  _mm512_store_pd(lanes + 8, acc1);
  return FinishDot(lanes, a, b, size, i);
}

__attribute__((target("avx2"))) void DotAvx2X2(const float* a0,
                                               const float* a1, const float* b,
                                               size_t size, double* out0,
                                               double* out1) {
  // Four 256-bit accumulators per row; the shared operand is loaded and
  // converted once per 16-element step and feeds both rows.
  __m256d r0q0 = _mm256_setzero_pd(), r0q1 = _mm256_setzero_pd();
  __m256d r0q2 = _mm256_setzero_pd(), r0q3 = _mm256_setzero_pd();
  __m256d r1q0 = _mm256_setzero_pd(), r1q1 = _mm256_setzero_pd();
  __m256d r1q2 = _mm256_setzero_pd(), r1q3 = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    __m256d b0 = _mm256_cvtps_pd(_mm_loadu_ps(b + i));
    __m256d b1 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 4));
    __m256d b2 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 8));
    __m256d b3 = _mm256_cvtps_pd(_mm_loadu_ps(b + i + 12));
    r0q0 = _mm256_add_pd(r0q0, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a0 + i)), b0));
    r0q1 = _mm256_add_pd(r0q1, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a0 + i + 4)), b1));
    r0q2 = _mm256_add_pd(r0q2, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a0 + i + 8)), b2));
    r0q3 = _mm256_add_pd(r0q3, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a0 + i + 12)), b3));
    r1q0 = _mm256_add_pd(r1q0, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a1 + i)), b0));
    r1q1 = _mm256_add_pd(r1q1, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a1 + i + 4)), b1));
    r1q2 = _mm256_add_pd(r1q2, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a1 + i + 8)), b2));
    r1q3 = _mm256_add_pd(r1q3, _mm256_mul_pd(
        _mm256_cvtps_pd(_mm_loadu_ps(a1 + i + 12)), b3));
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  _mm256_store_pd(lanes + 0, r0q0);
  _mm256_store_pd(lanes + 4, r0q1);
  _mm256_store_pd(lanes + 8, r0q2);
  _mm256_store_pd(lanes + 12, r0q3);
  *out0 = FinishDot(lanes, a0, b, size, i);
  _mm256_store_pd(lanes + 0, r1q0);
  _mm256_store_pd(lanes + 4, r1q1);
  _mm256_store_pd(lanes + 8, r1q2);
  _mm256_store_pd(lanes + 12, r1q3);
  *out1 = FinishDot(lanes, a1, b, size, i);
}

__attribute__((target("avx512f,avx512dq"))) void DotAvx512X2(
    const float* a0, const float* a1, const float* b, size_t size,
    double* out0, double* out1) {
  __m512d r0lo = _mm512_setzero_pd(), r0hi = _mm512_setzero_pd();
  __m512d r1lo = _mm512_setzero_pd(), r1hi = _mm512_setzero_pd();
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    __m512d blo = _mm512_cvtps_pd(_mm256_loadu_ps(b + i));
    __m512d bhi = _mm512_cvtps_pd(_mm256_loadu_ps(b + i + 8));
    r0lo = _mm512_add_pd(r0lo, _mm512_mul_pd(
        _mm512_cvtps_pd(_mm256_loadu_ps(a0 + i)), blo));
    r0hi = _mm512_add_pd(r0hi, _mm512_mul_pd(
        _mm512_cvtps_pd(_mm256_loadu_ps(a0 + i + 8)), bhi));
    r1lo = _mm512_add_pd(r1lo, _mm512_mul_pd(
        _mm512_cvtps_pd(_mm256_loadu_ps(a1 + i)), blo));
    r1hi = _mm512_add_pd(r1hi, _mm512_mul_pd(
        _mm512_cvtps_pd(_mm256_loadu_ps(a1 + i + 8)), bhi));
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  _mm512_store_pd(lanes + 0, r0lo);
  _mm512_store_pd(lanes + 8, r0hi);
  *out0 = FinishDot(lanes, a0, b, size, i);
  _mm512_store_pd(lanes + 0, r1lo);
  _mm512_store_pd(lanes + 8, r1hi);
  *out1 = FinishDot(lanes, a1, b, size, i);
}

#endif  // ADALSH_X86

#ifdef ADALSH_NEON

double DotNeon(const float* a, const float* b, size_t size) {
  // Lanes as eight 128-bit double accumulators (two lanes each).
  float64x2_t acc[8];
  for (auto& v : acc) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    for (size_t g = 0; g < 8; ++g) {
      float32x2_t af = vld1_f32(a + i + 2 * g);
      float32x2_t bf = vld1_f32(b + i + 2 * g);
      float64x2_t ad = vcvt_f64_f32(af);
      float64x2_t bd = vcvt_f64_f32(bf);
      acc[g] = vaddq_f64(acc[g], vmulq_f64(ad, bd));
    }
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  for (size_t g = 0; g < 8; ++g) vst1q_f64(lanes + 2 * g, acc[g]);
  return FinishDot(lanes, a, b, size, i);
}

void DotNeonX2(const float* a0, const float* a1, const float* b, size_t size,
               double* out0, double* out1) {
  float64x2_t acc0[8], acc1[8];
  for (auto& v : acc0) v = vdupq_n_f64(0.0);
  for (auto& v : acc1) v = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + kDotLanes <= size; i += kDotLanes) {
    for (size_t g = 0; g < 8; ++g) {
      float64x2_t bd = vcvt_f64_f32(vld1_f32(b + i + 2 * g));
      acc0[g] = vaddq_f64(
          acc0[g], vmulq_f64(vcvt_f64_f32(vld1_f32(a0 + i + 2 * g)), bd));
      acc1[g] = vaddq_f64(
          acc1[g], vmulq_f64(vcvt_f64_f32(vld1_f32(a1 + i + 2 * g)), bd));
    }
  }
  alignas(kSimdAlign) double lanes[kDotLanes];
  for (size_t g = 0; g < 8; ++g) vst1q_f64(lanes + 2 * g, acc0[g]);
  *out0 = FinishDot(lanes, a0, b, size, i);
  for (size_t g = 0; g < 8; ++g) vst1q_f64(lanes + 2 * g, acc1[g]);
  *out1 = FinishDot(lanes, a1, b, size, i);
}

#endif  // ADALSH_NEON

// ---------------------------------------------------------------------------
// MinHash: min over SplitMix64(token ^ seed). All-integer, so every lane
// width is exact and the min reduction commutes — no canonical-order care
// needed beyond running the same mix function.
// ---------------------------------------------------------------------------

uint64_t MinHashScalar(const uint64_t* tokens, size_t size, uint64_t seed) {
  uint64_t min_value = std::numeric_limits<uint64_t>::max();
  for (size_t i = 0; i < size; ++i) {
    min_value = std::min(min_value, SplitMix64(tokens[i] ^ seed));
  }
  return min_value;
}

#ifdef ADALSH_X86

/// 64x64->64 low multiply on AVX2, which has no native vpmullq: combine the
/// 32-bit partial products (lo*lo exactly, cross terms mod 2^32 shifted up).
__attribute__((target("avx2"))) inline __m256i MulLo64Avx2(__m256i a,
                                                           __m256i b) {
  __m256i b_swapped = _mm256_shuffle_epi32(b, 0xB1);       // [b_hi, b_lo] pairs
  __m256i cross = _mm256_mullo_epi32(a, b_swapped);        // a_lo*b_hi, a_hi*b_lo
  __m256i cross_sum =
      _mm256_add_epi32(_mm256_srli_epi64(cross, 32), cross);
  __m256i cross_hi = _mm256_slli_epi64(cross_sum, 32);
  __m256i lo = _mm256_mul_epu32(a, b);                     // a_lo*b_lo, 64-bit
  return _mm256_add_epi64(lo, cross_hi);
}

__attribute__((target("avx2"))) uint64_t MinHashAvx2(const uint64_t* tokens,
                                                     size_t size,
                                                     uint64_t seed) {
  const __m256i vseed = _mm256_set1_epi64x(static_cast<int64_t>(seed));
  const __m256i c_add = _mm256_set1_epi64x(0x9e3779b97f4a7c15LL);
  const __m256i c_m1 = _mm256_set1_epi64x(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m256i c_m2 = _mm256_set1_epi64x(static_cast<int64_t>(0x94d049bb133111ebULL));
  const __m256i sign = _mm256_set1_epi64x(static_cast<int64_t>(0x8000000000000000ULL));
  __m256i vmin = _mm256_set1_epi64x(-1);  // UINT64_MAX per lane
  size_t i = 0;
  for (; i + 4 <= size; i += 4) {
    __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tokens + i));
    x = _mm256_xor_si256(x, vseed);
    x = _mm256_add_epi64(x, c_add);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 30));
    x = MulLo64Avx2(x, c_m1);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 27));
    x = MulLo64Avx2(x, c_m2);
    x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
    // Unsigned 64-bit min via sign-bias + signed compare.
    __m256i gt = _mm256_cmpgt_epi64(_mm256_xor_si256(vmin, sign),
                                    _mm256_xor_si256(x, sign));
    vmin = _mm256_blendv_epi8(vmin, x, gt);
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), vmin);
  uint64_t min_value =
      std::min(std::min(lanes[0], lanes[1]), std::min(lanes[2], lanes[3]));
  for (; i < size; ++i) {
    min_value = std::min(min_value, SplitMix64(tokens[i] ^ seed));
  }
  return min_value;
}

__attribute__((target("avx512f,avx512dq"))) uint64_t MinHashAvx512(
    const uint64_t* tokens, size_t size, uint64_t seed) {
  const __m512i vseed = _mm512_set1_epi64(static_cast<int64_t>(seed));
  const __m512i c_add = _mm512_set1_epi64(0x9e3779b97f4a7c15LL);
  const __m512i c_m1 = _mm512_set1_epi64(static_cast<int64_t>(0xbf58476d1ce4e5b9ULL));
  const __m512i c_m2 = _mm512_set1_epi64(static_cast<int64_t>(0x94d049bb133111ebULL));
  __m512i vmin = _mm512_set1_epi64(-1);
  size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    __m512i x = _mm512_loadu_si512(tokens + i);
    x = _mm512_xor_si512(x, vseed);
    x = _mm512_add_epi64(x, c_add);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 30));
    x = _mm512_mullo_epi64(x, c_m1);  // vpmullq (AVX-512DQ)
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 27));
    x = _mm512_mullo_epi64(x, c_m2);
    x = _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
    vmin = _mm512_min_epu64(vmin, x);
  }
  uint64_t min_value = _mm512_reduce_min_epu64(vmin);
  for (; i < size; ++i) {
    min_value = std::min(min_value, SplitMix64(tokens[i] ^ seed));
  }
  return min_value;
}

#endif  // ADALSH_X86

// ---------------------------------------------------------------------------
// Auto selection: one throughput probe per kernel, run once per process on
// first unpinned use. Wider is not uniformly faster — virtualized hosts in
// particular can execute 512-bit floating point at a fraction of 128-bit
// throughput while 512-bit integer ops still win — and because every level
// returns identical bits, picking by measured speed is always safe.
// ---------------------------------------------------------------------------

constexpr size_t kProbeElems = 256;
constexpr int kProbeCallsPerRound = 64;
constexpr int kProbeRounds = 3;

/// Times `call` (one kernel invocation over kProbeElems elements) and
/// returns the best-of-kProbeRounds round time — min filters scheduler
/// noise, which matters on loaded single-core hosts.
template <typename Call>
double ProbeSeconds(Call&& call) {
  double best = std::numeric_limits<double>::infinity();
  for (int round = 0; round < kProbeRounds; ++round) {
    Timer timer;
    for (int c = 0; c < kProbeCallsPerRound; ++c) call();
    best = std::min(best, timer.ElapsedSeconds());
  }
  return best;
}

template <typename Probe>
SimdLevel FastestLevel(Probe&& probe) {
  SimdLevel best = SimdLevel::kScalar;
  double best_seconds = std::numeric_limits<double>::infinity();
  for (SimdLevel level : SupportedSimdLevels()) {
    probe(level);  // warm up: page in code, spin up vector units
    double seconds = ProbeSeconds([&] { probe(level); });
    if (seconds < best_seconds) {
      best_seconds = seconds;
      best = level;
    }
  }
  return best;
}

SimdLevel ProbeDotLevel() {
  // Stack scratch, not static: probes may run concurrently (racing threads
  // each probe, the CAS in ResolveProbed picks the winner).
  alignas(kSimdAlign) float a[kProbeElems];
  alignas(kSimdAlign) float b[kProbeElems];
  uint64_t state = 0x5eedu;
  for (size_t i = 0; i < kProbeElems; ++i) {
    state = SplitMix64(state);
    a[i] = static_cast<float>(static_cast<int64_t>(state >> 40)) * 1e-5f;
    state = SplitMix64(state);
    b[i] = static_cast<float>(static_cast<int64_t>(state >> 40)) * 1e-5f;
  }
  volatile double sink = 0.0;
  return FastestLevel([&](SimdLevel level) {
    sink = sink + DotProductF32At(level, a, b, kProbeElems);
  });
}

SimdLevel ProbeMinHashLevel() {
  uint64_t tokens[kProbeElems];  // stack scratch — see ProbeDotLevel
  uint64_t state = 0x70ce;
  for (size_t i = 0; i < kProbeElems; ++i) {
    state = SplitMix64(state);
    tokens[i] = state;
  }
  volatile uint64_t sink = 0;
  uint64_t seed = 0;
  return FastestLevel([&](SimdLevel level) {
    sink = sink ^ MinHashTokensAt(level, tokens, kProbeElems, ++seed);
  });
}

/// Probed-best levels, resettable (unlike function-local statics) so
/// NotifyWorkerCount can discard a verdict measured under a different load
/// regime. kLevelUnprobed marks "probe on next unpinned use"; the CAS keeps
/// the first finished probe authoritative when several threads race — any
/// stored level is valid (all are bit-identical), this only pins the choice.
constexpr int kLevelUnprobed = -1;
std::atomic<int> g_probed_dot_level{kLevelUnprobed};
std::atomic<int> g_probed_minhash_level{kLevelUnprobed};
std::atomic<int> g_probe_worker_count{0};

SimdLevel ResolveProbed(std::atomic<int>* slot, SimdLevel (*probe)()) {
  int level = slot->load(std::memory_order_acquire);
  if (level == kLevelUnprobed) {
    int fresh = static_cast<int>(probe());
    int expected = kLevelUnprobed;
    if (!slot->compare_exchange_strong(expected, fresh,
                                       std::memory_order_acq_rel)) {
      fresh = expected;  // another thread's probe won
    }
    level = fresh;
  }
  return static_cast<SimdLevel>(level);
}

}  // namespace

SimdLevel ActiveDotLevel() {
  int pin = SimdPin();
  if (pin != kSimdLevelAuto) return static_cast<SimdLevel>(pin);
  return ResolveProbed(&g_probed_dot_level, &ProbeDotLevel);
}

SimdLevel ActiveMinHashLevel() {
  int pin = SimdPin();
  if (pin != kSimdLevelAuto) return static_cast<SimdLevel>(pin);
  return ResolveProbed(&g_probed_minhash_level, &ProbeMinHashLevel);
}

void NotifyWorkerCount(int workers) {
  if (workers < 1) workers = 1;
  const int last = g_probe_worker_count.exchange(workers,
                                                 std::memory_order_acq_rel);
  if (last == workers) return;
  g_probed_dot_level.store(kLevelUnprobed, std::memory_order_release);
  g_probed_minhash_level.store(kLevelUnprobed, std::memory_order_release);
}

double DotProductF32At(SimdLevel level, const float* a, const float* b,
                       size_t size) {
  switch (level) {
#ifdef ADALSH_X86
    case SimdLevel::kAvx2:
      return DotAvx2(a, b, size);
    case SimdLevel::kAvx512:
      return DotAvx512(a, b, size);
#endif
#ifdef ADALSH_NEON
    case SimdLevel::kNeon:
      return DotNeon(a, b, size);
#endif
    case SimdLevel::kScalar:
      return DotScalar(a, b, size);
    default:
      ADALSH_CHECK(false) << "SIMD level '" << SimdLevelName(level)
                          << "' not compiled into this binary";
      return 0.0;
  }
}

double DotProductF32(const float* a, const float* b, size_t size) {
  return DotProductF32At(ActiveDotLevel(), a, b, size);
}

void DotProductF32x2At(SimdLevel level, const float* a0, const float* a1,
                       const float* b, size_t size, double* out0,
                       double* out1) {
  switch (level) {
#ifdef ADALSH_X86
    case SimdLevel::kAvx2:
      DotAvx2X2(a0, a1, b, size, out0, out1);
      return;
    case SimdLevel::kAvx512:
      DotAvx512X2(a0, a1, b, size, out0, out1);
      return;
#endif
#ifdef ADALSH_NEON
    case SimdLevel::kNeon:
      DotNeonX2(a0, a1, b, size, out0, out1);
      return;
#endif
    case SimdLevel::kScalar:
      DotScalarX2(a0, a1, b, size, out0, out1);
      return;
    default:
      ADALSH_CHECK(false) << "SIMD level '" << SimdLevelName(level)
                          << "' not compiled into this binary";
  }
}

void DotProductF32x2(const float* a0, const float* a1, const float* b,
                     size_t size, double* out0, double* out1) {
  DotProductF32x2At(ActiveDotLevel(), a0, a1, b, size, out0, out1);
}

uint64_t MinHashTokensAt(SimdLevel level, const uint64_t* tokens, size_t size,
                         uint64_t seed) {
  switch (level) {
#ifdef ADALSH_X86
    case SimdLevel::kAvx2:
      return MinHashAvx2(tokens, size, seed);
    case SimdLevel::kAvx512:
      return MinHashAvx512(tokens, size, seed);
#endif
#ifdef ADALSH_NEON
    case SimdLevel::kNeon:
      // NEON has no 64-bit vector multiply; the scalar mix is the NEON path.
      return MinHashScalar(tokens, size, seed);
#endif
    case SimdLevel::kScalar:
      return MinHashScalar(tokens, size, seed);
    default:
      ADALSH_CHECK(false) << "SIMD level '" << SimdLevelName(level)
                          << "' not compiled into this binary";
      return 0;
  }
}

uint64_t MinHashTokens(const uint64_t* tokens, size_t size, uint64_t seed) {
  return MinHashTokensAt(ActiveMinHashLevel(), tokens, size, seed);
}

}  // namespace simd
}  // namespace adalsh
