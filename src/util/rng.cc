#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace adalsh {
namespace {

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t DeriveSeed(uint64_t parent_seed, uint64_t stream) {
  return SplitMix64(parent_seed ^ SplitMix64(stream + 0x5851f42d4c957f2dULL));
}

Rng::Rng(uint64_t seed) {
  // Seed expansion per the xoshiro authors' recommendation: run the seed
  // through SplitMix64 to fill the state, avoiding the all-zero state.
  uint64_t s = seed;
  for (uint64_t& word : state_) {
    s += 0x9e3779b97f4a7c15ULL;
    word = SplitMix64(s);
  }
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ADALSH_CHECK_GT(bound, 0u);
  // Lemire-style rejection sampling for an unbiased result.
  uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ADALSH_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; avoids log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  double radius = std::sqrt(-2.0 * std::log(u1));
  double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  have_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

}  // namespace adalsh
