#include "util/numeric.h"

#include "util/check.h"

namespace adalsh {

double SimpsonIntegrate(const std::function<double(double)>& f, double a,
                        double b, int intervals) {
  ADALSH_CHECK_GT(intervals, 0);
  int n = intervals + (intervals % 2);  // Simpson needs an even count.
  double h = (b - a) / n;
  double sum = f(a) + f(b);
  for (int i = 1; i < n; ++i) {
    double x = a + h * i;
    sum += f(x) * ((i % 2 == 1) ? 4.0 : 2.0);
  }
  return sum * h / 3.0;
}

double SimpsonIntegrate2D(const std::function<double(double, double)>& f,
                          double ax, double bx, double ay, double by,
                          int intervals) {
  return SimpsonIntegrate(
      [&](double y) {
        return SimpsonIntegrate([&](double x) { return f(x, y); }, ax, bx,
                                intervals);
      },
      ay, by, intervals);
}

double PowInt(double base, uint64_t exp) {
  double result = 1.0;
  double factor = base;
  while (exp != 0) {
    if (exp & 1) result *= factor;
    factor *= factor;
    exp >>= 1;
  }
  return result;
}

uint64_t PairCount(uint64_t n) { return n < 2 ? 0 : n * (n - 1) / 2; }

int FloorLog2(uint64_t x) {
  ADALSH_CHECK_GE(x, 1u);
  return 63 - __builtin_clzll(x);
}

}  // namespace adalsh
