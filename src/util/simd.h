#ifndef ADALSH_UTIL_SIMD_H_
#define ADALSH_UTIL_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace adalsh {

/// Runtime-dispatched SIMD target of the hot kernels (docs/simd.md).
///
/// Every level is *bit-identical* to kScalar on every kernel: the scalar
/// kernels are written in the exact lane structure the vector units execute
/// (see simd_kernels.h), so forcing a different level can never change a
/// FilterOutput byte. That is what lets the dispatch decision be invisible
/// to the determinism contract of docs/threading.md — and what makes the
/// selection below a pure performance choice.
///
/// Selection happens once per process. By default ("auto") each kernel
/// resolves its own target on first use with a microsecond-scale throughput
/// probe over the hardware-supported levels — wide registers are not
/// uniformly a win (virtualized hosts in particular can execute 512-bit
/// floating point at a fraction of 128-bit throughput while 512-bit integer
/// ops still win), and the probe picks whatever this machine actually runs
/// fastest. A *pin* (ADALSH_SIMD, the --simd flag, or SetSimdPin) instead
/// forces every kernel onto one named level — that is the testing hook the
/// differential suites and the sanitizer matrix use.
enum class SimdLevel : int {
  kScalar = 0,  ///< portable C++, the semantic reference
  kAvx2 = 1,    ///< x86 AVX2 (256-bit float/int lanes)
  kAvx512 = 2,  ///< x86 AVX-512F+DQ (512-bit lanes, 64-bit integer multiply)
  kNeon = 3,    ///< aarch64 ASIMD (128-bit lanes)
};

/// Widest level this binary can run on this machine (cpuid probe; compile
/// target on non-x86). Never returns a level the hardware lacks.
SimdLevel DetectSimdLevel();

/// No-pin sentinel: each kernel uses its probed-best target.
constexpr int kSimdLevelAuto = -1;

/// The current pin: kSimdLevelAuto, or the SimdLevel value every kernel is
/// forced onto. Initialized on first use from the ADALSH_SIMD environment
/// variable when set (a level name, "native", or "auto"; aborts on an
/// unknown name so sanitizer matrices fail loudly), otherwise auto.
int SimdPin();

/// Sets the pin (tests, --simd flag): kSimdLevelAuto or the value of a
/// level supported on this machine (aborts otherwise — see
/// SimdLevelSupported). Returns the previous pin so scoped forcing can
/// restore it. Not thread-safe against in-flight kernels: call at startup
/// or between single-threaded test sections only.
int SetSimdPin(int pin);

/// True when `level`'s kernels can execute on this machine. kScalar is
/// always supported; vector levels require the matching cpuid features.
bool SimdLevelSupported(SimdLevel level);

/// Every supported level, kScalar first, widening order — the differential
/// kernel tests iterate this to compare each path against the reference.
std::vector<SimdLevel> SupportedSimdLevels();

/// Canonical names: "scalar", "avx2", "avx512", "neon".
std::string SimdLevelName(SimdLevel level);

/// Parses a pin spec: "auto" (per-kernel probe, = kSimdLevelAuto), "native"
/// (pin the widest hardware level), or a level name. Errors on unknown
/// names or levels unsupported on this machine.
StatusOr<int> ParseSimdPin(const std::string& name);

/// Minimal 64-byte-aligned float arena for the structure-of-arrays payloads
/// the vector kernels read (FeatureCache dense fields, hyperplane normals).
/// Rows padded to a multiple of kSimdFloatPad floats start on cache-line
/// boundaries, so 16-float vector loads never split a line. Growth preserves
/// contents and zero-fills the new region (padding lanes must read as 0.0f).
constexpr size_t kSimdAlign = 64;              // bytes
constexpr size_t kSimdFloatPad = kSimdAlign / sizeof(float);

/// Rounds a row length up to the padded stride.
constexpr size_t PadFloats(size_t n) {
  return (n + kSimdFloatPad - 1) / kSimdFloatPad * kSimdFloatPad;
}

class AlignedFloatBuffer {
 public:
  AlignedFloatBuffer() = default;
  ~AlignedFloatBuffer();

  AlignedFloatBuffer(const AlignedFloatBuffer&) = delete;
  AlignedFloatBuffer& operator=(const AlignedFloatBuffer&) = delete;
  AlignedFloatBuffer(AlignedFloatBuffer&& other) noexcept;
  AlignedFloatBuffer& operator=(AlignedFloatBuffer&& other) noexcept;

  /// Grows (never shrinks) to `n` floats; existing contents are preserved,
  /// the new region is zero-filled.
  void GrowTo(size_t n);

  size_t size() const { return size_; }
  float* data() { return data_; }
  const float* data() const { return data_; }

 private:
  float* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_SIMD_H_
