#ifndef ADALSH_UTIL_FLAGS_H_
#define ADALSH_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adalsh {

/// Minimal `--key=value` / `--key value` command-line parser for the bench
/// and example binaries. Not a general flags library: every binary declares
/// the flags it reads through the typed getters, and unknown flags abort with
/// a clear message so sweep scripts fail loudly on typos.
class Flags {
 public:
  /// Parses argv. Recognized forms: `--name=value`, `--name value`, and bare
  /// `--name` (boolean true). Aborts on malformed arguments.
  Flags(int argc, char** argv);

  /// Typed getters with defaults. Abort if the value does not parse.
  int64_t GetInt(const std::string& name, int64_t default_value);
  double GetDouble(const std::string& name, double default_value);
  bool GetBool(const std::string& name, bool default_value);
  std::string GetString(const std::string& name,
                        const std::string& default_value);

  /// Comma-separated integer list (e.g. `--ks=2,5,10,20`).
  std::vector<int64_t> GetIntList(const std::string& name,
                                  const std::vector<int64_t>& default_value);
  /// Comma-separated double list (e.g. `--thresholds=0.3,0.4,0.5`).
  std::vector<double> GetDoubleList(const std::string& name,
                                    const std::vector<double>& default_value);

  /// Aborts if any parsed flag was never read by a getter. Call after all
  /// getters to catch misspelled flags.
  void CheckNoUnusedFlags() const;

 private:
  const std::string* Find(const std::string& name);

  std::map<std::string, std::string> values_;
  std::map<std::string, bool> used_;
  std::string program_name_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_FLAGS_H_
