#ifndef ADALSH_UTIL_CHECK_H_
#define ADALSH_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace adalsh {
namespace internal_check {

/// Aborts the process after printing `message` with source location context.
/// Used by the ADALSH_CHECK family; never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style message collector so call sites can write
/// `ADALSH_CHECK(x) << "context " << v;`.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace adalsh

/// Fatal assertion for invariants and programmer errors. Enabled in all build
/// modes: the library's correctness arguments (e.g. tree invariants in the
/// parent-pointer forest) rely on these firing in release benchmarks too.
#define ADALSH_CHECK(condition)                                       \
  if (condition) {                                                    \
  } else /* NOLINT */                                                 \
    ::adalsh::internal_check::CheckMessageBuilder(__FILE__, __LINE__, \
                                                  #condition)

#define ADALSH_CHECK_EQ(a, b) ADALSH_CHECK((a) == (b))
#define ADALSH_CHECK_NE(a, b) ADALSH_CHECK((a) != (b))
#define ADALSH_CHECK_LT(a, b) ADALSH_CHECK((a) < (b))
#define ADALSH_CHECK_LE(a, b) ADALSH_CHECK((a) <= (b))
#define ADALSH_CHECK_GT(a, b) ADALSH_CHECK((a) > (b))
#define ADALSH_CHECK_GE(a, b) ADALSH_CHECK((a) >= (b))

/// Debug-only assertion for per-element checks on hot paths (e.g. the
/// per-pair dimension check in CosineDistance). Active in debug builds (or
/// when ADALSH_ENABLE_DCHECKS is defined); compiles to nothing in release so
/// hot loops carry no per-pair overhead. Invariants whose violation release
/// code cannot survive must stay on ADALSH_CHECK; ADALSH_DCHECK is for
/// conditions a cheaper once-per-structure validation already guarantees
/// (e.g. FeatureCache validates field dimensions once per dataset).
#if !defined(NDEBUG) || defined(ADALSH_ENABLE_DCHECKS)
#define ADALSH_DCHECK_IS_ON 1
#define ADALSH_DCHECK(condition) ADALSH_CHECK(condition)
#else
#define ADALSH_DCHECK_IS_ON 0
// `while (false)` keeps the condition and any streamed message compiling (and
// type-checked) without evaluating them at runtime.
#define ADALSH_DCHECK(condition) \
  while (false) ADALSH_CHECK(condition)
#endif

#define ADALSH_DCHECK_EQ(a, b) ADALSH_DCHECK((a) == (b))
#define ADALSH_DCHECK_NE(a, b) ADALSH_DCHECK((a) != (b))
#define ADALSH_DCHECK_LT(a, b) ADALSH_DCHECK((a) < (b))
#define ADALSH_DCHECK_LE(a, b) ADALSH_DCHECK((a) <= (b))
#define ADALSH_DCHECK_GT(a, b) ADALSH_DCHECK((a) > (b))
#define ADALSH_DCHECK_GE(a, b) ADALSH_DCHECK((a) >= (b))

#endif  // ADALSH_UTIL_CHECK_H_
