#ifndef ADALSH_UTIL_NUMERIC_H_
#define ADALSH_UTIL_NUMERIC_H_

#include <cstdint>
#include <functional>

namespace adalsh {

/// Numerical-integration helpers for the (w,z)-scheme optimization programs
/// of Section 5.1 and Appendix C: the objective functions are integrals of
/// smooth collision-probability curves over [0,1] (or [0,1]^2), evaluated by
/// composite Simpson rules.

/// Integrates `f` over [a, b] with composite Simpson using `intervals`
/// subintervals (rounded up to an even count).
double SimpsonIntegrate(const std::function<double(double)>& f, double a,
                        double b, int intervals);

/// Integrates `f(x, y)` over [ax, bx] x [ay, by] with a tensor-product
/// Simpson rule using `intervals` subintervals per axis.
double SimpsonIntegrate2D(const std::function<double(double, double)>& f,
                          double ax, double bx, double ay, double by,
                          int intervals);

/// pow(base, exp) for non-negative integer exponents by repeated squaring;
/// the optimizer evaluates p(x)^w for w up to several thousand and this is
/// both faster and more deterministic across libm versions than std::pow.
double PowInt(double base, uint64_t exp);

/// Number of unordered pairs in a set of n elements: n*(n-1)/2.
uint64_t PairCount(uint64_t n);

/// floor(log2(x)) for x >= 1.
int FloorLog2(uint64_t x);

}  // namespace adalsh

#endif  // ADALSH_UTIL_NUMERIC_H_
