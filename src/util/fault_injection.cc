#include "util/fault_injection.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/run_controller.h"

namespace adalsh {

namespace internal_fault {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace internal_fault

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kHashApply:
      return "hash_apply";
    case FaultSite::kPairwiseTile:
      return "pairwise_tile";
    case FaultSite::kMerge:
      return "merge";
  }
  return "unknown";
}

void FaultInjector::InjectLatency(FaultSite site, int micros) {
  ADALSH_CHECK_GE(micros, 0);
  sites_[static_cast<int>(site)].latency_micros = micros;
}

void FaultInjector::TriggerAt(FaultSite site, uint64_t nth_hit,
                              std::function<void()> trigger) {
  ADALSH_CHECK_GE(nth_hit, 1u);
  SiteState& state = sites_[static_cast<int>(site)];
  state.trigger_at = nth_hit;
  state.trigger = std::move(trigger);
}

void FaultInjector::CancelAt(FaultSite site, uint64_t nth_hit,
                             RunController* controller) {
  ADALSH_CHECK(controller != nullptr);
  TriggerAt(site, nth_hit, [controller] { controller->Cancel(); });
}

void FaultInjector::OnSite(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  uint64_t hit = state.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (state.latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(state.latency_micros));
  }
  if (state.trigger_at != 0 && hit == state.trigger_at) state.trigger();
}

uint64_t FaultInjector::hits(FaultSite site) const {
  return sites_[static_cast<int>(site)].hits.load(std::memory_order_relaxed);
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector) {
  ADALSH_CHECK(injector != nullptr);
  FaultInjector* previous = internal_fault::g_injector.exchange(
      injector, std::memory_order_acq_rel);
  ADALSH_CHECK(previous == nullptr) << "nested ScopedFaultInjector installs";
}

ScopedFaultInjector::~ScopedFaultInjector() {
  internal_fault::g_injector.store(nullptr, std::memory_order_release);
}

}  // namespace adalsh
