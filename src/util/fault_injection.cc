#include "util/fault_injection.h"

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/run_controller.h"

namespace adalsh {

namespace internal_fault {
std::atomic<FaultInjector*> g_injector{nullptr};
}  // namespace internal_fault

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kHashApply:
      return "hash_apply";
    case FaultSite::kPairwiseTile:
      return "pairwise_tile";
    case FaultSite::kMerge:
      return "merge";
    case FaultSite::kWalAppend:
      return "wal_append";
    case FaultSite::kWalSync:
      return "wal_sync";
    case FaultSite::kCheckpointWrite:
      return "checkpoint_write";
    case FaultSite::kRecoveryReplay:
      return "recovery_replay";
  }
  return "unknown";
}

StatusOr<FaultSite> ParseFaultSite(const std::string& name) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    FaultSite site = static_cast<FaultSite>(i);
    if (name == FaultSiteName(site)) return site;
  }
  return Status::InvalidArgument("unknown fault site: " + name);
}

void FaultInjector::InjectLatency(FaultSite site, int micros) {
  ADALSH_CHECK_GE(micros, 0);
  sites_[static_cast<int>(site)].latency_micros = micros;
}

void FaultInjector::TriggerAt(FaultSite site, uint64_t nth_hit,
                              std::function<void()> trigger) {
  ADALSH_CHECK_GE(nth_hit, 1u);
  SiteState& state = sites_[static_cast<int>(site)];
  state.trigger_at = nth_hit;
  state.trigger = std::move(trigger);
}

void FaultInjector::CancelAt(FaultSite site, uint64_t nth_hit,
                             RunController* controller) {
  ADALSH_CHECK(controller != nullptr);
  TriggerAt(site, nth_hit, [controller] { controller->Cancel(); });
}

void FaultInjector::FailAt(FaultSite site, uint64_t nth_hit, Status status,
                           uint64_t repeat) {
  ADALSH_CHECK_GE(nth_hit, 1u);
  ADALSH_CHECK(!status.ok()) << "FailAt needs a non-ok status";
  SiteState& state = sites_[static_cast<int>(site)];
  state.fail_at = nth_hit;
  state.fail_until = repeat == 0 ? 0 : nth_hit + repeat;
  state.fail_status = std::move(status);
}

void FaultInjector::ShortWriteAt(FaultSite site, uint64_t nth_hit,
                                 size_t max_bytes) {
  ADALSH_CHECK_GE(nth_hit, 1u);
  SiteState& state = sites_[static_cast<int>(site)];
  state.short_write_at = nth_hit;
  state.short_write_bytes = max_bytes;
}

void FaultInjector::OnSite(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  uint64_t hit = state.hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (state.latency_micros > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(state.latency_micros));
  }
  if (state.trigger_at != 0 && hit == state.trigger_at) state.trigger();
}

std::optional<Status> FaultInjector::ConsumeFailure(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  if (state.fail_at == 0) return std::nullopt;
  uint64_t hit = state.hits.load(std::memory_order_relaxed);
  if (hit < state.fail_at) return std::nullopt;
  if (state.fail_until != 0 && hit >= state.fail_until) return std::nullopt;
  return state.fail_status;
}

uint64_t FaultInjector::hits(FaultSite site) const {
  return sites_[static_cast<int>(site)].hits.load(std::memory_order_relaxed);
}

std::optional<size_t> FaultInjector::ConsumeShortWrite(FaultSite site) {
  SiteState& state = sites_[static_cast<int>(site)];
  if (state.short_write_at == 0) return std::nullopt;
  uint64_t hit = state.hits.load(std::memory_order_relaxed);
  if (hit != state.short_write_at) return std::nullopt;
  return state.short_write_bytes;
}

ScopedFaultInjector::ScopedFaultInjector(FaultInjector* injector) {
  ADALSH_CHECK(injector != nullptr);
  previous_ =
      internal_fault::g_injector.exchange(injector, std::memory_order_acq_rel);
}

ScopedFaultInjector::~ScopedFaultInjector() {
  internal_fault::g_injector.store(previous_, std::memory_order_release);
}

}  // namespace adalsh
