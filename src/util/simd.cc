#include "util/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>

#include "util/check.h"

namespace adalsh {
namespace {

/// kPinUninitialized = ADALSH_SIMD not consulted yet; otherwise a pin value
/// (kSimdLevelAuto or a SimdLevel).
constexpr int kPinUninitialized = -2;
std::atomic<int> g_pin{kPinUninitialized};

int InitialPin() {
  const char* env = std::getenv("ADALSH_SIMD");
  if (env == nullptr || env[0] == '\0') return kSimdLevelAuto;
  StatusOr<int> parsed = ParseSimdPin(env);
  ADALSH_CHECK(parsed.ok()) << "ADALSH_SIMD: " << parsed.status().ToString();
  return *parsed;
}

}  // namespace

SimdLevel DetectSimdLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
  return SimdLevel::kScalar;
#elif defined(__aarch64__)
  return SimdLevel::kNeon;  // ASIMD is baseline on aarch64
#else
  return SimdLevel::kScalar;
#endif
}

int SimdPin() {
  int pin = g_pin.load(std::memory_order_relaxed);
  if (pin != kPinUninitialized) return pin;
  // First use: resolve the env var once. Racing initializers compute the
  // same value (the input is process-constant), so store order is harmless.
  int initial = InitialPin();
  g_pin.store(initial, std::memory_order_relaxed);
  return initial;
}

int SetSimdPin(int pin) {
  if (pin != kSimdLevelAuto) {
    SimdLevel level = static_cast<SimdLevel>(pin);
    ADALSH_CHECK(SimdLevelSupported(level))
        << "SIMD level '" << SimdLevelName(level)
        << "' is not supported on this machine";
  }
  int previous = SimdPin();
  g_pin.store(pin, std::memory_order_relaxed);
  return previous;
}

bool SimdLevelSupported(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return true;
    case SimdLevel::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdLevel::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
    case SimdLevel::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

std::vector<SimdLevel> SupportedSimdLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  for (SimdLevel level :
       {SimdLevel::kAvx2, SimdLevel::kAvx512, SimdLevel::kNeon}) {
    if (SimdLevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

std::string SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
    case SimdLevel::kNeon:
      return "neon";
  }
  return "unknown";
}

StatusOr<int> ParseSimdPin(const std::string& name) {
  if (name == "auto") return kSimdLevelAuto;
  SimdLevel level;
  if (name == "native") {
    level = DetectSimdLevel();
  } else if (name == "scalar") {
    level = SimdLevel::kScalar;
  } else if (name == "avx2") {
    level = SimdLevel::kAvx2;
  } else if (name == "avx512") {
    level = SimdLevel::kAvx512;
  } else if (name == "neon") {
    level = SimdLevel::kNeon;
  } else {
    return Status::InvalidArgument(
        "unknown SIMD level '" + name +
        "' (expected auto, native, scalar, avx2, avx512, or neon)");
  }
  if (!SimdLevelSupported(level)) {
    return Status::InvalidArgument("SIMD level '" + name +
                                   "' is not supported on this machine");
  }
  return static_cast<int>(level);
}

AlignedFloatBuffer::~AlignedFloatBuffer() {
  ::operator delete[](data_, std::align_val_t{kSimdAlign});
}

AlignedFloatBuffer::AlignedFloatBuffer(AlignedFloatBuffer&& other) noexcept
    : data_(other.data_), size_(other.size_), capacity_(other.capacity_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.capacity_ = 0;
}

AlignedFloatBuffer& AlignedFloatBuffer::operator=(
    AlignedFloatBuffer&& other) noexcept {
  if (this != &other) {
    ::operator delete[](data_, std::align_val_t{kSimdAlign});
    data_ = other.data_;
    size_ = other.size_;
    capacity_ = other.capacity_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.capacity_ = 0;
  }
  return *this;
}

void AlignedFloatBuffer::GrowTo(size_t n) {
  if (n <= size_) return;
  if (n > capacity_) {
    // Doubling keeps amortized ingest (FeatureCache::GrowTo per batch) linear.
    size_t capacity = capacity_ == 0 ? kSimdFloatPad : capacity_;
    while (capacity < n) capacity *= 2;
    float* grown = static_cast<float*>(
        ::operator new[](capacity * sizeof(float), std::align_val_t{kSimdAlign}));
    if (size_ > 0) std::memcpy(grown, data_, size_ * sizeof(float));
    ::operator delete[](data_, std::align_val_t{kSimdAlign});
    data_ = grown;
    capacity_ = capacity;
  }
  std::memset(data_ + size_, 0, (n - size_) * sizeof(float));
  size_ = n;
}

}  // namespace adalsh
