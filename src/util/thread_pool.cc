#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "util/check.h"
#include "util/timer.h"

namespace adalsh {
namespace {

thread_local bool t_inside_worker = false;

std::atomic<int> g_next_lane{0};
thread_local int t_lane = -1;

std::atomic<ParallelForTracer*> g_parallel_for_tracer{nullptr};

/// Runs `body(begin, end)` and reports the subrange to `tracer` (may be
/// null). The report happens even when the body throws, so traces of failed
/// runs still show where time went.
void RunChunk(const std::function<void(size_t, size_t)>& body, size_t begin,
              size_t end, ParallelForTracer* tracer) {
  if (tracer == nullptr) {
    body(begin, end);
    return;
  }
  ParallelForChunk chunk;
  chunk.begin = begin;
  chunk.end = end;
  chunk.lane = CurrentThreadLane();
  chunk.start_time = std::chrono::steady_clock::now();
  const double cpu_before = Timer::ThreadCpuSeconds();
  try {
    body(begin, end);
  } catch (...) {
    chunk.end_time = std::chrono::steady_clock::now();
    chunk.cpu_seconds = Timer::ThreadCpuSeconds() - cpu_before;
    tracer->OnChunk(chunk);
    throw;
  }
  chunk.end_time = std::chrono::steady_clock::now();
  chunk.cpu_seconds = Timer::ThreadCpuSeconds() - cpu_before;
  tracer->OnChunk(chunk);
}

}  // namespace

int CurrentThreadLane() {
  if (t_lane < 0) t_lane = g_next_lane.fetch_add(1, std::memory_order_relaxed);
  return t_lane;
}

ParallelForTracer* SetParallelForTracer(ParallelForTracer* tracer) {
  return g_parallel_for_tracer.exchange(tracer, std::memory_order_acq_rel);
}

ThreadPool::ThreadPool(int num_threads) {
  int count = std::max(num_threads, 1);
  workers_.reserve(count);
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  ADALSH_CHECK(task != nullptr);
  {
    std::unique_lock<std::mutex> lock(mu_);
    ADALSH_CHECK(!stop_) << "Submit on a stopping ThreadPool";
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  t_inside_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // tasks own their exceptions (ParallelFor captures them)
  }
}

bool ThreadPool::InsideWorker() { return t_inside_worker; }

int ThreadPool::HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t begin, size_t end)>& body) {
  if (n == 0) return;
  ParallelForTracer* tracer =
      g_parallel_for_tracer.load(std::memory_order_acquire);
  if (pool == nullptr || pool->num_threads() <= 1 || n < 2 ||
      ThreadPool::InsideWorker()) {
    RunChunk(body, 0, n, tracer);
    return;
  }
  // A few chunks per worker so uneven per-index costs (records with big
  // token sets next to singletons) still balance.
  size_t num_chunks =
      std::min(n, static_cast<size_t>(pool->num_threads()) * 4);
  size_t chunk_size = (n + num_chunks - 1) / num_chunks;

  // Fork/join state lives on the caller's stack; safe because we block on
  // `done` below before returning.
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = 0;
  std::exception_ptr first_error;

  for (size_t begin = 0; begin < n; begin += chunk_size) {
    size_t end = std::min(begin + chunk_size, n);
    {
      std::unique_lock<std::mutex> lock(mu);
      ++remaining;
    }
    pool->Submit([&, begin, end] {
      std::exception_ptr error;
      try {
        RunChunk(body, begin, end, tracer);
      } catch (...) {
        error = std::current_exception();
      }
      std::unique_lock<std::mutex> lock(mu);
      if (error && !first_error) first_error = error;
      if (--remaining == 0) cv.notify_one();
    });
  }

  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

namespace {

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool> g_global_pool;
int g_global_thread_count = 0;  // 0 = hardware concurrency

}  // namespace

ThreadPool* GlobalThreadPool() {
  std::unique_lock<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool == nullptr) {
    int count = g_global_thread_count > 0 ? g_global_thread_count
                                          : ThreadPool::HardwareConcurrency();
    g_global_pool = std::make_unique<ThreadPool>(count);
  }
  return g_global_pool.get();
}

void SetGlobalThreadCount(int num_threads) {
  ADALSH_CHECK_GE(num_threads, 1);
  std::unique_lock<std::mutex> lock(g_global_pool_mu);
  g_global_thread_count = num_threads;
  g_global_pool.reset();
}

int GlobalThreadCount() {
  std::unique_lock<std::mutex> lock(g_global_pool_mu);
  if (g_global_pool != nullptr) return g_global_pool->num_threads();
  return g_global_thread_count > 0 ? g_global_thread_count
                                   : ThreadPool::HardwareConcurrency();
}

ScopedThreadPool::ScopedThreadPool(int threads) {
  if (threads <= 0) {
    pool_ = GlobalThreadPool();
  } else if (threads == 1) {
    pool_ = nullptr;
  } else {
    owned_ = std::make_unique<ThreadPool>(threads);
    pool_ = owned_.get();
  }
}

}  // namespace adalsh
