#ifndef ADALSH_UTIL_TIMER_H_
#define ADALSH_UTIL_TIMER_H_

#include <chrono>
#include <ctime>

namespace adalsh {

/// Monotonic wall-clock stopwatch used by the experiment harness and the
/// cost-model calibration.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// CPU seconds consumed by the *calling thread* so far
  /// (CLOCK_THREAD_CPUTIME_ID). Differencing two readings around a region
  /// gives its cpu time; comparing that against wall time exposes the
  /// parallel efficiency of a stage (obs trace spans report both). Returns 0
  /// on platforms without a per-thread cpu clock.
  static double ThreadCpuSeconds() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
    return static_cast<double>(ts.tv_sec) +
           static_cast<double>(ts.tv_nsec) * 1e-9;
#else
    return 0.0;
#endif
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_TIMER_H_
