#ifndef ADALSH_UTIL_TIMER_H_
#define ADALSH_UTIL_TIMER_H_

#include <chrono>

namespace adalsh {

/// Monotonic wall-clock stopwatch used by the experiment harness and the
/// cost-model calibration.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_TIMER_H_
