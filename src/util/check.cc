#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace adalsh {
namespace internal_check {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[adalsh fatal] %s:%d: CHECK failed: %s%s%s\n", file,
               line, expr, message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace adalsh
