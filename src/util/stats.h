#ifndef ADALSH_UTIL_STATS_H_
#define ADALSH_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace adalsh {

/// Streaming mean/variance accumulator (Welford). Used by the cost-model
/// calibration and the experiment harness's repeated-trial reporting.
class RunningStats {
 public:
  RunningStats() = default;

  void Add(double value);

  /// Folds another accumulator in, as if every sample of `other` had been
  /// Add()ed here (Chan et al.'s parallel variance combination). Used by the
  /// obs MetricsRegistry to aggregate per-thread shards on snapshot.
  void Merge(const RunningStats& other);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean of `values`; 0 for an empty vector.
double Mean(const std::vector<double>& values);

/// Median of `values` (average of middle two for even sizes); 0 when empty.
double Median(std::vector<double> values);

/// p-th percentile (0..100) by linear interpolation; 0 when empty.
double Percentile(std::vector<double> values, double p);

}  // namespace adalsh

#endif  // ADALSH_UTIL_STATS_H_
