#include "util/run_controller.h"

#include <cmath>
#include <limits>

namespace adalsh {

const char* TerminationReasonName(TerminationReason reason) {
  switch (reason) {
    case TerminationReason::kCompleted:
      return "completed";
    case TerminationReason::kDeadline:
      return "deadline";
    case TerminationReason::kCancelled:
      return "cancelled";
    case TerminationReason::kBudgetExhausted:
      return "budget_exhausted";
  }
  return "unknown";
}

Status RunBudget::Validate() const {
  if (!std::isfinite(deadline_ms)) {
    return Status::InvalidArgument("deadline_ms must be finite");
  }
  return Status::Ok();
}

RunController::RunController(const RunBudget& budget) : budget_(budget) {
  Arm();
}

void RunController::Arm(uint64_t hash_base, uint64_t pairwise_base) {
  if (budget_.deadline_ms > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double, std::milli>(
                        budget_.deadline_ms));
  } else {
    has_deadline_ = false;
  }
  hash_base_ = hash_base;
  pairwise_base_ = pairwise_base;
  hashes_ = hash_base;
  pairwise_ = pairwise_base;
  reason_ = TerminationReason::kCompleted;
}

bool RunController::ShouldStop() {
  if (reason_ != TerminationReason::kCompleted) return true;  // sticky
  if (cancelled_.load(std::memory_order_acquire)) {
    reason_ = TerminationReason::kCancelled;
    return true;
  }
  if (budget_.max_pairwise > 0 &&
      pairwise_ - pairwise_base_ >= budget_.max_pairwise) {
    reason_ = TerminationReason::kBudgetExhausted;
    return true;
  }
  if (budget_.max_hashes > 0 && hashes_ - hash_base_ >= budget_.max_hashes) {
    reason_ = TerminationReason::kBudgetExhausted;
    return true;
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    reason_ = TerminationReason::kDeadline;
    return true;
  }
  return false;
}

double RunController::RemainingMillis() const {
  if (!has_deadline_) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double, std::milli>(
             deadline_ - std::chrono::steady_clock::now())
      .count();
}

}  // namespace adalsh
