#ifndef ADALSH_UTIL_RUN_CONTROLLER_H_
#define ADALSH_UTIL_RUN_CONTROLLER_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/status.h"

namespace adalsh {

/// Why a filtering run ended (docs/robustness.md). Every FilterOutput carries
/// one of these in FilterStats::termination_reason; anything other than
/// kCompleted marks a best-effort partial result whose clusters reflect the
/// state after the last fully completed round.
enum class TerminationReason {
  kCompleted = 0,     // ran to the natural Algorithm 1 termination
  kDeadline,          // wall-clock deadline expired
  kCancelled,         // RunController::Cancel() was called
  kBudgetExhausted,   // a pairwise/hash budget ran out
};

/// Human-readable name ("completed", "deadline", "cancelled",
/// "budget_exhausted") — stable identifiers used by the run report JSON and
/// the run_controller metrics.
const char* TerminationReasonName(TerminationReason reason);

/// Resource limits of one filtering run. Default-constructed = unlimited
/// (the pre-existing run-to-completion behavior, bit-for-bit).
struct RunBudget {
  /// Wall-clock deadline in milliseconds, measured from RunController::Arm()
  /// (each filtering method arms at Run()/TopK() entry). <= 0 disables.
  double deadline_ms = 0.0;

  /// Maximum rule evaluations by the exact pairwise function P. 0 disables.
  uint64_t max_pairwise = 0;

  /// Maximum raw LSH hash evaluations. 0 disables.
  uint64_t max_hashes = 0;

  bool unlimited() const {
    return deadline_ms <= 0.0 && max_pairwise == 0 && max_hashes == 0;
  }

  /// InvalidArgument on non-finite/negative limits.
  Status Validate() const;
};

/// Shared deadline + cooperative cancellation token + resource budgets for
/// one filtering run (the tentpole of docs/robustness.md).
///
/// Threading contract: Cancel() may be called from any thread at any time
/// (it is the only cross-thread entry point, one atomic store). Everything
/// else — Arm, the Report* progress feeds and ShouldStop — is called only by
/// the thread driving the filtering run, at round boundaries and at
/// stripe/block granularity inside the hash and pairwise sweeps. Checks are
/// therefore deterministic points in the run's serial instruction stream:
/// with cancellation triggered at a fixed site hit (FaultInjector), the run
/// stops after the same completed prefix of work at any thread count.
///
/// The stop decision is sticky: once ShouldStop() returns true, reason() is
/// fixed and every later ShouldStop() returns true until the next Arm().
class RunController {
 public:
  /// Unlimited controller (useful as a pure cancellation token).
  RunController() : RunController(RunBudget{}) {}

  /// Budgeted controller, armed immediately (see Arm).
  explicit RunController(const RunBudget& budget);

  RunController(const RunController&) = delete;
  RunController& operator=(const RunController&) = delete;

  /// Starts (or restarts) a run: the deadline clock begins now and
  /// `hash_base` / `pairwise_base` become the zero points the budget caps
  /// are measured against (callers report absolute cumulative totals, which
  /// for long-lived engines — streaming — span multiple runs). Clears a
  /// previously recorded stop reason but NOT a pending Cancel(): a
  /// cancellation always stops the next (or current) run.
  void Arm(uint64_t hash_base = 0, uint64_t pairwise_base = 0);

  /// Requests cooperative cancellation. Thread-safe; sticky across Arm().
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_acquire);
  }

  /// Progress feeds (driving thread only): absolute cumulative totals from
  /// the run's counter sources. Monotonic — a lower value than previously
  /// reported is ignored, so multiple sources (engine totals vs per-object
  /// totals) can feed the same controller safely.
  void ReportHashes(uint64_t total) {
    if (total > hashes_) hashes_ = total;
  }
  void ReportPairwise(uint64_t total) {
    if (total > pairwise_) pairwise_ = total;
  }

  /// The cooperative check (driving thread only). Returns true when the run
  /// must stop, recording the first reason that fired. Checked in
  /// deterministic order — cancellation, pairwise budget, hash budget, then
  /// the (inherently timing-dependent) deadline — so fault-injected tests
  /// observe reproducible reasons.
  bool ShouldStop();

  /// True once ShouldStop() has returned true since the last Arm().
  bool stopped() const { return reason_ != TerminationReason::kCompleted; }

  /// The recorded stop reason; kCompleted while the run may still proceed.
  TerminationReason reason() const { return reason_; }

  const RunBudget& budget() const { return budget_; }

  /// Milliseconds remaining until the deadline (negative once expired);
  /// +infinity when no deadline is set. Diagnostic only.
  double RemainingMillis() const;

 private:
  RunBudget budget_;
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::atomic<bool> cancelled_{false};
  // Driving-thread state (see threading contract).
  uint64_t hash_base_ = 0;
  uint64_t pairwise_base_ = 0;
  uint64_t hashes_ = 0;
  uint64_t pairwise_ = 0;
  TerminationReason reason_ = TerminationReason::kCompleted;
};

/// Null-tolerant check helper: the hot paths hold a possibly-null controller
/// and this keeps the disabled cost to one pointer test.
inline bool StopRequested(RunController* controller) {
  return controller != nullptr && controller->ShouldStop();
}

}  // namespace adalsh

#endif  // ADALSH_UTIL_RUN_CONTROLLER_H_
