#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace adalsh {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  count_ += other.count_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  ADALSH_CHECK_GE(p, 0.0);
  ADALSH_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace adalsh
