#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace adalsh {

void RunningStats::Add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Median(std::vector<double> values) {
  return Percentile(std::move(values), 50.0);
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  ADALSH_CHECK_GE(p, 0.0);
  ADALSH_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

}  // namespace adalsh
