#ifndef ADALSH_UTIL_RNG_H_
#define ADALSH_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace adalsh {

/// Mixes a 64-bit value through the SplitMix64 finalizer. Used to derive
/// independent seed streams: every stochastic component in the library is
/// seeded as `SplitMix64(base_seed ^ kComponentTag ^ index)`, which keeps
/// experiments reproducible bit-for-bit while decorrelating components.
uint64_t SplitMix64(uint64_t x);

/// Derives a child seed from a parent seed and a stream index.
uint64_t DeriveSeed(uint64_t parent_seed, uint64_t stream);

/// Small, fast, deterministic PRNG (xoshiro256**). Satisfies the essentials
/// of UniformRandomBitGenerator so it interoperates with <random>
/// distributions, but the library mostly uses the convenience members below
/// so results are identical across standard-library implementations.
class Rng {
 public:
  using result_type = uint64_t;

  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64 random bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform integer in [0, bound). `bound` must be positive.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box–Muller, deterministic).
  double NextGaussian();

  /// True with probability `p`.
  bool NextBernoulli(double p);

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = NextBelow(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_RNG_H_
