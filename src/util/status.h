#ifndef ADALSH_UTIL_STATUS_H_
#define ADALSH_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace adalsh {

/// Error category for expected failures (configuration validation, parsing).
/// The library does not use exceptions; fallible entry points return Status
/// or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A success-or-error result carrying a code and a message.
class Status {
 public:
  /// Success.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A value or an error. Accessing the value of a non-ok StatusOr aborts.
template <typename T>
class StatusOr {
 public:
  /// Implicit from value and from Status, mirroring absl::StatusOr ergonomics.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : status_(), value_(std::move(value)) {}
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    ADALSH_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    ADALSH_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    ADALSH_CHECK(ok()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    ADALSH_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_STATUS_H_
