#ifndef ADALSH_UTIL_FAULT_INJECTION_H_
#define ADALSH_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>

namespace adalsh {

class RunController;

/// Named instrumentation points in the filtering hot paths. Each site is hit
/// exactly once per unit of cooperative-cancellation granularity, always from
/// the thread driving the run, in an order that is a pure function of the
/// input (never of the thread count) — the property the deterministic
/// degradation tests rely on (docs/robustness.md).
enum class FaultSite {
  kHashApply = 0,  // TransitiveHasher::Apply, once per record block
  kPairwiseTile,   // PairwiseComputer sweep, once per row stripe
  kMerge,          // TransitiveHasher's serial merge, once per record block
};
inline constexpr int kNumFaultSites = 3;

/// "hash_apply" / "pairwise_tile" / "merge".
const char* FaultSiteName(FaultSite site);

/// Deterministic fault-injection harness, compiled in always and zero-cost
/// when disabled (one relaxed atomic pointer load per site hit, branch
/// predicted to null). Install with ScopedFaultInjector; production code
/// reports sites via FaultInjectionPoint().
///
/// Two fault kinds, independently configurable per site:
///   * latency: every hit of the site sleeps a fixed number of microseconds,
///     turning wall-clock deadline expiry into a deterministic event ("the
///     deadline fires by the Nth hit");
///   * cancellation: the Nth hit of the site invokes a trigger (typically
///     RunController::Cancel), so every degradation path can be exercised at
///     an exact, thread-count-independent point of the run.
///
/// Hit counters are atomics only so concurrent installs in multi-run test
/// binaries stay race-free; in a single run all hits come from the driving
/// thread and the observed sequence is deterministic.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Every hit of `site` sleeps `micros` microseconds (0 disables).
  void InjectLatency(FaultSite site, int micros);

  /// The `nth_hit`-th hit of `site` (1-based) invokes `trigger` once.
  void TriggerAt(FaultSite site, uint64_t nth_hit,
                 std::function<void()> trigger);

  /// Convenience: TriggerAt with RunController::Cancel as the trigger.
  void CancelAt(FaultSite site, uint64_t nth_hit, RunController* controller);

  /// Called by instrumented code (via FaultInjectionPoint).
  void OnSite(FaultSite site);

  /// Total hits of `site` so far — lets tests discover how many sites a
  /// reference run passes before choosing an injection point.
  uint64_t hits(FaultSite site) const;

 private:
  struct SiteState {
    std::atomic<uint64_t> hits{0};
    int latency_micros = 0;
    uint64_t trigger_at = 0;  // 0 = never
    std::function<void()> trigger;
  };
  SiteState sites_[kNumFaultSites];
};

namespace internal_fault {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace internal_fault

/// The production-side hook: nearly free when no injector is installed.
inline void FaultInjectionPoint(FaultSite site) {
  FaultInjector* injector =
      internal_fault::g_injector.load(std::memory_order_acquire);
  if (injector != nullptr) injector->OnSite(site);
}

/// RAII process-global installation. Not reentrant: one installed injector at
/// a time (nested installs are a test bug and abort).
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_FAULT_INJECTION_H_
