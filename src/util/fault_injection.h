#ifndef ADALSH_UTIL_FAULT_INJECTION_H_
#define ADALSH_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "util/status.h"

namespace adalsh {

class RunController;

/// Named instrumentation points in the filtering hot paths and the
/// durability plane. Each compute site (the first three) is hit exactly once
/// per unit of cooperative-cancellation granularity, always from the thread
/// driving the run, in an order that is a pure function of the input (never
/// of the thread count) — the property the deterministic degradation tests
/// rely on (docs/robustness.md). The I/O sites (docs/durability.md) are hit
/// once per physical attempt — per write() chunk for kWalAppend, per fsync
/// for kWalSync, twice per checkpoint for kCheckpointWrite (before the temp
/// write and again before the rename), once per replayed frame for
/// kRecoveryReplay — so crash and error injection can land between any two
/// bytes reaching the disk.
enum class FaultSite {
  kHashApply = 0,    // TransitiveHasher::Apply, once per record block
  kPairwiseTile,     // PairwiseComputer sweep, once per row stripe
  kMerge,            // TransitiveHasher's serial merge, once per record block
  kWalAppend,        // MutationLog::Append, once per write() attempt
  kWalSync,          // MutationLog fsync, once per attempt
  kCheckpointWrite,  // checkpoint: hit 1 before temp write, hit 2 pre-rename
  kRecoveryReplay,   // recovery, once per frame about to be re-applied
};
inline constexpr int kNumFaultSites = 7;

/// "hash_apply" / "pairwise_tile" / "merge" / "wal_append" / "wal_sync" /
/// "checkpoint_write" / "recovery_replay".
const char* FaultSiteName(FaultSite site);

/// Parses a FaultSiteName back into the site (InvalidArgument on an unknown
/// name) — the CLI's --crash-at flag names sites in scripts.
StatusOr<FaultSite> ParseFaultSite(const std::string& name);

/// Deterministic fault-injection harness, compiled in always and zero-cost
/// when disabled (one relaxed atomic pointer load per site hit, branch
/// predicted to null). Install with ScopedFaultInjector; production code
/// reports sites via FaultInjectionPoint() and, on the fallible I/O paths,
/// consults ConsumeFailure()/ConsumeShortWrite() through the status hooks.
///
/// Fault kinds, independently configurable per site:
///   * latency: every hit of the site sleeps a fixed number of microseconds,
///     turning wall-clock deadline expiry into a deterministic event ("the
///     deadline fires by the Nth hit");
///   * cancellation/trigger: the Nth hit of the site invokes a trigger
///     (typically RunController::Cancel; the CLI's --crash-at uses
///     std::_Exit), so every degradation path can be exercised at an exact,
///     thread-count-independent point of the run;
///   * error return: hits [nth, nth+repeat) of the site make the
///     instrumented operation fail with an injected Status instead of
///     touching the real resource — how the durability tests model EIO and
///     ENOSPC (docs/durability.md);
///   * short write: the Nth hit caps the instrumented write() at a byte
///     count, producing a torn frame exactly where the test asked for one.
///
/// Hit counters are atomics only so concurrent installs in multi-run test
/// binaries stay race-free; in a single run all hits come from the driving
/// thread and the observed sequence is deterministic.
class FaultInjector {
 public:
  FaultInjector() = default;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Every hit of `site` sleeps `micros` microseconds (0 disables).
  void InjectLatency(FaultSite site, int micros);

  /// The `nth_hit`-th hit of `site` (1-based) invokes `trigger` once.
  void TriggerAt(FaultSite site, uint64_t nth_hit,
                 std::function<void()> trigger);

  /// Convenience: TriggerAt with RunController::Cancel as the trigger.
  void CancelAt(FaultSite site, uint64_t nth_hit, RunController* controller);

  /// Hits [nth_hit, nth_hit + repeat) of `site` report `status` to the
  /// instrumented operation (via ConsumeFailure). repeat = 0 means every hit
  /// from nth_hit on — a permanently failed disk.
  void FailAt(FaultSite site, uint64_t nth_hit, Status status,
              uint64_t repeat = 1);

  /// The `nth_hit`-th hit of `site` caps the instrumented write at
  /// `max_bytes` (torn-frame injection; one shot).
  void ShortWriteAt(FaultSite site, uint64_t nth_hit, size_t max_bytes);

  /// Called by instrumented code (via FaultInjectionPoint).
  void OnSite(FaultSite site);

  /// Called by fallible instrumented code after OnSite: the injected error
  /// for this hit, if any (FaultStatusPoint wraps OnSite + ConsumeFailure).
  std::optional<Status> ConsumeFailure(FaultSite site);

  /// The injected write cap for this hit, if any. Does not count a hit.
  std::optional<size_t> ConsumeShortWrite(FaultSite site);

  /// Total hits of `site` so far — lets tests discover how many sites a
  /// reference run passes before choosing an injection point.
  uint64_t hits(FaultSite site) const;

 private:
  struct SiteState {
    std::atomic<uint64_t> hits{0};
    int latency_micros = 0;
    uint64_t trigger_at = 0;  // 0 = never
    std::function<void()> trigger;
    uint64_t fail_at = 0;    // 0 = never
    uint64_t fail_until = 0;  // exclusive; 0 with fail_at set = forever
    Status fail_status;
    uint64_t short_write_at = 0;  // 0 = never
    size_t short_write_bytes = 0;
  };
  SiteState sites_[kNumFaultSites];
};

namespace internal_fault {
extern std::atomic<FaultInjector*> g_injector;
}  // namespace internal_fault

/// The production-side hook: nearly free when no injector is installed.
inline void FaultInjectionPoint(FaultSite site) {
  FaultInjector* injector =
      internal_fault::g_injector.load(std::memory_order_acquire);
  if (injector != nullptr) injector->OnSite(site);
}

/// Fallible-operation hook: counts a hit and returns the injected error for
/// it, if any. The caller treats a returned Status exactly like the real
/// operation failing with it.
inline std::optional<Status> FaultStatusPoint(FaultSite site) {
  FaultInjector* injector =
      internal_fault::g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return std::nullopt;
  injector->OnSite(site);
  return injector->ConsumeFailure(site);
}

/// Write-cap hook: the injected short-write limit for the current hit, if
/// any. Counts no hit of its own — call after FaultStatusPoint on the same
/// attempt.
inline std::optional<size_t> FaultShortWritePoint(FaultSite site) {
  FaultInjector* injector =
      internal_fault::g_injector.load(std::memory_order_acquire);
  if (injector == nullptr) return std::nullopt;
  return injector->ConsumeShortWrite(site);
}

/// RAII process-global installation. Installs stack: a nested install
/// shadows the previous injector and the destructor restores it, so a crash
/// test can layer an I/O-fault injector over a long-lived cancellation one
/// (the compute sites of the outer injector go dark while the inner one is
/// installed). Destruction must be in reverse installation order, which
/// scoping gives for free.
class ScopedFaultInjector {
 public:
  explicit ScopedFaultInjector(FaultInjector* injector);
  ~ScopedFaultInjector();

  ScopedFaultInjector(const ScopedFaultInjector&) = delete;
  ScopedFaultInjector& operator=(const ScopedFaultInjector&) = delete;

 private:
  FaultInjector* previous_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_FAULT_INJECTION_H_
