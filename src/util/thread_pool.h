#ifndef ADALSH_UTIL_THREAD_POOL_H_
#define ADALSH_UTIL_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace adalsh {

/// Fixed-size worker pool for the data-parallel hot paths (hashing, bucket-key
/// construction, cost-model calibration). Deliberately minimal: no work
/// stealing, no task dependencies — every use in the library is a fork/join
/// ParallelFor over a record range, and keeping the pool this small makes the
/// determinism argument (docs/threading.md) auditable.
///
/// Thread-safety: Submit may be called from any thread. Tasks must not Submit
/// and then block on their own pool (classic self-deadlock); ParallelFor
/// guards against this by running inline when invoked from a worker thread.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains nothing: outstanding tasks are completed before the workers join.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Fire-and-forget; callers needing completion use
  /// ParallelFor (or their own latch).
  void Submit(std::function<void()> task);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// True when the calling thread is a worker of *any* ThreadPool. Used by
  /// ParallelFor's nested-submit deadlock guard.
  static bool InsideWorker();

  /// std::thread::hardware_concurrency with a floor of 1 (the standard allows
  /// returning 0).
  static int HardwareConcurrency();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Stable small integer identifying the calling thread for trace lanes:
/// assigned on first call, never reused, distinct across all threads of the
/// process (pool workers and external threads alike). The first caller —
/// in practice the main thread — gets lane 0.
int CurrentThreadLane();

/// One executed ParallelFor subrange, as reported to a ParallelForTracer.
/// Times are raw steady_clock points (the tracer owns the epoch); cpu_seconds
/// is the worker thread's CLOCK_THREAD_CPUTIME_ID spent inside the body, so
/// consumers can derive per-lane parallel efficiency.
struct ParallelForChunk {
  size_t begin = 0;
  size_t end = 0;
  int lane = 0;  // CurrentThreadLane() of the executing thread
  std::chrono::steady_clock::time_point start_time;
  std::chrono::steady_clock::time_point end_time;
  double cpu_seconds = 0.0;
};

/// Observer of ParallelFor execution, called once per subrange *from the
/// executing thread* (implementations must be thread-safe). Install with
/// SetParallelForTracer; the obs layer's ScopedParallelForTrace adapts this
/// into per-worker-lane spans of a TraceRecorder.
class ParallelForTracer {
 public:
  virtual ~ParallelForTracer() = default;
  virtual void OnChunk(const ParallelForChunk& chunk) = 0;
};

/// Installs the process-global ParallelFor tracer (nullptr uninstalls).
/// When no tracer is installed ParallelFor pays one relaxed atomic load per
/// call and nothing per subrange. Not intended for concurrent installation
/// with running parallel work; returns the previously installed tracer so
/// scoped installers can restore it.
ParallelForTracer* SetParallelForTracer(ParallelForTracer* tracer);

/// Splits [0, n) into contiguous half-open subranges, runs
/// `body(begin, end)` for each on the pool, and blocks until every subrange
/// completed. Together the subranges partition [0, n): every index is covered
/// exactly once.
///
/// Runs the whole range inline (single call `body(0, n)`) when `pool` is
/// null, has one thread, `n < 2`, or the caller is itself a pool worker (the
/// nested-submit deadlock guard). The first exception thrown by any subrange
/// is rethrown in the calling thread after all subranges finished, so the
/// pool is always left quiescent.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t begin, size_t end)>& body);

/// Process-wide default pool, lazily created with SetGlobalThreadCount's
/// value (or hardware concurrency if never set). All library entry points
/// with a `threads = 0` config use this pool.
ThreadPool* GlobalThreadPool();

/// Sets the size of the global pool (>= 1) and drops any existing instance so
/// the next GlobalThreadPool() call rebuilds it. Call at startup (e.g. from a
/// --threads flag), not concurrently with running parallel work.
void SetGlobalThreadCount(int num_threads);

/// The size the global pool has (or will have when first used).
int GlobalThreadCount();

/// Resolves a per-run `threads` config value to a usable pool:
///   <= 0  -> the global pool (default),
///      1  -> nullptr (strictly serial execution),
///    > 1  -> a private pool of that many workers, owned by this object.
class ScopedThreadPool {
 public:
  explicit ScopedThreadPool(int threads);

  ScopedThreadPool(const ScopedThreadPool&) = delete;
  ScopedThreadPool& operator=(const ScopedThreadPool&) = delete;

  ThreadPool* get() const { return pool_; }

 private:
  std::unique_ptr<ThreadPool> owned_;
  ThreadPool* pool_;
};

}  // namespace adalsh

#endif  // ADALSH_UTIL_THREAD_POOL_H_
