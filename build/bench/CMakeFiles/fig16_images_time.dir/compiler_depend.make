# Empty compiler generated dependencies file for fig16_images_time.
# This may be replaced when dependencies are built.
