# Empty compiler generated dependencies file for fig12_reduction_speedup.
# This may be replaced when dependencies are built.
