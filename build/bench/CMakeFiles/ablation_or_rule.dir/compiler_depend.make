# Empty compiler generated dependencies file for ablation_or_rule.
# This may be replaced when dependencies are built.
