# Empty dependencies file for ablation_or_rule.
# This may be replaced when dependencies are built.
