file(REMOVE_RECURSE
  "CMakeFiles/ablation_or_rule.dir/ablation_or_rule.cc.o"
  "CMakeFiles/ablation_or_rule.dir/ablation_or_rule.cc.o.d"
  "ablation_or_rule"
  "ablation_or_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_or_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
