file(REMOVE_RECURSE
  "CMakeFiles/fig17_images_f1.dir/fig17_images_f1.cc.o"
  "CMakeFiles/fig17_images_f1.dir/fig17_images_f1.cc.o.d"
  "fig17_images_f1"
  "fig17_images_f1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_images_f1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
