# Empty dependencies file for fig17_images_f1.
# This may be replaced when dependencies are built.
