file(REMOVE_RECURSE
  "CMakeFiles/fig14_recovery.dir/fig14_recovery.cc.o"
  "CMakeFiles/fig14_recovery.dir/fig14_recovery.cc.o.d"
  "fig14_recovery"
  "fig14_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
