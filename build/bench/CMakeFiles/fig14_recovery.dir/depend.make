# Empty dependencies file for fig14_recovery.
# This may be replaced when dependencies are built.
