# Empty dependencies file for fig13_map_mar.
# This may be replaced when dependencies are built.
