file(REMOVE_RECURSE
  "CMakeFiles/fig13_map_mar.dir/fig13_map_mar.cc.o"
  "CMakeFiles/fig13_map_mar.dir/fig13_map_mar.cc.o.d"
  "fig13_map_mar"
  "fig13_map_mar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_map_mar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
