file(REMOVE_RECURSE
  "CMakeFiles/fig10_f1_gold.dir/fig10_f1_gold.cc.o"
  "CMakeFiles/fig10_f1_gold.dir/fig10_f1_gold.cc.o.d"
  "fig10_f1_gold"
  "fig10_f1_gold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_f1_gold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
