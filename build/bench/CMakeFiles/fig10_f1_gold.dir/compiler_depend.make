# Empty compiler generated dependencies file for fig10_f1_gold.
# This may be replaced when dependencies are built.
