# Empty dependencies file for micro_pairwise.
# This may be replaced when dependencies are built.
