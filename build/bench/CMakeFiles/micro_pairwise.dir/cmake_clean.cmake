file(REMOVE_RECURSE
  "CMakeFiles/micro_pairwise.dir/micro_pairwise.cc.o"
  "CMakeFiles/micro_pairwise.dir/micro_pairwise.cc.o.d"
  "micro_pairwise"
  "micro_pairwise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_pairwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
