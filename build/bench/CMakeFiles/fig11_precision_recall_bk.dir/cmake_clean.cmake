file(REMOVE_RECURSE
  "CMakeFiles/fig11_precision_recall_bk.dir/fig11_precision_recall_bk.cc.o"
  "CMakeFiles/fig11_precision_recall_bk.dir/fig11_precision_recall_bk.cc.o.d"
  "fig11_precision_recall_bk"
  "fig11_precision_recall_bk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_precision_recall_bk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
