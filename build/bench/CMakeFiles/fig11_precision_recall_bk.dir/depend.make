# Empty dependencies file for fig11_precision_recall_bk.
# This may be replaced when dependencies are built.
