# Empty compiler generated dependencies file for micro_forest.
# This may be replaced when dependencies are built.
