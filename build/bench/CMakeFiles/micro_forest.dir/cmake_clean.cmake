file(REMOVE_RECURSE
  "CMakeFiles/micro_forest.dir/micro_forest.cc.o"
  "CMakeFiles/micro_forest.dir/micro_forest.cc.o.d"
  "micro_forest"
  "micro_forest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_forest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
