file(REMOVE_RECURSE
  "CMakeFiles/ablation_jump_model.dir/ablation_jump_model.cc.o"
  "CMakeFiles/ablation_jump_model.dir/ablation_jump_model.cc.o.d"
  "ablation_jump_model"
  "ablation_jump_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jump_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
