# Empty dependencies file for fig09_spotsigs_time.
# This may be replaced when dependencies are built.
