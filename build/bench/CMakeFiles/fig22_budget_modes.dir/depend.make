# Empty dependencies file for fig22_budget_modes.
# This may be replaced when dependencies are built.
