file(REMOVE_RECURSE
  "CMakeFiles/fig22_budget_modes.dir/fig22_budget_modes.cc.o"
  "CMakeFiles/fig22_budget_modes.dir/fig22_budget_modes.cc.o.d"
  "fig22_budget_modes"
  "fig22_budget_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_budget_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
