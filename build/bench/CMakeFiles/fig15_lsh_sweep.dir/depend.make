# Empty dependencies file for fig15_lsh_sweep.
# This may be replaced when dependencies are built.
