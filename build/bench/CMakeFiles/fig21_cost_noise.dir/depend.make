# Empty dependencies file for fig21_cost_noise.
# This may be replaced when dependencies are built.
