file(REMOVE_RECURSE
  "CMakeFiles/fig21_cost_noise.dir/fig21_cost_noise.cc.o"
  "CMakeFiles/fig21_cost_noise.dir/fig21_cost_noise.cc.o.d"
  "fig21_cost_noise"
  "fig21_cost_noise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_cost_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
