# Empty dependencies file for fig05_collision_curves.
# This may be replaced when dependencies are built.
