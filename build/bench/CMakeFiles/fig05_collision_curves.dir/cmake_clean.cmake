file(REMOVE_RECURSE
  "CMakeFiles/fig05_collision_curves.dir/fig05_collision_curves.cc.o"
  "CMakeFiles/fig05_collision_curves.dir/fig05_collision_curves.cc.o.d"
  "fig05_collision_curves"
  "fig05_collision_curves.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_collision_curves.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
