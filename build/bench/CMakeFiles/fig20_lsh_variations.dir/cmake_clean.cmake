file(REMOVE_RECURSE
  "CMakeFiles/fig20_lsh_variations.dir/fig20_lsh_variations.cc.o"
  "CMakeFiles/fig20_lsh_variations.dir/fig20_lsh_variations.cc.o.d"
  "fig20_lsh_variations"
  "fig20_lsh_variations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_lsh_variations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
