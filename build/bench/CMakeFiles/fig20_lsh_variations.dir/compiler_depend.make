# Empty compiler generated dependencies file for fig20_lsh_variations.
# This may be replaced when dependencies are built.
