# Empty compiler generated dependencies file for news_dedup.
# This may be replaced when dependencies are built.
