file(REMOVE_RECURSE
  "CMakeFiles/news_dedup.dir/news_dedup.cpp.o"
  "CMakeFiles/news_dedup.dir/news_dedup.cpp.o.d"
  "news_dedup"
  "news_dedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/news_dedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
