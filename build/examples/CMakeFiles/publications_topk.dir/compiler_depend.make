# Empty compiler generated dependencies file for publications_topk.
# This may be replaced when dependencies are built.
