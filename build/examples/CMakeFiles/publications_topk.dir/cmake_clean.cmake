file(REMOVE_RECURSE
  "CMakeFiles/publications_topk.dir/publications_topk.cpp.o"
  "CMakeFiles/publications_topk.dir/publications_topk.cpp.o.d"
  "publications_topk"
  "publications_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/publications_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
