# Empty dependencies file for viral_images.
# This may be replaced when dependencies are built.
