file(REMOVE_RECURSE
  "CMakeFiles/viral_images.dir/viral_images.cpp.o"
  "CMakeFiles/viral_images.dir/viral_images.cpp.o.d"
  "viral_images"
  "viral_images.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viral_images.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
