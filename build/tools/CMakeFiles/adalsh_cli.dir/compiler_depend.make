# Empty compiler generated dependencies file for adalsh_cli.
# This may be replaced when dependencies are built.
