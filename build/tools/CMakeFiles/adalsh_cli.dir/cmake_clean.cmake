file(REMOVE_RECURSE
  "CMakeFiles/adalsh_cli.dir/adalsh_cli.cc.o"
  "CMakeFiles/adalsh_cli.dir/adalsh_cli.cc.o.d"
  "adalsh_cli"
  "adalsh_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
