file(REMOVE_RECURSE
  "libadalsh_datagen.a"
)
