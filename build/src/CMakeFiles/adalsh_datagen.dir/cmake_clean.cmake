file(REMOVE_RECURSE
  "CMakeFiles/adalsh_datagen.dir/datagen/cora_like.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/cora_like.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/extend.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/extend.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/multimodal.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/multimodal.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/popular_images.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/popular_images.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/spotsigs_like.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/spotsigs_like.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/vocabulary.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/vocabulary.cc.o.d"
  "CMakeFiles/adalsh_datagen.dir/datagen/zipf.cc.o"
  "CMakeFiles/adalsh_datagen.dir/datagen/zipf.cc.o.d"
  "libadalsh_datagen.a"
  "libadalsh_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
