# Empty compiler generated dependencies file for adalsh_datagen.
# This may be replaced when dependencies are built.
