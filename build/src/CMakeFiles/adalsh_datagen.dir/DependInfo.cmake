
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/cora_like.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/cora_like.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/cora_like.cc.o.d"
  "/root/repo/src/datagen/extend.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/extend.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/extend.cc.o.d"
  "/root/repo/src/datagen/multimodal.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/multimodal.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/multimodal.cc.o.d"
  "/root/repo/src/datagen/popular_images.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/popular_images.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/popular_images.cc.o.d"
  "/root/repo/src/datagen/spotsigs_like.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/spotsigs_like.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/spotsigs_like.cc.o.d"
  "/root/repo/src/datagen/vocabulary.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/vocabulary.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/vocabulary.cc.o.d"
  "/root/repo/src/datagen/zipf.cc" "src/CMakeFiles/adalsh_datagen.dir/datagen/zipf.cc.o" "gcc" "src/CMakeFiles/adalsh_datagen.dir/datagen/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
