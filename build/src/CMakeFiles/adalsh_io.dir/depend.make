# Empty dependencies file for adalsh_io.
# This may be replaced when dependencies are built.
