file(REMOVE_RECURSE
  "libadalsh_io.a"
)
