
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/adalsh_io.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/adalsh_io.dir/io/csv.cc.o.d"
  "/root/repo/src/io/dataset_loader.cc" "src/CMakeFiles/adalsh_io.dir/io/dataset_loader.cc.o" "gcc" "src/CMakeFiles/adalsh_io.dir/io/dataset_loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
