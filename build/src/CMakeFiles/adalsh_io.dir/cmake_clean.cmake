file(REMOVE_RECURSE
  "CMakeFiles/adalsh_io.dir/io/csv.cc.o"
  "CMakeFiles/adalsh_io.dir/io/csv.cc.o.d"
  "CMakeFiles/adalsh_io.dir/io/dataset_loader.cc.o"
  "CMakeFiles/adalsh_io.dir/io/dataset_loader.cc.o.d"
  "libadalsh_io.a"
  "libadalsh_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
