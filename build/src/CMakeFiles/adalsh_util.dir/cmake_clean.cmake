file(REMOVE_RECURSE
  "CMakeFiles/adalsh_util.dir/util/check.cc.o"
  "CMakeFiles/adalsh_util.dir/util/check.cc.o.d"
  "CMakeFiles/adalsh_util.dir/util/flags.cc.o"
  "CMakeFiles/adalsh_util.dir/util/flags.cc.o.d"
  "CMakeFiles/adalsh_util.dir/util/numeric.cc.o"
  "CMakeFiles/adalsh_util.dir/util/numeric.cc.o.d"
  "CMakeFiles/adalsh_util.dir/util/rng.cc.o"
  "CMakeFiles/adalsh_util.dir/util/rng.cc.o.d"
  "CMakeFiles/adalsh_util.dir/util/stats.cc.o"
  "CMakeFiles/adalsh_util.dir/util/stats.cc.o.d"
  "CMakeFiles/adalsh_util.dir/util/status.cc.o"
  "CMakeFiles/adalsh_util.dir/util/status.cc.o.d"
  "libadalsh_util.a"
  "libadalsh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
