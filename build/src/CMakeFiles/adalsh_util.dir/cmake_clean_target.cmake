file(REMOVE_RECURSE
  "libadalsh_util.a"
)
