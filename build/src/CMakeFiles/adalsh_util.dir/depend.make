# Empty dependencies file for adalsh_util.
# This may be replaced when dependencies are built.
