file(REMOVE_RECURSE
  "CMakeFiles/adalsh_lsh.dir/lsh/composite_scheme.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/composite_scheme.cc.o.d"
  "CMakeFiles/adalsh_lsh.dir/lsh/hash_cache.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/hash_cache.cc.o.d"
  "CMakeFiles/adalsh_lsh.dir/lsh/minhash.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/minhash.cc.o.d"
  "CMakeFiles/adalsh_lsh.dir/lsh/random_hyperplane.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/random_hyperplane.cc.o.d"
  "CMakeFiles/adalsh_lsh.dir/lsh/scheme.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/scheme.cc.o.d"
  "CMakeFiles/adalsh_lsh.dir/lsh/weighted_field_family.cc.o"
  "CMakeFiles/adalsh_lsh.dir/lsh/weighted_field_family.cc.o.d"
  "libadalsh_lsh.a"
  "libadalsh_lsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
