
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsh/composite_scheme.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/composite_scheme.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/composite_scheme.cc.o.d"
  "/root/repo/src/lsh/hash_cache.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/hash_cache.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/hash_cache.cc.o.d"
  "/root/repo/src/lsh/minhash.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/minhash.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/minhash.cc.o.d"
  "/root/repo/src/lsh/random_hyperplane.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/random_hyperplane.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/random_hyperplane.cc.o.d"
  "/root/repo/src/lsh/scheme.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/scheme.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/scheme.cc.o.d"
  "/root/repo/src/lsh/weighted_field_family.cc" "src/CMakeFiles/adalsh_lsh.dir/lsh/weighted_field_family.cc.o" "gcc" "src/CMakeFiles/adalsh_lsh.dir/lsh/weighted_field_family.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
