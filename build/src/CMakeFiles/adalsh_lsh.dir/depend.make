# Empty dependencies file for adalsh_lsh.
# This may be replaced when dependencies are built.
