file(REMOVE_RECURSE
  "libadalsh_lsh.a"
)
