
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clustering/bin_index.cc" "src/CMakeFiles/adalsh_clustering.dir/clustering/bin_index.cc.o" "gcc" "src/CMakeFiles/adalsh_clustering.dir/clustering/bin_index.cc.o.d"
  "/root/repo/src/clustering/clustering.cc" "src/CMakeFiles/adalsh_clustering.dir/clustering/clustering.cc.o" "gcc" "src/CMakeFiles/adalsh_clustering.dir/clustering/clustering.cc.o.d"
  "/root/repo/src/clustering/parent_pointer_forest.cc" "src/CMakeFiles/adalsh_clustering.dir/clustering/parent_pointer_forest.cc.o" "gcc" "src/CMakeFiles/adalsh_clustering.dir/clustering/parent_pointer_forest.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
