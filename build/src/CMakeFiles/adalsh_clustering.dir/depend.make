# Empty dependencies file for adalsh_clustering.
# This may be replaced when dependencies are built.
