file(REMOVE_RECURSE
  "libadalsh_clustering.a"
)
