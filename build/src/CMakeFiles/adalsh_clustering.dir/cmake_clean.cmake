file(REMOVE_RECURSE
  "CMakeFiles/adalsh_clustering.dir/clustering/bin_index.cc.o"
  "CMakeFiles/adalsh_clustering.dir/clustering/bin_index.cc.o.d"
  "CMakeFiles/adalsh_clustering.dir/clustering/clustering.cc.o"
  "CMakeFiles/adalsh_clustering.dir/clustering/clustering.cc.o.d"
  "CMakeFiles/adalsh_clustering.dir/clustering/parent_pointer_forest.cc.o"
  "CMakeFiles/adalsh_clustering.dir/clustering/parent_pointer_forest.cc.o.d"
  "libadalsh_clustering.a"
  "libadalsh_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
