# Empty dependencies file for adalsh_core.
# This may be replaced when dependencies are built.
