# Empty compiler generated dependencies file for adalsh_core.
# This may be replaced when dependencies are built.
