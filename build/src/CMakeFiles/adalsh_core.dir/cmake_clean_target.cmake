file(REMOVE_RECURSE
  "libadalsh_core.a"
)
