file(REMOVE_RECURSE
  "CMakeFiles/adalsh_core.dir/core/adaptive_lsh.cc.o"
  "CMakeFiles/adalsh_core.dir/core/adaptive_lsh.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/budget_strategy.cc.o"
  "CMakeFiles/adalsh_core.dir/core/budget_strategy.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/cost_model.cc.o"
  "CMakeFiles/adalsh_core.dir/core/cost_model.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/function_sequence.cc.o"
  "CMakeFiles/adalsh_core.dir/core/function_sequence.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/hash_engine.cc.o"
  "CMakeFiles/adalsh_core.dir/core/hash_engine.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/lsh_blocking.cc.o"
  "CMakeFiles/adalsh_core.dir/core/lsh_blocking.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/pairs_baseline.cc.o"
  "CMakeFiles/adalsh_core.dir/core/pairs_baseline.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/pairwise.cc.o"
  "CMakeFiles/adalsh_core.dir/core/pairwise.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/scheme_optimizer.cc.o"
  "CMakeFiles/adalsh_core.dir/core/scheme_optimizer.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/streaming_adaptive_lsh.cc.o"
  "CMakeFiles/adalsh_core.dir/core/streaming_adaptive_lsh.cc.o.d"
  "CMakeFiles/adalsh_core.dir/core/transitive_hash_function.cc.o"
  "CMakeFiles/adalsh_core.dir/core/transitive_hash_function.cc.o.d"
  "libadalsh_core.a"
  "libadalsh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
