
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_lsh.cc" "src/CMakeFiles/adalsh_core.dir/core/adaptive_lsh.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/adaptive_lsh.cc.o.d"
  "/root/repo/src/core/budget_strategy.cc" "src/CMakeFiles/adalsh_core.dir/core/budget_strategy.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/budget_strategy.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/CMakeFiles/adalsh_core.dir/core/cost_model.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/cost_model.cc.o.d"
  "/root/repo/src/core/function_sequence.cc" "src/CMakeFiles/adalsh_core.dir/core/function_sequence.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/function_sequence.cc.o.d"
  "/root/repo/src/core/hash_engine.cc" "src/CMakeFiles/adalsh_core.dir/core/hash_engine.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/hash_engine.cc.o.d"
  "/root/repo/src/core/lsh_blocking.cc" "src/CMakeFiles/adalsh_core.dir/core/lsh_blocking.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/lsh_blocking.cc.o.d"
  "/root/repo/src/core/pairs_baseline.cc" "src/CMakeFiles/adalsh_core.dir/core/pairs_baseline.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/pairs_baseline.cc.o.d"
  "/root/repo/src/core/pairwise.cc" "src/CMakeFiles/adalsh_core.dir/core/pairwise.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/pairwise.cc.o.d"
  "/root/repo/src/core/scheme_optimizer.cc" "src/CMakeFiles/adalsh_core.dir/core/scheme_optimizer.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/scheme_optimizer.cc.o.d"
  "/root/repo/src/core/streaming_adaptive_lsh.cc" "src/CMakeFiles/adalsh_core.dir/core/streaming_adaptive_lsh.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/streaming_adaptive_lsh.cc.o.d"
  "/root/repo/src/core/transitive_hash_function.cc" "src/CMakeFiles/adalsh_core.dir/core/transitive_hash_function.cc.o" "gcc" "src/CMakeFiles/adalsh_core.dir/core/transitive_hash_function.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
