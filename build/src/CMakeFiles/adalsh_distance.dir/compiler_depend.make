# Empty compiler generated dependencies file for adalsh_distance.
# This may be replaced when dependencies are built.
