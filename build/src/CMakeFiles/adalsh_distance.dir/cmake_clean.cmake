file(REMOVE_RECURSE
  "CMakeFiles/adalsh_distance.dir/distance/collision_model.cc.o"
  "CMakeFiles/adalsh_distance.dir/distance/collision_model.cc.o.d"
  "CMakeFiles/adalsh_distance.dir/distance/cosine.cc.o"
  "CMakeFiles/adalsh_distance.dir/distance/cosine.cc.o.d"
  "CMakeFiles/adalsh_distance.dir/distance/jaccard.cc.o"
  "CMakeFiles/adalsh_distance.dir/distance/jaccard.cc.o.d"
  "CMakeFiles/adalsh_distance.dir/distance/rule.cc.o"
  "CMakeFiles/adalsh_distance.dir/distance/rule.cc.o.d"
  "CMakeFiles/adalsh_distance.dir/distance/rule_parser.cc.o"
  "CMakeFiles/adalsh_distance.dir/distance/rule_parser.cc.o.d"
  "libadalsh_distance.a"
  "libadalsh_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
