file(REMOVE_RECURSE
  "libadalsh_distance.a"
)
