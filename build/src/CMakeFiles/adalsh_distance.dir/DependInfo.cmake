
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distance/collision_model.cc" "src/CMakeFiles/adalsh_distance.dir/distance/collision_model.cc.o" "gcc" "src/CMakeFiles/adalsh_distance.dir/distance/collision_model.cc.o.d"
  "/root/repo/src/distance/cosine.cc" "src/CMakeFiles/adalsh_distance.dir/distance/cosine.cc.o" "gcc" "src/CMakeFiles/adalsh_distance.dir/distance/cosine.cc.o.d"
  "/root/repo/src/distance/jaccard.cc" "src/CMakeFiles/adalsh_distance.dir/distance/jaccard.cc.o" "gcc" "src/CMakeFiles/adalsh_distance.dir/distance/jaccard.cc.o.d"
  "/root/repo/src/distance/rule.cc" "src/CMakeFiles/adalsh_distance.dir/distance/rule.cc.o" "gcc" "src/CMakeFiles/adalsh_distance.dir/distance/rule.cc.o.d"
  "/root/repo/src/distance/rule_parser.cc" "src/CMakeFiles/adalsh_distance.dir/distance/rule_parser.cc.o" "gcc" "src/CMakeFiles/adalsh_distance.dir/distance/rule_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
