file(REMOVE_RECURSE
  "libadalsh_text.a"
)
