# Empty compiler generated dependencies file for adalsh_text.
# This may be replaced when dependencies are built.
