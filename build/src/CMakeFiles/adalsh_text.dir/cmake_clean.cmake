file(REMOVE_RECURSE
  "CMakeFiles/adalsh_text.dir/text/shingle.cc.o"
  "CMakeFiles/adalsh_text.dir/text/shingle.cc.o.d"
  "CMakeFiles/adalsh_text.dir/text/spot_signatures.cc.o"
  "CMakeFiles/adalsh_text.dir/text/spot_signatures.cc.o.d"
  "CMakeFiles/adalsh_text.dir/text/tokenizer.cc.o"
  "CMakeFiles/adalsh_text.dir/text/tokenizer.cc.o.d"
  "libadalsh_text.a"
  "libadalsh_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
