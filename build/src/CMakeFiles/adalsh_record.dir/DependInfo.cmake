
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/record/dataset.cc" "src/CMakeFiles/adalsh_record.dir/record/dataset.cc.o" "gcc" "src/CMakeFiles/adalsh_record.dir/record/dataset.cc.o.d"
  "/root/repo/src/record/field.cc" "src/CMakeFiles/adalsh_record.dir/record/field.cc.o" "gcc" "src/CMakeFiles/adalsh_record.dir/record/field.cc.o.d"
  "/root/repo/src/record/record.cc" "src/CMakeFiles/adalsh_record.dir/record/record.cc.o" "gcc" "src/CMakeFiles/adalsh_record.dir/record/record.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
