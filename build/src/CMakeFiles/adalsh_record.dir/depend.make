# Empty dependencies file for adalsh_record.
# This may be replaced when dependencies are built.
