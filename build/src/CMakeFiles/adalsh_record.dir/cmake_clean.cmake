file(REMOVE_RECURSE
  "CMakeFiles/adalsh_record.dir/record/dataset.cc.o"
  "CMakeFiles/adalsh_record.dir/record/dataset.cc.o.d"
  "CMakeFiles/adalsh_record.dir/record/field.cc.o"
  "CMakeFiles/adalsh_record.dir/record/field.cc.o.d"
  "CMakeFiles/adalsh_record.dir/record/record.cc.o"
  "CMakeFiles/adalsh_record.dir/record/record.cc.o.d"
  "libadalsh_record.a"
  "libadalsh_record.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
