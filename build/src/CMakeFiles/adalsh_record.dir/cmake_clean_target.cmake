file(REMOVE_RECURSE
  "libadalsh_record.a"
)
