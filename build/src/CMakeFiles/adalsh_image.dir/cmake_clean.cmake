file(REMOVE_RECURSE
  "CMakeFiles/adalsh_image.dir/image/histogram.cc.o"
  "CMakeFiles/adalsh_image.dir/image/histogram.cc.o.d"
  "CMakeFiles/adalsh_image.dir/image/image.cc.o"
  "CMakeFiles/adalsh_image.dir/image/image.cc.o.d"
  "CMakeFiles/adalsh_image.dir/image/transforms.cc.o"
  "CMakeFiles/adalsh_image.dir/image/transforms.cc.o.d"
  "libadalsh_image.a"
  "libadalsh_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
