
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/image/histogram.cc" "src/CMakeFiles/adalsh_image.dir/image/histogram.cc.o" "gcc" "src/CMakeFiles/adalsh_image.dir/image/histogram.cc.o.d"
  "/root/repo/src/image/image.cc" "src/CMakeFiles/adalsh_image.dir/image/image.cc.o" "gcc" "src/CMakeFiles/adalsh_image.dir/image/image.cc.o.d"
  "/root/repo/src/image/transforms.cc" "src/CMakeFiles/adalsh_image.dir/image/transforms.cc.o" "gcc" "src/CMakeFiles/adalsh_image.dir/image/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
