# Empty dependencies file for adalsh_image.
# This may be replaced when dependencies are built.
