file(REMOVE_RECURSE
  "libadalsh_image.a"
)
