# Empty dependencies file for adalsh_eval.
# This may be replaced when dependencies are built.
