file(REMOVE_RECURSE
  "CMakeFiles/adalsh_eval.dir/eval/er_pipeline.cc.o"
  "CMakeFiles/adalsh_eval.dir/eval/er_pipeline.cc.o.d"
  "CMakeFiles/adalsh_eval.dir/eval/experiment.cc.o"
  "CMakeFiles/adalsh_eval.dir/eval/experiment.cc.o.d"
  "CMakeFiles/adalsh_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/adalsh_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/adalsh_eval.dir/eval/recovery.cc.o"
  "CMakeFiles/adalsh_eval.dir/eval/recovery.cc.o.d"
  "CMakeFiles/adalsh_eval.dir/eval/speedup.cc.o"
  "CMakeFiles/adalsh_eval.dir/eval/speedup.cc.o.d"
  "libadalsh_eval.a"
  "libadalsh_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adalsh_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
