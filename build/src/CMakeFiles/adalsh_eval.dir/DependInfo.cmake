
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/er_pipeline.cc" "src/CMakeFiles/adalsh_eval.dir/eval/er_pipeline.cc.o" "gcc" "src/CMakeFiles/adalsh_eval.dir/eval/er_pipeline.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/CMakeFiles/adalsh_eval.dir/eval/experiment.cc.o" "gcc" "src/CMakeFiles/adalsh_eval.dir/eval/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/adalsh_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/adalsh_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/recovery.cc" "src/CMakeFiles/adalsh_eval.dir/eval/recovery.cc.o" "gcc" "src/CMakeFiles/adalsh_eval.dir/eval/recovery.cc.o.d"
  "/root/repo/src/eval/speedup.cc" "src/CMakeFiles/adalsh_eval.dir/eval/speedup.cc.o" "gcc" "src/CMakeFiles/adalsh_eval.dir/eval/speedup.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adalsh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_lsh.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_clustering.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_record.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_text.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_image.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adalsh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
