# Empty compiler generated dependencies file for adalsh_eval.
# This may be replaced when dependencies are built.
