file(REMOVE_RECURSE
  "libadalsh_eval.a"
)
