# Empty dependencies file for spot_signatures_test.
# This may be replaced when dependencies are built.
