file(REMOVE_RECURSE
  "CMakeFiles/spot_signatures_test.dir/spot_signatures_test.cc.o"
  "CMakeFiles/spot_signatures_test.dir/spot_signatures_test.cc.o.d"
  "spot_signatures_test"
  "spot_signatures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spot_signatures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
