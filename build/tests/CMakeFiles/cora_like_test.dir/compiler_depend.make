# Empty compiler generated dependencies file for cora_like_test.
# This may be replaced when dependencies are built.
