file(REMOVE_RECURSE
  "CMakeFiles/cora_like_test.dir/cora_like_test.cc.o"
  "CMakeFiles/cora_like_test.dir/cora_like_test.cc.o.d"
  "cora_like_test"
  "cora_like_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cora_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
