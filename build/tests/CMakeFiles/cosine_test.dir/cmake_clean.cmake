file(REMOVE_RECURSE
  "CMakeFiles/cosine_test.dir/cosine_test.cc.o"
  "CMakeFiles/cosine_test.dir/cosine_test.cc.o.d"
  "cosine_test"
  "cosine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
