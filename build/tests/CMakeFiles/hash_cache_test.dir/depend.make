# Empty dependencies file for hash_cache_test.
# This may be replaced when dependencies are built.
