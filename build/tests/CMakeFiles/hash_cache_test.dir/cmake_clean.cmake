file(REMOVE_RECURSE
  "CMakeFiles/hash_cache_test.dir/hash_cache_test.cc.o"
  "CMakeFiles/hash_cache_test.dir/hash_cache_test.cc.o.d"
  "hash_cache_test"
  "hash_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
