file(REMOVE_RECURSE
  "CMakeFiles/budget_strategy_test.dir/budget_strategy_test.cc.o"
  "CMakeFiles/budget_strategy_test.dir/budget_strategy_test.cc.o.d"
  "budget_strategy_test"
  "budget_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/budget_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
