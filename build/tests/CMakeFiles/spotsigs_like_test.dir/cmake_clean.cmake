file(REMOVE_RECURSE
  "CMakeFiles/spotsigs_like_test.dir/spotsigs_like_test.cc.o"
  "CMakeFiles/spotsigs_like_test.dir/spotsigs_like_test.cc.o.d"
  "spotsigs_like_test"
  "spotsigs_like_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spotsigs_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
