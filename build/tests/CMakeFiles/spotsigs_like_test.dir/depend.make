# Empty dependencies file for spotsigs_like_test.
# This may be replaced when dependencies are built.
