# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spotsigs_like_test.
