# Empty dependencies file for scheme_optimizer_test.
# This may be replaced when dependencies are built.
