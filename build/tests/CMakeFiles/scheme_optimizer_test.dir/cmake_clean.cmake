file(REMOVE_RECURSE
  "CMakeFiles/scheme_optimizer_test.dir/scheme_optimizer_test.cc.o"
  "CMakeFiles/scheme_optimizer_test.dir/scheme_optimizer_test.cc.o.d"
  "scheme_optimizer_test"
  "scheme_optimizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheme_optimizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
