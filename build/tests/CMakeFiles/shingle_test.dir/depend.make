# Empty dependencies file for shingle_test.
# This may be replaced when dependencies are built.
