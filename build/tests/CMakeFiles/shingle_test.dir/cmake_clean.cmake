file(REMOVE_RECURSE
  "CMakeFiles/shingle_test.dir/shingle_test.cc.o"
  "CMakeFiles/shingle_test.dir/shingle_test.cc.o.d"
  "shingle_test"
  "shingle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shingle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
