file(REMOVE_RECURSE
  "CMakeFiles/transitive_hash_function_test.dir/transitive_hash_function_test.cc.o"
  "CMakeFiles/transitive_hash_function_test.dir/transitive_hash_function_test.cc.o.d"
  "transitive_hash_function_test"
  "transitive_hash_function_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transitive_hash_function_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
