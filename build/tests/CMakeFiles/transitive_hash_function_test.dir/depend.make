# Empty dependencies file for transitive_hash_function_test.
# This may be replaced when dependencies are built.
