# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for parent_pointer_forest_test.
