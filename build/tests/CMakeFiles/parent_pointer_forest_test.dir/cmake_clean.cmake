file(REMOVE_RECURSE
  "CMakeFiles/parent_pointer_forest_test.dir/parent_pointer_forest_test.cc.o"
  "CMakeFiles/parent_pointer_forest_test.dir/parent_pointer_forest_test.cc.o.d"
  "parent_pointer_forest_test"
  "parent_pointer_forest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parent_pointer_forest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
