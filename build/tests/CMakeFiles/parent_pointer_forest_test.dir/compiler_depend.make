# Empty compiler generated dependencies file for parent_pointer_forest_test.
# This may be replaced when dependencies are built.
