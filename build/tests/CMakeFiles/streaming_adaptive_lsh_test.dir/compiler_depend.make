# Empty compiler generated dependencies file for streaming_adaptive_lsh_test.
# This may be replaced when dependencies are built.
