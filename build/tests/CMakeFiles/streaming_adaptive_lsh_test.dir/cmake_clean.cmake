file(REMOVE_RECURSE
  "CMakeFiles/streaming_adaptive_lsh_test.dir/streaming_adaptive_lsh_test.cc.o"
  "CMakeFiles/streaming_adaptive_lsh_test.dir/streaming_adaptive_lsh_test.cc.o.d"
  "streaming_adaptive_lsh_test"
  "streaming_adaptive_lsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_adaptive_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
