# Empty dependencies file for composite_scheme_test.
# This may be replaced when dependencies are built.
