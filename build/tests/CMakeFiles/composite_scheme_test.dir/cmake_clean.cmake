file(REMOVE_RECURSE
  "CMakeFiles/composite_scheme_test.dir/composite_scheme_test.cc.o"
  "CMakeFiles/composite_scheme_test.dir/composite_scheme_test.cc.o.d"
  "composite_scheme_test"
  "composite_scheme_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/composite_scheme_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
