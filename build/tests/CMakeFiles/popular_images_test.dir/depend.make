# Empty dependencies file for popular_images_test.
# This may be replaced when dependencies are built.
