file(REMOVE_RECURSE
  "CMakeFiles/popular_images_test.dir/popular_images_test.cc.o"
  "CMakeFiles/popular_images_test.dir/popular_images_test.cc.o.d"
  "popular_images_test"
  "popular_images_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/popular_images_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
