# Empty dependencies file for function_sequence_test.
# This may be replaced when dependencies are built.
