file(REMOVE_RECURSE
  "CMakeFiles/function_sequence_test.dir/function_sequence_test.cc.o"
  "CMakeFiles/function_sequence_test.dir/function_sequence_test.cc.o.d"
  "function_sequence_test"
  "function_sequence_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/function_sequence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
