file(REMOVE_RECURSE
  "CMakeFiles/speedup_test.dir/speedup_test.cc.o"
  "CMakeFiles/speedup_test.dir/speedup_test.cc.o.d"
  "speedup_test"
  "speedup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
