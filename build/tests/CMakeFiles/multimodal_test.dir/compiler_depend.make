# Empty compiler generated dependencies file for multimodal_test.
# This may be replaced when dependencies are built.
