file(REMOVE_RECURSE
  "CMakeFiles/multimodal_test.dir/multimodal_test.cc.o"
  "CMakeFiles/multimodal_test.dir/multimodal_test.cc.o.d"
  "multimodal_test"
  "multimodal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multimodal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
