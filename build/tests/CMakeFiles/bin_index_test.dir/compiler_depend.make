# Empty compiler generated dependencies file for bin_index_test.
# This may be replaced when dependencies are built.
