# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bin_index_test.
