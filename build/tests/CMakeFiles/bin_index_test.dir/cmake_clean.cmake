file(REMOVE_RECURSE
  "CMakeFiles/bin_index_test.dir/bin_index_test.cc.o"
  "CMakeFiles/bin_index_test.dir/bin_index_test.cc.o.d"
  "bin_index_test"
  "bin_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bin_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
