# Empty compiler generated dependencies file for er_pipeline_test.
# This may be replaced when dependencies are built.
