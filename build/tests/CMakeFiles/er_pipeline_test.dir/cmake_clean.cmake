file(REMOVE_RECURSE
  "CMakeFiles/er_pipeline_test.dir/er_pipeline_test.cc.o"
  "CMakeFiles/er_pipeline_test.dir/er_pipeline_test.cc.o.d"
  "er_pipeline_test"
  "er_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/er_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
