file(REMOVE_RECURSE
  "CMakeFiles/hash_engine_test.dir/hash_engine_test.cc.o"
  "CMakeFiles/hash_engine_test.dir/hash_engine_test.cc.o.d"
  "hash_engine_test"
  "hash_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hash_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
