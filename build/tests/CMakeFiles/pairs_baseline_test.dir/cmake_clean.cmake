file(REMOVE_RECURSE
  "CMakeFiles/pairs_baseline_test.dir/pairs_baseline_test.cc.o"
  "CMakeFiles/pairs_baseline_test.dir/pairs_baseline_test.cc.o.d"
  "pairs_baseline_test"
  "pairs_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pairs_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
