# Empty dependencies file for pairs_baseline_test.
# This may be replaced when dependencies are built.
