# Empty dependencies file for dataset_loader_test.
# This may be replaced when dependencies are built.
