file(REMOVE_RECURSE
  "CMakeFiles/dataset_loader_test.dir/dataset_loader_test.cc.o"
  "CMakeFiles/dataset_loader_test.dir/dataset_loader_test.cc.o.d"
  "dataset_loader_test"
  "dataset_loader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_loader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
