file(REMOVE_RECURSE
  "CMakeFiles/adaptive_lsh_test.dir/adaptive_lsh_test.cc.o"
  "CMakeFiles/adaptive_lsh_test.dir/adaptive_lsh_test.cc.o.d"
  "adaptive_lsh_test"
  "adaptive_lsh_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_lsh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
