# Empty compiler generated dependencies file for adaptive_lsh_test.
# This may be replaced when dependencies are built.
