// Quickstart: build a tiny dataset by hand, run Adaptive LSH, and print the
// top-k entities. Mirrors the README's first example.
//
//   build/examples/quickstart

#include <iostream>

#include "core/adaptive_lsh.h"
#include "record/dataset.h"
#include "text/shingle.h"

namespace {

using namespace adalsh;  // NOLINT: example brevity

/// A "record" here is a short text snippet; the feature is its word set.
void AddSnippet(Dataset* dataset, EntityId entity, const std::string& text) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(WordShingles(text, 1)));
  dataset->AddRecord(Record({std::move(fields)}, text), entity);
}

}  // namespace

int main() {
  // 1. Assemble records. Entity 0 (a popular story) has four near-copies,
  //    entity 1 has two, the rest are one-off snippets.
  Dataset dataset("quickstart");
  AddSnippet(&dataset, 0, "storm closes mountain pass for third day");
  AddSnippet(&dataset, 0, "storm closes mountain pass for a third day");
  AddSnippet(&dataset, 0, "mountain pass closed by storm for third day");
  AddSnippet(&dataset, 0, "storm closes the mountain pass for third day");
  AddSnippet(&dataset, 1, "city council approves new transit budget");
  AddSnippet(&dataset, 1, "council approves new city transit budget");
  AddSnippet(&dataset, 2, "local bakery wins regional bread award");
  AddSnippet(&dataset, 3, "rare comet visible this weekend say astronomers");
  AddSnippet(&dataset, 4, "library extends weekend opening hours");

  // 2. Declare when two records match: word-set Jaccard similarity >= 0.5,
  //    i.e. Jaccard distance <= 0.5 on field 0.
  MatchRule rule = MatchRule::Leaf(0, 0.5);

  // 3. Run the filtering stage for the top-2 entities.
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;  // budget of the last hashing function
  config.seed = 7;
  AdaptiveLsh adalsh(dataset, rule, config);
  FilterOutput output = adalsh.Run(/*k=*/2);

  // 4. Inspect the result.
  std::cout << "Top-" << output.clusters.clusters.size()
            << " entities (of " << dataset.num_records() << " records):\n";
  for (size_t rank = 0; rank < output.clusters.clusters.size(); ++rank) {
    const std::vector<RecordId>& cluster = output.clusters.clusters[rank];
    std::cout << "#" << (rank + 1) << " — " << cluster.size()
              << " records:\n";
    for (RecordId r : cluster) {
      std::cout << "    " << dataset.record(r).label() << "\n";
    }
  }
  std::cout << "rounds=" << output.stats.rounds
            << " hashes=" << output.stats.hashes_computed
            << " pairwise=" << output.stats.pairwise_similarities << "\n";
  return 0;
}
