// Most-cited-publication discovery over noisy citation strings (the paper's
// Cora scenario): multi-field records matched with the combined rule of
// Appendix C — AND(average Jaccard of title+author >= 0.7, rest >= 0.2).
// Also demonstrates the bk-clusters and perfect-recovery accuracy boosters
// of Section 6.1.2.
//
//   build/examples/publications_topk [--k=5] [--bk=10]

#include <iostream>

#include "core/adaptive_lsh.h"
#include "datagen/cora_like.h"
#include "eval/metrics.h"
#include "eval/recovery.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;  // NOLINT: example brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  int bk = static_cast<int>(flags.GetInt("bk", 10));
  flags.CheckNoUnusedFlags();

  CoraLikeConfig data_config;
  data_config.seed = 77;
  GeneratedDataset generated = GenerateCoraLike(data_config);
  const Dataset& dataset = generated.dataset;
  GroundTruth truth = dataset.BuildGroundTruth();
  std::cout << "Citation corpus: " << dataset.num_records() << " records, "
            << truth.num_entities() << " publications\n";
  std::cout << "Match rule: " << generated.rule.DebugString() << "\n";

  AdaptiveLshConfig config;
  config.seed = 11;
  AdaptiveLsh adalsh(dataset, generated.rule, config);

  // Plain top-k filtering.
  FilterOutput at_k = adalsh.Run(k);
  SetAccuracy gold_k = GoldAccuracy(at_k.clusters, truth, k);
  std::cout << "\nk=" << k << ": F1 Gold " << gold_k.f1 << " (P="
            << gold_k.precision << ", R=" << gold_k.recall << ")\n";

  // Booster 1: return bk > k clusters — recall rises, precision pays.
  FilterOutput at_bk = adalsh.Run(bk);
  SetAccuracy gold_bk = GoldAccuracy(at_bk.clusters, truth, k);
  std::cout << "bk=" << bk << ": recall " << gold_k.recall << " -> "
            << gold_bk.recall << ", precision " << gold_k.precision << " -> "
            << gold_bk.precision << "\n";

  // Booster 2: perfect recovery over the bk output.
  Clustering recovered =
      PerfectRecovery(at_bk.clusters.UnionOfTopClusters(bk), truth);
  RankedAccuracy ranked = ComputeRankedAccuracy(recovered, truth, k);
  std::cout << "after recovery: mAP=" << ranked.map << " mAR=" << ranked.mar
            << "\n";

  std::cout << "\nTop publications:\n";
  for (size_t rank = 0; rank < at_k.clusters.clusters.size(); ++rank) {
    const auto& cluster = at_k.clusters.clusters[rank];
    std::cout << "  #" << (rank + 1) << ": " << cluster.size()
              << " citations of '" << dataset.record(cluster[0]).label()
              << "'\n";
  }
  return 0;
}
