// News-story deduplication (the paper's SpotSigs scenario, Section 1):
// thousands of web articles, many of them near-copies of a few popular
// stories. The example finds the k most-republished stories without
// resolving the whole corpus, then shows the accuracy and modeled speedup.
//
//   build/examples/news_dedup [--k=5] [--articles=2200] [--scale=1]

#include <iostream>

#include "core/adaptive_lsh.h"
#include "core/pairs_baseline.h"
#include "datagen/spotsigs_like.h"
#include "eval/metrics.h"
#include "eval/speedup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;  // NOLINT: example brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  int articles = static_cast<int>(flags.GetInt("articles", 2200));
  flags.CheckNoUnusedFlags();

  // Generate a synthetic web-article corpus: stories with near-duplicate
  // copies (spot-signature features) plus unrelated singleton articles.
  SpotSigsLikeConfig data_config;
  data_config.records_in_stories = articles * 2 / 3;
  data_config.num_singletons = articles - data_config.records_in_stories;
  data_config.seed = 2024;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);
  const Dataset& dataset = generated.dataset;
  GroundTruth truth = dataset.BuildGroundTruth();
  std::cout << "Corpus: " << dataset.num_records() << " articles, "
            << truth.num_entities() << " distinct stories\n";

  // Filter with Adaptive LSH.
  AdaptiveLshConfig config;
  config.seed = 1;
  AdaptiveLsh adalsh(dataset, generated.rule, config);
  FilterOutput output = adalsh.Run(k);

  std::cout << "\nTop-" << k << " stories by republication count:\n";
  for (size_t rank = 0; rank < output.clusters.clusters.size(); ++rank) {
    const auto& cluster = output.clusters.clusters[rank];
    std::cout << "  #" << (rank + 1) << ": " << cluster.size()
              << " copies (e.g. record '" << dataset.record(cluster[0]).label()
              << "')\n";
  }

  // How good was the filtering, and what did it buy?
  SetAccuracy gold = GoldAccuracy(output.clusters, truth, k);
  SpeedupModel speedup = SpeedupModel::Measure(dataset, generated.rule, 100, 3);
  size_t kept = output.clusters.TotalRecords();
  std::cout << "\nFiltering accuracy vs ground truth: P="
            << gold.precision << " R=" << gold.recall << " F1=" << gold.f1
            << "\n";
  std::cout << "Kept " << kept << "/" << dataset.num_records() << " records ("
            << DatasetReductionPercent(kept, dataset.num_records())
            << "% of the corpus)\n";
  std::cout << "Modeled end-to-end ER speedup (no recovery): "
            << speedup.SpeedupWithoutRecovery(output.stats.filtering_seconds,
                                              dataset.num_records(), kept)
            << "x\n";
  return 0;
}
