// Online monitoring (the paper's Section 9 future-work direction, implemented
// as StreamingAdaptiveLsh): articles arrive over time; after every batch the
// monitor asks for the current top-k stories. Arrivals only pay the cheapest
// hashing function; each TopK() reuses all verification work done before.
//
//   build/examples/streaming_monitor [--k=3] [--batches=6]

#include <iostream>

#include "core/streaming_adaptive_lsh.h"
#include "datagen/spotsigs_like.h"
#include "util/flags.h"
#include "util/rng.h"

int main(int argc, char** argv) {
  using namespace adalsh;  // NOLINT: example brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 3));
  int batches = static_cast<int>(flags.GetInt("batches", 6));
  flags.CheckNoUnusedFlags();

  // The "future" corpus: we generate it up front (the Dataset is the record
  // store) but reveal records to the monitor in random arrival order.
  SpotSigsLikeConfig data_config;
  data_config.records_in_stories = 900;
  data_config.num_singletons = 500;
  data_config.seed = 11;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);
  const Dataset& dataset = generated.dataset;
  std::vector<RecordId> arrival_order = dataset.AllRecordIds();
  Rng rng(99);
  rng.Shuffle(&arrival_order);

  AdaptiveLshConfig config;
  config.seed = 4;
  StreamingAdaptiveLsh monitor(dataset, generated.rule, config);

  size_t per_batch = arrival_order.size() / batches;
  size_t next = 0;
  for (int batch = 1; batch <= batches; ++batch) {
    size_t end = batch == batches ? arrival_order.size()
                                  : next + per_batch;
    while (next < end) monitor.Add(arrival_order[next++]);

    FilterOutput top = monitor.TopK(k);
    std::cout << "after " << monitor.num_added() << " arrivals, top-" << k
              << " stories:";
    for (const auto& cluster : top.clusters.clusters) {
      std::cout << "  " << cluster.size() << " copies("
                << dataset.record(cluster[0]).label() << ")";
    }
    std::cout << "\n  [topk cost: " << top.stats.hashes_computed
              << " new hashes, " << top.stats.pairwise_similarities
              << " new similarities]\n";
  }
  return 0;
}
