// Online monitoring (the paper's Section 9 future-work direction, implemented
// as StreamingAdaptiveLsh): articles arrive over time; after every batch the
// monitor asks for the current top-k stories. Arrivals only pay the cheapest
// hashing function; each TopK() reuses all verification work done before.
//
// The monitor also demonstrates the observability layer (obs/observer.h): a
// custom Observer narrates every refinement round as it happens, and a
// MetricsRegistry accumulates counters across the whole stream, printed as a
// final snapshot.
//
//   build/examples/streaming_monitor [--k=3] [--batches=6] [--narrate]

#include <iostream>

#include "core/streaming_adaptive_lsh.h"
#include "datagen/spotsigs_like.h"
#include "obs/metrics_registry.h"
#include "obs/observer.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace adalsh;  // NOLINT: example brevity

// Narrates each refinement round to stderr: which cluster was picked and
// what treating it cost. Callbacks fire on the thread driving TopK(), so no
// locking is needed.
class RoundNarrator : public Observer {
 public:
  void OnRoundStart(const RoundStartInfo& info) override {
    std::cerr << "    round " << info.round << ": cluster of "
              << info.cluster_size << " records (level "
              << info.producer << ") -> ";
  }

  void OnRoundEnd(const RoundRecord& record) override {
    if (record.action == RoundAction::kPairwise) {
      std::cerr << "P, " << record.pairwise_similarities << " similarities";
    } else {
      std::cerr << "H_" << record.function_index + 1 << ", "
                << record.hashes_computed << " hashes";
    }
    std::cerr << " (" << record.wall_seconds << "s)\n";
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 3));
  int batches = static_cast<int>(flags.GetInt("batches", 6));
  bool narrate = flags.GetBool("narrate", false);
  flags.CheckNoUnusedFlags();

  // The "future" corpus: we generate it up front (the Dataset is the record
  // store) but reveal records to the monitor in random arrival order.
  SpotSigsLikeConfig data_config;
  data_config.records_in_stories = 900;
  data_config.num_singletons = 500;
  data_config.seed = 11;
  GeneratedDataset generated = GenerateSpotSigsLike(data_config);
  const Dataset& dataset = generated.dataset;
  std::vector<RecordId> arrival_order = dataset.AllRecordIds();
  Rng rng(99);
  rng.Shuffle(&arrival_order);

  MetricsRegistry metrics;
  RoundNarrator narrator;
  AdaptiveLshConfig config;
  config.seed = 4;
  config.instrumentation.metrics = &metrics;
  if (narrate) config.instrumentation.observer = &narrator;
  StreamingAdaptiveLsh monitor(dataset, generated.rule, config);

  size_t per_batch = arrival_order.size() / batches;
  size_t next = 0;
  for (int batch = 1; batch <= batches; ++batch) {
    size_t end = batch == batches ? arrival_order.size()
                                  : next + per_batch;
    while (next < end) monitor.Add(arrival_order[next++]);

    FilterOutput top = monitor.TopK(k);
    std::cout << "after " << monitor.num_added() << " arrivals, top-" << k
              << " stories:";
    for (const auto& cluster : top.clusters.clusters) {
      std::cout << "  " << cluster.size() << " copies("
                << dataset.record(cluster[0]).label() << ")";
    }
    std::cout << "\n  [topk cost: " << top.stats.hashes_computed
              << " new hashes, " << top.stats.pairwise_similarities
              << " new similarities, " << top.stats.rounds << " rounds]\n";
  }

  // Whole-stream metrics, aggregated across every TopK() call.
  MetricsSnapshot snapshot = metrics.Snapshot();
  std::cout << "stream metrics:\n";
  for (const auto& [name, value] : snapshot.counters) {
    std::cout << "  " << name << " = " << value << "\n";
  }
  for (const auto& [name, stats] : snapshot.distributions) {
    std::cout << "  " << name << ": n=" << stats.count()
              << " mean=" << stats.mean() << " max=" << stats.max() << "\n";
  }
  return 0;
}
