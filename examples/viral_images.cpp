// Viral-image detection (the paper's second motivating application):
// images are copied with transformations (crop / scale / re-center) and
// re-shared; the k most-shared originals are found by filtering RGB-histogram
// features under a small cosine-angle threshold. Demonstrates the incremental
// mode of Section 4.2: the biggest viral image is reported first, before
// filtering completes.
//
//   build/examples/viral_images [--k=3] [--records=3000] [--zipf=1.1]

#include <iostream>

#include "core/adaptive_lsh.h"
#include "datagen/popular_images.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;  // NOLINT: example brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 3));
  size_t records = static_cast<size_t>(flags.GetInt("records", 3000));
  double zipf = flags.GetDouble("zipf", 1.1);
  flags.CheckNoUnusedFlags();

  PopularImagesConfig data_config;
  data_config.num_records = records;
  data_config.num_entities = std::max<size_t>(50, records / 20);
  data_config.zipf_exponent = zipf;
  data_config.angle_threshold_degrees = 3.0;
  data_config.seed = 99;
  std::cout << "Generating " << records << " shared images ("
            << data_config.num_entities << " originals, zipf " << zipf
            << ")...\n";
  GeneratedDataset generated = GeneratePopularImages(data_config);
  const Dataset& dataset = generated.dataset;

  AdaptiveLshConfig config;
  config.seed = 5;
  AdaptiveLsh adalsh(dataset, generated.rule, config);

  // Incremental mode: act on each viral image the moment it is identified.
  std::cout << "\nStreaming results as they finalize:\n";
  FilterOutput output = adalsh.Run(
      k, [&](size_t rank, const std::vector<RecordId>& cluster) {
        std::cout << "  [live] rank " << (rank + 1) << ": " << cluster.size()
                  << " shares of " << dataset.record(cluster[0]).label()
                  << "\n";
      });

  GroundTruth truth = dataset.BuildGroundTruth();
  RankedAccuracy ranked = ComputeRankedAccuracy(output.clusters, truth, k);
  std::cout << "\nFinal: " << output.clusters.clusters.size()
            << " clusters in " << output.stats.filtering_seconds << "s, "
            << output.stats.rounds << " rounds\n";
  std::cout << "mAP=" << ranked.map << " mAR=" << ranked.mar << "\n";
  return 0;
}
