// Micro-benchmarks for the exact side of the system, written as a JSON
// baseline (BENCH_pairwise.json) so perf regressions are diffable:
//
//   * kernel: single-pair rule evaluations (the cost_P unit of Definition 3)
//     through the scalar path (MatchRule::Matches — per-pair norms, acos,
//     record/field lookups) versus the cached path (RuleEvaluator over a
//     FeatureCache — cached norms, threshold-aware kernels), plus the cached
//     path pinned to each supported SIMD dispatch target; every path must
//     make identical per-pass match decisions (asserted, even in --smoke);
//   * engine: the full P function with transitive-closure skipping
//     (PairwiseComputer::Apply) across thread counts.
//
// Flags:
//   --out=PATH   where to write the JSON document (default
//                BENCH_pairwise.json in the working directory)
//   --smoke      tiny workloads and time budgets; used by the bench_smoke
//                ctest target to validate the schema, not to measure

#include <cstdint>
#include <fstream>
#include <vector>

#include "bench_util.h"
#include "core/pairwise.h"
#include "datagen/cora_like.h"
#include "datagen/multimodal.h"
#include "datagen/popular_images.h"
#include "distance/feature_cache.h"
#include "distance/rule_evaluator.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "util/flags.h"
#include "util/numeric.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {
namespace {

struct PairList {
  std::vector<RecordId> a;
  std::vector<RecordId> b;
};

PairList RandomPairs(size_t num_records, size_t count, uint64_t seed) {
  PairList pairs;
  pairs.a.reserve(count);
  pairs.b.reserve(count);
  Rng rng(seed);
  for (size_t i = 0; i < count; ++i) {
    RecordId a = static_cast<RecordId>(rng.NextBelow(num_records));
    RecordId b = static_cast<RecordId>(rng.NextBelow(num_records - 1));
    if (b >= a) ++b;
    pairs.a.push_back(a);
    pairs.b.push_back(b);
  }
  return pairs;
}

// One counting pass over the pair list. Decision equivalence across
// evaluation paths is asserted on these per-pass counts — the old bench
// reported counts accumulated over however many timed passes each path ran,
// which made scalar_matches and cached_matches incomparable numbers.
template <typename Evaluate>
uint64_t CountMatches(const PairList& pairs, Evaluate&& evaluate) {
  uint64_t matches = 0;
  for (size_t i = 0; i < pairs.a.size(); ++i) {
    matches += evaluate(i) ? 1 : 0;
  }
  return matches;
}

// Repeats `evaluate(pair index)` over the pair list until `min_seconds` of
// wall clock accumulated; returns evaluations per second. The match sink
// defeats dead-code elimination; cross-checking it against the per-pass
// count also catches an evaluation path that is nondeterministic across
// passes.
template <typename Evaluate>
double MeasurePairsPerSecond(const PairList& pairs, double min_seconds,
                             uint64_t matches_per_pass, Evaluate&& evaluate) {
  uint64_t matches = 0;
  uint64_t passes = 0;
  Timer timer;
  do {
    for (size_t i = 0; i < pairs.a.size(); ++i) {
      matches += evaluate(i) ? 1 : 0;
    }
    ++passes;
  } while (timer.ElapsedSeconds() < min_seconds);
  ADALSH_CHECK_EQ(matches, passes * matches_per_pass)
      << "evaluation path changed its decisions between passes";
  return static_cast<double>(passes * pairs.a.size()) /
         timer.ElapsedSeconds();
}

void BenchWorkload(const GeneratedDataset& workload, const std::string& name,
                   bool smoke, const std::vector<int64_t>& thread_counts,
                   bench::JsonWriter* json) {
  const size_t n = workload.dataset.num_records();
  const double kernel_seconds = smoke ? 0.01 : 0.5;
  const double engine_seconds = smoke ? 0.01 : 0.3;

  json->BeginObject().Key("name").String(name).Key("num_records").Uint(n);

  // --- Kernel: scalar vs cached on the same random pair list, and the
  // cached path once per supported SIMD dispatch target. The equivalence
  // checks run in smoke mode too: the two paths — and every dispatch
  // target — must make identical decisions on every pair (docs/simd.md). ---
  PairList pairs = RandomPairs(n, smoke ? 2000 : 100000, /*seed=*/3);
  FeatureCache cache(workload.dataset);
  RuleEvaluator evaluator(workload.rule, cache);
  auto scalar_eval = [&](size_t i) {
    return workload.rule.Matches(workload.dataset.record(pairs.a[i]),
                                 workload.dataset.record(pairs.b[i]));
  };
  auto cached_eval = [&](size_t i) {
    return evaluator.Matches(pairs.a[i], pairs.b[i]);
  };
  const uint64_t scalar_matches = CountMatches(pairs, scalar_eval);
  const uint64_t cached_matches = CountMatches(pairs, cached_eval);
  ADALSH_CHECK_EQ(scalar_matches, cached_matches)
      << name << ": cached evaluator diverged from MatchRule::Matches";
  double scalar_rate = MeasurePairsPerSecond(pairs, kernel_seconds,
                                             scalar_matches, scalar_eval);
  double cached_rate = MeasurePairsPerSecond(pairs, kernel_seconds,
                                             cached_matches, cached_eval);
  json->Key("kernel")
      .BeginObject()
      .Key("scalar_pairs_per_second")
      .Double(scalar_rate)
      .Key("cached_pairs_per_second")
      .Double(cached_rate)
      .Key("cached_speedup")
      .Double(cached_rate / scalar_rate)
      .Key("scalar_matches")
      .Uint(scalar_matches)
      .Key("cached_matches")
      .Uint(cached_matches)
      .Key("simd")
      .BeginArray();
  for (SimdLevel level : SupportedSimdLevels()) {
    int previous = SetSimdPin(static_cast<int>(level));
    const uint64_t level_matches = CountMatches(pairs, cached_eval);
    ADALSH_CHECK_EQ(level_matches, scalar_matches)
        << name << ": dispatch target " << SimdLevelName(level)
        << " diverged from the scalar reference";
    double level_rate = MeasurePairsPerSecond(pairs, kernel_seconds,
                                              level_matches, cached_eval);
    SetSimdPin(previous);
    json->BeginObject()
        .Key("level")
        .String(SimdLevelName(level))
        .Key("cached_pairs_per_second")
        .Double(level_rate)
        .Key("matches")
        .Uint(level_matches)
        .EndObject();
  }
  json->EndArray().EndObject();

  // --- Engine: the full P sweep across thread counts. The nominal pair
  // count n*(n-1)/2 is the unit, so closure skipping shows up as rate, and
  // rates are comparable across thread counts (the evaluated set is
  // identical by the determinism contract). ---
  std::vector<RecordId> records = workload.dataset.AllRecordIds();
  auto measure_sweep = [&](PairwiseComputer* computer, uint64_t* sweeps_out) {
    uint64_t sweeps = 0;
    Timer timer;
    do {
      ParentPointerForest forest;
      computer->Apply(records, &forest);
      ++sweeps;
    } while (timer.ElapsedSeconds() < engine_seconds);
    *sweeps_out = sweeps;
    return timer.ElapsedSeconds() / static_cast<double>(sweeps);
  };
  json->Key("engine").BeginArray();
  for (int64_t threads : thread_counts) {
    ScopedThreadPool pool(static_cast<int>(threads));
    PairwiseComputer computer(workload.dataset, workload.rule, pool.get());
    uint64_t sweeps = 0;
    double seconds = measure_sweep(&computer, &sweeps);
    json->BeginObject()
        .Key("threads")
        .Int(threads)
        .Key("seconds_per_sweep")
        .Double(seconds)
        .Key("pairs_per_second")
        .Double(static_cast<double>(PairCount(n)) / seconds)
        .Key("total_similarities")
        .Uint(computer.total_similarities() / sweeps)
        .EndObject();
  }
  json->EndArray();

  // --- Instrumentation overhead: the same serial sweep plain vs with a
  // MetricsRegistry attached. Counters are touched once per Apply (never per
  // pair), so the ratio should hold within noise of 1.0; the acceptance bound
  // is <= 3% overhead. The two variants alternate sweep-by-sweep and are
  // timed with the per-thread CPU clock (the sweeps are serial), so scheduler
  // preemption and frequency drift cancel out of the ratio. The snapshot is
  // emitted so the baseline also records the instrumented view's counters. ---
  {
    PairwiseComputer plain(workload.dataset, workload.rule, /*pool=*/nullptr);
    MetricsRegistry registry;
    Instrumentation instr;
    instr.metrics = &registry;
    PairwiseComputer instrumented(workload.dataset, workload.rule,
                                  /*pool=*/nullptr, instr);

    auto one_sweep = [&](PairwiseComputer* computer) {
      ParentPointerForest forest;
      double cpu_before = Timer::ThreadCpuSeconds();
      Timer timer;
      computer->Apply(records, &forest);
      double cpu = Timer::ThreadCpuSeconds() - cpu_before;
      // Fall back to wall time where the thread CPU clock is unavailable.
      return cpu > 0.0 ? cpu : timer.ElapsedSeconds();
    };
    double plain_total = 0.0;
    double instr_total = 0.0;
    uint64_t sweeps = 0;
    Timer budget;
    do {
      plain_total += one_sweep(&plain);
      instr_total += one_sweep(&instrumented);
      ++sweeps;
    } while (budget.ElapsedSeconds() < 2.0 * engine_seconds);
    double plain_seconds = plain_total / static_cast<double>(sweeps);
    double instr_seconds = instr_total / static_cast<double>(sweeps);

    MetricsSnapshot snapshot = registry.Snapshot();
    json->Key("instrumentation")
        .BeginObject()
        .Key("plain_seconds_per_sweep")
        .Double(plain_seconds)
        .Key("instrumented_seconds_per_sweep")
        .Double(instr_seconds)
        .Key("overhead_ratio")
        .Double(instr_seconds / plain_seconds)
        .Key("metrics");
    AppendMetricsSnapshot(snapshot, json);
    json->EndObject();
  }
  json->EndObject();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_pairwise.json");
  const bool smoke = flags.GetBool("smoke", false);
  flags.CheckNoUnusedFlags();

  std::vector<int64_t> thread_counts =
      smoke ? std::vector<int64_t>{1, 2} : std::vector<int64_t>{1, 2, 4, 8};

  bench::JsonWriter json;
  json.BeginObject()
      .Key("benchmark")
      .String("micro_pairwise")
      .Key("smoke")
      .Bool(smoke)
      .Key("workloads")
      .BeginArray();

  {
    // Dense workload: one 64-dimensional histogram field under cosine
    // distance — the kernel the cached-norm dot product targets.
    PopularImagesConfig config;
    config.num_entities = smoke ? 10 : 80;
    config.num_records = smoke ? 80 : 800;
    config.seed = bench::kDataSeed;
    GeneratedDataset workload = GeneratePopularImages(config);
    BenchWorkload(workload, "popular_images_dense", smoke, thread_counts,
                  &json);
  }
  {
    // Token workload: shingled citation strings under Jaccard distance —
    // exercises the threshold-aware merge kernel.
    CoraLikeConfig config;
    config.num_entities = smoke ? 12 : 80;
    config.num_records = smoke ? 80 : 800;
    config.seed = bench::kDataSeed;
    GeneratedDataset workload = GenerateCoraLike(config);
    BenchWorkload(workload, "cora_like_tokens", smoke, thread_counts, &json);
  }
  if (!smoke) {
    // Multimodal OR rule: non-matching pairs pay for both the dense and the
    // token kernel — the evaluation-heavy regime the parallel sweep targets.
    MultiModalConfig config;
    config.num_entities = 80;
    config.num_records = 800;
    config.seed = bench::kDataSeed;
    GeneratedDataset workload = GenerateMultiModal(config);
    BenchWorkload(workload, "multimodal_or", smoke, thread_counts, &json);
  }

  json.EndArray().EndObject();
  std::string doc = json.TakeString();
  std::ofstream file(out);
  ADALSH_CHECK(file.good()) << "cannot open " << out;
  file << doc;
  ADALSH_CHECK(file.good()) << "failed writing " << out;
  std::cout << doc;
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace adalsh

int main(int argc, char** argv) { return adalsh::Main(argc, argv); }
