// Micro-benchmarks for the exact side of the system: pairwise rule
// evaluations (the cost_P unit of Definition 3) and the full P function with
// transitive-closure skipping.

#include <benchmark/benchmark.h>

#include "core/pairwise.h"
#include "datagen/cora_like.h"
#include "datagen/spotsigs_like.h"
#include "util/rng.h"

namespace adalsh {
namespace {

const GeneratedDataset& SpotSigsWorkload() {
  static GeneratedDataset* workload = [] {
    SpotSigsLikeConfig config;
    config.num_story_entities = 20;
    config.records_in_stories = 300;
    config.num_singletons = 200;
    config.seed = 1;
    return new GeneratedDataset(GenerateSpotSigsLike(config));
  }();
  return *workload;
}

const GeneratedDataset& CoraWorkload() {
  static GeneratedDataset* workload = [] {
    CoraLikeConfig config;
    config.num_entities = 60;
    config.num_records = 500;
    config.seed = 1;
    return new GeneratedDataset(GenerateCoraLike(config));
  }();
  return *workload;
}

void BM_RuleEvaluationSpotSigs(benchmark::State& state) {
  const GeneratedDataset& workload = SpotSigsWorkload();
  Rng rng(3);
  size_t n = workload.dataset.num_records();
  int matches = 0;
  for (auto _ : state) {
    RecordId a = static_cast<RecordId>(rng.NextBelow(n));
    RecordId b = static_cast<RecordId>(rng.NextBelow(n));
    matches += workload.rule.Matches(workload.dataset.record(a),
                                     workload.dataset.record(b));
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_RuleEvaluationSpotSigs);

void BM_RuleEvaluationCora(benchmark::State& state) {
  const GeneratedDataset& workload = CoraWorkload();
  Rng rng(4);
  size_t n = workload.dataset.num_records();
  int matches = 0;
  for (auto _ : state) {
    RecordId a = static_cast<RecordId>(rng.NextBelow(n));
    RecordId b = static_cast<RecordId>(rng.NextBelow(n));
    matches += workload.rule.Matches(workload.dataset.record(a),
                                     workload.dataset.record(b));
    benchmark::DoNotOptimize(matches);
  }
}
BENCHMARK(BM_RuleEvaluationCora);

void BM_PairwiseFunction(benchmark::State& state) {
  const GeneratedDataset& workload = CoraWorkload();
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<RecordId> records;
  for (size_t r = 0; r < n; ++r) records.push_back(static_cast<RecordId>(r));
  for (auto _ : state) {
    ParentPointerForest forest;
    PairwiseComputer pairwise(workload.dataset, workload.rule);
    benchmark::DoNotOptimize(pairwise.Apply(records, &forest));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n * (n - 1) / 2));
}
BENCHMARK(BM_PairwiseFunction)->Arg(50)->Arg(200)->Arg(500);

}  // namespace
}  // namespace adalsh
