// Micro-benchmarks for the raw LSH hashing substrate, written as a JSON
// baseline (BENCH_hashing.json) so perf regressions are diffable:
//
//   * minhash / hyperplane: per-hash throughput of MinHash (token sets of
//     varying size) and random hyperplanes (dense vectors of varying
//     dimension) — the cost_i units the Definition 3 cost model calibrates;
//   * engine: the full Cora-like hash hot path (engine + caches) across
//     worker-thread counts, the incremental work pattern of a sequence step,
//     with a metrics-registry snapshot proving the counter deltas match the
//     engine's own accounting.
//
// Flags:
//   --out=PATH   where to write the JSON document (default
//                BENCH_hashing.json in the working directory)
//   --smoke      tiny workloads and time budgets; used by the hashing_smoke
//                ctest target to validate the schema, not to measure

#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <span>
#include <vector>

#include "bench_util.h"
#include "core/hash_engine.h"
#include "datagen/cora_like.h"
#include "lsh/composite_scheme.h"
#include "lsh/hash_family.h"
#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "obs/metrics_registry.h"
#include "obs/run_report.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/simd_kernels.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace adalsh {
namespace {

Record TokenRecordOfSize(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) tokens.push_back(rng.Next());
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields));
}

Record DenseRecordOfDim(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(dim);
  for (float& v : values) v = static_cast<float>(rng.NextGaussian());
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector(std::move(values)));
  return Record(std::move(fields));
}

// Repeats kBatch-hash HashRange calls on `family` until `min_seconds` of
// wall clock accumulated; returns hashes per second. `max_offset` bounds the
// requested prefix so families with materialized parameters (hyperplanes)
// cycle over a warmed pool instead of growing without bound.
double MeasureHashesPerSecond(HashFamily* family, const Record& record,
                              double min_seconds, size_t max_offset) {
  constexpr size_t kBatch = 64;
  {
    // Warm up the full parameter pool so the timed loop measures hashing,
    // not lazy parameter generation.
    std::vector<uint64_t> warmup(max_offset);
    family->HashRange(record, 0, max_offset, warmup.data());
  }
  std::vector<uint64_t> out(kBatch);
  size_t offset = 0;
  uint64_t hashes = 0;
  Timer timer;
  do {
    family->HashRange(record, offset, offset + kBatch, out.data());
    hashes += kBatch;
    offset = (offset + kBatch) % (max_offset - kBatch);
  } while (timer.ElapsedSeconds() < min_seconds);
  return static_cast<double>(hashes) / timer.ElapsedSeconds();
}

// Folds a fixed hash prefix into one checksum. The SIMD levels are certified
// bit-identical (docs/simd.md), so every pinned level must produce the same
// checksum before its throughput is worth reporting.
uint64_t HashChecksum(HashFamily* family, const Record& record, size_t count) {
  std::vector<uint64_t> out(count);
  family->HashRange(record, 0, count, out.data());
  uint64_t sum = 0;
  for (uint64_t h : out) sum = SplitMix64(sum ^ h);
  return sum;
}

// Per-SIMD-level rates for one family/record workload, emitted as a "simd"
// array next to the auto-dispatch rate. Asserts level equivalence first.
void AppendPerLevelRates(HashFamily* family, const Record& record,
                         double min_seconds, bench::JsonWriter* json) {
  const uint64_t reference = HashChecksum(family, record, 256);
  json->Key("simd").BeginArray();
  for (SimdLevel level : SupportedSimdLevels()) {
    int previous = SetSimdPin(static_cast<int>(level));
    ADALSH_CHECK_EQ(HashChecksum(family, record, 256), reference)
        << "hash outputs diverged on level " << SimdLevelName(level);
    double rate = MeasureHashesPerSecond(family, record, min_seconds, 4096);
    SetSimdPin(previous);
    json->BeginObject()
        .Key("level")
        .String(SimdLevelName(level))
        .Key("hashes_per_second")
        .Double(rate)
        .EndObject();
  }
  json->EndArray();
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_hashing.json");
  const bool smoke = flags.GetBool("smoke", false);
  flags.CheckNoUnusedFlags();

  const double family_seconds = smoke ? 0.01 : 0.3;
  const double engine_seconds = smoke ? 0.01 : 0.3;

  bench::JsonWriter json;
  json.BeginObject()
      .Key("benchmark")
      .String("micro_hashing")
      .Key("smoke")
      .Bool(smoke);

  // Record what auto dispatch resolved to on this machine, so a committed
  // baseline says which kernels its numbers were measured with.
  json.Key("simd_active")
      .BeginObject()
      .Key("dot")
      .String(SimdLevelName(simd::ActiveDotLevel()))
      .Key("minhash")
      .String(SimdLevelName(simd::ActiveMinHashLevel()))
      .EndObject();

  // --- MinHash throughput by token-set size. ---
  json.Key("minhash").BeginArray();
  for (size_t set_size : {size_t{16}, size_t{64}, size_t{128}, size_t{256}}) {
    Record record = TokenRecordOfSize(set_size, 1);
    MinHashFamily family(0, 42);
    double rate =
        MeasureHashesPerSecond(&family, record, family_seconds, 4096);
    json.BeginObject()
        .Key("set_size")
        .Uint(set_size)
        .Key("hashes_per_second")
        .Double(rate);
    AppendPerLevelRates(&family, record, family_seconds, &json);
    json.EndObject();
  }
  json.EndArray();

  // --- Random-hyperplane throughput by vector dimension. ---
  json.Key("hyperplane").BeginArray();
  for (size_t dim : {size_t{64}, size_t{512}}) {
    Record record = DenseRecordOfDim(dim, 2);
    RandomHyperplaneFamily family(0, dim, 42);
    double rate =
        MeasureHashesPerSecond(&family, record, family_seconds, 4096);
    json.BeginObject()
        .Key("dim")
        .Uint(dim)
        .Key("hashes_per_second")
        .Double(rate);
    AppendPerLevelRates(&family, record, family_seconds, &json);
    json.EndObject();
  }
  json.EndArray();

  // --- Engine: the Cora-like hash hot path across thread counts. Each
  // iteration extends every record's per-unit prefix by kStep hashes — the
  // exact incremental work pattern of a sequence step. A MetricsRegistry is
  // attached so the baseline captures the instrumented counter deltas; the
  // snapshot's hashes_computed must equal the engine's own accounting. ---
  CoraLikeConfig config;
  config.num_entities = smoke ? 12 : 120;
  config.num_records = smoke ? 100 : 1000;
  config.seed = bench::kDataSeed;
  GeneratedDataset generated = GenerateCoraLike(config);
  StatusOr<RuleHashStructure> structure =
      CompileRuleForHashing(generated.rule);
  ADALSH_CHECK(structure.ok()) << structure.status().ToString();
  const std::vector<RecordId> ids = generated.dataset.AllRecordIds();

  constexpr size_t kStep = 16;
  const size_t max_prefix = smoke ? 64 : 2048;

  MetricsRegistry registry;
  Instrumentation instr;
  instr.metrics = &registry;

  json.Key("engine").BeginArray();
  uint64_t expected_hashes = 0;
  for (int threads : {1, 2, 4, 8}) {
    ScopedThreadPool pool(threads);
    auto engine = std::make_unique<HashEngine>(generated.dataset, *structure,
                                               /*seed=*/42);
    engine->set_instrumentation(instr);
    SchemePlan plan;
    plan.hashes_per_unit.assign(structure->units.size(), 0);
    size_t target = 0;
    uint64_t iterations = 0;
    Timer timer;
    do {
      if (target + kStep > max_prefix) {
        // Recycle the engine so memory stays bounded; the rebuild is cheap
        // relative to an iteration and counted against the run like the real
        // pipeline's setup would be.
        expected_hashes += engine->total_hashes_computed();
        engine = std::make_unique<HashEngine>(generated.dataset, *structure,
                                              /*seed=*/42);
        engine->set_instrumentation(instr);
        target = 0;
      }
      target += kStep;
      for (size_t& prefix : plan.hashes_per_unit) prefix = target;
      engine->EnsureHashesParallel(
          std::span<const RecordId>(ids.data(), ids.size()), plan,
          pool.get());
      ++iterations;
    } while (timer.ElapsedSeconds() < engine_seconds);
    double seconds = timer.ElapsedSeconds();
    expected_hashes += engine->total_hashes_computed();
    json.BeginObject()
        .Key("threads")
        .Int(threads)
        .Key("iterations")
        .Uint(iterations)
        .Key("records_per_second")
        .Double(static_cast<double>(iterations * ids.size()) / seconds)
        .EndObject();
  }
  json.EndArray();

  // --- Registry snapshot: the instrumented view of the engine sweep. ---
  MetricsSnapshot snapshot = registry.Snapshot();
  ADALSH_CHECK_EQ(snapshot.counters["hashes_computed"], expected_hashes)
      << "registry counters diverged from the engine's accounting";
  json.Key("metrics");
  AppendMetricsSnapshot(snapshot, &json);

  json.EndObject();
  std::string doc = json.TakeString();
  std::ofstream file(out);
  ADALSH_CHECK(file.good()) << "cannot open " << out;
  file << doc;
  ADALSH_CHECK(file.good()) << "failed writing " << out;
  std::cout << doc;
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace adalsh

int main(int argc, char** argv) { return adalsh::Main(argc, argv); }
