// Micro-benchmarks for the raw LSH hashing substrate: per-hash throughput of
// MinHash (token sets of varying size) and random hyperplanes (dense vectors
// of varying dimension). These are the unit costs the Definition 3 cost model
// calibrates.

#include <benchmark/benchmark.h>

#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "util/rng.h"

namespace adalsh {
namespace {

Record TokenRecordOfSize(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) tokens.push_back(rng.Next());
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields));
}

Record DenseRecordOfDim(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(dim);
  for (float& v : values) v = static_cast<float>(rng.NextGaussian());
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector(std::move(values)));
  return Record(std::move(fields));
}

void BM_MinHash(benchmark::State& state) {
  size_t set_size = static_cast<size_t>(state.range(0));
  Record record = TokenRecordOfSize(set_size, 1);
  MinHashFamily family(0, 42);
  constexpr size_t kBatch = 64;
  std::vector<uint64_t> out(kBatch);
  size_t offset = 0;
  for (auto _ : state) {
    family.HashRange(record, offset, offset + kBatch, out.data());
    benchmark::DoNotOptimize(out.data());
    offset += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_MinHash)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_RandomHyperplane(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  Record record = DenseRecordOfDim(dim, 2);
  RandomHyperplaneFamily family(0, dim, 42);
  constexpr size_t kBatch = 64;
  std::vector<uint64_t> out(kBatch);
  // Pre-materialize a pool of hyperplanes, then cycle over it so the
  // benchmark measures hashing, not parameter generation.
  constexpr size_t kPool = 4096;
  std::vector<uint64_t> warmup(kPool);
  family.HashRange(record, 0, kPool, warmup.data());
  size_t offset = 0;
  for (auto _ : state) {
    family.HashRange(record, offset, offset + kBatch, out.data());
    benchmark::DoNotOptimize(out.data());
    offset = (offset + kBatch) % (kPool - kBatch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_RandomHyperplane)->Arg(64)->Arg(512);

}  // namespace
}  // namespace adalsh
