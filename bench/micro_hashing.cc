// Micro-benchmarks for the raw LSH hashing substrate: per-hash throughput of
// MinHash (token sets of varying size) and random hyperplanes (dense vectors
// of varying dimension). These are the unit costs the Definition 3 cost model
// calibrates. BM_EngineHashingThreads additionally sweeps the worker-thread
// count over the full Cora-like hash hot path (engine + caches), so
// BENCH_*.json runs capture the parallel speedup trajectory: compare
// items_per_second (records hashed per second) across /threads:1..8.

#include <benchmark/benchmark.h>

#include "core/hash_engine.h"
#include "datagen/cora_like.h"
#include "lsh/composite_scheme.h"
#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace adalsh {
namespace {

Record TokenRecordOfSize(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> tokens;
  tokens.reserve(size);
  for (size_t i = 0; i < size; ++i) tokens.push_back(rng.Next());
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields));
}

Record DenseRecordOfDim(size_t dim, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> values(dim);
  for (float& v : values) v = static_cast<float>(rng.NextGaussian());
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector(std::move(values)));
  return Record(std::move(fields));
}

void BM_MinHash(benchmark::State& state) {
  size_t set_size = static_cast<size_t>(state.range(0));
  Record record = TokenRecordOfSize(set_size, 1);
  MinHashFamily family(0, 42);
  constexpr size_t kBatch = 64;
  std::vector<uint64_t> out(kBatch);
  size_t offset = 0;
  for (auto _ : state) {
    family.HashRange(record, offset, offset + kBatch, out.data());
    benchmark::DoNotOptimize(out.data());
    offset += kBatch;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_MinHash)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

void BM_RandomHyperplane(benchmark::State& state) {
  size_t dim = static_cast<size_t>(state.range(0));
  Record record = DenseRecordOfDim(dim, 2);
  RandomHyperplaneFamily family(0, dim, 42);
  constexpr size_t kBatch = 64;
  std::vector<uint64_t> out(kBatch);
  // Pre-materialize a pool of hyperplanes, then cycle over it so the
  // benchmark measures hashing, not parameter generation.
  constexpr size_t kPool = 4096;
  std::vector<uint64_t> warmup(kPool);
  family.HashRange(record, 0, kPool, warmup.data());
  size_t offset = 0;
  for (auto _ : state) {
    family.HashRange(record, offset, offset + kBatch, out.data());
    benchmark::DoNotOptimize(out.data());
    offset = (offset + kBatch) % (kPool - kBatch);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_RandomHyperplane)->Arg(64)->Arg(512);

void BM_EngineHashingThreads(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));

  // The Cora-like workload the paper's Section 7.2 experiments hash; built
  // once and shared across thread counts so the sweep is apples-to-apples.
  static const GeneratedDataset* generated = [] {
    CoraLikeConfig config;
    config.num_entities = 120;
    config.num_records = 1000;
    config.seed = 7;
    return new GeneratedDataset(GenerateCoraLike(config));
  }();
  static const RuleHashStructure* structure = [] {
    StatusOr<RuleHashStructure> compiled =
        CompileRuleForHashing(generated->rule);
    return new RuleHashStructure(std::move(compiled).value());
  }();

  const std::vector<RecordId> ids = generated->dataset.AllRecordIds();
  ThreadPool pool(threads);

  // Each iteration extends every record's per-unit prefix by kStep hashes —
  // the exact incremental work pattern of a sequence step. The engine is
  // recycled once prefixes hit kMaxPrefix so memory stays bounded.
  constexpr size_t kStep = 16;
  constexpr size_t kMaxPrefix = 2048;
  auto fresh_engine = [&] {
    return new HashEngine(generated->dataset, *structure, /*seed=*/42);
  };
  HashEngine* engine = fresh_engine();
  SchemePlan plan;
  plan.hashes_per_unit.assign(structure->units.size(), 0);
  size_t target = 0;

  for (auto _ : state) {
    if (target + kStep > kMaxPrefix) {
      state.PauseTiming();
      delete engine;
      engine = fresh_engine();
      target = 0;
      state.ResumeTiming();
    }
    target += kStep;
    for (size_t& prefix : plan.hashes_per_unit) prefix = target;
    engine->EnsureHashesParallel(
        std::span<const RecordId>(ids.data(), ids.size()), plan,
        threads > 1 ? &pool : nullptr);
  }
  delete engine;

  // Records hashed per second (each iteration re-covers every record).
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ids.size()));
}
BENCHMARK(BM_EngineHashingThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->ArgName("threads")
    ->UseRealTime();

}  // namespace
}  // namespace adalsh
