// Figure 17: F1 Gold on PopularImages for thresholds 2 / 3 / 5 degrees and
// Zipf exponents 1.05 / 1.1 / 1.2, k = 10 (all methods score almost the
// same, so adaLSH's curve stands for all). Paper shape: stricter thresholds
// lower F1 (same-entity images fail to cluster); higher exponents (lighter
// tail, larger top entities) raise it.
//
//   fig17_images_f1 [--k=10] [--records=10000] [--exponents=1.05,1.1,1.2]
//                   [--thresholds=2,3,5]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  size_t records = static_cast<size_t>(flags.GetInt("records", 10000));
  std::vector<double> exponents =
      flags.GetDoubleList("exponents", {1.05, 1.1, 1.2});
  std::vector<double> thresholds =
      flags.GetDoubleList("thresholds", {2, 3, 5});
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Figure 17",
                        "F1 Gold on PopularImages (adaLSH), k = " +
                            std::to_string(k));
  std::vector<std::string> headers = {"threshold_deg"};
  for (double exponent : exponents) {
    headers.push_back("zipf=" + FormatDouble(exponent, 2));
  }
  ResultTable table(headers);
  for (double degrees : thresholds) {
    std::vector<std::string> row = {FormatDouble(degrees, 0)};
    for (double exponent : exponents) {
      GeneratedDataset workload =
          MakePopularImagesWorkload(exponent, degrees, records, kDataSeed);
      GroundTruth truth = workload.dataset.BuildGroundTruth();
      FilterOutput output = RunAdaLsh(workload, k);
      row.push_back(
          FormatDouble(GoldAccuracy(output.clusters, truth, k).f1, 3));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  return 0;
}
