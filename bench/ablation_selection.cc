// Ablation: the Largest-First selection rule (Theorem 1). Algorithm 1 is run
// with alternative cluster-selection orders — smallest-first, FIFO, random —
// which all terminate with the same top-k but at different cost. Theorem 1
// predicts Largest-First minimizes the total cost; this bench demonstrates
// it empirically on Cora and SpotSigs via the Definition 3 work counters
// (hashes + pairwise similarities) and wall-clock time.
//
//   ablation_selection [--k=10] [--scale=1]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

namespace {

using namespace adalsh;        // NOLINT: bench brevity
using namespace adalsh::bench; // NOLINT: bench brevity

const char* StrategyName(SelectionStrategy strategy) {
  switch (strategy) {
    case SelectionStrategy::kLargestFirst:
      return "largest-first";
    case SelectionStrategy::kSmallestFirst:
      return "smallest-first";
    case SelectionStrategy::kFifo:
      return "fifo";
    case SelectionStrategy::kRandom:
      return "random";
  }
  return "?";
}

void RunPanel(const std::string& name, const GeneratedDataset& workload,
              int k) {
  PrintExperimentHeader(std::cout, "Ablation (Thm. 1)",
                        "selection strategies on " + name +
                            ", k = " + std::to_string(k));
  ResultTable table(
      {"strategy", "seconds", "hashes", "pairwise_sims", "rounds"});
  for (SelectionStrategy strategy :
       {SelectionStrategy::kLargestFirst, SelectionStrategy::kSmallestFirst,
        SelectionStrategy::kFifo, SelectionStrategy::kRandom}) {
    AdaptiveLshConfig config;
    config.selection = strategy;
    config.seed = kMethodSeed;
    AdaptiveLsh method(workload.dataset, workload.rule, config);
    FilterOutput output = method.Run(k);
    table.AddRow({StrategyName(strategy),
                  Secs(output.stats.filtering_seconds),
                  std::to_string(output.stats.hashes_computed),
                  std::to_string(output.stats.pairwise_similarities),
                  std::to_string(output.stats.rounds)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  size_t scale = static_cast<size_t>(flags.GetInt("scale", 1));
  flags.CheckNoUnusedFlags();

  RunPanel("Cora", MakeCoraWorkload(scale, kDataSeed), k);
  RunPanel("SpotSigs", MakeSpotSigsWorkload(scale, kDataSeed), k);
  return 0;
}
