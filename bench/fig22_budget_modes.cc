// Figure 22 (Appendix E.2): budget-selection strategies for the function
// sequence (Section 5.2): the default Exponential (20, x2) against Linear
// 320 / 640 / 1280, on (a) Cora 1x..4x and (b) SpotSigs 1x..4x, k = 10.
// Paper shape: Exponential wins clearly — doubling means the work of each
// step roughly matches all previous steps combined, the sweet spot between
// many small steps and few huge ones.
//
//   fig22_budget_modes [--k=10] [--scales=1,2,4] [--linear=320,640,1280]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

namespace {

using namespace adalsh;        // NOLINT: bench brevity
using namespace adalsh::bench; // NOLINT: bench brevity

void RunPanel(const std::string& figure, const std::string& dataset_name,
              const std::vector<int64_t>& scales,
              const std::vector<int64_t>& linear_steps, int k) {
  PrintExperimentHeader(std::cout, figure,
                        "budget modes on " + dataset_name +
                            ", k = " + std::to_string(k));
  std::vector<std::string> headers = {"records", "expo"};
  for (int64_t step : linear_steps) {
    headers.push_back("lin" + std::to_string(step));
  }
  ResultTable table(headers);
  for (int64_t scale : scales) {
    GeneratedDataset workload =
        dataset_name == "Cora"
            ? MakeCoraWorkload(static_cast<size_t>(scale), kDataSeed)
            : MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
    std::vector<std::string> row = {
        std::to_string(workload.dataset.num_records())};
    FilterOutput expo = RunAdaLsh(workload, k);
    row.push_back(Secs(expo.stats.filtering_seconds));
    for (int64_t step : linear_steps) {
      FilterOutput lin =
          RunAdaLsh(workload, k, /*max_budget=*/5120,
                    /*pairwise_noise_factor=*/1.0,
                    BudgetStrategy::Linear(static_cast<int>(step)));
      row.push_back(Secs(lin.stats.filtering_seconds));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  std::vector<int64_t> linear_steps =
      flags.GetIntList("linear", {320, 640, 1280});
  flags.CheckNoUnusedFlags();

  RunPanel("Figure 22(a)", "Cora", scales, linear_steps, k);
  RunPanel("Figure 22(b)", "SpotSigs", scales, linear_steps, k);
  return 0;
}
