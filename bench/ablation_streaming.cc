// Ablation: online monitoring (Section 9's future-work direction,
// implemented as StreamingAdaptiveLsh) against the batch baseline. A monitor
// wants the current top-k after every batch of arrivals; the batch approach
// re-runs AdaptiveLsh::Run from scratch each time, while the streaming mode
// hashes each arrival once with H_1 and lets TopK() reuse all previous
// verification work. Expected shape: equal outputs, with the streaming
// mode's cumulative cost growing far slower with the number of checkpoints.
//
//   ablation_streaming [--k=5] [--checkpoints=8]

#include <iostream>

#include "bench_util.h"
#include "core/streaming_adaptive_lsh.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  int checkpoints = static_cast<int>(flags.GetInt("checkpoints", 8));
  flags.CheckNoUnusedFlags();

  GeneratedDataset workload = MakeSpotSigsWorkload(1, kDataSeed);
  const Dataset& dataset = workload.dataset;
  std::vector<RecordId> order = dataset.AllRecordIds();
  Rng rng(17);
  rng.Shuffle(&order);

  PrintExperimentHeader(std::cout, "Ablation (Sec. 9)",
                        "streaming vs batch periodic top-k monitoring on "
                        "SpotSigs (" + std::to_string(dataset.num_records()) +
                        " records, " + std::to_string(checkpoints) +
                        " checkpoints)");

  AdaptiveLshConfig config;
  config.seed = kMethodSeed;

  // --- Streaming: add arrivals, TopK at every checkpoint. ---
  double streaming_seconds = 0.0;
  uint64_t streaming_hashes = 0;
  {
    StreamingAdaptiveLsh monitor(dataset, workload.rule, config);
    size_t per_batch = order.size() / checkpoints;
    size_t next = 0;
    Timer timer;
    for (int c = 1; c <= checkpoints; ++c) {
      size_t end = c == checkpoints ? order.size() : next + per_batch;
      while (next < end) monitor.Add(order[next++]);
      monitor.TopK(k);
    }
    streaming_seconds = timer.ElapsedSeconds();
    streaming_hashes = monitor.total_hashes_computed();
  }

  // --- Batch: rebuild a prefix dataset and re-run at every checkpoint. ---
  double batch_seconds = 0.0;
  uint64_t batch_hashes = 0;
  {
    Timer timer;
    size_t per_batch = order.size() / checkpoints;
    for (int c = 1; c <= checkpoints; ++c) {
      size_t end = c == checkpoints ? order.size() : per_batch * c;
      Dataset prefix("prefix");
      for (size_t i = 0; i < end; ++i) {
        prefix.AddRecord(dataset.record(order[i]), 0);  // entities unused
      }
      AdaptiveLsh batch(prefix, workload.rule, config);
      FilterOutput top = batch.Run(k);
      batch_hashes += top.stats.hashes_computed;
    }
    batch_seconds = timer.ElapsedSeconds();
  }

  ResultTable table({"variant", "total_seconds", "total_hashes"});
  table.AddRow({"streaming (Add + TopK)", Secs(streaming_seconds),
                std::to_string(streaming_hashes)});
  table.AddRow({"batch re-run per checkpoint", Secs(batch_seconds),
                std::to_string(batch_hashes)});
  table.Print(std::cout);
  std::cout << "streaming advantage: "
            << FormatDouble(batch_seconds / streaming_seconds, 1) << "x\n";
  return 0;
}
