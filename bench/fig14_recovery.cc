// Figure 14: the recovery booster (Section 7.3.4).
//   (a) Speedup *with* Recovery vs bk on SpotSigs 1x/2x/4x (k = 5): lower
//       than Speedup w/o Recovery but still growing with dataset size.
//   (b) mAP with Recovery vs bk for k in {2, 5, 10, 20}: rapidly reaches 1.0
//       (mAR behaves almost identically).
//
//   fig14_recovery [--k=5] [--bks=5,10,15,20] [--scales=1,2,4]
//                  [--ks=2,5,10,20]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "eval/recovery.h"
#include "eval/speedup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  std::vector<int64_t> bks = flags.GetIntList("bks", {5, 10, 15, 20});
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  std::vector<int64_t> ks = flags.GetIntList("ks", {2, 5, 10, 20});
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Figure 14(a)",
                        "Speedup with Recovery vs bk (SpotSigs, k = " +
                            std::to_string(k) + ")");
  {
    ResultTable table({"scale", "bk", "speedup_with_recovery"});
    for (int64_t scale : scales) {
      GeneratedDataset workload =
          MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
      size_t n = workload.dataset.num_records();
      SpeedupModel model =
          SpeedupModel::Measure(workload.dataset, workload.rule, 100, 3);
      for (int64_t bk : bks) {
        FilterOutput output = RunAdaLsh(workload, static_cast<int>(bk));
        size_t kept = output.clusters.TotalRecords();
        table.AddRow({std::to_string(scale) + "x", std::to_string(bk),
                      FormatDouble(model.SpeedupWithRecovery(
                                       output.stats.filtering_seconds, n,
                                       kept),
                                   2) +
                          "x"});
      }
    }
    table.Print(std::cout);
  }

  PrintExperimentHeader(std::cout, "Figure 14(b)",
                        "mAP with Recovery vs bk (SpotSigs 1x)");
  {
    GeneratedDataset workload = MakeSpotSigsWorkload(1, kDataSeed);
    GroundTruth truth = workload.dataset.BuildGroundTruth();
    ResultTable table({"k", "bk", "mAP_with_recovery", "mAR_with_recovery"});
    for (int64_t kk : ks) {
      for (int64_t bk : bks) {
        if (bk < kk) continue;
        FilterOutput output = RunAdaLsh(workload, static_cast<int>(bk));
        Clustering recovered = PerfectRecovery(
            output.clusters.UnionOfTopClusters(bk), truth);
        RankedAccuracy ranked =
            ComputeRankedAccuracy(recovered, truth, kk);
        table.AddRow({std::to_string(kk), std::to_string(bk),
                      FormatDouble(ranked.map, 3),
                      FormatDouble(ranked.mar, 3)});
      }
    }
    table.Print(std::cout);
  }
  return 0;
}
