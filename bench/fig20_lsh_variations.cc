// Figure 20 (Appendix E.1): the accuracy/performance trade-off of skipping
// the P verification stage. LSH20, LSH640, LSH20nP, LSH640nP and adaLSH on
// SpotSigs 1x..4x (k = 10): (a) execution time, (b) F1 target — accuracy
// against the *exact* (Pairs) outcome, isolating the errors introduced by
// LSH's probabilistic nature. Paper shape: the nP variants are fast but
// F1 target collapses with size (0.7 -> 0.4 for LSH20nP); all P-verified
// methods stay ~1.0; adaLSH beats everything but LSH20nP on time.
//
//   fig20_lsh_variations [--k=10] [--scales=1,2,4]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Figure 20",
                        "LSH variations with/without P vs adaLSH (SpotSigs, "
                        "k = " + std::to_string(k) + ")");
  ResultTable time_table({"records", "adaLSH", "LSH20", "LSH640", "LSH20nP",
                          "LSH640nP"});
  ResultTable f1_table({"records", "adaLSH", "LSH20", "LSH640", "LSH20nP",
                        "LSH640nP"});
  for (int64_t scale : scales) {
    GeneratedDataset workload =
        MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
    FilterOutput exact = RunPairs(workload, k);
    std::vector<RecordId> target = exact.clusters.UnionOfTopClusters(k);

    auto f1_vs_target = [&](const FilterOutput& output) {
      return FormatDouble(
          ComputeSetAccuracy(output.clusters.UnionOfTopClusters(k), target)
              .f1,
          3);
    };

    FilterOutput ada = RunAdaLsh(workload, k);
    FilterOutput lsh20 = RunLshX(workload, k, 20, /*apply_pairwise=*/true);
    FilterOutput lsh640 = RunLshX(workload, k, 640, true);
    FilterOutput lsh20np = RunLshX(workload, k, 20, false);
    FilterOutput lsh640np = RunLshX(workload, k, 640, false);

    std::string records = std::to_string(workload.dataset.num_records());
    time_table.AddRow({records, Secs(ada.stats.filtering_seconds),
                       Secs(lsh20.stats.filtering_seconds),
                       Secs(lsh640.stats.filtering_seconds),
                       Secs(lsh20np.stats.filtering_seconds),
                       Secs(lsh640np.stats.filtering_seconds)});
    f1_table.AddRow({records, f1_vs_target(ada), f1_vs_target(lsh20),
                     f1_vs_target(lsh640), f1_vs_target(lsh20np),
                     f1_vs_target(lsh640np)});
  }
  std::cout << "\n(a) execution time (s):\n";
  time_table.Print(std::cout);
  std::cout << "\n(b) F1 target (vs exact Pairs outcome):\n";
  f1_table.Print(std::cout);
  return 0;
}
