// Ablation: Line 5's P-cost estimate (Appendix D.2). The paper's model
// charges P the full C(|C|, 2) pairwise cost, deliberately ignoring the
// transitive-closure skipping that makes P nearly linear on a pure cluster;
// Appendix D.2 notes an algorithm "could benefit ... when it keeps estimates
// of the sizes of sub-clusters inside each cluster" and leaves it to future
// research. JumpModel::kSampledPurity implements that idea with a 20-pair
// in-cluster sample.
//
// The image workload is where it matters: the top-1 entity is huge and pure,
// and under the conservative model adaLSH hashes it far up the sequence
// instead of resolving it exactly. Expected shape: identical F1, and
// sampled-purity cuts adaLSH's time at the high zipf exponents (where the
// conservative model loses even to a hand-tuned LSH320).
//
//   ablation_jump_model [--k=10] [--records=10000] [--threshold=3]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  size_t records = static_cast<size_t>(flags.GetInt("records", 10000));
  double threshold = flags.GetDouble("threshold", 3.0);
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Ablation (App. D.2)",
                        "conservative vs sampled-purity jump model on "
                        "PopularImages, k = " + std::to_string(k));
  ResultTable table({"zipf_exponent", "top1", "conservative_s",
                     "sampled_purity_s", "f1_conservative", "f1_sampled"});
  for (double exponent : {1.05, 1.1, 1.2}) {
    GeneratedDataset workload =
        MakePopularImagesWorkload(exponent, threshold, records, kDataSeed);
    GroundTruth truth = workload.dataset.BuildGroundTruth();

    auto run = [&](JumpModel model) {
      AdaptiveLshConfig config;
      config.jump_model = model;
      config.seed = kMethodSeed;
      AdaptiveLsh method(workload.dataset, workload.rule, config);
      return method.Run(k);
    };
    FilterOutput conservative = run(JumpModel::kConservative);
    FilterOutput sampled = run(JumpModel::kSampledPurity);
    table.AddRow(
        {FormatDouble(exponent, 2), std::to_string(truth.cluster(0).size()),
         Secs(conservative.stats.filtering_seconds),
         Secs(sampled.stats.filtering_seconds),
         FormatDouble(GoldAccuracy(conservative.clusters, truth, k).f1, 3),
         FormatDouble(GoldAccuracy(sampled.clusters, truth, k).f1, 3)});
  }
  table.Print(std::cout);
  return 0;
}
