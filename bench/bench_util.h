#ifndef ADALSH_BENCH_BENCH_UTIL_H_
#define ADALSH_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/adaptive_lsh.h"
#include "core/lsh_blocking.h"
#include "core/pairs_baseline.h"
#include "datagen/generated_dataset.h"
#include "eval/experiment.h"
#include "obs/json_writer.h"
#include "util/check.h"

namespace adalsh {
namespace bench {

/// The streaming JSON writer now lives in the obs layer (obs/json_writer.h),
/// shared with the trace/run-report exporters; the alias keeps every bench
/// call site unchanged.
using JsonWriter = ::adalsh::JsonWriter;

/// Default seeds so every figure binary reproduces the same workloads.
constexpr uint64_t kDataSeed = 42;
constexpr uint64_t kMethodSeed = 7;

/// Runs adaLSH with the paper's default configuration (Exponential budget
/// starting at 20 hash functions; Section 7's "adaLSH").
inline FilterOutput RunAdaLsh(const GeneratedDataset& workload, int k,
                              int max_budget = 5120,
                              double pairwise_noise_factor = 1.0,
                              BudgetStrategy strategy =
                                  BudgetStrategy::Exponential()) {
  AdaptiveLshConfig config;
  config.sequence.max_budget = max_budget;
  config.sequence.strategy = strategy;
  config.pairwise_noise_factor = pairwise_noise_factor;
  config.seed = kMethodSeed;
  AdaptiveLsh method(workload.dataset, workload.rule, config);
  return method.Run(k);
}

/// Runs the LSH-X blocking baseline (apply_pairwise=false gives LSH-X-nP).
inline FilterOutput RunLshX(const GeneratedDataset& workload, int k, int x,
                            bool apply_pairwise = true) {
  LshBlockingConfig config;
  config.num_hashes = x;
  config.apply_pairwise = apply_pairwise;
  config.seed = kMethodSeed;
  LshBlocking method(workload.dataset, workload.rule, config);
  return method.Run(k);
}

/// Runs the Pairs baseline.
inline FilterOutput RunPairs(const GeneratedDataset& workload, int k) {
  PairsBaseline method(workload.dataset, workload.rule);
  return method.Run(k);
}

/// Seconds with millisecond resolution for table cells.
inline std::string Secs(double seconds) { return FormatDouble(seconds, 3); }

}  // namespace bench
}  // namespace adalsh

#endif  // ADALSH_BENCH_BENCH_UTIL_H_
