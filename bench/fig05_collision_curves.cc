// Figures 5 and 7: collision-probability curves of (w, z)-schemes.
//
// Fig. 5 plots 1 - (1 - p^w(x))^z for (w=1,z=1), (15,20), (30,70) against
// the cosine distance in degrees. Fig. 7 plots the Example 5 candidates
// (15,140), (30,70), (60,35) for budget 2100, and this bench additionally
// reports which candidates satisfy the Eq. (3) threshold constraint and the
// scheme the optimizer actually picks.

#include <iostream>

#include "core/scheme_optimizer.h"
#include "distance/collision_model.h"
#include "eval/experiment.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;  // NOLINT: bench brevity
  Flags flags(argc, argv);
  flags.CheckNoUnusedFlags();
  CollisionModel p = LinearCollisionModel();

  PrintExperimentHeader(std::cout, "Figure 5",
                        "P[same bucket in >=1 table] vs cosine distance");
  {
    ResultTable table({"angle_deg", "w=1,z=1", "w=15,z=20", "w=30,z=70"});
    for (double degrees : {5, 10, 15, 20, 25, 30, 40, 55, 80, 120, 180}) {
      double x = degrees / 180.0;
      table.AddRow({FormatDouble(degrees, 0),
                    FormatDouble(SchemeCollisionProbability(p, x, 1, 1), 4),
                    FormatDouble(SchemeCollisionProbability(p, x, 15, 20), 4),
                    FormatDouble(SchemeCollisionProbability(p, x, 30, 70), 4)});
    }
    table.Print(std::cout);
  }

  PrintExperimentHeader(
      std::cout, "Figure 7",
      "Example 5 candidates for budget 2100, d_thr = 15 deg, eps = 0.001");
  {
    ResultTable table(
        {"angle_deg", "w=15,z=140", "w=30,z=70", "w=60,z=35"});
    for (double degrees : {5, 10, 15, 20, 30, 45, 60, 90, 180}) {
      double x = degrees / 180.0;
      table.AddRow(
          {FormatDouble(degrees, 0),
           FormatDouble(SchemeCollisionProbability(p, x, 15, 140), 4),
           FormatDouble(SchemeCollisionProbability(p, x, 30, 70), 4),
           FormatDouble(SchemeCollisionProbability(p, x, 60, 35), 4)});
    }
    table.Print(std::cout);

    double dthr = 15.0 / 180.0;
    double eps = 0.001;
    std::cout << "\nConstraint (Eq. 3) at d_thr, 1-eps = " << (1 - eps)
              << ":\n";
    for (auto [w, z] : {std::pair{15, 140}, {30, 70}, {60, 35}}) {
      double prob = SchemeCollisionProbability(p, dthr, w, z);
      std::cout << "  (w=" << w << ",z=" << z << "): P(d_thr)="
                << FormatDouble(prob, 5)
                << (prob >= 1 - eps ? "  satisfied" : "  VIOLATED") << "\n";
    }
    OptimizerUnit unit;
    unit.p = p;
    unit.threshold = dthr;
    WzScheme chosen = OptimizeSingleScheme(unit, 2100, OptimizerConfig{});
    std::cout << "Optimizer choice for budget 2100: " << chosen.ToString()
              << " objective=" << FormatDouble(chosen.objective, 5) << "\n";
  }
  return 0;
}
