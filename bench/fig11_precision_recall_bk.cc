// Figure 11: the precision/recall trade-off of returning bk > k clusters
// (Section 7.3.1). SpotSigs, k = 5, bk in {5..20}, Jaccard similarity
// thresholds 0.3 / 0.4 / 0.5. Paper shape: recall climbs toward 1.0 with bk
// for every threshold; precision falls from ~0.8 to ~0.4.
//
//   fig11_precision_recall_bk [--k=5] [--bks=5,10,15,20]
//                             [--thresholds=0.3,0.4,0.5]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  std::vector<int64_t> bks = flags.GetIntList("bks", {5, 10, 15, 20});
  std::vector<double> thresholds =
      flags.GetDoubleList("thresholds", {0.3, 0.4, 0.5});
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(
      std::cout, "Figure 11",
      "Recall/Precision Gold vs bk on SpotSigs, k = " + std::to_string(k));
  ResultTable table({"sim_thr", "bk", "recall_gold", "precision_gold"});
  for (double threshold : thresholds) {
    GeneratedDataset workload =
        MakeSpotSigsWorkload(1, threshold, kDataSeed);
    GroundTruth truth = workload.dataset.BuildGroundTruth();
    std::vector<RecordId> gold = truth.TopKRecords(k);
    for (int64_t bk : bks) {
      FilterOutput output = RunAdaLsh(workload, static_cast<int>(bk));
      SetAccuracy accuracy = ComputeSetAccuracy(
          output.clusters.UnionOfTopClusters(bk), gold);
      table.AddRow({FormatDouble(threshold, 1), std::to_string(bk),
                    FormatDouble(accuracy.recall, 3),
                    FormatDouble(accuracy.precision, 3)});
    }
  }
  table.Print(std::cout);
  return 0;
}
