// Figure 8: filtering execution time on Cora.
//   (a) adaLSH vs LSH1280 vs Pairs for k in {2, 5, 10, 20} on Cora 1x.
//   (b) the same methods at k = 10 for Cora 1x / 2x / 4x / 8x (log-log in
//       the paper; the table prints the raw series).
//
// Paper shape to reproduce: adaLSH ~10x faster than LSH1280 and Pairs on 1x,
// nearly flat in k; the gap vs Pairs widens with dataset size.
//
//   fig08_cora_time [--ks=2,5,10,20] [--scales=1,2,4,8] [--lsh_x=1280]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  std::vector<int64_t> ks = flags.GetIntList("ks", {2, 5, 10, 20});
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4, 8});
  int lsh_x = static_cast<int>(flags.GetInt("lsh_x", 1280));
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Figure 8(a)",
                        "execution time (s) on Cora vs k");
  {
    GeneratedDataset workload = MakeCoraWorkload(1, kDataSeed);
    ResultTable table({"k", "adaLSH", "LSH" + std::to_string(lsh_x),
                       "Pairs", "adaLSH_speedup_vs_LSH"});
    for (int64_t k : ks) {
      FilterOutput ada = RunAdaLsh(workload, static_cast<int>(k));
      FilterOutput lsh = RunLshX(workload, static_cast<int>(k), lsh_x);
      FilterOutput pairs = RunPairs(workload, static_cast<int>(k));
      table.AddRow({std::to_string(k), Secs(ada.stats.filtering_seconds),
                    Secs(lsh.stats.filtering_seconds),
                    Secs(pairs.stats.filtering_seconds),
                    FormatDouble(lsh.stats.filtering_seconds /
                                     ada.stats.filtering_seconds,
                                 1) +
                        "x"});
    }
    table.Print(std::cout);
  }

  PrintExperimentHeader(std::cout, "Figure 8(b)",
                        "execution time (s) on Cora 1x..8x, k = 10");
  {
    ResultTable table({"records", "adaLSH", "LSH" + std::to_string(lsh_x),
                       "Pairs", "adaLSH_speedup_vs_Pairs"});
    for (int64_t scale : scales) {
      GeneratedDataset workload =
          MakeCoraWorkload(static_cast<size_t>(scale), kDataSeed);
      FilterOutput ada = RunAdaLsh(workload, 10);
      FilterOutput lsh = RunLshX(workload, 10, lsh_x);
      FilterOutput pairs = RunPairs(workload, 10);
      table.AddRow({std::to_string(workload.dataset.num_records()),
                    Secs(ada.stats.filtering_seconds),
                    Secs(lsh.stats.filtering_seconds),
                    Secs(pairs.stats.filtering_seconds),
                    FormatDouble(pairs.stats.filtering_seconds /
                                     ada.stats.filtering_seconds,
                                 1) +
                        "x"});
    }
    table.Print(std::cout);
  }
  return 0;
}
