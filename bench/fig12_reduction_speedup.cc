// Figure 12: dataset-reduction percentage and Speedup w/o Recovery vs bk on
// SpotSigs 1x/2x/4x, k = 5 (Section 7.3.2), with adaLSH as the filter.
// Paper shape: reduction % grows with bk but stays a modest share on larger
// datasets; the speedup grows with dataset size and remains significant
// (e.g. ~6x at 40% reduction on 4x).
//
//   fig12_reduction_speedup [--k=5] [--bks=5,10,15,20] [--scales=1,2,4]

#include <iostream>

#include "bench_util.h"
#include "eval/speedup.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  std::vector<int64_t> bks = flags.GetIntList("bks", {5, 10, 15, 20});
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  flags.CheckNoUnusedFlags();
  (void)k;

  PrintExperimentHeader(std::cout, "Figure 12",
                        "reduction %% and Speedup w/o Recovery vs bk "
                        "(SpotSigs, k = " +
                            std::to_string(k) + ", adaLSH filter)");
  ResultTable table({"scale", "records", "bk", "reduction_%",
                     "actual_topk_%", "speedup_wo_recovery"});
  for (int64_t scale : scales) {
    GeneratedDataset workload =
        MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
    GroundTruth truth = workload.dataset.BuildGroundTruth();
    size_t n = workload.dataset.num_records();
    double actual_percent =
        DatasetReductionPercent(truth.TopKRecords(k).size(), n);
    SpeedupModel model =
        SpeedupModel::Measure(workload.dataset, workload.rule, 100, 3);
    for (int64_t bk : bks) {
      FilterOutput output = RunAdaLsh(workload, static_cast<int>(bk));
      size_t kept = output.clusters.TotalRecords();
      table.AddRow(
          {std::to_string(scale) + "x", std::to_string(n),
           std::to_string(bk),
           FormatDouble(DatasetReductionPercent(kept, n), 1),
           FormatDouble(actual_percent, 1),
           FormatDouble(model.SpeedupWithoutRecovery(
                            output.stats.filtering_seconds, n, kept),
                        1) +
               "x"});
    }
  }
  table.Print(std::cout);
  return 0;
}
