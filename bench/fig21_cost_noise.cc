// Figure 21 (Appendix E.2): sensitivity of adaLSH to cost-model noise. The
// pairwise-cost estimate is scaled by nf in {1/5, 1/2, 1, 2, 5} ("clean" is
// nf = 1) on SpotSigs 1x..4x for (a) k = 2 and (b) k = 10. Paper shape:
// execution time is insensitive except for a heavy *under*-estimate
// (nf = 1/5), which applies P too early on large clusters.
//
//   fig21_cost_noise [--scales=1,2,4] [--noise=0.2,0.5,1,2,5] [--ks=2,10]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  std::vector<double> noise =
      flags.GetDoubleList("noise", {0.2, 0.5, 1.0, 2.0, 5.0});
  std::vector<int64_t> ks = flags.GetIntList("ks", {2, 10});
  flags.CheckNoUnusedFlags();

  for (size_t panel = 0; panel < ks.size(); ++panel) {
    int k = static_cast<int>(ks[panel]);
    PrintExperimentHeader(
        std::cout,
        "Figure 21(" + std::string(1, static_cast<char>('a' + panel)) + ")",
        "adaLSH time (s) under cost-model noise, k = " + std::to_string(k));
    std::vector<std::string> headers = {"records"};
    for (double nf : noise) {
      headers.push_back(nf == 1.0 ? "clean" : "nf=" + FormatDouble(nf, 1));
    }
    ResultTable table(headers);
    for (int64_t scale : scales) {
      GeneratedDataset workload =
          MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
      std::vector<std::string> row = {
          std::to_string(workload.dataset.num_records())};
      for (double nf : noise) {
        FilterOutput output =
            RunAdaLsh(workload, k, /*max_budget=*/5120, nf);
        row.push_back(Secs(output.stats.filtering_seconds));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  return 0;
}
