// Figure 13: mean Average Precision / Recall vs bk for k in {2, 5, 10, 20}
// on SpotSigs (Section 7.3.3) — what a "perfect" ER algorithm applied to the
// filtering output could reconstruct. Paper shape: mAP reaches 1.0 as bk
// grows, mAR slightly lower; ranked metrics exceed the set metrics because
// accuracy is higher for higher-ranked entities.
//
//   fig13_map_mar [--ks=2,5,10,20] [--bks=5,10,15,20,25,30]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  std::vector<int64_t> ks = flags.GetIntList("ks", {2, 5, 10, 20});
  std::vector<int64_t> bks = flags.GetIntList("bks", {5, 10, 15, 20, 25, 30});
  flags.CheckNoUnusedFlags();

  GeneratedDataset workload = MakeSpotSigsWorkload(1, kDataSeed);
  GroundTruth truth = workload.dataset.BuildGroundTruth();

  PrintExperimentHeader(std::cout, "Figure 13",
                        "mAP / mAR vs bk on SpotSigs (adaLSH filter)");
  ResultTable table({"k", "bk", "mAP", "mAR"});
  for (int64_t k : ks) {
    for (int64_t bk : bks) {
      if (bk < k) continue;
      FilterOutput output = RunAdaLsh(workload, static_cast<int>(bk));
      RankedAccuracy ranked =
          ComputeRankedAccuracy(output.clusters, truth, k);
      table.AddRow({std::to_string(k), std::to_string(bk),
                    FormatDouble(ranked.map, 3),
                    FormatDouble(ranked.mar, 3)});
    }
  }
  table.Print(std::cout);
  return 0;
}
