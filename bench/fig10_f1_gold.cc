// Figure 10: F1 Gold vs k for adaLSH, LSH1280 and Pairs on (a) Cora and
// (b) SpotSigs. Paper shape: all three methods almost identical (adaLSH's
// probabilistic nature adds no errors); Cora near 1.0 everywhere, SpotSigs
// around 0.8 for k = 5/10 (the simple rule differs from ground truth there).
//
//   fig10_f1_gold [--ks=1,5,10,20] [--lsh_x=1280]

#include <iostream>

#include "bench_util.h"
#include "eval/metrics.h"
#include "util/flags.h"

namespace {

using namespace adalsh;        // NOLINT: bench brevity
using namespace adalsh::bench; // NOLINT: bench brevity

void RunPanel(const std::string& figure, const GeneratedDataset& workload,
              const std::vector<int64_t>& ks, int lsh_x) {
  PrintExperimentHeader(std::cout, figure,
                        "F1 Gold vs k on " + workload.dataset.name());
  GroundTruth truth = workload.dataset.BuildGroundTruth();
  ResultTable table(
      {"k", "adaLSH", "LSH" + std::to_string(lsh_x), "Pairs"});
  for (int64_t k : ks) {
    FilterOutput ada = RunAdaLsh(workload, static_cast<int>(k));
    FilterOutput lsh = RunLshX(workload, static_cast<int>(k), lsh_x);
    FilterOutput pairs = RunPairs(workload, static_cast<int>(k));
    table.AddRow(
        {std::to_string(k),
         FormatDouble(GoldAccuracy(ada.clusters, truth, k).f1, 3),
         FormatDouble(GoldAccuracy(lsh.clusters, truth, k).f1, 3),
         FormatDouble(GoldAccuracy(pairs.clusters, truth, k).f1, 3)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<int64_t> ks = flags.GetIntList("ks", {1, 5, 10, 20});
  int lsh_x = static_cast<int>(flags.GetInt("lsh_x", 1280));
  flags.CheckNoUnusedFlags();

  RunPanel("Figure 10(a)", MakeCoraWorkload(1, kDataSeed), ks, lsh_x);
  RunPanel("Figure 10(b)", MakeSpotSigsWorkload(1, kDataSeed), ks, lsh_x);
  return 0;
}
