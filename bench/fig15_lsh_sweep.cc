// Figure 15: adaLSH against *every* LSH-X variation (Section 7.4.1) on
// (a) SpotSigs 1x and (b) a scaled SpotSigs, k = 10. Paper shape: the best X
// shifts with dataset size (80 on 1x, 320 on 8x) and adaLSH still beats the
// best hand-picked variation by 3-4x — without any tuning.
//
//   fig15_lsh_sweep [--k=10] [--xs=20,40,80,160,320,640,1280,2560,5120]
//                   [--scale_b=4] [--xs_b=20,...,2560]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

namespace {

using namespace adalsh;        // NOLINT: bench brevity
using namespace adalsh::bench; // NOLINT: bench brevity

void RunPanel(const std::string& figure, size_t scale, int k,
              const std::vector<int64_t>& xs) {
  GeneratedDataset workload = MakeSpotSigsWorkload(scale, kDataSeed);
  PrintExperimentHeader(std::cout, figure,
                        "adaLSH vs LSH-X sweep on SpotSigs" +
                            (scale > 1 ? std::to_string(scale) + "x" : "") +
                            " (" +
                            std::to_string(workload.dataset.num_records()) +
                            " records, k = " + std::to_string(k) + ")");
  FilterOutput ada = RunAdaLsh(workload, k);
  std::cout << "adaLSH: " << Secs(ada.stats.filtering_seconds) << " s\n";
  ResultTable table({"X", "LSH-X_seconds", "adaLSH_speedup"});
  double best_seconds = -1.0;
  int64_t best_x = 0;
  for (int64_t x : xs) {
    FilterOutput lsh = RunLshX(workload, k, static_cast<int>(x));
    double seconds = lsh.stats.filtering_seconds;
    if (best_seconds < 0 || seconds < best_seconds) {
      best_seconds = seconds;
      best_x = x;
    }
    table.AddRow({std::to_string(x), Secs(seconds),
                  FormatDouble(seconds / ada.stats.filtering_seconds, 1) +
                      "x"});
  }
  table.Print(std::cout);
  std::cout << "best LSH variation: LSH" << best_x << " ("
            << Secs(best_seconds) << " s); adaLSH is "
            << FormatDouble(best_seconds / ada.stats.filtering_seconds, 1)
            << "x faster than the best hand-picked X\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  std::vector<int64_t> xs =
      flags.GetIntList("xs", {20, 40, 80, 160, 320, 640, 1280, 2560, 5120});
  size_t scale_b = static_cast<size_t>(flags.GetInt("scale_b", 4));
  std::vector<int64_t> xs_b =
      flags.GetIntList("xs_b", {20, 40, 80, 160, 320, 640, 1280, 2560});
  flags.CheckNoUnusedFlags();

  RunPanel("Figure 15(a)", 1, k, xs);
  RunPanel("Figure 15(b)", scale_b, k, xs_b);
  return 0;
}
