// Ablation: OR rules end to end (Appendix C.2, Programs 7-10). On the
// multimodal biometric workload — photo histograms OR fingerprint sets —
// adaLSH splits each function's budget across one table group per modality.
// The bench compares adaLSH against Pairs and against single-modality
// filtering, showing (a) the OR construction preserves accuracy while a
// single modality cannot, and (b) the usual speedup survives composite
// rules.
//
//   ablation_or_rule [--k=5] [--records=2000]

#include <iostream>

#include "bench_util.h"
#include "datagen/multimodal.h"
#include "eval/metrics.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 5));
  size_t records = static_cast<size_t>(flags.GetInt("records", 2000));
  flags.CheckNoUnusedFlags();

  MultiModalConfig data_config;
  data_config.num_records = records;
  data_config.num_entities = std::max<size_t>(20, records / 10);
  data_config.seed = kDataSeed;
  GeneratedDataset workload = GenerateMultiModal(data_config);
  GroundTruth truth = workload.dataset.BuildGroundTruth();

  PrintExperimentHeader(std::cout, "Ablation (App. C.2)",
                        "OR rule on the multimodal workload (" +
                            std::to_string(records) + " records, k = " +
                            std::to_string(k) + ")");

  ResultTable table({"method", "rule", "seconds", "f1_gold"});
  auto add_row = [&](const std::string& method, const std::string& rule_name,
                     const FilterOutput& output) {
    table.AddRow({method, rule_name, Secs(output.stats.filtering_seconds),
                  FormatDouble(GoldAccuracy(output.clusters, truth, k).f1,
                               3)});
  };

  add_row("adaLSH", "photo OR fingerprint", RunAdaLsh(workload, k));
  add_row("Pairs", "photo OR fingerprint", RunPairs(workload, k));

  // Single-modality ablations: same records, one leaf of the OR only.
  for (size_t branch = 0; branch < 2; ++branch) {
    GeneratedDataset single(Dataset("view"),
                            workload.rule.children()[branch]);
    // Reuse the same dataset records by re-adding them (Dataset is the
    // record store; rule selects the modality).
    for (RecordId r = 0; r < workload.dataset.num_records(); ++r) {
      single.dataset.AddRecord(workload.dataset.record(r),
                               workload.dataset.entity_assignment()[r]);
    }
    add_row("adaLSH", branch == 0 ? "photo only" : "fingerprint only",
            RunAdaLsh(single, k));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the OR rule reaches high F1; either "
               "modality alone is visibly worse (bad captures split "
               "entities); adaLSH beats Pairs on time at equal F1.\n";
  return 0;
}
