// Figure 16: execution time on PopularImages vs the Zipf exponent of the
// records-per-entity distribution (Section 7.4.2), for cosine thresholds of
// (a) 3 degrees and (b) 5 degrees: adaLSH vs LSH320 vs LSH2560. The paper's
// "challenging scenario": huge top entities make the final P application
// dominate, so adaLSH's edge shrinks to 1.2-1.7x; time grows with the
// exponent (larger top clusters) and with a looser threshold.
//
// Pairs is omitted by default as in the paper ("almost one hour"); pass
// --run_pairs to include it.
//
//   fig16_images_time [--k=10] [--records=10000] [--exponents=1.05,1.1,1.2]
//                     [--thresholds=3,5] [--run_pairs]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  size_t records = static_cast<size_t>(flags.GetInt("records", 10000));
  std::vector<double> exponents =
      flags.GetDoubleList("exponents", {1.05, 1.1, 1.2});
  std::vector<double> thresholds = flags.GetDoubleList("thresholds", {3, 5});
  bool run_pairs = flags.GetBool("run_pairs", false);
  flags.CheckNoUnusedFlags();

  for (double degrees : thresholds) {
    PrintExperimentHeader(
        std::cout, degrees == thresholds.front() ? "Figure 16(a)"
                                                 : "Figure 16(b)",
        "execution time (s) on PopularImages, threshold = " +
            FormatDouble(degrees, 0) + " degrees, k = " + std::to_string(k));
    ResultTable table({"zipf_exponent", "top1_size", "adaLSH", "LSH320",
                       "LSH2560", run_pairs ? "Pairs" : "Pairs(skipped)"});
    for (double exponent : exponents) {
      GeneratedDataset workload =
          MakePopularImagesWorkload(exponent, degrees, records, kDataSeed);
      GroundTruth truth = workload.dataset.BuildGroundTruth();
      FilterOutput ada = RunAdaLsh(workload, k);
      FilterOutput lsh320 = RunLshX(workload, k, 320);
      FilterOutput lsh2560 = RunLshX(workload, k, 2560);
      std::string pairs_cell = "-";
      if (run_pairs) {
        pairs_cell = Secs(RunPairs(workload, k).stats.filtering_seconds);
      }
      table.AddRow({FormatDouble(exponent, 2),
                    std::to_string(truth.cluster(0).size()),
                    Secs(ada.stats.filtering_seconds),
                    Secs(lsh320.stats.filtering_seconds),
                    Secs(lsh2560.stats.filtering_seconds), pairs_cell});
    }
    table.Print(std::cout);
  }
  return 0;
}
