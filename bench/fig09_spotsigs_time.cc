// Figure 9: filtering execution time on SpotSigs (the high-dimensional
// workload: large spot-signature sets make every hash function expensive).
//   (a) adaLSH vs LSH1280 vs Pairs for k in {2, 5, 10, 20} on SpotSigs 1x.
//   (b) the same at k = 10 for SpotSigs 1x / 2x / 4x / 8x.
//
// Paper shape: adaLSH's edge grows vs Cora (25x vs LSH there); LSH is slower
// than Pairs on small datasets and only wins past ~9000 records.
//
// Default scales stop at 4x so the whole bench suite stays laptop-friendly;
// pass --scales=1,2,4,8 for the paper's full range.
//
//   fig09_spotsigs_time [--ks=2,5,10,20] [--scales=1,2,4] [--lsh_x=1280]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace adalsh;        // NOLINT: bench brevity
  using namespace adalsh::bench; // NOLINT: bench brevity
  Flags flags(argc, argv);
  std::vector<int64_t> ks = flags.GetIntList("ks", {2, 5, 10, 20});
  std::vector<int64_t> scales = flags.GetIntList("scales", {1, 2, 4});
  int lsh_x = static_cast<int>(flags.GetInt("lsh_x", 1280));
  flags.CheckNoUnusedFlags();

  PrintExperimentHeader(std::cout, "Figure 9(a)",
                        "execution time (s) on SpotSigs vs k");
  {
    GeneratedDataset workload = MakeSpotSigsWorkload(1, kDataSeed);
    ResultTable table({"k", "adaLSH", "LSH" + std::to_string(lsh_x),
                       "Pairs", "adaLSH_speedup_vs_LSH"});
    for (int64_t k : ks) {
      FilterOutput ada = RunAdaLsh(workload, static_cast<int>(k));
      FilterOutput lsh = RunLshX(workload, static_cast<int>(k), lsh_x);
      FilterOutput pairs = RunPairs(workload, static_cast<int>(k));
      table.AddRow({std::to_string(k), Secs(ada.stats.filtering_seconds),
                    Secs(lsh.stats.filtering_seconds),
                    Secs(pairs.stats.filtering_seconds),
                    FormatDouble(lsh.stats.filtering_seconds /
                                     ada.stats.filtering_seconds,
                                 1) +
                        "x"});
    }
    table.Print(std::cout);
  }

  PrintExperimentHeader(std::cout, "Figure 9(b)",
                        "execution time (s) on SpotSigs 1x..8x, k = 10");
  {
    ResultTable table({"records", "adaLSH", "LSH" + std::to_string(lsh_x),
                       "Pairs", "adaLSH_speedup_vs_Pairs"});
    for (int64_t scale : scales) {
      GeneratedDataset workload =
          MakeSpotSigsWorkload(static_cast<size_t>(scale), kDataSeed);
      FilterOutput ada = RunAdaLsh(workload, 10);
      FilterOutput lsh = RunLshX(workload, 10, lsh_x);
      FilterOutput pairs = RunPairs(workload, 10);
      table.AddRow({std::to_string(workload.dataset.num_records()),
                    Secs(ada.stats.filtering_seconds),
                    Secs(lsh.stats.filtering_seconds),
                    Secs(pairs.stats.filtering_seconds),
                    FormatDouble(pairs.stats.filtering_seconds /
                                     ada.stats.filtering_seconds,
                                 1) +
                        "x"});
    }
    table.Print(std::cout);
  }
  return 0;
}
