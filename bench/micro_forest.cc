// Micro-benchmarks for the clustering substrate: parent-pointer-forest
// operations (tree build / merge / root finding) and the bin index.

#include <benchmark/benchmark.h>

#include "clustering/bin_index.h"
#include "clustering/parent_pointer_forest.h"
#include "util/rng.h"

namespace adalsh {
namespace {

void BM_ForestBuildAndMerge(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(1);
  for (auto _ : state) {
    ParentPointerForest forest;
    std::vector<NodeId> leaf(n);
    for (size_t r = 0; r < n; ++r) {
      forest.MakeTree(static_cast<RecordId>(r), 0, &leaf[r]);
    }
    // Random unions until one tree remains (~n merges).
    for (size_t step = 0; step < 2 * n; ++step) {
      NodeId a = forest.FindRoot(leaf[rng.NextBelow(n)]);
      NodeId b = forest.FindRoot(leaf[rng.NextBelow(n)]);
      if (a != b) forest.Merge(a, b);
    }
    benchmark::DoNotOptimize(forest.num_nodes());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ForestBuildAndMerge)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ForestLeafIteration(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  ParentPointerForest forest;
  NodeId root = forest.MakeTree(0, 0);
  for (size_t r = 1; r < n; ++r) {
    forest.AddLeaf(root, static_cast<RecordId>(r));
  }
  for (auto _ : state) {
    uint64_t sum = 0;
    forest.ForEachLeaf(root, [&sum](RecordId r) { sum += r; });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_ForestLeafIteration)->Arg(1000)->Arg(100000);

void BM_BinIndexInsertPop(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(2);
  std::vector<uint32_t> counts(n);
  for (uint32_t& c : counts) {
    c = 1 + static_cast<uint32_t>(rng.NextBelow(1 << 16));
  }
  for (auto _ : state) {
    BinIndex bins(1 << 17);
    for (size_t i = 0; i < n; ++i) {
      bins.Insert(static_cast<NodeId>(i), counts[i]);
    }
    while (!bins.empty()) benchmark::DoNotOptimize(bins.PopLargest());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_BinIndexInsertPop)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace adalsh
