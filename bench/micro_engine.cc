// Micro-benchmarks for the resident engine (docs/engine.md), written as a
// JSON baseline (BENCH_engine.json) so perf regressions are diffable:
//
//   * ingest: streaming a Cora-like workload through ResidentEngine::Ingest
//     at several batch sizes — small batches pay a refinement pass per
//     batch, large batches amortize it, and the spread is the price of
//     freshness the engine's incremental caches are supposed to bound;
//   * one_shot: the same records in a single batch (the from-scratch
//     filter's work shape), the reference point for the streaming overhead;
//   * mutations: remove/update round-trips on a resident population, each
//     of which dismantles and re-refines a level-1 component;
//   * queries: TopK/Cluster served from the published snapshot — these ride
//     the read path only and should be orders of magnitude above mutations;
//   * sharded: the same concurrent multi-writer update load against the
//     single-lock resident engine (shards=0) and the sharded engine at
//     several shard counts — the A/B for the sharded executor's claim that
//     partitioning the mutation lock buys writer throughput. Reported with
//     the summed per-mutation lock wait so the contention that disappears
//     is visible, not just inferred;
//   * durability: the streamed ingest through the durable engine at each
//     WAL sync policy (none/batch/always) against the in-memory baseline —
//     what write-ahead logging costs at each point of the durability dial
//     (docs/durability.md).
//
// Flags:
//   --out=PATH   where to write the JSON document (default
//                BENCH_engine.json in the working directory)
//   --smoke      tiny workloads and time budgets; used by the engine_bench_smoke
//                ctest target to validate the schema, not to measure

#include <cstdlib>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "datagen/cora_like.h"
#include "engine/durability.h"
#include "engine/resident_engine.h"
#include "engine/sharded_executor.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adalsh {
namespace {

ResidentEngine::Options EngineOptions() {
  ResidentEngine::Options options;
  options.config.seed = 3;
  options.config.sequence.max_budget = 640;
  options.top_k = 10;
  // Pinned unit costs: the baseline must not move with calibration noise.
  options.cost_model = CostModel(1e-8, 1e-6);
  return options;
}

std::vector<Record> CopyRecords(const Dataset& dataset, size_t begin,
                                size_t end) {
  std::vector<Record> records;
  records.reserve(end - begin);
  for (size_t i = begin; i < end; ++i) records.push_back(dataset.record(i));
  return records;
}

/// W concurrent writers, each updating its own disjoint slice of the live
/// ids (index mod W) with random replacement records. Returns wall seconds
/// and the lock wait summed over every mutation — on the resident engine the
/// wait is the single-lock queue; on the sharded engine writers only collide
/// when their ids share a shard.
template <typename Engine>
void RunMultiWriterUpdates(Engine* engine, const Dataset& dataset,
                           const std::vector<ExternalId>& live,
                           size_t writers, size_t rounds, double* seconds,
                           double* lock_wait_seconds) {
  std::vector<double> waits(writers, 0.0);
  std::vector<std::thread> threads;
  threads.reserve(writers);
  Timer timer;
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([engine, &dataset, &live, writers, rounds, &waits,
                          w] {
      Rng rng(DeriveSeed(bench::kDataSeed, 0x3a4d + w));
      std::vector<ExternalId> mine;
      for (size_t i = w; i < live.size(); i += writers) {
        mine.push_back(live[i]);
      }
      double wait = 0;
      for (size_t r = 0; r < rounds; ++r) {
        const ExternalId id = mine[r % mine.size()];
        StatusOr<EngineMutationResult> updated = engine->Update(
            id, dataset.record(rng.NextBelow(dataset.num_records())));
        ADALSH_CHECK(updated.ok()) << updated.status().message();
        wait += updated.value().lock_wait_seconds;
      }
      waits[w] = wait;
    });
  }
  for (std::thread& t : threads) t.join();
  *seconds = timer.ElapsedSeconds();
  *lock_wait_seconds = 0;
  for (double w : waits) *lock_wait_seconds += w;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string out = flags.GetString("out", "BENCH_engine.json");
  const bool smoke = flags.GetBool("smoke", false);
  flags.CheckNoUnusedFlags();

  CoraLikeConfig config;
  config.num_entities = smoke ? 12 : 100;
  config.num_records = smoke ? 60 : 600;
  config.seed = bench::kDataSeed;
  GeneratedDataset workload = GenerateCoraLike(config);
  const size_t n = workload.dataset.num_records();

  bench::JsonWriter json;
  json.BeginObject()
      .Key("benchmark")
      .String("micro_engine")
      .Key("smoke")
      .Bool(smoke)
      .Key("records")
      .Uint(n);

  // --- Streaming ingest at several batch sizes. ---
  json.Key("ingest").BeginArray();
  double streamed_full_seconds = 0;
  for (size_t batch : {size_t{4}, size_t{32}, n}) {
    ResidentEngine engine(workload.rule, EngineOptions());
    Timer timer;
    for (size_t begin = 0; begin < n; begin += batch) {
      const size_t end = std::min(begin + batch, n);
      StatusOr<EngineMutationResult> result =
          engine.Ingest(CopyRecords(workload.dataset, begin, end));
      ADALSH_CHECK(result.ok()) << result.status().message();
    }
    const double seconds = timer.ElapsedSeconds();
    if (batch == 4) streamed_full_seconds = seconds;
    json.BeginObject()
        .Key("batch")
        .Uint(batch)
        .Key("seconds")
        .Double(seconds)
        .Key("records_per_second")
        .Double(static_cast<double>(n) / seconds)
        .Key("generations")
        .Uint(engine.counters().generation)
        .Key("total_hashes")
        .Uint(engine.counters().total_hashes)
        .EndObject();
  }
  json.EndArray();

  // --- One-shot reference: the whole workload in a single batch, timed
  // against the batch=4 streamed run. The ratio is the cost of keeping the
  // top-k continuously certified instead of filtering once at the end. ---
  {
    ResidentEngine engine(workload.rule, EngineOptions());
    Timer timer;
    StatusOr<EngineMutationResult> result =
        engine.Ingest(CopyRecords(workload.dataset, 0, n));
    ADALSH_CHECK(result.ok()) << result.status().message();
    const double seconds = timer.ElapsedSeconds();
    json.Key("one_shot")
        .BeginObject()
        .Key("seconds")
        .Double(seconds)
        .Key("records_per_second")
        .Double(static_cast<double>(n) / seconds)
        .Key("streamed_over_one_shot")
        .Double(seconds > 0 ? streamed_full_seconds / seconds : 0.0)
        .EndObject();
  }

  // --- Mutations and queries against a resident population. ---
  ResidentEngine engine(workload.rule, EngineOptions());
  StatusOr<EngineMutationResult> seeded =
      engine.Ingest(CopyRecords(workload.dataset, 0, n));
  ADALSH_CHECK(seeded.ok()) << seeded.status().message();
  std::vector<ExternalId> live = seeded.value().assigned_ids;

  Rng rng(bench::kDataSeed);
  const size_t mutation_rounds = smoke ? 8 : 64;
  Timer timer;
  for (size_t i = 0; i < mutation_rounds; ++i) {
    const size_t victim = rng.NextBelow(live.size());
    const ExternalId id = live[victim];
    StatusOr<EngineMutationResult> removed =
        engine.Remove(std::vector<ExternalId>{id});
    ADALSH_CHECK(removed.ok()) << removed.status().message();
    live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
  }
  const double remove_seconds = timer.ElapsedSeconds();

  timer.Reset();
  for (size_t i = 0; i < mutation_rounds; ++i) {
    const ExternalId id = live[rng.NextBelow(live.size())];
    StatusOr<EngineMutationResult> updated =
        engine.Update(id, workload.dataset.record(rng.NextBelow(n)));
    ADALSH_CHECK(updated.ok()) << updated.status().message();
  }
  const double update_seconds = timer.ElapsedSeconds();

  json.Key("mutations")
      .BeginObject()
      .Key("rounds")
      .Uint(mutation_rounds)
      .Key("removes_per_second")
      .Double(static_cast<double>(mutation_rounds) / remove_seconds)
      .Key("updates_per_second")
      .Double(static_cast<double>(mutation_rounds) / update_seconds)
      .EndObject();

  const size_t query_rounds = smoke ? 1000 : 100000;
  const ExternalId probe = engine.Snapshot()->clusters.empty()
                               ? 0
                               : engine.Snapshot()->clusters[0][0];
  timer.Reset();
  uint64_t topk_members = 0;
  for (size_t i = 0; i < query_rounds; ++i) {
    StatusOr<std::vector<std::vector<ExternalId>>> top = engine.TopK(10);
    ADALSH_CHECK(top.ok()) << top.status().message();
    topk_members += top.value().size();
  }
  const double topk_seconds = timer.ElapsedSeconds();

  timer.Reset();
  uint64_t cluster_hits = 0;
  for (size_t i = 0; i < query_rounds; ++i) {
    cluster_hits += engine.Cluster(probe).ok();
  }
  const double cluster_seconds = timer.ElapsedSeconds();

  json.Key("queries")
      .BeginObject()
      .Key("rounds")
      .Uint(query_rounds)
      .Key("topk_per_second")
      .Double(static_cast<double>(query_rounds) / topk_seconds)
      .Key("cluster_per_second")
      .Double(static_cast<double>(query_rounds) / cluster_seconds)
      .Key("topk_clusters_seen")
      .Uint(topk_members)
      .Key("cluster_hits")
      .Uint(cluster_hits)
      .EndObject();

  // --- Sharded multi-writer A/B (docs/sharding.md). shards=0 is the
  // resident engine's single lock under the identical load. ---
  {
    const size_t writers = smoke ? 2 : 4;
    const size_t writer_rounds = smoke ? 4 : 48;
    json.Key("sharded").BeginObject().Key("writers").Uint(writers).Key(
        "rounds_per_writer").Uint(writer_rounds);
    json.Key("sweep").BeginArray();
    for (int shards : {0, 1, 2, 4, 8}) {
      double seconds = 0;
      double lock_wait_seconds = 0;
      uint64_t total_hashes = 0;
      if (shards == 0) {
        ResidentEngine ab(workload.rule, EngineOptions());
        StatusOr<EngineMutationResult> loaded =
            ab.Ingest(CopyRecords(workload.dataset, 0, n));
        ADALSH_CHECK(loaded.ok()) << loaded.status().message();
        RunMultiWriterUpdates(&ab, workload.dataset,
                              loaded.value().assigned_ids, writers,
                              writer_rounds, &seconds, &lock_wait_seconds);
        total_hashes = ab.counters().total_hashes;
      } else {
        ShardedEngine::Options options;
        options.engine = EngineOptions();
        options.shards = shards;
        ShardedEngine ab(workload.rule, options);
        StatusOr<EngineMutationResult> loaded =
            ab.Ingest(CopyRecords(workload.dataset, 0, n));
        ADALSH_CHECK(loaded.ok()) << loaded.status().message();
        RunMultiWriterUpdates(&ab, workload.dataset,
                              loaded.value().assigned_ids, writers,
                              writer_rounds, &seconds, &lock_wait_seconds);
        StatusOr<EngineMutationResult> flushed = ab.Flush();
        ADALSH_CHECK(flushed.ok()) << flushed.status().message();
        total_hashes = ab.counters().total_hashes;
      }
      const double ops = static_cast<double>(writers * writer_rounds);
      json.BeginObject()
          .Key("shards")
          .Int(shards)
          .Key("updates_per_second")
          .Double(seconds > 0 ? ops / seconds : 0.0)
          .Key("lock_wait_seconds")
          .Double(lock_wait_seconds)
          .Key("total_hashes")
          .Uint(total_hashes)
          .EndObject();
    }
    json.EndArray().EndObject();
  }

  // --- Durability overhead (docs/durability.md): the identical streamed
  // ingest through the durable engine at each WAL sync policy, against the
  // in-memory resident engine as the baseline. `always` pays an fsync per
  // mutation, `batch` defers to the flush barrier, `none` is pure logging
  // cost — the three points of the durability/throughput dial. ---
  {
    const size_t batch = 32;
    ResidentEngine baseline(workload.rule, EngineOptions());
    Timer baseline_timer;
    for (size_t begin = 0; begin < n; begin += batch) {
      StatusOr<EngineMutationResult> result = baseline.Ingest(
          CopyRecords(workload.dataset, begin, std::min(begin + batch, n)));
      ADALSH_CHECK(result.ok()) << result.status().message();
    }
    StatusOr<EngineMutationResult> base_flushed = baseline.Flush();
    ADALSH_CHECK(base_flushed.ok()) << base_flushed.status().message();
    const double baseline_seconds = baseline_timer.ElapsedSeconds();

    json.Key("durability")
        .BeginObject()
        .Key("batch")
        .Uint(batch)
        .Key("baseline_seconds")
        .Double(baseline_seconds)
        .Key("sweep")
        .BeginArray();
    for (const char* sync_name : {"none", "batch", "always"}) {
      char dir_template[] = "/tmp/adalsh_walbench_XXXXXX";
      ADALSH_CHECK(mkdtemp(dir_template) != nullptr) << "mkdtemp failed";
      const std::string dir = dir_template;
      StatusOr<WalSyncPolicy> sync = ParseWalSyncPolicy(sync_name);
      ADALSH_CHECK(sync.ok()) << sync.status().message();
      DurableEngine::Options options;
      options.engine = EngineOptions();
      options.data_dir = dir;
      options.sync = *sync;
      StatusOr<std::unique_ptr<DurableEngine>> durable =
          DurableEngine::Open(workload.rule, std::move(options));
      ADALSH_CHECK(durable.ok()) << durable.status().message();
      Timer timer;
      for (size_t begin = 0; begin < n; begin += batch) {
        StatusOr<EngineMutationResult> result = durable.value()->Ingest(
            CopyRecords(workload.dataset, begin, std::min(begin + batch, n)));
        ADALSH_CHECK(result.ok()) << result.status().message();
      }
      StatusOr<EngineMutationResult> flushed = durable.value()->Flush();
      ADALSH_CHECK(flushed.ok()) << flushed.status().message();
      const double seconds = timer.ElapsedSeconds();
      const DurabilityStats wal = durable.value()->durability_stats();
      json.BeginObject()
          .Key("sync")
          .String(sync_name)
          .Key("seconds")
          .Double(seconds)
          .Key("records_per_second")
          .Double(static_cast<double>(n) / seconds)
          .Key("overhead_over_baseline")
          .Double(baseline_seconds > 0 ? seconds / baseline_seconds : 0.0)
          .Key("wal_bytes_appended")
          .Uint(wal.wal_bytes_appended)
          .Key("wal_syncs")
          .Uint(wal.wal_syncs)
          .EndObject();
      durable.value().reset();  // close the log fds before cleanup
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }
    json.EndArray().EndObject();
  }

  json.Key("final")
      .BeginObject()
      .Key("generation")
      .Uint(engine.counters().generation)
      .Key("live_records")
      .Uint(engine.counters().live_records)
      .EndObject();

  json.EndObject();
  std::string doc = json.TakeString();
  std::ofstream file(out);
  ADALSH_CHECK(file.good()) << "cannot open " << out;
  file << doc;
  ADALSH_CHECK(file.good()) << "failed writing " << out;
  std::cout << doc;
  std::cout << "wrote " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace adalsh

int main(int argc, char** argv) { return adalsh::Main(argc, argv); }
