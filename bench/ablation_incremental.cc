// Ablation: the incremental-computation property (Section 2.2, Property 4 /
// Appendix B.2). Algorithm 1 is run with hash-cache reuse disabled — every
// function application recomputes its hashes from scratch — to quantify how
// much of adaLSH's speed comes from never repeating hash work. The paper
// notes the Exponential budget mode makes each step's work comparable to all
// previous steps combined, so disabling reuse roughly doubles hash work per
// refined cluster (more when clusters are refined repeatedly).
//
//   ablation_incremental [--k=10] [--scale=1]

#include <iostream>

#include "bench_util.h"
#include "util/flags.h"

namespace {

using namespace adalsh;        // NOLINT: bench brevity
using namespace adalsh::bench; // NOLINT: bench brevity

void RunPanel(const std::string& name, const GeneratedDataset& workload,
              int k) {
  PrintExperimentHeader(std::cout, "Ablation (Property 4)",
                        "incremental hash reuse on " + name +
                            ", k = " + std::to_string(k));
  ResultTable table({"variant", "seconds", "hashes_computed"});
  for (bool ablate : {false, true}) {
    AdaptiveLshConfig config;
    config.ablate_incremental_reuse = ablate;
    config.seed = kMethodSeed;
    AdaptiveLsh method(workload.dataset, workload.rule, config);
    FilterOutput output = method.Run(k);
    table.AddRow({ablate ? "recompute-from-scratch" : "incremental (paper)",
                  Secs(output.stats.filtering_seconds),
                  std::to_string(output.stats.hashes_computed)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  int k = static_cast<int>(flags.GetInt("k", 10));
  size_t scale = static_cast<size_t>(flags.GetInt("scale", 1));
  flags.CheckNoUnusedFlags();

  RunPanel("Cora", MakeCoraWorkload(scale, kDataSeed), k);
  RunPanel("SpotSigs", MakeSpotSigsWorkload(scale, kDataSeed), k);
  return 0;
}
