#include "record/dataset.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

Record OneFieldRecord(uint64_t token) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet({token}));
  return Record(std::move(fields));
}

/// Entities: 0 has 3 records, 1 has 1, 2 has 2 -> ranks: 0, 2, 1.
Dataset MakeDataset() {
  Dataset dataset("test");
  dataset.AddRecord(OneFieldRecord(0), 0);
  dataset.AddRecord(OneFieldRecord(1), 0);
  dataset.AddRecord(OneFieldRecord(2), 1);
  dataset.AddRecord(OneFieldRecord(3), 2);
  dataset.AddRecord(OneFieldRecord(4), 0);
  dataset.AddRecord(OneFieldRecord(5), 2);
  return dataset;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset dataset = MakeDataset();
  EXPECT_EQ(dataset.num_records(), 6u);
  EXPECT_EQ(dataset.name(), "test");
  EXPECT_EQ(dataset.AllRecordIds().size(), 6u);
  EXPECT_EQ(dataset.AllRecordIds()[0], 0u);
  EXPECT_EQ(dataset.AllRecordIds()[5], 5u);
}

TEST(GroundTruthTest, ClustersOrderedBySize) {
  GroundTruth truth = MakeDataset().BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 3u);
  EXPECT_EQ(truth.cluster(0).size(), 3u);  // entity 0
  EXPECT_EQ(truth.cluster(1).size(), 2u);  // entity 2
  EXPECT_EQ(truth.cluster(2).size(), 1u);  // entity 1
}

TEST(GroundTruthTest, EntityOfAndRanks) {
  GroundTruth truth = MakeDataset().BuildGroundTruth();
  EXPECT_EQ(truth.entity_of(0), 0u);
  EXPECT_EQ(truth.entity_of(3), 2u);
  EXPECT_EQ(truth.rank_of_entity(0), 0u);
  EXPECT_EQ(truth.rank_of_entity(2), 1u);
  EXPECT_EQ(truth.rank_of_entity(1), 2u);
  EXPECT_EQ(truth.entity_at_rank(0), 0u);
  EXPECT_EQ(truth.entity_at_rank(2), 1u);
}

TEST(GroundTruthTest, TopKRecords) {
  GroundTruth truth = MakeDataset().BuildGroundTruth();
  EXPECT_EQ(truth.TopKRecords(1), (std::vector<RecordId>{0, 1, 4}));
  EXPECT_EQ(truth.TopKRecords(2), (std::vector<RecordId>{0, 1, 3, 4, 5}));
  // k beyond the entity count is clamped.
  EXPECT_EQ(truth.TopKRecords(10).size(), 6u);
}

TEST(GroundTruthTest, TieBreakIsDeterministic) {
  Dataset dataset("ties");
  dataset.AddRecord(OneFieldRecord(0), 0);
  dataset.AddRecord(OneFieldRecord(1), 1);
  GroundTruth truth = dataset.BuildGroundTruth();
  // Equal sizes: entity id order.
  EXPECT_EQ(truth.entity_at_rank(0), 0u);
  EXPECT_EQ(truth.entity_at_rank(1), 1u);
}

TEST(GroundTruthDeathTest, SparseEntityIdsAbort) {
  Dataset dataset("sparse");
  dataset.AddRecord(OneFieldRecord(0), 0);
  dataset.AddRecord(OneFieldRecord(1), 2);  // entity 1 missing
  EXPECT_DEATH(dataset.BuildGroundTruth(), "dense");
}

}  // namespace
}  // namespace adalsh
