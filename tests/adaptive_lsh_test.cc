#include "core/adaptive_lsh.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "test_util.h"

namespace adalsh {
namespace {

AdaptiveLshConfig SmallConfig() {
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 30;
  config.seed = 3;
  return config;
}

TEST(AdaptiveLshTest, FindsTopKClusters) {
  GeneratedDataset generated =
      test::MakePlantedDataset({30, 20, 10, 5, 2, 1, 1, 1}, 7);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  FilterOutput output = adalsh.Run(3);
  ASSERT_EQ(output.clusters.clusters.size(), 3u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 30u);
  EXPECT_EQ(output.clusters.clusters[1].size(), 20u);
  EXPECT_EQ(output.clusters.clusters[2].size(), 10u);
  // The records are the right ones, not just the right counts.
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(output.clusters.UnionOfTopClusters(3), truth.TopKRecords(3));
}

TEST(AdaptiveLshTest, StatsAreConsistent) {
  GeneratedDataset generated = test::MakePlantedDataset({20, 10, 5, 1, 1}, 9);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  FilterOutput output = adalsh.Run(2);
  const FilterStats& stats = output.stats;
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.hashes_computed, 0u);
  // Every record is accounted to exactly one last function (or P).
  size_t accounted = stats.records_finished_by_pairwise;
  for (size_t n : stats.records_last_hashed_at) accounted += n;
  EXPECT_EQ(accounted, generated.dataset.num_records());
  EXPECT_GT(stats.modeled_cost, 0.0);
  EXPECT_GE(stats.filtering_seconds, 0.0);
}

TEST(AdaptiveLshTest, MostRecordsStopEarly) {
  // The paper's central claim: the vast majority of records only see the
  // first functions of the sequence.
  std::vector<size_t> sizes = {25, 15};
  for (int i = 0; i < 150; ++i) sizes.push_back(1);  // sparse background
  GeneratedDataset generated = test::MakePlantedDataset(sizes, 11);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  FilterOutput output = adalsh.Run(2);
  // Records stopping at H_1 or H_2 (or jumping to P as singletons after
  // H_1) dominate: fewer than half the records reach deep functions.
  size_t deep = 0;
  for (size_t i = 2; i < output.stats.records_last_hashed_at.size(); ++i) {
    deep += output.stats.records_last_hashed_at[i];
  }
  EXPECT_LT(deep, generated.dataset.num_records() / 4);
}

TEST(AdaptiveLshTest, BkLargerThanKReturnsMoreClusters) {
  GeneratedDataset generated =
      test::MakePlantedDataset({10, 8, 6, 4, 2, 1}, 13);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  FilterOutput bk_output = adalsh.Run(5);
  EXPECT_EQ(bk_output.clusters.clusters.size(), 5u);
  EXPECT_GE(bk_output.clusters.TotalRecords(),
            adalsh.Run(2).clusters.TotalRecords());
}

TEST(AdaptiveLshTest, KLargerThanClusterCount) {
  GeneratedDataset generated = test::MakePlantedDataset({4, 2}, 15);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  FilterOutput output = adalsh.Run(10);
  // Only two clusters exist.
  EXPECT_EQ(output.clusters.clusters.size(), 2u);
}

TEST(AdaptiveLshTest, IncrementalModeEmitsRanksInOrder) {
  GeneratedDataset generated =
      test::MakePlantedDataset({12, 9, 6, 3, 1}, 17);
  AdaptiveLsh adalsh(generated.dataset, generated.rule, SmallConfig());
  std::vector<size_t> ranks;
  std::vector<size_t> sizes;
  FilterOutput output =
      adalsh.Run(3, [&](size_t rank, const std::vector<RecordId>& records) {
        ranks.push_back(rank);
        sizes.push_back(records.size());
      });
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks, (std::vector<size_t>{0, 1, 2}));
  // Theorem 2: clusters are emitted largest-first.
  EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
  // Incremental output matches the batch result.
  EXPECT_EQ(sizes[0], output.clusters.clusters[0].size());
}

TEST(AdaptiveLshTest, DeterministicAcrossRuns) {
  GeneratedDataset generated = test::MakePlantedDataset({15, 10, 5, 1}, 19);
  AdaptiveLshConfig config = SmallConfig();
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput a = adalsh.Run(2);
  FilterOutput b = adalsh.Run(2);
  ASSERT_EQ(a.clusters.clusters.size(), b.clusters.clusters.size());
  for (size_t i = 0; i < a.clusters.clusters.size(); ++i) {
    EXPECT_EQ(test::SortedCluster(a.clusters.clusters[i]),
              test::SortedCluster(b.clusters.clusters[i]));
  }
}

TEST(AdaptiveLshTest, AllSelectionStrategiesAgreeOnOutput) {
  // Theorem 1's family: any selection order terminates with the same top-k
  // (only the cost differs). The output sets must coincide.
  GeneratedDataset generated =
      test::MakePlantedDataset({14, 9, 5, 2, 1, 1}, 23);
  std::vector<RecordId> reference;
  for (SelectionStrategy strategy :
       {SelectionStrategy::kLargestFirst, SelectionStrategy::kSmallestFirst,
        SelectionStrategy::kFifo, SelectionStrategy::kRandom}) {
    AdaptiveLshConfig config = SmallConfig();
    config.selection = strategy;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    FilterOutput output = adalsh.Run(3);
    std::vector<RecordId> records = output.clusters.UnionOfTopClusters(3);
    if (reference.empty()) {
      reference = records;
    } else {
      EXPECT_EQ(records, reference)
          << "strategy " << static_cast<int>(strategy);
    }
  }
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(reference, truth.TopKRecords(3));
}

TEST(AdaptiveLshTest, LargestFirstDoesLeastWork) {
  // Theorem 1 empirically: Largest-First's modeled cost is minimal among
  // the selection strategies (up to the shared H_1 pass).
  std::vector<size_t> sizes = {30, 20, 10};
  for (int i = 0; i < 80; ++i) sizes.push_back(1);
  GeneratedDataset generated = test::MakePlantedDataset(sizes, 29);
  auto run_cost = [&](SelectionStrategy strategy) {
    AdaptiveLshConfig config = SmallConfig();
    config.selection = strategy;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    // One fixed cost model for every strategy: the theorem compares
    // selection orders under a common model, and the wall-clock calibration
    // each instance would otherwise run is machine- and noise-dependent.
    adalsh.set_cost_model(CostModel(1e-8, 1e-6));
    FilterOutput output = adalsh.Run(2);
    return output.stats.hashes_computed +
           output.stats.pairwise_similarities;
  };
  uint64_t largest = run_cost(SelectionStrategy::kLargestFirst);
  EXPECT_LE(largest, run_cost(SelectionStrategy::kSmallestFirst));
  EXPECT_LE(largest, run_cost(SelectionStrategy::kFifo));
}

TEST(AdaptiveLshTest, IncrementalReuseAblationSameAnswerMoreHashes) {
  GeneratedDataset generated = test::MakePlantedDataset({12, 8, 4, 1, 1}, 31);
  AdaptiveLshConfig config = SmallConfig();
  // Over-estimate P's cost so clusters climb the hashing sequence (the
  // ablation only differs when H_{i+1} applications happen).
  config.pairwise_noise_factor = 50.0;
  AdaptiveLsh with_reuse(generated.dataset, generated.rule, config);
  config.ablate_incremental_reuse = true;
  AdaptiveLsh without_reuse(generated.dataset, generated.rule, config);
  // Replace both wall-clock-calibrated models with one fixed model so the
  // two instances make identical jump decisions; otherwise calibration noise
  // can flip a jump and invert the hash-count comparison below.
  CostModel fixed(1e-8, 1e-6);
  fixed.set_pairwise_noise_factor(config.pairwise_noise_factor);
  with_reuse.set_cost_model(fixed);
  without_reuse.set_cost_model(fixed);
  FilterOutput reuse = with_reuse.Run(2);
  FilterOutput no_reuse = without_reuse.Run(2);
  EXPECT_EQ(reuse.clusters.UnionOfTopClusters(2),
            no_reuse.clusters.UnionOfTopClusters(2));
  EXPECT_GT(no_reuse.stats.hashes_computed, reuse.stats.hashes_computed);
}

TEST(AdaptiveLshTest, SampledPurityJumpModelSameAnswer) {
  GeneratedDataset generated =
      test::MakePlantedDataset({40, 15, 6, 1, 1}, 37);
  AdaptiveLshConfig config = SmallConfig();
  AdaptiveLsh conservative(generated.dataset, generated.rule, config);
  config.jump_model = JumpModel::kSampledPurity;
  AdaptiveLsh sampled(generated.dataset, generated.rule, config);
  FilterOutput a = conservative.Run(2);
  FilterOutput b = sampled.Run(2);
  EXPECT_EQ(a.clusters.UnionOfTopClusters(2), b.clusters.UnionOfTopClusters(2));
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(b.clusters.UnionOfTopClusters(2), truth.TopKRecords(2));
  // The pure 40-record top cluster resolves by P earlier under sampling, so
  // the sampled variant never hashes more.
  EXPECT_LE(b.stats.hashes_computed, a.stats.hashes_computed);
}

TEST(AdaptiveLshTest, NoiseFactorStillCorrect) {
  // Fig. 21's robustness claim: noisy cost models change the execution
  // schedule, not the answer.
  GeneratedDataset generated = test::MakePlantedDataset({12, 8, 4, 1, 1}, 21);
  for (double nf : {0.2, 0.5, 2.0, 5.0}) {
    AdaptiveLshConfig config = SmallConfig();
    config.pairwise_noise_factor = nf;
    AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
    FilterOutput output = adalsh.Run(2);
    ASSERT_EQ(output.clusters.clusters.size(), 2u) << "nf " << nf;
    EXPECT_EQ(output.clusters.clusters[0].size(), 12u) << "nf " << nf;
    EXPECT_EQ(output.clusters.clusters[1].size(), 8u) << "nf " << nf;
  }
}

}  // namespace
}  // namespace adalsh
