#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(SetAccuracyTest, PerfectMatch) {
  SetAccuracy accuracy = ComputeSetAccuracy({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(accuracy.precision, 1.0);
  EXPECT_DOUBLE_EQ(accuracy.recall, 1.0);
  EXPECT_DOUBLE_EQ(accuracy.f1, 1.0);
}

TEST(SetAccuracyTest, PartialOverlap) {
  // Output {1,2,3,4}, truth {3,4,5,6}: P = 0.5, R = 0.5, F1 = 0.5.
  SetAccuracy accuracy = ComputeSetAccuracy({1, 2, 3, 4}, {3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(accuracy.precision, 0.5);
  EXPECT_DOUBLE_EQ(accuracy.recall, 0.5);
  EXPECT_DOUBLE_EQ(accuracy.f1, 0.5);
}

TEST(SetAccuracyTest, AsymmetricSizes) {
  // Output {1,2}, truth {1,2,3,4}: P = 1, R = 0.5, F1 = 2/3.
  SetAccuracy accuracy = ComputeSetAccuracy({1, 2}, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(accuracy.precision, 1.0);
  EXPECT_DOUBLE_EQ(accuracy.recall, 0.5);
  EXPECT_NEAR(accuracy.f1, 2.0 / 3.0, 1e-12);
}

TEST(SetAccuracyTest, EmptyCases) {
  SetAccuracy no_output = ComputeSetAccuracy({}, {1, 2});
  EXPECT_DOUBLE_EQ(no_output.precision, 0.0);
  EXPECT_DOUBLE_EQ(no_output.recall, 0.0);
  EXPECT_DOUBLE_EQ(no_output.f1, 0.0);
  SetAccuracy disjoint = ComputeSetAccuracy({1}, {2});
  EXPECT_DOUBLE_EQ(disjoint.f1, 0.0);
}

TEST(GoldAccuracyTest, AgainstGroundTruth) {
  // Truth: entity 0 -> {0,1,2}, entity 1 -> {3,4}; top-1 = {0,1,2}.
  GroundTruth truth({0, 0, 0, 1, 1});
  Clustering output;
  output.clusters = {{0, 1, 3}};  // 2 of top-1 plus a stray
  SetAccuracy accuracy = GoldAccuracy(output, truth, 1);
  EXPECT_NEAR(accuracy.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(accuracy.recall, 2.0 / 3.0, 1e-12);
}

TEST(RankedAccuracyTest, PaperWorkedExample) {
  // Section 6.2.1: C = {{a,b,c,f},{e}}, C* = {{a,b,c},{e,g}} ->
  // mAP = 0.775, mAR = 0.9. Encode a=0 b=1 c=2 f=3 e=4 g=5.
  GroundTruth truth({0, 0, 0, 2, 1, 1});  // f is its own entity (2)
  // truth clusters by size: {a,b,c} then {e,g} then {f}.
  Clustering output;
  output.clusters = {{0, 1, 2, 3}, {4}};
  RankedAccuracy ranked = ComputeRankedAccuracy(output, truth, 2);
  EXPECT_NEAR(ranked.map, 0.775, 1e-12);
  EXPECT_NEAR(ranked.mar, 0.9, 1e-12);
}

TEST(RankedAccuracyTest, PerfectOutput) {
  GroundTruth truth({0, 0, 0, 1, 1, 2});
  Clustering output;
  output.clusters = {{0, 1, 2}, {3, 4}, {5}};
  RankedAccuracy ranked = ComputeRankedAccuracy(output, truth, 3);
  EXPECT_DOUBLE_EQ(ranked.map, 1.0);
  EXPECT_DOUBLE_EQ(ranked.mar, 1.0);
}

TEST(RankedAccuracyTest, MissingClustersHurtRecall) {
  GroundTruth truth({0, 0, 0, 1, 1, 2});
  Clustering output;
  output.clusters = {{0, 1, 2}};  // only the top-1 cluster found
  RankedAccuracy ranked = ComputeRankedAccuracy(output, truth, 2);
  EXPECT_DOUBLE_EQ(ranked.map, 1.0);  // what was returned is pure
  // R_1 = 1, R_2 = 3/5.
  EXPECT_NEAR(ranked.mar, (1.0 + 0.6) / 2.0, 1e-12);
}

TEST(RankedAccuracyTest, HigherRanksWeighMore) {
  // An error in the top cluster hurts more than the same error lower down.
  GroundTruth truth({0, 0, 0, 1, 1, 2});
  Clustering error_on_top;
  error_on_top.clusters = {{0, 1, 5}, {3, 4}};  // stray in rank-1 cluster
  Clustering error_below;
  error_below.clusters = {{0, 1, 2}, {3, 5}};  // stray in rank-2 cluster
  RankedAccuracy top = ComputeRankedAccuracy(error_on_top, truth, 2);
  RankedAccuracy below = ComputeRankedAccuracy(error_below, truth, 2);
  EXPECT_LT(top.map, below.map);
}

TEST(RankedAccuracyAgainstTest, ReferenceClustering) {
  Clustering reference;
  reference.clusters = {{0, 1, 2}, {3, 4}};
  Clustering output;
  output.clusters = {{0, 1, 2}, {3, 4}};
  RankedAccuracy ranked = ComputeRankedAccuracyAgainst(output, reference, 2);
  EXPECT_DOUBLE_EQ(ranked.map, 1.0);
  EXPECT_DOUBLE_EQ(ranked.mar, 1.0);
}

}  // namespace
}  // namespace adalsh
