#include "distance/collision_model.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(CollisionModelTest, LinearModel) {
  CollisionModel p = LinearCollisionModel();
  EXPECT_DOUBLE_EQ(p(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p(0.25), 0.75);
  EXPECT_DOUBLE_EQ(p(1.0), 0.0);
}

TEST(CollisionModelTest, BothFieldKindsAreLinear) {
  EXPECT_DOUBLE_EQ(CollisionModelForFieldKind(Field::Kind::kDenseVector)(0.3),
                   0.7);
  EXPECT_DOUBLE_EQ(CollisionModelForFieldKind(Field::Kind::kTokenSet)(0.3),
                   0.7);
}

TEST(SchemeCollisionTest, PaperExample3) {
  // Example 3: two tables (z=2), three hash functions each (w=3); for angle
  // theta the probability is 1 - (1 - (1 - theta/180)^3)^2.
  CollisionModel p = LinearCollisionModel();
  for (double theta : {15.0, 30.0, 60.0, 120.0}) {
    double x = theta / 180.0;
    double expected =
        1.0 - std::pow(1.0 - std::pow(1.0 - x, 3.0), 2.0);
    EXPECT_NEAR(SchemeCollisionProbability(p, x, 3, 2), expected, 1e-12)
        << "theta " << theta;
  }
}

TEST(SchemeCollisionTest, ZeroDistanceAlwaysCollides) {
  CollisionModel p = LinearCollisionModel();
  EXPECT_DOUBLE_EQ(SchemeCollisionProbability(p, 0.0, 30, 70), 1.0);
}

TEST(SchemeCollisionTest, MaxDistanceNeverCollides) {
  CollisionModel p = LinearCollisionModel();
  EXPECT_DOUBLE_EQ(SchemeCollisionProbability(p, 1.0, 30, 70), 0.0);
}

TEST(SchemeCollisionTest, MoreTablesIncreaseProbability) {
  CollisionModel p = LinearCollisionModel();
  double x = 0.2;
  EXPECT_LT(SchemeCollisionProbability(p, x, 10, 5),
            SchemeCollisionProbability(p, x, 10, 50));
}

TEST(SchemeCollisionTest, MoreHashesPerTableDecreaseProbability) {
  CollisionModel p = LinearCollisionModel();
  double x = 0.2;
  EXPECT_GT(SchemeCollisionProbability(p, x, 5, 10),
            SchemeCollisionProbability(p, x, 50, 10));
}

TEST(SchemeCollisionTest, RemainderMatchesPaperFormula) {
  // 1 - (1 - p^w)^z * (1 - p^w') with w=10, z=3, w'=4 at x=0.1.
  CollisionModel p = LinearCollisionModel();
  double x = 0.1;
  double pw = std::pow(0.9, 10.0);
  double pr = std::pow(0.9, 4.0);
  double expected = 1.0 - std::pow(1.0 - pw, 3.0) * (1.0 - pr);
  EXPECT_NEAR(SchemeCollisionProbabilityWithRemainder(p, x, 10, 3, 4),
              expected, 1e-12);
}

TEST(SchemeCollisionTest, ZeroRemainderReducesToPlain) {
  CollisionModel p = LinearCollisionModel();
  EXPECT_DOUBLE_EQ(SchemeCollisionProbabilityWithRemainder(p, 0.3, 8, 5, 0),
                   SchemeCollisionProbability(p, 0.3, 8, 5));
}

TEST(SchemeCollisionTest, Figure5CurveOrdering) {
  // Fig. 5: at 55 degrees the (w=30, z=70) curve is far below the
  // (w=15, z=20) curve; at 15 degrees both are near 1.
  CollisionModel p = LinearCollisionModel();
  double at_55 = 55.0 / 180.0;
  EXPECT_LT(SchemeCollisionProbability(p, at_55, 30, 70), 0.01);
  EXPECT_GT(SchemeCollisionProbability(p, at_55, 15, 20), 0.05);
  double at_15 = 15.0 / 180.0;
  EXPECT_GT(SchemeCollisionProbability(p, at_15, 15, 20), 0.95);
  EXPECT_GT(SchemeCollisionProbability(p, at_15, 30, 70), 0.95);
}

}  // namespace
}  // namespace adalsh
