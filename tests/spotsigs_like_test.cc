#include "datagen/spotsigs_like.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "distance/jaccard.h"
#include "util/rng.h"

namespace adalsh {
namespace {

SpotSigsLikeConfig SmallConfig() {
  SpotSigsLikeConfig config;
  config.num_story_entities = 10;
  config.records_in_stories = 120;
  config.num_singletons = 80;
  config.seed = 21;
  return config;
}

TEST(SpotSigsLikeTest, ShapeAndSchema) {
  GeneratedDataset generated = GenerateSpotSigsLike(SmallConfig());
  EXPECT_EQ(generated.dataset.num_records(), 200u);
  EXPECT_EQ(generated.dataset.record(0).num_fields(), 1u);
  EXPECT_TRUE(generated.dataset.record(0).field(0).is_token_set());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 90u);  // 10 stories + 80 singletons
}

TEST(SpotSigsLikeTest, Deterministic) {
  GeneratedDataset a = GenerateSpotSigsLike(SmallConfig());
  GeneratedDataset b = GenerateSpotSigsLike(SmallConfig());
  for (RecordId r = 0; r < a.dataset.num_records(); ++r) {
    EXPECT_EQ(a.dataset.record(r).field(0).tokens(),
              b.dataset.record(r).field(0).tokens());
  }
}

TEST(SpotSigsLikeTest, RecordsAreHighDimensional) {
  // The paper's point: SpotSigs records carry large signature sets, making
  // each hash function expensive.
  GeneratedDataset generated = GenerateSpotSigsLike(SmallConfig());
  size_t total = 0;
  for (RecordId r = 0; r < generated.dataset.num_records(); ++r) {
    total += generated.dataset.record(r).field(0).size();
  }
  EXPECT_GT(total / generated.dataset.num_records(), 50u);
}

TEST(SpotSigsLikeTest, NearDuplicatesAboveThreshold) {
  GeneratedDataset generated = GenerateSpotSigsLike(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  const std::vector<RecordId>& top = truth.cluster(0);
  ASSERT_GE(top.size(), 5u);
  int above = 0, pairs = 0;
  for (size_t i = 0; i < top.size() && i < 12; ++i) {
    for (size_t j = i + 1; j < top.size() && j < 12; ++j) {
      ++pairs;
      double sim = JaccardSimilarity(
          generated.dataset.record(top[i]).field(0).tokens(),
          generated.dataset.record(top[j]).field(0).tokens());
      above += (sim >= 0.4);
    }
  }
  EXPECT_GT(static_cast<double>(above) / pairs, 0.7);
}

TEST(SpotSigsLikeTest, CrossEntitySparseGrayZone) {
  // Site boilerplate gives *same-site* unrelated pairs a small similarity
  // tail (the "dense area" stress of Fig. 2) while typical cross pairs share
  // nothing; everything stays safely below the 0.4 match threshold.
  GeneratedDataset generated = GenerateSpotSigsLike(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  Rng rng(5);
  double total = 0.0, max_sim = 0.0;
  int pairs = 0;
  for (int i = 0; i < 2000; ++i) {
    RecordId a = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    RecordId b = static_cast<RecordId>(
        rng.NextBelow(generated.dataset.num_records()));
    if (truth.entity_of(a) == truth.entity_of(b)) continue;
    double sim =
        JaccardSimilarity(generated.dataset.record(a).field(0).tokens(),
                          generated.dataset.record(b).field(0).tokens());
    EXPECT_LT(sim, 0.4);
    total += sim;
    max_sim = std::max(max_sim, sim);
    ++pairs;
  }
  EXPECT_LT(total / pairs, 0.05);  // typical pairs ~disjoint
  EXPECT_GT(max_sim, 0.02);        // but a same-site tail exists
}

TEST(SpotSigsLikeTest, RuleUsesConfiguredThreshold) {
  SpotSigsLikeConfig config = SmallConfig();
  config.jaccard_sim_threshold = 0.3;
  GeneratedDataset generated = GenerateSpotSigsLike(config);
  EXPECT_EQ(generated.rule.type(), MatchRule::Type::kLeaf);
  EXPECT_NEAR(generated.rule.threshold(), 0.7, 1e-12);
}

TEST(SpotSigsLikeTest, SingletonEntitiesHaveOneRecord) {
  GeneratedDataset generated = GenerateSpotSigsLike(SmallConfig());
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  // The last 80 entities by id are singletons.
  size_t singleton_count = 0;
  for (size_t rank = 0; rank < truth.num_entities(); ++rank) {
    if (truth.cluster(rank).size() == 1) ++singleton_count;
  }
  EXPECT_GE(singleton_count, 80u);
}

}  // namespace
}  // namespace adalsh
