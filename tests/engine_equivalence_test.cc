// The centerpiece differential harness for the resident engine: after ANY
// mutation history — randomized batch boundaries, interleaved removals and
// updates, fault-injected mid-batch cancellation, any thread count — the
// published snapshot must be byte-identical (canonical serialization,
// engine_harness.h) to that of a fresh engine ingesting the surviving records
// in one batch. This is the engine's confluence contract (docs/engine.md).

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "engine_harness.h"
#include "test_util.h"
#include "util/fault_injection.h"
#include "util/run_controller.h"

namespace adalsh {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

std::vector<size_t> SizesForSeed(uint64_t seed) {
  // Vary the planted shape with the seed: skew, mid-size ties, singletons.
  std::vector<size_t> sizes = {12, 9, 7, 5, 3, 2, 1};
  sizes[seed % sizes.size()] += seed % 4;
  if (seed % 3 == 0) sizes.push_back(1);
  return sizes;
}

TEST(EngineEquivalenceTest, RandomizedHistoriesAreConfluentAcrossThreads) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratedDataset generated =
        test::MakePlantedDataset(SizesForSeed(seed), seed);
    std::string reference;
    test::LiveMap first_live;
    for (int threads : kThreadCounts) {
      ResidentEngine engine(generated.rule,
                            test::EngineOptions(threads, /*top_k=*/4));
      test::LiveMap live =
          test::RunRandomScript(&engine, generated.dataset, seed);
      const std::string canonical =
          test::CanonicalSnapshot(*engine.Snapshot());
      if (threads == kThreadCounts[0]) {
        // The script is engine-independent and ids are assigned in batch
        // order, so every thread count must walk the identical history.
        first_live = live;
        reference = test::ReferenceCanonical(generated.dataset,
                                             generated.rule, live, 4);
      } else {
        ASSERT_EQ(live, first_live) << "seed " << seed;
      }
      EXPECT_EQ(canonical, reference)
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(EngineEquivalenceTest, PureIngestHistoryMatchesBatchFilter) {
  // Without removals/updates the surviving set is the whole dataset, so the
  // resident engine must also agree with the offline batch filter (and with
  // ground truth) on the top-k union, not just with its own reference.
  for (uint64_t seed : {2, 9, 23}) {
    GeneratedDataset generated =
        test::MakePlantedDataset({14, 9, 6, 3, 1, 1}, seed);
    ResidentEngine engine(generated.rule,
                          test::EngineOptions(/*threads=*/1, /*top_k=*/3));
    test::ScriptOptions script;
    script.with_removes = false;
    script.with_updates = false;
    test::LiveMap live =
        test::RunRandomScript(&engine, generated.dataset, seed, script);

    AdaptiveLshConfig config;
    config.sequence.max_budget = 640;
    config.seed = 3;
    AdaptiveLsh batch(generated.dataset, generated.rule, config);
    batch.set_cost_model(test::EngineFixedCostModel());
    FilterOutput output = batch.Run(3);

    std::vector<RecordId> engine_union;
    auto top = engine.TopK(3);
    ASSERT_TRUE(top.ok());
    for (const auto& cluster : top.value()) {
      for (ExternalId member : cluster) {
        engine_union.push_back(static_cast<RecordId>(live.at(member)));
      }
    }
    std::sort(engine_union.begin(), engine_union.end());
    EXPECT_EQ(engine_union, output.clusters.UnionOfTopClusters(3))
        << "seed " << seed;
    EXPECT_EQ(engine_union,
              generated.dataset.BuildGroundTruth().TopKRecords(3))
        << "seed " << seed;
  }
}

TEST(EngineEquivalenceTest, CancelledMidBatchConvergesAfterFlush) {
  // A fault-injected Cancel() fired from inside the hashing hot path
  // interrupts the post-ingest refinement. The batch's records must stay
  // ingested, the previous snapshot must stay published, and a later Flush
  // must converge to exactly the from-scratch answer.
  for (uint64_t seed : {3, 11, 17}) {
    GeneratedDataset generated =
        test::MakePlantedDataset({11, 8, 5, 3, 1}, seed);
    for (int threads : kThreadCounts) {
      ResidentEngine engine(generated.rule,
                            test::EngineOptions(threads, /*top_k=*/3));
      const size_t split = generated.dataset.num_records() / 2;
      test::LiveMap live;
      std::vector<Record> first_half;
      for (size_t r = 0; r < split; ++r) {
        first_half.push_back(generated.dataset.record(r));
      }
      auto first = engine.Ingest(std::move(first_half));
      ASSERT_TRUE(first.ok());
      for (size_t i = 0; i < split; ++i) {
        live[first.value().assigned_ids[i]] = i;
      }
      const uint64_t generation_before = engine.Snapshot()->generation;

      std::vector<Record> second_half;
      for (size_t r = split; r < generated.dataset.num_records(); ++r) {
        second_half.push_back(generated.dataset.record(r));
      }
      RunController controller;
      EngineBatchOptions slo;
      slo.controller = &controller;
      {
        FaultInjector injector;
        // The refinement after this ingest must process at least one
        // freshly-opened (producer-0) cluster through a hash round, so the
        // first kHashApply hit always happens and cancellation is
        // deterministic at every thread count.
        injector.CancelAt(FaultSite::kHashApply, 1, &controller);
        ScopedFaultInjector scoped(&injector);
        auto second = engine.Ingest(std::move(second_half), slo);
        ASSERT_TRUE(second.ok());
        EXPECT_EQ(second.value().refinement, TerminationReason::kCancelled);
        EXPECT_EQ(second.value().generation, generation_before);
        for (size_t i = 0; i + split < generated.dataset.num_records(); ++i) {
          live[second.value().assigned_ids[i]] = split + i;
        }
      }
      // The interrupted batch left the previous certified answer in place.
      EXPECT_EQ(engine.Snapshot()->generation, generation_before);

      auto flushed = engine.Flush();
      ASSERT_TRUE(flushed.ok());
      EXPECT_EQ(flushed.value().refinement, TerminationReason::kCompleted);
      EXPECT_GT(flushed.value().generation, generation_before);
      EXPECT_EQ(test::CanonicalSnapshot(*engine.Snapshot()),
                test::ReferenceCanonical(generated.dataset, generated.rule,
                                         live, 3))
          << "seed " << seed << " threads " << threads;
    }
  }
}

TEST(EngineEquivalenceTest, QueriesDuringIngestSeeOnlyCertifiedSnapshots) {
  // Query threads hammer the read API while the writer runs a full random
  // script. Every observed snapshot must be internally consistent and
  // generations must be monotone per observer — queries never see a
  // half-published state. (This test is the TSan target for the engine.)
  GeneratedDataset generated =
      test::MakePlantedDataset({13, 9, 6, 4, 2, 1}, 19);
  ResidentEngine engine(generated.rule,
                        test::EngineOptions(/*threads=*/2, /*top_k=*/4));
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  auto observer = [&] {
    uint64_t last_generation = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
      if (snap->generation < last_generation) ++failures;
      last_generation = snap->generation;
      if (snap->verification.size() != snap->clusters.size()) ++failures;
      size_t total_members = 0;
      for (size_t i = 0; i < snap->clusters.size(); ++i) {
        const auto& cluster = snap->clusters[i];
        total_members += cluster.size();
        if (i > 0 && cluster.size() > snap->clusters[i - 1].size()) {
          ++failures;  // canonical order: sizes descending
        }
        for (size_t m = 1; m < cluster.size(); ++m) {
          if (cluster[m - 1] >= cluster[m]) ++failures;  // members ascending
        }
        for (ExternalId member : cluster) {
          auto it = snap->cluster_of.find(member);
          if (it == snap->cluster_of.end() || it->second != i) ++failures;
        }
        auto via_query = engine.Cluster(cluster.front());
        // The engine may have published a newer snapshot in between; the
        // query answer must still be a well-formed cluster, not a torn one.
        if (via_query.ok() && via_query.value().empty()) ++failures;
      }
      // Clusters are disjoint and hold only records live at publication.
      if (total_members > snap->live_records) ++failures;
    }
  };
  std::thread q1(observer);
  std::thread q2(observer);
  test::LiveMap live = test::RunRandomScript(&engine, generated.dataset, 19);
  done.store(true, std::memory_order_release);
  q1.join();
  q2.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(test::CanonicalSnapshot(*engine.Snapshot()),
            test::ReferenceCanonical(generated.dataset, generated.rule, live,
                                     4));
}

}  // namespace
}  // namespace adalsh
