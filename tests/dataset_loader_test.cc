#include "io/dataset_loader.h"

#include <sstream>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ColumnSpecTest, ParsesAllKinds) {
  StatusOr<std::vector<ColumnSpec>> specs =
      ParseColumnSpecs("label,entity,text,text3,spotsigs,vector,ignore");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 7u);
  EXPECT_EQ((*specs)[0].kind, ColumnSpec::Kind::kLabel);
  EXPECT_EQ((*specs)[1].kind, ColumnSpec::Kind::kEntity);
  EXPECT_EQ((*specs)[2].kind, ColumnSpec::Kind::kTextShingles);
  EXPECT_EQ((*specs)[2].shingle_size, 1);
  EXPECT_EQ((*specs)[3].kind, ColumnSpec::Kind::kTextShingles);
  EXPECT_EQ((*specs)[3].shingle_size, 3);
  EXPECT_EQ((*specs)[4].kind, ColumnSpec::Kind::kTextSpotSigs);
  EXPECT_EQ((*specs)[5].kind, ColumnSpec::Kind::kDenseVector);
  EXPECT_EQ((*specs)[6].kind, ColumnSpec::Kind::kIgnore);
}

TEST(ColumnSpecTest, RejectsUnknownTokens) {
  EXPECT_FALSE(ParseColumnSpecs("text,whatever").ok());
  EXPECT_FALSE(ParseColumnSpecs("").ok());
  EXPECT_FALSE(ParseColumnSpecs("text0").ok());
  EXPECT_FALSE(ParseColumnSpecs("text99").ok());
}

TEST(DatasetLoaderTest, LoadsTextAndEntity) {
  std::istringstream in(
      "id,story\n"
      "s1,the quick brown fox jumps\n"
      "s1,the quick brown fox leaps\n"
      "s2,completely different words here\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("entity,text");
  ASSERT_TRUE(specs.ok());
  StatusOr<Dataset> dataset =
      LoadCsvDataset(&in, *specs, /*has_header=*/true, "test");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_records(), 3u);
  GroundTruth truth = dataset->BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 2u);
  EXPECT_EQ(truth.cluster(0).size(), 2u);
  // Features: records of s1 share most word shingles.
  EXPECT_GT(dataset->record(0).field(0).size(), 3u);
}

TEST(DatasetLoaderTest, LoadsDenseVectors) {
  std::istringstream in(
      "a,0.1;0.2;0.3\n"
      "b,0.4 0.5 0.6\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("label,vector");
  ASSERT_TRUE(specs.ok());
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "vec");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->record(0).field(0).dense(),
            (std::vector<float>{0.1f, 0.2f, 0.3f}));
  EXPECT_EQ(dataset->record(1).field(0).dense(),
            (std::vector<float>{0.4f, 0.5f, 0.6f}));
  EXPECT_EQ(dataset->record(0).label(), "a");
}

TEST(DatasetLoaderTest, NoEntityColumnMakesSingletons) {
  std::istringstream in("one two\nthree four\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  ASSERT_TRUE(dataset.ok());
  GroundTruth truth = dataset->BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 2u);
}

TEST(DatasetLoaderTest, ColumnCountMismatchIsError) {
  std::istringstream in("a,b\nc\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text,text");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetLoaderTest, RaggedVectorsAreError) {
  std::istringstream in("0.1;0.2\n0.3;0.4;0.5\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("vector");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("dimension"), std::string::npos);
}

TEST(DatasetLoaderTest, NonNumericVectorIsError) {
  std::istringstream in("0.1;zebra\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("vector");
  EXPECT_FALSE(LoadCsvDataset(&in, *specs, false, "x").ok());
}

TEST(DatasetLoaderTest, EmptyInputIsError) {
  std::istringstream in("");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text");
  EXPECT_FALSE(LoadCsvDataset(&in, *specs, false, "x").ok());
}

// Corrupt-input table: every malformed file must surface a Status (never a
// crash) whose message pinpoints the failure — row and column where they
// apply — so a CLI user can fix the file from the error alone.
struct CorruptInputCase {
  const char* name;
  const char* columns;      // column spec
  bool has_header;
  const char* input;        // raw CSV bytes
  const char* want_error;   // substring the Status message must carry
};

class CorruptInputTest : public ::testing::TestWithParam<CorruptInputCase> {};

TEST_P(CorruptInputTest, ReportsContextualError) {
  const CorruptInputCase& c = GetParam();
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs(c.columns);
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  std::istringstream in(c.input);
  StatusOr<Dataset> dataset =
      LoadCsvDataset(&in, *specs, c.has_header, "corrupt");
  ASSERT_FALSE(dataset.ok()) << "expected failure for case " << c.name;
  EXPECT_NE(dataset.status().message().find(c.want_error), std::string::npos)
      << "case " << c.name << ": error '" << dataset.status().message()
      << "' does not mention '" << c.want_error << "'";
}

INSTANTIATE_TEST_SUITE_P(
    DatasetLoader, CorruptInputTest,
    ::testing::Values(
        CorruptInputCase{"short_row", "text,text", false,
                         "a,b\nonly one\n", "line 2"},
        CorruptInputCase{"long_row", "text,text", false,
                         "a,b\nc,d,e\n", "expected 2 columns, got 3"},
        CorruptInputCase{"bad_vector_token", "label,vector", false,
                         "ok,0.1;0.2\nbad,0.3;zebra\n",
                         "line 2, column 2"},
        CorruptInputCase{"vector_overflow", "vector", false,
                         "1e10;1e39\n", "non-finite"},
        CorruptInputCase{"empty_vector_cell", "text,vector", false,
                         "words here,0.5\nmore words,\n",
                         "line 2, column 2: empty vector"},
        CorruptInputCase{"ragged_vector", "text,vector", false,
                         "w,0.1;0.2\nw,0.1;0.2;0.3\n",
                         "line 2, column 2: vector has dimension 3"},
        CorruptInputCase{"unterminated_quote", "text", false,
                         "fine row\n\"never closed\n", "unterminated quote"},
        CorruptInputCase{"unterminated_multiline_quote", "text", false,
                         "fine row\n\"spans\nthree\nlines\n",
                         "row started at line 2"},
        CorruptInputCase{"featureless_spec", "label,entity", false,
                         "a,b\n", "no feature columns"},
        CorruptInputCase{"header_only", "entity,text", true,
                         "id,story\n", "after the header row"}),
    [](const ::testing::TestParamInfo<CorruptInputCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace adalsh
