#include "io/dataset_loader.h"

#include <sstream>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(ColumnSpecTest, ParsesAllKinds) {
  StatusOr<std::vector<ColumnSpec>> specs =
      ParseColumnSpecs("label,entity,text,text3,spotsigs,vector,ignore");
  ASSERT_TRUE(specs.ok()) << specs.status().ToString();
  ASSERT_EQ(specs->size(), 7u);
  EXPECT_EQ((*specs)[0].kind, ColumnSpec::Kind::kLabel);
  EXPECT_EQ((*specs)[1].kind, ColumnSpec::Kind::kEntity);
  EXPECT_EQ((*specs)[2].kind, ColumnSpec::Kind::kTextShingles);
  EXPECT_EQ((*specs)[2].shingle_size, 1);
  EXPECT_EQ((*specs)[3].kind, ColumnSpec::Kind::kTextShingles);
  EXPECT_EQ((*specs)[3].shingle_size, 3);
  EXPECT_EQ((*specs)[4].kind, ColumnSpec::Kind::kTextSpotSigs);
  EXPECT_EQ((*specs)[5].kind, ColumnSpec::Kind::kDenseVector);
  EXPECT_EQ((*specs)[6].kind, ColumnSpec::Kind::kIgnore);
}

TEST(ColumnSpecTest, RejectsUnknownTokens) {
  EXPECT_FALSE(ParseColumnSpecs("text,whatever").ok());
  EXPECT_FALSE(ParseColumnSpecs("").ok());
  EXPECT_FALSE(ParseColumnSpecs("text0").ok());
  EXPECT_FALSE(ParseColumnSpecs("text99").ok());
}

TEST(DatasetLoaderTest, LoadsTextAndEntity) {
  std::istringstream in(
      "id,story\n"
      "s1,the quick brown fox jumps\n"
      "s1,the quick brown fox leaps\n"
      "s2,completely different words here\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("entity,text");
  ASSERT_TRUE(specs.ok());
  StatusOr<Dataset> dataset =
      LoadCsvDataset(&in, *specs, /*has_header=*/true, "test");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->num_records(), 3u);
  GroundTruth truth = dataset->BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 2u);
  EXPECT_EQ(truth.cluster(0).size(), 2u);
  // Features: records of s1 share most word shingles.
  EXPECT_GT(dataset->record(0).field(0).size(), 3u);
}

TEST(DatasetLoaderTest, LoadsDenseVectors) {
  std::istringstream in(
      "a,0.1;0.2;0.3\n"
      "b,0.4 0.5 0.6\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("label,vector");
  ASSERT_TRUE(specs.ok());
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "vec");
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset->record(0).field(0).dense(),
            (std::vector<float>{0.1f, 0.2f, 0.3f}));
  EXPECT_EQ(dataset->record(1).field(0).dense(),
            (std::vector<float>{0.4f, 0.5f, 0.6f}));
  EXPECT_EQ(dataset->record(0).label(), "a");
}

TEST(DatasetLoaderTest, NoEntityColumnMakesSingletons) {
  std::istringstream in("one two\nthree four\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  ASSERT_TRUE(dataset.ok());
  GroundTruth truth = dataset->BuildGroundTruth();
  EXPECT_EQ(truth.num_entities(), 2u);
}

TEST(DatasetLoaderTest, ColumnCountMismatchIsError) {
  std::istringstream in("a,b\nc\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text,text");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("line 2"), std::string::npos);
}

TEST(DatasetLoaderTest, RaggedVectorsAreError) {
  std::istringstream in("0.1;0.2\n0.3;0.4;0.5\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("vector");
  StatusOr<Dataset> dataset = LoadCsvDataset(&in, *specs, false, "x");
  EXPECT_FALSE(dataset.ok());
  EXPECT_NE(dataset.status().message().find("dimension"), std::string::npos);
}

TEST(DatasetLoaderTest, NonNumericVectorIsError) {
  std::istringstream in("0.1;zebra\n");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("vector");
  EXPECT_FALSE(LoadCsvDataset(&in, *specs, false, "x").ok());
}

TEST(DatasetLoaderTest, EmptyInputIsError) {
  std::istringstream in("");
  StatusOr<std::vector<ColumnSpec>> specs = ParseColumnSpecs("text");
  EXPECT_FALSE(LoadCsvDataset(&in, *specs, false, "x").ok());
}

}  // namespace
}  // namespace adalsh
