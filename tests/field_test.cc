#include "record/field.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(FieldTest, DenseVectorRoundTrip) {
  Field field = Field::DenseVector({1.0f, 2.0f, 3.0f});
  EXPECT_TRUE(field.is_dense());
  EXPECT_FALSE(field.is_token_set());
  EXPECT_EQ(field.kind(), Field::Kind::kDenseVector);
  EXPECT_EQ(field.dense(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(field.size(), 3u);
}

TEST(FieldTest, TokenSetIsSortedAndDeduplicated) {
  Field field = Field::TokenSet({5, 3, 5, 1, 3});
  EXPECT_TRUE(field.is_token_set());
  EXPECT_EQ(field.tokens(), (std::vector<uint64_t>{1, 3, 5}));
  EXPECT_EQ(field.size(), 3u);
}

TEST(FieldTest, EmptyTokenSet) {
  Field field = Field::TokenSet({});
  EXPECT_TRUE(field.tokens().empty());
  EXPECT_EQ(field.size(), 0u);
}

TEST(FieldDeathTest, WrongAccessorAborts) {
  Field dense = Field::DenseVector({1.0f});
  Field tokens = Field::TokenSet({1});
  EXPECT_DEATH(dense.tokens(), "not a token set");
  EXPECT_DEATH(tokens.dense(), "not a dense vector");
}

}  // namespace
}  // namespace adalsh
