#include "util/stats.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(RunningStatsTest, Empty) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats stats;
  stats.Add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 3.5);
  EXPECT_DOUBLE_EQ(stats.max(), 3.5);
}

TEST(MeanTest, Basic) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(MedianTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(PercentileTest, Interpolates) {
  std::vector<double> values = {10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 10.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 50.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 30.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 20.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 62.5), 35.0);
}

}  // namespace
}  // namespace adalsh
