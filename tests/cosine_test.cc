#include "distance/cosine.h"

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/check.h"

namespace adalsh {
namespace {

TEST(CosineDistanceTest, IdenticalVectors) {
  EXPECT_NEAR(CosineDistance({1, 2, 3}, {1, 2, 3}), 0.0, 1e-9);
}

TEST(CosineDistanceTest, ScaleInvariant) {
  EXPECT_NEAR(CosineDistance({1, 2, 3}, {2, 4, 6}), 0.0, 1e-9);
}

TEST(CosineDistanceTest, OrthogonalVectors) {
  // 90 degrees -> normalized 0.5.
  EXPECT_NEAR(CosineDistance({1, 0}, {0, 1}), 0.5, 1e-9);
}

TEST(CosineDistanceTest, OppositeVectors) {
  // 180 degrees -> normalized 1.0.
  EXPECT_NEAR(CosineDistance({1, 0}, {-1, 0}), 1.0, 1e-9);
}

TEST(CosineDistanceTest, FortyFiveDegrees) {
  EXPECT_NEAR(CosineDistance({1, 0}, {1, 1}), 0.25, 1e-6);
}

TEST(CosineDistanceTest, ZeroVectors) {
  EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineDistance({1, 0}, {0, 0}), 1.0);
}

TEST(CosineDistanceTest, Symmetric) {
  std::vector<float> a = {0.3f, 0.8f, 0.1f, 0.9f};
  std::vector<float> b = {0.7f, 0.2f, 0.5f, 0.4f};
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), CosineDistance(b, a));
}

#if ADALSH_DCHECK_IS_ON
// The per-pair dimension check is debug-only (ADALSH_DCHECK): FeatureCache
// validates the schema once per dataset, so release builds skip it on the
// hot path.
TEST(CosineDistanceDeathTest, DimensionMismatch) {
  EXPECT_DEATH(CosineDistance({1, 2}, {1, 2, 3}), "");
}
#endif

TEST(CosineAtMostTest, AgreesWithDistanceOnRandomPairs) {
  // Property check: the threshold-aware kernel (cached norms, acos folded
  // into the bound, unrolled dot product) decides exactly like the scalar
  // distance away from floating-point boundary ties.
  uint64_t state = 98765;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 33;
  };
  auto next_float = [&]() {
    return static_cast<float>(next() % 2000) / 1000.0f - 1.0f;
  };
  for (int trial = 0; trial < 1000; ++trial) {
    size_t dim = 1 + next() % 96;
    std::vector<float> a(dim), b(dim);
    for (size_t i = 0; i < dim; ++i) {
      a[i] = next_float();
      b[i] = next_float();
    }
    if (trial % 7 == 0) b = a;           // distance ~0
    if (trial % 11 == 0) {               // distance ~1
      for (size_t i = 0; i < dim; ++i) b[i] = -a[i];
    }
    double dist = CosineDistance(a, b);
    for (double max_dist : {0.0, 0.01, 0.1, 0.25, 0.5, 0.9, 1.0}) {
      if (std::abs(dist - max_dist) < 1e-12) continue;  // boundary ties
      EXPECT_EQ(CosineDistanceAtMost(a, b, max_dist), dist <= max_dist)
          << "trial " << trial << " dist " << dist << " max " << max_dist;
    }
  }
}

TEST(CosineAtMostTest, ZeroVectorEdges) {
  // Mirrors CosineDistance's conventions: both zero -> distance 0, one
  // zero -> distance 1.
  EXPECT_TRUE(CosineDistanceAtMost({0, 0}, {0, 0}, 0.0));
  EXPECT_FALSE(CosineDistanceAtMost({0, 0}, {1, 0}, 0.5));
  EXPECT_TRUE(CosineDistanceAtMost({0, 0}, {1, 0}, 1.0));
  EXPECT_FALSE(CosineDistanceAtMost({1, 0}, {0, 0}, 0.999));
}

TEST(CosineAtMostTest, ThresholdExtremes) {
  // max_dist >= 1 admits everything (distance is capped at 1), including
  // exactly opposite vectors whose cosine clamps at -1; max_dist < 0 admits
  // nothing.
  EXPECT_TRUE(CosineDistanceAtMost({1, 0}, {-1, 0}, 1.0));
  EXPECT_TRUE(CosineDistanceAtMost({1, 0}, {0, 1}, 1.0));
  EXPECT_FALSE(CosineDistanceAtMost({1, 2}, {1, 2}, -0.1));
  // Identical vectors sit exactly at distance 0.
  EXPECT_TRUE(CosineDistanceAtMost({3, 4}, {3, 4}, 0.0));
}

TEST(CosineAtMostTest, CachedNormsMatchScalarPath) {
  std::vector<float> a = {0.3f, 0.8f, 0.1f, 0.9f};
  std::vector<float> b = {0.7f, 0.2f, 0.5f, 0.4f};
  double norm_a = L2Norm(a.data(), a.size());
  double norm_b = L2Norm(b.data(), b.size());
  double dist = CosineDistanceWithNorms(a.data(), b.data(), a.size(), norm_a,
                                        norm_b);
  EXPECT_NEAR(dist, CosineDistance(a, b), 1e-12);
  double bound = CosineBoundForMaxDistance(dist + 1e-6);
  EXPECT_TRUE(CosineWithinBound(a.data(), b.data(), a.size(), norm_a, norm_b,
                                bound));
  bound = CosineBoundForMaxDistance(dist - 1e-6);
  EXPECT_FALSE(CosineWithinBound(a.data(), b.data(), a.size(), norm_a, norm_b,
                                 bound));
}

TEST(DegreeConversionTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(DegreesToNormalizedAngle(15.0), 15.0 / 180.0);
  EXPECT_DOUBLE_EQ(NormalizedAngleToDegrees(DegreesToNormalizedAngle(3.0)),
                   3.0);
}

TEST(DegreeConversionTest, MatchesDistance) {
  // Vectors 30 degrees apart (Example 2's r1, r2 geometry).
  double theta = 30.0 * M_PI / 180.0;
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {static_cast<float>(std::cos(theta)),
                          static_cast<float>(std::sin(theta))};
  EXPECT_NEAR(CosineDistance(a, b), DegreesToNormalizedAngle(30.0), 1e-6);
}

}  // namespace
}  // namespace adalsh
