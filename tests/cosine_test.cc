#include "distance/cosine.h"

#include <cmath>

#include <gtest/gtest.h>

namespace adalsh {
namespace {

TEST(CosineDistanceTest, IdenticalVectors) {
  EXPECT_NEAR(CosineDistance({1, 2, 3}, {1, 2, 3}), 0.0, 1e-9);
}

TEST(CosineDistanceTest, ScaleInvariant) {
  EXPECT_NEAR(CosineDistance({1, 2, 3}, {2, 4, 6}), 0.0, 1e-9);
}

TEST(CosineDistanceTest, OrthogonalVectors) {
  // 90 degrees -> normalized 0.5.
  EXPECT_NEAR(CosineDistance({1, 0}, {0, 1}), 0.5, 1e-9);
}

TEST(CosineDistanceTest, OppositeVectors) {
  // 180 degrees -> normalized 1.0.
  EXPECT_NEAR(CosineDistance({1, 0}, {-1, 0}), 1.0, 1e-9);
}

TEST(CosineDistanceTest, FortyFiveDegrees) {
  EXPECT_NEAR(CosineDistance({1, 0}, {1, 1}), 0.25, 1e-6);
}

TEST(CosineDistanceTest, ZeroVectors) {
  EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(CosineDistance({0, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineDistance({1, 0}, {0, 0}), 1.0);
}

TEST(CosineDistanceTest, Symmetric) {
  std::vector<float> a = {0.3f, 0.8f, 0.1f, 0.9f};
  std::vector<float> b = {0.7f, 0.2f, 0.5f, 0.4f};
  EXPECT_DOUBLE_EQ(CosineDistance(a, b), CosineDistance(b, a));
}

TEST(CosineDistanceDeathTest, DimensionMismatch) {
  EXPECT_DEATH(CosineDistance({1, 2}, {1, 2, 3}), "");
}

TEST(DegreeConversionTest, RoundTrip) {
  EXPECT_DOUBLE_EQ(DegreesToNormalizedAngle(15.0), 15.0 / 180.0);
  EXPECT_DOUBLE_EQ(NormalizedAngleToDegrees(DegreesToNormalizedAngle(3.0)),
                   3.0);
}

TEST(DegreeConversionTest, MatchesDistance) {
  // Vectors 30 degrees apart (Example 2's r1, r2 geometry).
  double theta = 30.0 * M_PI / 180.0;
  std::vector<float> a = {1.0f, 0.0f};
  std::vector<float> b = {static_cast<float>(std::cos(theta)),
                          static_cast<float>(std::sin(theta))};
  EXPECT_NEAR(CosineDistance(a, b), DegreesToNormalizedAngle(30.0), 1e-6);
}

}  // namespace
}  // namespace adalsh
