#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "distance/cosine.h"
#include "distance/jaccard.h"
#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"
#include "lsh/weighted_field_family.h"
#include "util/rng.h"

namespace adalsh {
namespace {

Record DenseRecord(std::vector<float> v) {
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector(std::move(v)));
  return Record(std::move(fields));
}

Record TokenRecord(std::vector<uint64_t> tokens) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields));
}

double CollisionRate(HashFamily* family, const Record& a, const Record& b,
                     size_t count) {
  std::vector<uint64_t> ha(count), hb(count);
  family->HashRange(a, 0, count, ha.data());
  family->HashRange(b, 0, count, hb.data());
  size_t equal = 0;
  for (size_t i = 0; i < count; ++i) equal += (ha[i] == hb[i]);
  return static_cast<double>(equal) / count;
}

TEST(RandomHyperplaneTest, DeterministicAndBatchIndependent) {
  RandomHyperplaneFamily family(0, 3, 42);
  Record r = DenseRecord({0.3f, -0.7f, 0.2f});
  std::vector<uint64_t> all(32);
  family.HashRange(r, 0, 32, all.data());
  // Recomputing a sub-range gives identical values.
  RandomHyperplaneFamily family2(0, 3, 42);
  std::vector<uint64_t> part(8);
  family2.HashRange(r, 8, 16, part.data());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(part[i], all[8 + i]);
}

TEST(RandomHyperplaneTest, BinaryOutputs) {
  RandomHyperplaneFamily family(0, 4, 1);
  Record r = DenseRecord({1.0f, 2.0f, -1.0f, 0.5f});
  std::vector<uint64_t> h(64);
  family.HashRange(r, 0, 64, h.data());
  for (uint64_t v : h) EXPECT_LE(v, 1u);
  EXPECT_TRUE(family.is_binary());
}

TEST(RandomHyperplaneTest, CollisionRateMatchesAngle) {
  // Example 6: collision probability is 1 - theta/180.
  for (double degrees : {10.0, 30.0, 60.0, 90.0}) {
    double theta = degrees * M_PI / 180.0;
    Record a = DenseRecord({1.0f, 0.0f});
    Record b = DenseRecord({static_cast<float>(std::cos(theta)),
                            static_cast<float>(std::sin(theta))});
    RandomHyperplaneFamily family(0, 2, 123);
    double rate = CollisionRate(&family, a, b, 4000);
    EXPECT_NEAR(rate, 1.0 - degrees / 180.0, 0.03) << degrees << " degrees";
  }
}

TEST(RandomHyperplaneTest, IdenticalVectorsAlwaysCollide) {
  RandomHyperplaneFamily family(0, 8, 5);
  Record a = DenseRecord({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_DOUBLE_EQ(CollisionRate(&family, a, a, 256), 1.0);
}

TEST(MinHashTest, CollisionRateMatchesJaccard) {
  // MinHash collides with probability equal to the Jaccard similarity.
  Record a = TokenRecord({1, 2, 3, 4, 5, 6, 7, 8});
  Record b = TokenRecord({5, 6, 7, 8, 9, 10, 11, 12});  // J = 4/12 = 1/3
  MinHashFamily family(0, 99);
  double rate = CollisionRate(&family, a, b, 6000);
  EXPECT_NEAR(rate, 1.0 / 3.0, 0.03);
  EXPECT_FALSE(family.is_binary());
}

TEST(MinHashTest, DisjointSetsNeverCollideInPractice) {
  Record a = TokenRecord({1, 2, 3});
  Record b = TokenRecord({4, 5, 6});
  MinHashFamily family(0, 7);
  EXPECT_LT(CollisionRate(&family, a, b, 1000), 0.01);
}

TEST(MinHashTest, Deterministic) {
  Record a = TokenRecord({10, 20, 30});
  MinHashFamily f1(0, 3), f2(0, 3);
  std::vector<uint64_t> h1(16), h2(16);
  f1.HashRange(a, 0, 16, h1.data());
  f2.HashRange(a, 0, 16, h2.data());
  EXPECT_EQ(h1, h2);
}

TEST(WeightedFieldFamilyTest, PicksFollowWeights) {
  std::vector<std::unique_ptr<HashFamily>> subs;
  subs.push_back(std::make_unique<MinHashFamily>(0, 1));
  subs.push_back(std::make_unique<MinHashFamily>(1, 2));
  WeightedFieldFamily family(std::move(subs), {0.8, 0.2}, 55);
  size_t picked_first = 0;
  constexpr size_t kSamples = 5000;
  for (size_t j = 0; j < kSamples; ++j) {
    picked_first += (family.FieldPickForIndex(j) == 0);
  }
  EXPECT_NEAR(static_cast<double>(picked_first) / kSamples, 0.8, 0.02);
}

TEST(WeightedFieldFamilyTest, CollisionRateIsWeightedAverage) {
  // Theorem 3: collision probability = 1 - weighted average distance.
  // Field 0: J = 1/3 (distance 2/3); field 1: identical (distance 0).
  auto make_record = [](std::vector<uint64_t> f0) {
    std::vector<Field> fields;
    fields.push_back(Field::TokenSet(std::move(f0)));
    fields.push_back(Field::TokenSet({100, 200, 300}));
    return Record(std::move(fields));
  };
  Record a = make_record({1, 2, 3, 4, 5, 6, 7, 8});
  Record b = make_record({5, 6, 7, 8, 9, 10, 11, 12});
  std::vector<std::unique_ptr<HashFamily>> subs;
  subs.push_back(std::make_unique<MinHashFamily>(0, 11));
  subs.push_back(std::make_unique<MinHashFamily>(1, 12));
  WeightedFieldFamily family(std::move(subs), {0.5, 0.5}, 13);
  double expected = 1.0 - (0.5 * (2.0 / 3.0) + 0.5 * 0.0);
  EXPECT_NEAR(CollisionRate(&family, a, b, 6000), expected, 0.03);
}

TEST(MakeFamilyForFieldsTest, DispatchesOnKind) {
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector({1.0f, 2.0f}));
  fields.push_back(Field::TokenSet({1, 2}));
  Record prototype(std::move(fields));
  auto dense_family = MakeFamilyForFields({0}, {1.0}, prototype, 1);
  EXPECT_TRUE(dense_family->is_binary());
  auto token_family = MakeFamilyForFields({1}, {1.0}, prototype, 1);
  EXPECT_FALSE(token_family->is_binary());
  auto mixed = MakeFamilyForFields({0, 1}, {0.5, 0.5}, prototype, 1);
  EXPECT_FALSE(mixed->is_binary());
}

}  // namespace
}  // namespace adalsh
