#include "core/hash_engine.h"

#include <gtest/gtest.h>

#include "core/scheme_optimizer.h"
#include "test_util.h"

namespace adalsh {
namespace {

struct EngineFixture {
  GeneratedDataset generated;
  RuleHashStructure structure;
  SchemePlan plan;

  explicit EngineFixture(int budget, uint64_t seed = 3)
      : generated(test::MakePlantedDataset({6, 4}, seed)),
        structure(CompileRuleForHashing(generated.rule).value()),
        plan(BuildPlan(structure, OptimizeComposite(structure, budget,
                                                    OptimizerConfig{},
                                                    nullptr))) {}
};

TEST(HashEngineTest, TableKeysEqualForIdenticalRecords) {
  // Records 0 and 1 differ; a record compared with itself must key equal.
  EngineFixture fixture(80);
  HashEngine engine(fixture.generated.dataset, fixture.structure, 7);
  engine.EnsureHashes(0, fixture.plan);
  for (const TablePlan& table : fixture.plan.tables) {
    EXPECT_EQ(engine.TableKey(0, table), engine.TableKey(0, table));
  }
}

TEST(HashEngineTest, SimilarRecordsShareSomeTables) {
  // Planted same-entity records (J ~0.8) share at least one bucket under a
  // generous scheme; different entities share none.
  EngineFixture fixture(160);
  HashEngine engine(fixture.generated.dataset, fixture.structure, 7);
  engine.EnsureHashes(0, fixture.plan);
  engine.EnsureHashes(1, fixture.plan);  // same entity as 0
  engine.EnsureHashes(6, fixture.plan);  // different entity
  int same_entity_collisions = 0, cross_entity_collisions = 0;
  for (const TablePlan& table : fixture.plan.tables) {
    same_entity_collisions +=
        (engine.TableKey(0, table) == engine.TableKey(1, table));
    cross_entity_collisions +=
        (engine.TableKey(0, table) == engine.TableKey(6, table));
  }
  EXPECT_GT(same_entity_collisions, 0);
  EXPECT_EQ(cross_entity_collisions, 0);
}

TEST(HashEngineTest, HashCountTracksEnsures) {
  EngineFixture fixture(40);
  HashEngine engine(fixture.generated.dataset, fixture.structure, 7);
  EXPECT_EQ(engine.total_hashes_computed(), 0u);
  engine.EnsureHashes(0, fixture.plan);
  EXPECT_EQ(engine.total_hashes_computed(), fixture.plan.total_hashes());
  // Idempotent.
  engine.EnsureHashes(0, fixture.plan);
  EXPECT_EQ(engine.total_hashes_computed(), fixture.plan.total_hashes());
  engine.EnsureHashes(1, fixture.plan);
  EXPECT_EQ(engine.total_hashes_computed(), 2 * fixture.plan.total_hashes());
}

TEST(HashEngineTest, SeedChangesKeys) {
  EngineFixture fixture(40);
  HashEngine a(fixture.generated.dataset, fixture.structure, 1);
  HashEngine b(fixture.generated.dataset, fixture.structure, 2);
  a.EnsureHashes(0, fixture.plan);
  b.EnsureHashes(0, fixture.plan);
  bool any_differ = false;
  for (const TablePlan& table : fixture.plan.tables) {
    any_differ |= (a.TableKey(0, table) != b.TableKey(0, table));
  }
  EXPECT_TRUE(any_differ);
}

TEST(HashEngineDeathTest, KeyBeforeEnsureAborts) {
  EngineFixture fixture(40);
  HashEngine engine(fixture.generated.dataset, fixture.structure, 7);
  EXPECT_DEATH(engine.TableKey(0, fixture.plan.tables[0]), "");
}

}  // namespace
}  // namespace adalsh
