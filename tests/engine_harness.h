#ifndef ADALSH_TESTS_ENGINE_HARNESS_H_
#define ADALSH_TESTS_ENGINE_HARNESS_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/cost_model.h"
#include "engine/resident_engine.h"
#include "record/dataset.h"
#include "util/check.h"
#include "util/rng.h"

namespace adalsh {
namespace test {

/// Fixed unit costs shared by every engine under comparison. Calibration is
/// wall-clock based, so two engines calibrating independently could disagree
/// on jump-to-P decisions and the differential comparison would be
/// meaningless (same convention as parallel_equivalence_test.cc).
inline CostModel EngineFixedCostModel() { return CostModel(1e-8, 1e-6); }

/// Small-sequence engine options mirroring the streaming tests' SmallConfig,
/// with the cost model pinned.
inline ResidentEngine::Options EngineOptions(int threads, int top_k,
                                             uint64_t seed = 3) {
  ResidentEngine::Options options;
  options.config.sequence.max_budget = 640;
  options.config.seed = seed;
  options.config.threads = threads;
  options.top_k = top_k;
  options.cost_model = EngineFixedCostModel();
  return options;
}

/// Byte-comparable canonical serialization of a snapshot: live count, then
/// one line per cluster (verification level + ascending members). `relabel`
/// maps the snapshot's member ids into another engine's id space; the map
/// must be monotone so the canonical cluster order is preserved.
inline std::string CanonicalSnapshot(
    const EngineSnapshot& snap,
    const std::unordered_map<ExternalId, ExternalId>* relabel = nullptr) {
  std::string out =
      "live=" + std::to_string(snap.live_records) + "\n";
  for (size_t i = 0; i < snap.clusters.size(); ++i) {
    out += "v=" + std::to_string(snap.verification[i]) + " [";
    for (ExternalId member : snap.clusters[i]) {
      const ExternalId id = relabel != nullptr ? relabel->at(member) : member;
      out += " " + std::to_string(id);
    }
    out += " ]\n";
  }
  return out;
}

/// The logical state a mutation script drives an engine through: every live
/// external id, bound to the index of the source-dataset record currently
/// holding its contents.
using LiveMap = std::map<ExternalId, size_t>;

/// Knobs for RunRandomScript. The deterministic mutation history depends
/// only on (seed, source size, these knobs) — never on engine behaviour — so
/// engines at different thread counts see the identical script.
struct ScriptOptions {
  bool with_removes = true;
  bool with_updates = true;
  size_t max_batch = 7;
};

/// Drives `engine` through a deterministic pseudo-random mutation history:
/// the source records are ingested in shuffled order across random-size
/// batches, with removals of random live ids and updates (rebinding a live
/// id to another source record's contents) interleaved between batches.
/// Aborts on any non-ok engine status. Returns the final logical state.
/// Templated over the engine so the identical script drives ResidentEngine
/// and ShardedEngine (shard_equivalence_test) — both expose the same
/// Ingest/Remove/Update surface and assign ascending external ids.
template <typename Engine>
inline LiveMap RunRandomScript(Engine* engine, const Dataset& source,
                               uint64_t seed,
                               const ScriptOptions& script = {}) {
  Rng rng(DeriveSeed(seed, 0xe191e));
  std::vector<size_t> order(source.num_records());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  LiveMap live;
  auto pick_live = [&]() {
    auto it = live.begin();
    std::advance(it, rng.NextBelow(live.size()));
    return it;
  };

  size_t pos = 0;
  while (pos < order.size()) {
    const size_t batch = 1 + rng.NextBelow(std::min<uint64_t>(
                                 order.size() - pos, script.max_batch));
    std::vector<Record> records;
    std::vector<size_t> indices;
    for (size_t i = 0; i < batch; ++i, ++pos) {
      indices.push_back(order[pos]);
      records.push_back(source.record(order[pos]));
    }
    auto ingested = engine->Ingest(std::move(records));
    ADALSH_CHECK(ingested.ok()) << ingested.status().ToString();
    for (size_t i = 0; i < indices.size(); ++i) {
      live[ingested.value().assigned_ids[i]] = indices[i];
    }

    if (script.with_removes && !live.empty() && rng.NextBelow(2) == 0) {
      const size_t count =
          1 + rng.NextBelow(std::min<uint64_t>(live.size(), 3));
      std::vector<ExternalId> ids;
      for (size_t c = 0; c < count; ++c) {
        const ExternalId id = pick_live()->first;
        if (std::find(ids.begin(), ids.end(), id) == ids.end()) {
          ids.push_back(id);
        }
      }
      auto removed = engine->Remove(ids);
      ADALSH_CHECK(removed.ok()) << removed.status().ToString();
      for (ExternalId id : ids) live.erase(id);
    }

    if (script.with_updates && !live.empty() && rng.NextBelow(3) == 0) {
      auto it = pick_live();
      const size_t new_index = rng.NextBelow(source.num_records());
      auto updated = engine->Update(it->first, source.record(new_index));
      ADALSH_CHECK(updated.ok()) << updated.status().ToString();
      it->second = new_index;
    }
  }
  return live;
}

/// The from-scratch reference: a fresh single-threaded engine ingesting the
/// final live records in ONE batch, in ascending subject-id order. Because
/// ingestion order is ascending, the map (reference id -> subject id) is
/// monotone, so relabeling preserves the canonical cluster order and the
/// serialized snapshots of a confluent subject engine must match
/// byte-for-byte.
inline std::string ReferenceCanonical(const Dataset& source,
                                      const MatchRule& rule,
                                      const LiveMap& live, int top_k) {
  ResidentEngine reference(rule, EngineOptions(/*threads=*/1, top_k));
  if (live.empty()) return CanonicalSnapshot(*reference.Snapshot());
  std::vector<Record> records;
  std::vector<ExternalId> subject_ids;
  for (const auto& [ext, index] : live) {  // std::map: ascending ext ids
    records.push_back(source.record(index));
    subject_ids.push_back(ext);
  }
  auto ingested = reference.Ingest(std::move(records));
  ADALSH_CHECK(ingested.ok()) << ingested.status().ToString();
  std::unordered_map<ExternalId, ExternalId> relabel;
  for (size_t i = 0; i < subject_ids.size(); ++i) {
    relabel[ingested.value().assigned_ids[i]] = subject_ids[i];
  }
  return CanonicalSnapshot(*reference.Snapshot(), &relabel);
}

}  // namespace test
}  // namespace adalsh

#endif  // ADALSH_TESTS_ENGINE_HARNESS_H_
