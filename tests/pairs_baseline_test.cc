#include "core/pairs_baseline.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/numeric.h"

namespace adalsh {
namespace {

TEST(PairsBaselineTest, ExactTopK) {
  GeneratedDataset generated =
      test::MakePlantedDataset({20, 12, 7, 3, 1, 1}, 3);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(3);
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  ASSERT_EQ(output.clusters.clusters.size(), 3u);
  EXPECT_EQ(output.clusters.UnionOfTopClusters(3), truth.TopKRecords(3));
}

TEST(PairsBaselineTest, SimilarityCountBounded) {
  GeneratedDataset generated = test::MakePlantedDataset({10, 10}, 5);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(1);
  EXPECT_LE(output.stats.pairwise_similarities, PairCount(20));
  EXPECT_GT(output.stats.pairwise_similarities, 0u);
  EXPECT_EQ(output.stats.records_finished_by_pairwise, 20u);
}

TEST(PairsBaselineTest, KOne) {
  GeneratedDataset generated = test::MakePlantedDataset({9, 4, 2}, 7);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(1);
  ASSERT_EQ(output.clusters.clusters.size(), 1u);
  EXPECT_EQ(output.clusters.clusters[0].size(), 9u);
}

TEST(PairsBaselineTest, AllClustersWhenKHuge) {
  GeneratedDataset generated = test::MakePlantedDataset({5, 3, 1}, 9);
  PairsBaseline pairs(generated.dataset, generated.rule);
  FilterOutput output = pairs.Run(100);
  EXPECT_EQ(output.clusters.clusters.size(), 3u);
  EXPECT_EQ(output.clusters.TotalRecords(), 9u);
}

}  // namespace
}  // namespace adalsh
