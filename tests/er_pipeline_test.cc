#include "eval/er_pipeline.h"

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "test_util.h"

namespace adalsh {
namespace {

TEST(ResolveExactTest, ResolvesSubsetExactly) {
  GeneratedDataset generated = test::MakePlantedDataset({8, 5, 2}, 3);
  ErResult result = ResolveExact(generated.dataset, generated.rule,
                                 generated.dataset.AllRecordIds());
  ASSERT_EQ(result.clusters.clusters.size(), 3u);
  EXPECT_EQ(result.clusters.clusters[0].size(), 8u);
  EXPECT_EQ(result.clusters.clusters[1].size(), 5u);
  EXPECT_GT(result.similarities, 0u);
}

TEST(ResolveExactTest, FullPipelineFilterThenResolve) {
  // The Figure 1 workflow: filter for top-k, then ER the reduced set.
  GeneratedDataset generated =
      test::MakePlantedDataset({20, 12, 6, 1, 1, 1, 1}, 5);
  AdaptiveLshConfig config;
  config.sequence.max_budget = 640;
  config.calibration_samples = 20;
  config.seed = 1;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  FilterOutput filtered = adalsh.Run(2);
  ErResult resolved = ResolveExact(generated.dataset, generated.rule,
                                   filtered.clusters.UnionOfTopClusters(2));
  GroundTruth truth = generated.dataset.BuildGroundTruth();
  EXPECT_EQ(resolved.clusters.UnionOfTopClusters(2), truth.TopKRecords(2));
  // ER on the reduced set costs far less than on the whole dataset.
  EXPECT_LT(resolved.similarities, 42u * 41u / 2u);
}

TEST(ClusterMedoidTest, PicksCentralRecord) {
  // Three near-identical records plus one farther outlier in the cluster:
  // the medoid must not be the outlier.
  Dataset dataset("medoid");
  auto add = [&](std::vector<uint64_t> tokens) {
    std::vector<Field> fields;
    fields.push_back(Field::TokenSet(std::move(tokens)));
    dataset.AddRecord(Record(std::move(fields)), 0);
  };
  add({1, 2, 3, 4, 5, 6, 7, 8});
  add({1, 2, 3, 4, 5, 6, 7, 9});
  add({1, 2, 3, 4, 5, 6, 7, 10});
  add({1, 2, 3, 40, 50, 60, 70, 80});  // outlier
  MatchRule rule = MatchRule::Leaf(0, 0.9);
  RecordId medoid = ClusterMedoid(dataset, rule, {0, 1, 2, 3});
  EXPECT_NE(medoid, 3u);
}

TEST(ClusterMedoidTest, SingletonAndPair) {
  GeneratedDataset generated = test::MakePlantedDataset({2}, 7);
  EXPECT_EQ(ClusterMedoid(generated.dataset, generated.rule, {1}), 1u);
  RecordId medoid = ClusterMedoid(generated.dataset, generated.rule, {0, 1});
  EXPECT_TRUE(medoid == 0 || medoid == 1);
}

TEST(ClusterMedoidTest, WorksWithCompositeRules) {
  GeneratedDataset generated = test::MakePlantedDataset({4}, 9);
  MatchRule composite = MatchRule::And(
      {MatchRule::Leaf(0, 0.5), MatchRule::Leaf(0, 0.9)});
  RecordId medoid =
      ClusterMedoid(generated.dataset, composite, {0, 1, 2, 3});
  EXPECT_LT(medoid, 4u);
}

TEST(ClusterMedoidTest, SamplingPathDeterministic) {
  GeneratedDataset generated = test::MakePlantedDataset({100}, 11);
  std::vector<RecordId> cluster = generated.dataset.AllRecordIds();
  RecordId a = ClusterMedoid(generated.dataset, generated.rule, cluster, 16);
  RecordId b = ClusterMedoid(generated.dataset, generated.rule, cluster, 16);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace adalsh
