#include "lsh/hash_cache.h"

#include <memory>

#include <gtest/gtest.h>

#include "lsh/minhash.h"
#include "lsh/random_hyperplane.h"

namespace adalsh {
namespace {

Record TokenRecord(std::vector<uint64_t> tokens) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(tokens)));
  return Record(std::move(fields));
}

Record DenseRecord(std::vector<float> v) {
  std::vector<Field> fields;
  fields.push_back(Field::DenseVector(std::move(v)));
  return Record(std::move(fields));
}

TEST(HashCacheTest, IncrementalGrowthCountsOnlyNewHashes) {
  HashCache cache(std::make_unique<MinHashFamily>(0, 3), /*num_records=*/4);
  Record r = TokenRecord({1, 2, 3});
  cache.Ensure(r, 0, 10);
  EXPECT_EQ(cache.computed_count(0), 10u);
  EXPECT_EQ(cache.total_hashes_computed(), 10u);
  // Property 4: extending reuses the prefix — only 10 new evaluations.
  cache.Ensure(r, 0, 20);
  EXPECT_EQ(cache.computed_count(0), 20u);
  EXPECT_EQ(cache.total_hashes_computed(), 20u);
  // Re-ensuring a covered prefix is free.
  cache.Ensure(r, 0, 15);
  EXPECT_EQ(cache.total_hashes_computed(), 20u);
}

TEST(HashCacheTest, PrefixValuesAreStableAcrossGrowth) {
  // The cached prefix must be identical whether computed in one or many
  // steps — the incremental-computation property at value level.
  Record r = TokenRecord({5, 9, 14});
  HashCache grow(std::make_unique<MinHashFamily>(0, 7), 1);
  grow.Ensure(r, 0, 4);
  grow.Ensure(r, 0, 32);
  HashCache direct(std::make_unique<MinHashFamily>(0, 7), 1);
  direct.Ensure(r, 0, 32);
  for (size_t j = 0; j < 32; ++j) {
    EXPECT_EQ(grow.ValueForTest(0, j), direct.ValueForTest(0, j)) << j;
  }
}

TEST(HashCacheTest, BinaryPacking) {
  HashCache cache(std::make_unique<RandomHyperplaneFamily>(0, 2, 3), 1);
  EXPECT_TRUE(cache.is_binary());
  Record r = DenseRecord({0.5f, -0.25f});
  cache.Ensure(r, 0, 100);
  for (size_t j = 0; j < 100; ++j) {
    EXPECT_LE(cache.ValueForTest(0, j), 1u);
  }
}

TEST(HashCacheTest, CombineRangeEqualForEqualRecords) {
  HashCache cache(std::make_unique<MinHashFamily>(0, 3), 2);
  Record a = TokenRecord({1, 2, 3});
  Record b = TokenRecord({1, 2, 3});
  cache.Ensure(a, 0, 16);
  cache.Ensure(b, 1, 16);
  EXPECT_EQ(cache.CombineRange(0, 0, 16, 0), cache.CombineRange(1, 0, 16, 0));
  EXPECT_EQ(cache.CombineRange(0, 4, 12, 7), cache.CombineRange(1, 4, 12, 7));
}

TEST(HashCacheTest, CombineRangeDiffersForDifferentRecords) {
  HashCache cache(std::make_unique<MinHashFamily>(0, 3), 2);
  Record a = TokenRecord({1, 2, 3});
  Record b = TokenRecord({7, 8, 9});
  cache.Ensure(a, 0, 16);
  cache.Ensure(b, 1, 16);
  EXPECT_NE(cache.CombineRange(0, 0, 16, 0), cache.CombineRange(1, 0, 16, 0));
}

TEST(HashCacheTest, CombineRangeBinaryCrossesBlockBoundaries) {
  HashCache cache(std::make_unique<RandomHyperplaneFamily>(0, 3, 9), 2);
  Record a = DenseRecord({0.1f, 0.9f, -0.4f});
  Record b = DenseRecord({0.1f, 0.9f, -0.4f});
  cache.Ensure(a, 0, 130);
  cache.Ensure(b, 1, 130);
  // Ranges spanning the 64-bit block boundary must agree for equal records.
  EXPECT_EQ(cache.CombineRange(0, 60, 70, 1), cache.CombineRange(1, 60, 70, 1));
  EXPECT_EQ(cache.CombineRange(0, 0, 130, 1), cache.CombineRange(1, 0, 130, 1));
}

TEST(HashCacheTest, SaltChangesKey) {
  HashCache cache(std::make_unique<MinHashFamily>(0, 3), 1);
  Record a = TokenRecord({1, 2, 3});
  cache.Ensure(a, 0, 8);
  EXPECT_NE(cache.CombineRange(0, 0, 8, 1), cache.CombineRange(0, 0, 8, 2));
}

TEST(HashCacheDeathTest, CombinePastPrefixAborts) {
  HashCache cache(std::make_unique<MinHashFamily>(0, 3), 1);
  Record a = TokenRecord({1});
  cache.Ensure(a, 0, 4);
  EXPECT_DEATH(cache.CombineRange(0, 0, 8, 0), "computed prefix");
}

}  // namespace
}  // namespace adalsh
