#include "distance/rule.h"

#include <gtest/gtest.h>

namespace adalsh {
namespace {

/// Two token-set fields plus one dense field.
Record MakeRecord(std::vector<uint64_t> f0, std::vector<uint64_t> f1,
                  std::vector<float> f2) {
  std::vector<Field> fields;
  fields.push_back(Field::TokenSet(std::move(f0)));
  fields.push_back(Field::TokenSet(std::move(f1)));
  fields.push_back(Field::DenseVector(std::move(f2)));
  return Record(std::move(fields));
}

TEST(FieldDistanceTest, DispatchesByKind) {
  Field tokens_a = Field::TokenSet({1, 2, 3});
  Field tokens_b = Field::TokenSet({2, 3, 4});
  EXPECT_DOUBLE_EQ(FieldDistance(tokens_a, tokens_b), 0.5);
  Field dense_a = Field::DenseVector({1, 0});
  Field dense_b = Field::DenseVector({0, 1});
  EXPECT_NEAR(FieldDistance(dense_a, dense_b), 0.5, 1e-9);
}

TEST(FieldDistanceDeathTest, MixedKindsAbort) {
  Field tokens = Field::TokenSet({1});
  Field dense = Field::DenseVector({1.0f});
  EXPECT_DEATH(FieldDistance(tokens, dense), "kinds differ");
}

TEST(MatchRuleTest, LeafMatch) {
  MatchRule rule = MatchRule::Leaf(0, 0.6);  // Jaccard sim >= 0.4
  Record a = MakeRecord({1, 2, 3, 4}, {}, {1});
  Record b = MakeRecord({1, 2, 3, 9}, {}, {1});  // sim 3/5 = 0.6 -> dist 0.4
  Record c = MakeRecord({7, 8, 9, 10}, {}, {1});
  EXPECT_TRUE(rule.Matches(a, b));
  EXPECT_FALSE(rule.Matches(a, c));
  EXPECT_NEAR(rule.Distance(a, b), 0.4, 1e-12);
}

TEST(MatchRuleTest, WeightedAverageDistance) {
  MatchRule rule = MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3);
  // Field 0 distance 0.5, field 1 distance 0.0 -> average 0.25 <= 0.3.
  Record a = MakeRecord({1, 2, 3}, {10, 11}, {1});
  Record b = MakeRecord({2, 3, 4}, {10, 11}, {1});
  EXPECT_NEAR(rule.Distance(a, b), 0.25, 1e-12);
  EXPECT_TRUE(rule.Matches(a, b));
}

TEST(MatchRuleTest, WeightedAverageUnequalWeights) {
  MatchRule rule = MatchRule::WeightedAverage({0, 1}, {0.9, 0.1}, 0.3);
  Record a = MakeRecord({1, 2, 3}, {10, 11}, {1});
  Record b = MakeRecord({2, 3, 4}, {10, 11}, {1});
  // 0.9 * 0.5 + 0.1 * 0 = 0.45 > 0.3.
  EXPECT_FALSE(rule.Matches(a, b));
}

TEST(MatchRuleTest, AndRequiresAll) {
  MatchRule rule =
      MatchRule::And({MatchRule::Leaf(0, 0.5), MatchRule::Leaf(1, 0.5)});
  Record a = MakeRecord({1, 2}, {10, 11}, {1});
  Record both = MakeRecord({1, 2}, {10, 11}, {1});
  Record only_first = MakeRecord({1, 2}, {20, 21}, {1});
  EXPECT_TRUE(rule.Matches(a, both));
  EXPECT_FALSE(rule.Matches(a, only_first));
}

TEST(MatchRuleTest, OrRequiresAny) {
  MatchRule rule =
      MatchRule::Or({MatchRule::Leaf(0, 0.5), MatchRule::Leaf(1, 0.5)});
  Record a = MakeRecord({1, 2}, {10, 11}, {1});
  Record only_second = MakeRecord({5, 6}, {10, 11}, {1});
  Record neither = MakeRecord({5, 6}, {20, 21}, {1});
  EXPECT_TRUE(rule.Matches(a, only_second));
  EXPECT_FALSE(rule.Matches(a, neither));
}

TEST(MatchRuleTest, CoraShapedRule) {
  // And(WeightedAvg({0,1}, .5/.5) <= 0.3, Leaf(2) <= 0.8) over mixed kinds —
  // the dense third field under cosine.
  MatchRule rule =
      MatchRule::And({MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3),
                      MatchRule::Leaf(2, 0.8)});
  Record a = MakeRecord({1, 2, 3}, {7, 8}, {1.0f, 0.1f});
  Record b = MakeRecord({1, 2, 3}, {7, 8}, {1.0f, 0.2f});
  EXPECT_TRUE(rule.Matches(a, b));
}

TEST(MatchRuleTest, ValidateCatchesBadFields) {
  Record prototype = MakeRecord({1}, {2}, {1.0f});
  EXPECT_TRUE(MatchRule::Leaf(2, 0.5).Validate(prototype).ok());
  EXPECT_FALSE(MatchRule::Leaf(3, 0.5).Validate(prototype).ok());
  EXPECT_FALSE(MatchRule::Leaf(0, 1.5).Validate(prototype).ok());
  EXPECT_FALSE(MatchRule::WeightedAverage({0, 1}, {0.5, 0.4}, 0.3)
                   .Validate(prototype)
                   .ok());
  EXPECT_TRUE(MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3)
                  .Validate(prototype)
                  .ok());
}

TEST(MatchRuleTest, ValidateRecurses) {
  Record prototype = MakeRecord({1}, {2}, {1.0f});
  MatchRule bad_nested =
      MatchRule::And({MatchRule::Leaf(0, 0.5), MatchRule::Leaf(9, 0.5)});
  EXPECT_FALSE(bad_nested.Validate(prototype).ok());
}

TEST(MatchRuleTest, DebugStringShapes) {
  EXPECT_EQ(MatchRule::Leaf(2, 0.8).DebugString(), "Leaf(2)<=0.8");
  MatchRule rule =
      MatchRule::And({MatchRule::WeightedAverage({0, 1}, {0.5, 0.5}, 0.3),
                      MatchRule::Leaf(2, 0.8)});
  EXPECT_EQ(rule.DebugString(),
            "And(WeightedAvg({0,1},{0.5,0.5})<=0.3, Leaf(2)<=0.8)");
}

TEST(MatchRuleDeathTest, DistanceOnCompositeAborts) {
  MatchRule rule = MatchRule::And({MatchRule::Leaf(0, 0.5)});
  Record a = MakeRecord({1}, {2}, {1.0f});
  EXPECT_DEATH(rule.Distance(a, a), "composite");
}

}  // namespace
}  // namespace adalsh
