// End-to-end certification that the SIMD dispatch target is invisible in
// FilterOutput (docs/simd.md): for dense, token, and multimodal workloads,
// AdaptiveLsh pinned to each supported level — crossed with thread counts
// {1, 2, 8} — produces bit-identical output to the scalar serial run. This
// is the product of the two independence contracts: docs/threading.md's
// thread-count invariance and simd_kernels.h's level invariance.

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/adaptive_lsh.h"
#include "datagen/cora_like.h"
#include "datagen/multimodal.h"
#include "datagen/popular_images.h"
#include "test_util.h"
#include "util/simd.h"

namespace adalsh {
namespace {

const int kThreadCounts[] = {1, 2, 8};

struct ComparableOutput {
  std::vector<std::vector<RecordId>> clusters;
  size_t rounds;
  uint64_t pairwise_similarities;
  uint64_t hashes_computed;
  std::vector<size_t> records_last_hashed_at;

  bool operator==(const ComparableOutput&) const = default;
};

ComparableOutput RunPinned(const GeneratedDataset& generated, SimdLevel level,
                           int threads, int k) {
  int previous = SetSimdPin(static_cast<int>(level));
  AdaptiveLshConfig config;
  config.sequence.max_budget = 320;
  config.calibration_samples = 5;
  config.seed = 19;
  config.threads = threads;
  AdaptiveLsh adalsh(generated.dataset, generated.rule, config);
  // Fixed cost model: calibration is wall-clock-timed and would otherwise
  // make jump decisions depend on how fast the pinned level happens to be.
  adalsh.set_cost_model(CostModel(1e-8, 1e-6));
  FilterOutput output = adalsh.Run(k);
  SetSimdPin(previous);
  return ComparableOutput{output.clusters.clusters, output.stats.rounds,
                          output.stats.pairwise_similarities,
                          output.stats.hashes_computed,
                          output.stats.records_last_hashed_at};
}

void ExpectInvariantToLevelAndThreads(const GeneratedDataset& generated,
                                      int k, const char* name) {
  // Small datasets would sweep serially; force the tiled path so the cross
  // product also covers SIMD kernels running inside worker threads.
  test::ScopedParallelCutoff force_tiled(1);
  ComparableOutput reference =
      RunPinned(generated, SimdLevel::kScalar, /*threads=*/1, k);
  ASSERT_GT(reference.hashes_computed, 0u);
  ASSERT_FALSE(reference.clusters.empty());
  for (SimdLevel level : SupportedSimdLevels()) {
    for (int threads : kThreadCounts) {
      EXPECT_EQ(RunPinned(generated, level, threads, k), reference)
          << name << ": level " << SimdLevelName(level) << " with " << threads
          << " threads diverged from the scalar serial run";
    }
  }
}

TEST(SimdEquivalenceTest, DenseCosineWorkload) {
  PopularImagesConfig config;
  config.num_entities = 20;
  config.num_records = 150;
  config.seed = 5;
  ExpectInvariantToLevelAndThreads(GeneratePopularImages(config), /*k=*/3,
                                   "popular-images");
}

TEST(SimdEquivalenceTest, TokenJaccardWorkload) {
  CoraLikeConfig config;
  config.num_entities = 25;
  config.num_records = 160;
  config.seed = 6;
  ExpectInvariantToLevelAndThreads(GenerateCoraLike(config), /*k=*/4,
                                   "cora-like");
}

TEST(SimdEquivalenceTest, MultimodalOrWorkload) {
  MultiModalConfig config;
  config.num_entities = 18;
  config.num_records = 140;
  config.seed = 7;
  ExpectInvariantToLevelAndThreads(GenerateMultiModal(config), /*k=*/3,
                                   "multimodal");
}

}  // namespace
}  // namespace adalsh
