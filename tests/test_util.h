#ifndef ADALSH_TESTS_TEST_UTIL_H_
#define ADALSH_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/pairwise.h"
#include "datagen/generated_dataset.h"
#include "distance/rule.h"
#include "record/dataset.h"
#include "util/rng.h"

namespace adalsh {
namespace test {

/// Scoped PairwiseComputer::OverrideParallelCutoffForTest: the equivalence
/// suites run few-hundred-record sweeps, which real Apply calls now route
/// to the serial path — forcing the tiled path keeps them covering the
/// stripe/tile/replay machinery they were written for. Restores the prior
/// override on destruction.
class ScopedParallelCutoff {
 public:
  explicit ScopedParallelCutoff(size_t cutoff)
      : previous_(PairwiseComputer::OverrideParallelCutoffForTest(cutoff)) {}
  ~ScopedParallelCutoff() {
    PairwiseComputer::OverrideParallelCutoffForTest(previous_);
  }
  ScopedParallelCutoff(const ScopedParallelCutoff&) = delete;
  ScopedParallelCutoff& operator=(const ScopedParallelCutoff&) = delete;

 private:
  size_t previous_;
};

/// Builds a planted-cluster token-set dataset: `cluster_sizes[e]` records per
/// entity, each sharing a large entity-specific core of tokens and differing
/// in a small noise fraction, so within-entity Jaccard similarity is ~0.8 and
/// cross-entity similarity is ~0. Single field; matched by Leaf(0, 0.5).
inline GeneratedDataset MakePlantedDataset(
    const std::vector<size_t>& cluster_sizes, uint64_t seed,
    double rule_threshold = 0.5) {
  Rng rng(DeriveSeed(seed, 0x7e57));
  Dataset dataset("planted");
  uint64_t next_token = 1;
  for (size_t e = 0; e < cluster_sizes.size(); ++e) {
    // 40-token core per entity.
    std::vector<uint64_t> core;
    for (int t = 0; t < 40; ++t) core.push_back(next_token++);
    for (size_t r = 0; r < cluster_sizes[e]; ++r) {
      std::vector<uint64_t> tokens = core;
      // Drop two core tokens and add two fresh noise tokens (~0.82 sim).
      tokens[rng.NextBelow(tokens.size())] = next_token++;
      tokens[rng.NextBelow(tokens.size())] = next_token++;
      std::vector<Field> fields;
      fields.push_back(Field::TokenSet(std::move(tokens)));
      dataset.AddRecord(
          Record(std::move(fields),
                 "e" + std::to_string(e) + "r" + std::to_string(r)),
          static_cast<EntityId>(e));
    }
  }
  return GeneratedDataset(std::move(dataset),
                          MatchRule::Leaf(0, rule_threshold));
}

/// Sorted record ids of a clustering's cluster `i` (clusters are emitted in
/// leaf-chain order, tests usually want set semantics).
inline std::vector<RecordId> SortedCluster(
    const std::vector<RecordId>& cluster) {
  std::vector<RecordId> sorted = cluster;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace test
}  // namespace adalsh

#endif  // ADALSH_TESTS_TEST_UTIL_H_
