// Differential harness for sharded execution (docs/sharding.md), mirroring
// engine_equivalence_test: the canonical snapshot produced through S shards —
// batch or any randomized resident mutation history — must be byte-identical
// to the from-scratch single-engine reference for every shard count at every
// thread count. All configurations pin the same cost model; wall-clock
// calibration is the one legitimate source of divergence (engine_harness.h).

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/sharded_executor.h"
#include "engine_harness.h"
#include "test_util.h"

namespace adalsh {
namespace {

constexpr int kShardCounts[] = {1, 2, 4, 8};
constexpr int kThreadCounts[] = {1, 2, 8};

ShardedEngine::Options ShardedOptions(int shards, int threads, int top_k,
                                      uint64_t seed = 3) {
  ShardedEngine::Options options;
  options.engine = test::EngineOptions(threads, top_k, seed);
  options.shards = shards;
  return options;
}

std::vector<size_t> SizesForSeed(uint64_t seed) {
  std::vector<size_t> sizes = {12, 9, 7, 5, 3, 2, 1};
  sizes[seed % sizes.size()] += seed % 4;
  if (seed % 3 == 0) sizes.push_back(1);
  return sizes;
}

/// Identity live map for a whole-dataset batch: RunShardedBatch assigns
/// external ids equal to record indices.
test::LiveMap WholeDatasetLive(const Dataset& dataset) {
  test::LiveMap live;
  for (size_t r = 0; r < dataset.num_records(); ++r) live[r] = r;
  return live;
}

TEST(ShardEquivalenceTest, BatchIsByteIdenticalAcrossShardAndThreadCounts) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratedDataset generated =
        test::MakePlantedDataset(SizesForSeed(seed), seed);
    const std::string reference = test::ReferenceCanonical(
        generated.dataset, generated.rule, WholeDatasetLive(generated.dataset),
        /*top_k=*/4);
    for (int shards : kShardCounts) {
      for (int threads : kThreadCounts) {
        auto snap = RunShardedBatch(generated.dataset, generated.rule,
                                    ShardedOptions(shards, threads, 4));
        ASSERT_TRUE(snap.ok()) << snap.status().ToString();
        EXPECT_EQ(test::CanonicalSnapshot(snap.value()), reference)
            << "seed " << seed << " shards " << shards << " threads "
            << threads;
      }
    }
  }
}

TEST(ShardEquivalenceTest, RandomizedHistoriesAreConfluentAcrossShards) {
  // The identical deterministic mutation script (engine_harness.h) drives a
  // ShardedEngine at every (shards, threads) combination; after Flush the
  // merged snapshot must equal the from-scratch reference over the surviving
  // records. Thread count 2 is covered by the batch matrix above; here the
  // extremes keep 240 scripts affordable while still crossing the
  // serial/parallel shard-dispatch boundary.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    GeneratedDataset generated =
        test::MakePlantedDataset(SizesForSeed(seed), seed);
    std::string reference;
    test::LiveMap first_live;
    bool have_reference = false;
    for (int shards : kShardCounts) {
      for (int threads : {1, 8}) {
        ShardedEngine engine(generated.rule,
                             ShardedOptions(shards, threads, /*top_k=*/4));
        test::LiveMap live =
            test::RunRandomScript(&engine, generated.dataset, seed);
        auto flushed = engine.Flush();
        ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
        EXPECT_EQ(flushed.value().refinement, TerminationReason::kCompleted);
        if (!have_reference) {
          have_reference = true;
          first_live = live;
          reference = test::ReferenceCanonical(generated.dataset,
                                               generated.rule, live, 4);
        } else {
          // Ids are assigned in batch order regardless of sharding, so every
          // configuration must walk the identical logical history.
          ASSERT_EQ(live, first_live) << "seed " << seed;
        }
        EXPECT_EQ(test::CanonicalSnapshot(*engine.Snapshot()), reference)
            << "seed " << seed << " shards " << shards << " threads "
            << threads;
      }
    }
  }
}

TEST(ShardEquivalenceTest, SkewedMegaClusterStaysIdentical) {
  // One mega-entity plus a long singleton tail: with S >= 2 the mega
  // component is all but guaranteed to span shards, forcing the reopened
  // producer-0 path through a heavily skewed bucket-size distribution (the
  // sharded half of the bin_index skew coverage).
  for (uint64_t seed : {5, 12}) {
    GeneratedDataset generated = test::MakePlantedDataset(
        {40, 3, 2, 1, 1, 1, 1, 1, 1, 1}, seed);
    const std::string reference = test::ReferenceCanonical(
        generated.dataset, generated.rule, WholeDatasetLive(generated.dataset),
        /*top_k=*/3);
    for (int shards : {1, 4, 8}) {
      for (int threads : {1, 8}) {
        auto snap = RunShardedBatch(generated.dataset, generated.rule,
                                    ShardedOptions(shards, threads, 3));
        ASSERT_TRUE(snap.ok()) << snap.status().ToString();
        EXPECT_EQ(test::CanonicalSnapshot(snap.value()), reference)
            << "seed " << seed << " shards " << shards << " threads "
            << threads;
        ASSERT_FALSE(snap.value().clusters.empty());
        EXPECT_GE(snap.value().clusters.front().size(), 40u);
      }
    }
  }
}

TEST(ShardEquivalenceTest, ConcurrentWritersConvergeAfterFlush) {
  // The multi-writer claim (and the suite's TSan target): several writer
  // threads mutate concurrently — serializing only on their records' shard
  // locks — while readers poll the merged snapshot. After a final Flush the
  // result must equal the from-scratch reference over the union live set.
  GeneratedDataset generated =
      test::MakePlantedDataset({13, 9, 6, 4, 2, 1, 1}, 19);
  ShardedEngine engine(generated.rule,
                       ShardedOptions(/*shards=*/4, /*threads=*/4,
                                      /*top_k=*/4));
  const size_t total = generated.dataset.num_records();
  constexpr int kWriters = 4;

  // Seed the engine (and the shared cost model) before the writers race.
  test::LiveMap live;
  {
    std::vector<Record> first = {generated.dataset.record(0)};
    auto seeded = engine.Ingest(std::move(first));
    ASSERT_TRUE(seeded.ok()) << seeded.status().ToString();
    live[seeded.value().assigned_ids[0]] = 0;
  }

  std::mutex live_mu;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  auto writer = [&](int w) {
    test::LiveMap mine;
    for (size_t r = 1 + w; r < total; r += kWriters) {
      std::vector<Record> batch = {generated.dataset.record(r)};
      auto ingested = engine.Ingest(std::move(batch));
      if (!ingested.ok()) {
        ++failures;
        return;
      }
      mine[ingested.value().assigned_ids[0]] = r;
    }
    // Each writer removes one of its own ids — removals race only on
    // distinct ids, so per-shard pre-validation stays exact.
    if (!mine.empty()) {
      const ExternalId victim = mine.begin()->first;
      std::vector<ExternalId> ids = {victim};
      auto removed = engine.Remove(ids);
      if (!removed.ok()) {
        ++failures;
        return;
      }
      mine.erase(victim);
    }
    std::lock_guard<std::mutex> lock(live_mu);
    live.insert(mine.begin(), mine.end());
  };
  auto reader = [&] {
    uint64_t last_generation = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::shared_ptr<const EngineSnapshot> snap = engine.Snapshot();
      if (snap->generation < last_generation) ++failures;
      last_generation = snap->generation;
      if (snap->verification.size() != snap->clusters.size()) ++failures;
    }
  };

  std::thread r1(reader);
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) writers.emplace_back(writer, w);
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  r1.join();
  ASSERT_EQ(failures.load(), 0);

  auto flushed = engine.Flush();
  ASSERT_TRUE(flushed.ok()) << flushed.status().ToString();
  EXPECT_EQ(flushed.value().refinement, TerminationReason::kCompleted);
  EXPECT_EQ(test::CanonicalSnapshot(*engine.Snapshot()),
            test::ReferenceCanonical(generated.dataset, generated.rule, live,
                                     4));
  EXPECT_EQ(engine.counters().live_records, live.size());
}

TEST(ShardEquivalenceTest, PartitionIsDeterministicAndCovering) {
  for (int shards : kShardCounts) {
    std::vector<int> seen(shards, 0);
    for (ExternalId id = 0; id < 1000; ++id) {
      const int s = ShardOfExternalId(id, shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      EXPECT_EQ(s, ShardOfExternalId(id, shards));  // stable
      ++seen[s];
    }
    // SplitMix64 spreads sequential ids roughly evenly.
    for (int s = 0; s < shards; ++s) {
      EXPECT_GT(seen[s], 1000 / shards / 2)
          << "shard " << s << " of " << shards;
    }
  }
  // shards == 1 bypasses the mix entirely.
  EXPECT_EQ(ShardOfExternalId(12345, 1), 0);
}

TEST(ShardEquivalenceTest, DegenerateLifecycles) {
  GeneratedDataset generated = test::MakePlantedDataset({3, 2, 1}, 7);
  ShardedEngine engine(generated.rule, ShardedOptions(4, 1, /*top_k=*/2));

  // Pre-ingest: queries serve the empty generation-0 snapshot; removals and
  // updates have nothing to route to.
  EXPECT_EQ(engine.Snapshot()->generation, 0u);
  std::vector<ExternalId> none = {0};
  EXPECT_FALSE(engine.Remove(none).ok());
  EXPECT_FALSE(engine.Update(0, generated.dataset.record(0)).ok());
  auto empty_ingest = engine.Ingest({});
  ASSERT_TRUE(empty_ingest.ok());
  EXPECT_TRUE(empty_ingest.value().assigned_ids.empty());
  auto empty_flush = engine.Flush();
  ASSERT_TRUE(empty_flush.ok());
  EXPECT_EQ(empty_flush.value().generation, 0u);

  // Ingest everything, remove everything, flush: the merged snapshot must
  // come back to the empty canonical form.
  std::vector<Record> records;
  for (size_t r = 0; r < generated.dataset.num_records(); ++r) {
    records.push_back(generated.dataset.record(r));
  }
  auto ingested = engine.Ingest(std::move(records));
  ASSERT_TRUE(ingested.ok()) << ingested.status().ToString();
  auto flushed = engine.Flush();
  ASSERT_TRUE(flushed.ok());
  EXPECT_EQ(engine.Snapshot()->live_records,
            generated.dataset.num_records());

  auto removed = engine.Remove(ingested.value().assigned_ids);
  ASSERT_TRUE(removed.ok()) << removed.status().ToString();
  auto reflushed = engine.Flush();
  ASSERT_TRUE(reflushed.ok());
  EXPECT_EQ(engine.Snapshot()->live_records, 0u);
  EXPECT_TRUE(engine.Snapshot()->clusters.empty());

  // Duplicate ids in one removal batch are rejected before any mutation.
  auto dup_ingest = engine.Ingest({generated.dataset.record(0)});
  ASSERT_TRUE(dup_ingest.ok());
  const ExternalId id = dup_ingest.value().assigned_ids[0];
  std::vector<ExternalId> dup = {id, id};
  EXPECT_FALSE(engine.Remove(dup).ok());
  auto single = engine.Cluster(id);
  EXPECT_FALSE(single.ok());  // not merged yet: deferred certification
  ASSERT_TRUE(engine.Flush().ok());
  auto merged = engine.Cluster(id);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), std::vector<ExternalId>{id});
}

}  // namespace
}  // namespace adalsh
